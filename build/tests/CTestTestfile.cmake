# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/roadnet_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/infra_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/rlsmp_test[1]_include.cmake")
include("/root/repo/build/tests/hlsrg_integration_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/flood_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/visualize_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/query_path_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
