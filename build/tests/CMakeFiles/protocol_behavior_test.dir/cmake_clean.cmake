file(REMOVE_RECURSE
  "CMakeFiles/protocol_behavior_test.dir/protocol_behavior_test.cpp.o"
  "CMakeFiles/protocol_behavior_test.dir/protocol_behavior_test.cpp.o.d"
  "protocol_behavior_test"
  "protocol_behavior_test.pdb"
  "protocol_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
