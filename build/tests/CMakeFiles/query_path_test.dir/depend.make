# Empty dependencies file for query_path_test.
# This may be replaced when dependencies are built.
