file(REMOVE_RECURSE
  "CMakeFiles/query_path_test.dir/query_path_test.cpp.o"
  "CMakeFiles/query_path_test.dir/query_path_test.cpp.o.d"
  "query_path_test"
  "query_path_test.pdb"
  "query_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
