
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/util_test.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hlsrg_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hlsrg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rlsmp/CMakeFiles/hlsrg_rlsmp.dir/DependInfo.cmake"
  "/root/repo/build/src/flood/CMakeFiles/hlsrg_flood.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/hlsrg_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hlsrg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/hlsrg_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/hlsrg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/hlsrg_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlsrg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hlsrg_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlsrg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
