file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_integration_test.dir/hlsrg_integration_test.cpp.o"
  "CMakeFiles/hlsrg_integration_test.dir/hlsrg_integration_test.cpp.o.d"
  "hlsrg_integration_test"
  "hlsrg_integration_test.pdb"
  "hlsrg_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
