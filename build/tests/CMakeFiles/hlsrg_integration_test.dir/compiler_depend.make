# Empty compiler generated dependencies file for hlsrg_integration_test.
# This may be replaced when dependencies are built.
