file(REMOVE_RECURSE
  "CMakeFiles/rlsmp_test.dir/rlsmp_test.cpp.o"
  "CMakeFiles/rlsmp_test.dir/rlsmp_test.cpp.o.d"
  "rlsmp_test"
  "rlsmp_test.pdb"
  "rlsmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlsmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
