# Empty compiler generated dependencies file for rlsmp_test.
# This may be replaced when dependencies are built.
