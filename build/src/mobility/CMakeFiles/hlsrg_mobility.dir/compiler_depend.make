# Empty compiler generated dependencies file for hlsrg_mobility.
# This may be replaced when dependencies are built.
