file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_mobility.dir/mobility_model.cpp.o"
  "CMakeFiles/hlsrg_mobility.dir/mobility_model.cpp.o.d"
  "CMakeFiles/hlsrg_mobility.dir/traffic_light.cpp.o"
  "CMakeFiles/hlsrg_mobility.dir/traffic_light.cpp.o.d"
  "CMakeFiles/hlsrg_mobility.dir/turn_policy.cpp.o"
  "CMakeFiles/hlsrg_mobility.dir/turn_policy.cpp.o.d"
  "libhlsrg_mobility.a"
  "libhlsrg_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
