file(REMOVE_RECURSE
  "libhlsrg_mobility.a"
)
