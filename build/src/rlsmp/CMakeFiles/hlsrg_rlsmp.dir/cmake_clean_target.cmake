file(REMOVE_RECURSE
  "libhlsrg_rlsmp.a"
)
