file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_rlsmp.dir/cell_grid.cpp.o"
  "CMakeFiles/hlsrg_rlsmp.dir/cell_grid.cpp.o.d"
  "CMakeFiles/hlsrg_rlsmp.dir/rlsmp_agent.cpp.o"
  "CMakeFiles/hlsrg_rlsmp.dir/rlsmp_agent.cpp.o.d"
  "CMakeFiles/hlsrg_rlsmp.dir/rlsmp_service.cpp.o"
  "CMakeFiles/hlsrg_rlsmp.dir/rlsmp_service.cpp.o.d"
  "libhlsrg_rlsmp.a"
  "libhlsrg_rlsmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_rlsmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
