# Empty compiler generated dependencies file for hlsrg_rlsmp.
# This may be replaced when dependencies are built.
