# CMake generated Testfile for 
# Source directory: /root/repo/src/rlsmp
# Build directory: /root/repo/build/src/rlsmp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
