file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_infra.dir/rsu_grid.cpp.o"
  "CMakeFiles/hlsrg_infra.dir/rsu_grid.cpp.o.d"
  "libhlsrg_infra.a"
  "libhlsrg_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
