# Empty dependencies file for hlsrg_infra.
# This may be replaced when dependencies are built.
