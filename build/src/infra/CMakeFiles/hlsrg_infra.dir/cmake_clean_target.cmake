file(REMOVE_RECURSE
  "libhlsrg_infra.a"
)
