file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_geom.dir/geometry.cpp.o"
  "CMakeFiles/hlsrg_geom.dir/geometry.cpp.o.d"
  "libhlsrg_geom.a"
  "libhlsrg_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
