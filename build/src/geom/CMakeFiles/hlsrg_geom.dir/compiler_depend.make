# Empty compiler generated dependencies file for hlsrg_geom.
# This may be replaced when dependencies are built.
