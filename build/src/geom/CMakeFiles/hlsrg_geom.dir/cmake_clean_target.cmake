file(REMOVE_RECURSE
  "libhlsrg_geom.a"
)
