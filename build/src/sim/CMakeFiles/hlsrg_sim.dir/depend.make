# Empty dependencies file for hlsrg_sim.
# This may be replaced when dependencies are built.
