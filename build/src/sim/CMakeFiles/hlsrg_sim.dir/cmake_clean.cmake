file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_sim.dir/counters.cpp.o"
  "CMakeFiles/hlsrg_sim.dir/counters.cpp.o.d"
  "CMakeFiles/hlsrg_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hlsrg_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hlsrg_sim.dir/simulator.cpp.o"
  "CMakeFiles/hlsrg_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hlsrg_sim.dir/trace.cpp.o"
  "CMakeFiles/hlsrg_sim.dir/trace.cpp.o.d"
  "libhlsrg_sim.a"
  "libhlsrg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
