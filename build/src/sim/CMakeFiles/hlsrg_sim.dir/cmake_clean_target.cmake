file(REMOVE_RECURSE
  "libhlsrg_sim.a"
)
