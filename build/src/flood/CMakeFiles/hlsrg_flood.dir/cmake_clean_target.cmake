file(REMOVE_RECURSE
  "libhlsrg_flood.a"
)
