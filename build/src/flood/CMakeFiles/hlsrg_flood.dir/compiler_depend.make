# Empty compiler generated dependencies file for hlsrg_flood.
# This may be replaced when dependencies are built.
