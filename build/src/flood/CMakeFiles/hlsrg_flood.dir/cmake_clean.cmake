file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_flood.dir/flood_agent.cpp.o"
  "CMakeFiles/hlsrg_flood.dir/flood_agent.cpp.o.d"
  "CMakeFiles/hlsrg_flood.dir/flood_service.cpp.o"
  "CMakeFiles/hlsrg_flood.dir/flood_service.cpp.o.d"
  "libhlsrg_flood.a"
  "libhlsrg_flood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_flood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
