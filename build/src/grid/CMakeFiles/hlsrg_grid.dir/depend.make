# Empty dependencies file for hlsrg_grid.
# This may be replaced when dependencies are built.
