
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/hierarchy.cpp" "src/grid/CMakeFiles/hlsrg_grid.dir/hierarchy.cpp.o" "gcc" "src/grid/CMakeFiles/hlsrg_grid.dir/hierarchy.cpp.o.d"
  "/root/repo/src/grid/partition.cpp" "src/grid/CMakeFiles/hlsrg_grid.dir/partition.cpp.o" "gcc" "src/grid/CMakeFiles/hlsrg_grid.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadnet/CMakeFiles/hlsrg_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hlsrg_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlsrg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlsrg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
