file(REMOVE_RECURSE
  "libhlsrg_grid.a"
)
