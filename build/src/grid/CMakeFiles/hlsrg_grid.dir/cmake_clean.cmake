file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_grid.dir/hierarchy.cpp.o"
  "CMakeFiles/hlsrg_grid.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hlsrg_grid.dir/partition.cpp.o"
  "CMakeFiles/hlsrg_grid.dir/partition.cpp.o.d"
  "libhlsrg_grid.a"
  "libhlsrg_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
