file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_core.dir/hlsrg_service.cpp.o"
  "CMakeFiles/hlsrg_core.dir/hlsrg_service.cpp.o.d"
  "CMakeFiles/hlsrg_core.dir/location_service.cpp.o"
  "CMakeFiles/hlsrg_core.dir/location_service.cpp.o.d"
  "CMakeFiles/hlsrg_core.dir/location_table.cpp.o"
  "CMakeFiles/hlsrg_core.dir/location_table.cpp.o.d"
  "CMakeFiles/hlsrg_core.dir/rsu_agent.cpp.o"
  "CMakeFiles/hlsrg_core.dir/rsu_agent.cpp.o.d"
  "CMakeFiles/hlsrg_core.dir/update_rules.cpp.o"
  "CMakeFiles/hlsrg_core.dir/update_rules.cpp.o.d"
  "CMakeFiles/hlsrg_core.dir/vehicle_agent.cpp.o"
  "CMakeFiles/hlsrg_core.dir/vehicle_agent.cpp.o.d"
  "libhlsrg_core.a"
  "libhlsrg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
