# Empty compiler generated dependencies file for hlsrg_core.
# This may be replaced when dependencies are built.
