file(REMOVE_RECURSE
  "libhlsrg_core.a"
)
