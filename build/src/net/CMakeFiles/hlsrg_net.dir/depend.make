# Empty dependencies file for hlsrg_net.
# This may be replaced when dependencies are built.
