file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_net.dir/beacons.cpp.o"
  "CMakeFiles/hlsrg_net.dir/beacons.cpp.o.d"
  "CMakeFiles/hlsrg_net.dir/geocast.cpp.o"
  "CMakeFiles/hlsrg_net.dir/geocast.cpp.o.d"
  "CMakeFiles/hlsrg_net.dir/gpsr.cpp.o"
  "CMakeFiles/hlsrg_net.dir/gpsr.cpp.o.d"
  "CMakeFiles/hlsrg_net.dir/neighbor_index.cpp.o"
  "CMakeFiles/hlsrg_net.dir/neighbor_index.cpp.o.d"
  "CMakeFiles/hlsrg_net.dir/node_registry.cpp.o"
  "CMakeFiles/hlsrg_net.dir/node_registry.cpp.o.d"
  "CMakeFiles/hlsrg_net.dir/radio.cpp.o"
  "CMakeFiles/hlsrg_net.dir/radio.cpp.o.d"
  "CMakeFiles/hlsrg_net.dir/wired.cpp.o"
  "CMakeFiles/hlsrg_net.dir/wired.cpp.o.d"
  "libhlsrg_net.a"
  "libhlsrg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
