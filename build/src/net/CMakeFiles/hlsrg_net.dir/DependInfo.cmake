
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/beacons.cpp" "src/net/CMakeFiles/hlsrg_net.dir/beacons.cpp.o" "gcc" "src/net/CMakeFiles/hlsrg_net.dir/beacons.cpp.o.d"
  "/root/repo/src/net/geocast.cpp" "src/net/CMakeFiles/hlsrg_net.dir/geocast.cpp.o" "gcc" "src/net/CMakeFiles/hlsrg_net.dir/geocast.cpp.o.d"
  "/root/repo/src/net/gpsr.cpp" "src/net/CMakeFiles/hlsrg_net.dir/gpsr.cpp.o" "gcc" "src/net/CMakeFiles/hlsrg_net.dir/gpsr.cpp.o.d"
  "/root/repo/src/net/neighbor_index.cpp" "src/net/CMakeFiles/hlsrg_net.dir/neighbor_index.cpp.o" "gcc" "src/net/CMakeFiles/hlsrg_net.dir/neighbor_index.cpp.o.d"
  "/root/repo/src/net/node_registry.cpp" "src/net/CMakeFiles/hlsrg_net.dir/node_registry.cpp.o" "gcc" "src/net/CMakeFiles/hlsrg_net.dir/node_registry.cpp.o.d"
  "/root/repo/src/net/radio.cpp" "src/net/CMakeFiles/hlsrg_net.dir/radio.cpp.o" "gcc" "src/net/CMakeFiles/hlsrg_net.dir/radio.cpp.o.d"
  "/root/repo/src/net/wired.cpp" "src/net/CMakeFiles/hlsrg_net.dir/wired.cpp.o" "gcc" "src/net/CMakeFiles/hlsrg_net.dir/wired.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hlsrg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hlsrg_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlsrg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
