file(REMOVE_RECURSE
  "libhlsrg_net.a"
)
