# Empty dependencies file for hlsrg_roadnet.
# This may be replaced when dependencies are built.
