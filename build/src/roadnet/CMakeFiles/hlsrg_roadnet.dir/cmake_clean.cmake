file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_roadnet.dir/map_builder.cpp.o"
  "CMakeFiles/hlsrg_roadnet.dir/map_builder.cpp.o.d"
  "CMakeFiles/hlsrg_roadnet.dir/map_io.cpp.o"
  "CMakeFiles/hlsrg_roadnet.dir/map_io.cpp.o.d"
  "CMakeFiles/hlsrg_roadnet.dir/road_network.cpp.o"
  "CMakeFiles/hlsrg_roadnet.dir/road_network.cpp.o.d"
  "libhlsrg_roadnet.a"
  "libhlsrg_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
