
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/map_builder.cpp" "src/roadnet/CMakeFiles/hlsrg_roadnet.dir/map_builder.cpp.o" "gcc" "src/roadnet/CMakeFiles/hlsrg_roadnet.dir/map_builder.cpp.o.d"
  "/root/repo/src/roadnet/map_io.cpp" "src/roadnet/CMakeFiles/hlsrg_roadnet.dir/map_io.cpp.o" "gcc" "src/roadnet/CMakeFiles/hlsrg_roadnet.dir/map_io.cpp.o.d"
  "/root/repo/src/roadnet/road_network.cpp" "src/roadnet/CMakeFiles/hlsrg_roadnet.dir/road_network.cpp.o" "gcc" "src/roadnet/CMakeFiles/hlsrg_roadnet.dir/road_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/hlsrg_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlsrg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hlsrg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
