file(REMOVE_RECURSE
  "libhlsrg_roadnet.a"
)
