file(REMOVE_RECURSE
  "libhlsrg_util.a"
)
