file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_util.dir/check.cpp.o"
  "CMakeFiles/hlsrg_util.dir/check.cpp.o.d"
  "CMakeFiles/hlsrg_util.dir/format.cpp.o"
  "CMakeFiles/hlsrg_util.dir/format.cpp.o.d"
  "libhlsrg_util.a"
  "libhlsrg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
