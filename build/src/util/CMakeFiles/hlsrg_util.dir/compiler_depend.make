# Empty compiler generated dependencies file for hlsrg_util.
# This may be replaced when dependencies are built.
