file(REMOVE_RECURSE
  "CMakeFiles/hlsrg_harness.dir/parallel.cpp.o"
  "CMakeFiles/hlsrg_harness.dir/parallel.cpp.o.d"
  "CMakeFiles/hlsrg_harness.dir/runner.cpp.o"
  "CMakeFiles/hlsrg_harness.dir/runner.cpp.o.d"
  "CMakeFiles/hlsrg_harness.dir/visualize.cpp.o"
  "CMakeFiles/hlsrg_harness.dir/visualize.cpp.o.d"
  "CMakeFiles/hlsrg_harness.dir/world.cpp.o"
  "CMakeFiles/hlsrg_harness.dir/world.cpp.o.d"
  "libhlsrg_harness.a"
  "libhlsrg_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsrg_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
