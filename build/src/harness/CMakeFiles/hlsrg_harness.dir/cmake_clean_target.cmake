file(REMOVE_RECURSE
  "libhlsrg_harness.a"
)
