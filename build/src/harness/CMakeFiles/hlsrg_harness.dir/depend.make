# Empty dependencies file for hlsrg_harness.
# This may be replaced when dependencies are built.
