# Empty dependencies file for abl_parked.
# This may be replaced when dependencies are built.
