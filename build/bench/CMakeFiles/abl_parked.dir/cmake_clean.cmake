file(REMOVE_RECURSE
  "CMakeFiles/abl_parked.dir/abl_parked.cpp.o"
  "CMakeFiles/abl_parked.dir/abl_parked.cpp.o.d"
  "abl_parked"
  "abl_parked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_parked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
