# Empty dependencies file for abl_workload.
# This may be replaced when dependencies are built.
