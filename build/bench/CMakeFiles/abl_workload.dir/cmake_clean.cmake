file(REMOVE_RECURSE
  "CMakeFiles/abl_workload.dir/abl_workload.cpp.o"
  "CMakeFiles/abl_workload.dir/abl_workload.cpp.o.d"
  "abl_workload"
  "abl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
