# Empty dependencies file for abl_expiry.
# This may be replaced when dependencies are built.
