file(REMOVE_RECURSE
  "CMakeFiles/abl_expiry.dir/abl_expiry.cpp.o"
  "CMakeFiles/abl_expiry.dir/abl_expiry.cpp.o.d"
  "abl_expiry"
  "abl_expiry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_expiry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
