# Empty compiler generated dependencies file for abl_rsu.
# This may be replaced when dependencies are built.
