file(REMOVE_RECURSE
  "CMakeFiles/abl_rsu.dir/abl_rsu.cpp.o"
  "CMakeFiles/abl_rsu.dir/abl_rsu.cpp.o.d"
  "abl_rsu"
  "abl_rsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
