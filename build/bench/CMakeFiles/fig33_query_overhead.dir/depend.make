# Empty dependencies file for fig33_query_overhead.
# This may be replaced when dependencies are built.
