file(REMOVE_RECURSE
  "CMakeFiles/fig33_query_overhead.dir/fig33_query_overhead.cpp.o"
  "CMakeFiles/fig33_query_overhead.dir/fig33_query_overhead.cpp.o.d"
  "fig33_query_overhead"
  "fig33_query_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig33_query_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
