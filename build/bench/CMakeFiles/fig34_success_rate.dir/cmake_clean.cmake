file(REMOVE_RECURSE
  "CMakeFiles/fig34_success_rate.dir/fig34_success_rate.cpp.o"
  "CMakeFiles/fig34_success_rate.dir/fig34_success_rate.cpp.o.d"
  "fig34_success_rate"
  "fig34_success_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig34_success_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
