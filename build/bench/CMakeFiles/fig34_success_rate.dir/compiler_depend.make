# Empty compiler generated dependencies file for fig34_success_rate.
# This may be replaced when dependencies are built.
