file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_comparison.dir/taxonomy_comparison.cpp.o"
  "CMakeFiles/taxonomy_comparison.dir/taxonomy_comparison.cpp.o.d"
  "taxonomy_comparison"
  "taxonomy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
