# Empty compiler generated dependencies file for taxonomy_comparison.
# This may be replaced when dependencies are built.
