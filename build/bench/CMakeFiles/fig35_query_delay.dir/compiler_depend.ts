# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig35_query_delay.
