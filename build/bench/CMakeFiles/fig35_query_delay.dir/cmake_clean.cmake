file(REMOVE_RECURSE
  "CMakeFiles/fig35_query_delay.dir/fig35_query_delay.cpp.o"
  "CMakeFiles/fig35_query_delay.dir/fig35_query_delay.cpp.o.d"
  "fig35_query_delay"
  "fig35_query_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig35_query_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
