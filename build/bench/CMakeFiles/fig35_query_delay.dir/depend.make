# Empty dependencies file for fig35_query_delay.
# This may be replaced when dependencies are built.
