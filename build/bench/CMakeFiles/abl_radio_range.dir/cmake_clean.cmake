file(REMOVE_RECURSE
  "CMakeFiles/abl_radio_range.dir/abl_radio_range.cpp.o"
  "CMakeFiles/abl_radio_range.dir/abl_radio_range.cpp.o.d"
  "abl_radio_range"
  "abl_radio_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_radio_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
