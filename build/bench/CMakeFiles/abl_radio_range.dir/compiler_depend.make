# Empty compiler generated dependencies file for abl_radio_range.
# This may be replaced when dependencies are built.
