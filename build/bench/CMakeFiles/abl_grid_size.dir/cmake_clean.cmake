file(REMOVE_RECURSE
  "CMakeFiles/abl_grid_size.dir/abl_grid_size.cpp.o"
  "CMakeFiles/abl_grid_size.dir/abl_grid_size.cpp.o.d"
  "abl_grid_size"
  "abl_grid_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grid_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
