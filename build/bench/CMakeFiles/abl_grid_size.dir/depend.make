# Empty dependencies file for abl_grid_size.
# This may be replaced when dependencies are built.
