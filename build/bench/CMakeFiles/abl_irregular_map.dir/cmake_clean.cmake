file(REMOVE_RECURSE
  "CMakeFiles/abl_irregular_map.dir/abl_irregular_map.cpp.o"
  "CMakeFiles/abl_irregular_map.dir/abl_irregular_map.cpp.o.d"
  "abl_irregular_map"
  "abl_irregular_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_irregular_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
