# Empty dependencies file for abl_irregular_map.
# This may be replaced when dependencies are built.
