file(REMOVE_RECURSE
  "CMakeFiles/fig32_update_overhead.dir/fig32_update_overhead.cpp.o"
  "CMakeFiles/fig32_update_overhead.dir/fig32_update_overhead.cpp.o.d"
  "fig32_update_overhead"
  "fig32_update_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig32_update_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
