# Empty compiler generated dependencies file for fig32_update_overhead.
# This may be replaced when dependencies are built.
