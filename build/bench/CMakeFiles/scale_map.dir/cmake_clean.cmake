file(REMOVE_RECURSE
  "CMakeFiles/scale_map.dir/scale_map.cpp.o"
  "CMakeFiles/scale_map.dir/scale_map.cpp.o.d"
  "scale_map"
  "scale_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
