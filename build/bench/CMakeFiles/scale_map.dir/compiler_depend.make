# Empty compiler generated dependencies file for scale_map.
# This may be replaced when dependencies are built.
