file(REMOVE_RECURSE
  "CMakeFiles/abl_update_rules.dir/abl_update_rules.cpp.o"
  "CMakeFiles/abl_update_rules.dir/abl_update_rules.cpp.o.d"
  "abl_update_rules"
  "abl_update_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_update_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
