# Empty compiler generated dependencies file for abl_update_rules.
# This may be replaced when dependencies are built.
