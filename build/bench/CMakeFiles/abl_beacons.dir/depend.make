# Empty dependencies file for abl_beacons.
# This may be replaced when dependencies are built.
