file(REMOVE_RECURSE
  "CMakeFiles/abl_beacons.dir/abl_beacons.cpp.o"
  "CMakeFiles/abl_beacons.dir/abl_beacons.cpp.o.d"
  "abl_beacons"
  "abl_beacons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_beacons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
