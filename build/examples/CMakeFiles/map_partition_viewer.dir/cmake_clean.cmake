file(REMOVE_RECURSE
  "CMakeFiles/map_partition_viewer.dir/map_partition_viewer.cpp.o"
  "CMakeFiles/map_partition_viewer.dir/map_partition_viewer.cpp.o.d"
  "map_partition_viewer"
  "map_partition_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_partition_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
