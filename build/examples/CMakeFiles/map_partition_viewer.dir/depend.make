# Empty dependencies file for map_partition_viewer.
# This may be replaced when dependencies are built.
