file(REMOVE_RECURSE
  "CMakeFiles/fleet_tracking.dir/fleet_tracking.cpp.o"
  "CMakeFiles/fleet_tracking.dir/fleet_tracking.cpp.o.d"
  "fleet_tracking"
  "fleet_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
