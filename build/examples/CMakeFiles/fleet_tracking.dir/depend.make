# Empty dependencies file for fleet_tracking.
# This may be replaced when dependencies are built.
