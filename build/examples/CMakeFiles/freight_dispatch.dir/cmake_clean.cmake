file(REMOVE_RECURSE
  "CMakeFiles/freight_dispatch.dir/freight_dispatch.cpp.o"
  "CMakeFiles/freight_dispatch.dir/freight_dispatch.cpp.o.d"
  "freight_dispatch"
  "freight_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freight_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
