# Empty dependencies file for freight_dispatch.
# This may be replaced when dependencies are built.
