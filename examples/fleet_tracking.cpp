// Fleet tracking: the paper's motivating scenario ("a vehicle fleet must
// keep following in the same region... to reduce unnecessary redundant
// traffic path and waiting time").
//
// A dispatcher vehicle locates every member of its fleet once per reporting
// round. The example prints, per round, how many members were found, how
// fast, and what the lookups cost — and repeats the exercise under RLSMP so
// the operational difference is visible.
//
//   $ ./fleet_tracking [fleet_size] [rounds] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/scenario.h"
#include "harness/world.h"

namespace {

using namespace hlsrg;

struct RoundReport {
  int found = 0;
  int missed = 0;
  double mean_latency_ms = 0.0;
  std::uint64_t tx_cost = 0;
};

void run_protocol(Protocol protocol, int fleet_size, int rounds,
                  std::uint64_t seed) {
  ScenarioConfig cfg = paper_scenario(500, seed);
  cfg.source_fraction = 0.0;  // the fleet workload below replaces it
  World world(cfg, protocol);

  // Fleet: dispatcher is vehicle 0, members are 1..fleet_size.
  const VehicleId dispatcher{std::uint32_t{0}};
  std::vector<VehicleId> fleet;
  for (int i = 1; i <= fleet_size; ++i) {
    fleet.push_back(VehicleId{static_cast<std::uint32_t>(i)});
  }

  std::printf("%s fleet tracking: dispatcher + %d members, %d rounds\n",
              world.service().name(), fleet_size, rounds);
  std::printf("  %-6s %-8s %-8s %-14s %-10s\n", "round", "found", "missed",
              "mean ms", "tx cost");

  SimTime t = cfg.warmup;
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t tx_before =
        world.metrics().query_transmissions + world.metrics().wired_messages;
    std::vector<QueryTracker::QueryId> ids;
    world.run_until(t);
    for (VehicleId member : fleet) {
      ids.push_back(world.service().issue_query(dispatcher, member));
    }
    // Give the round time to settle (covers the 5 s retry + slack).
    t += SimTime::from_sec(20.0);
    world.run_until(t);

    RoundReport rep;
    double latency_sum = 0.0;
    for (QueryTracker::QueryId id : ids) {
      if (world.service().tracker().succeeded(id)) {
        ++rep.found;
        latency_sum += world.service().tracker().latency(id).ms();
      } else {
        ++rep.missed;
      }
    }
    rep.mean_latency_ms = rep.found > 0 ? latency_sum / rep.found : 0.0;
    rep.tx_cost = world.metrics().query_transmissions +
                  world.metrics().wired_messages - tx_before;
    std::printf("  %-6d %-8d %-8d %-14.1f %-10llu\n", round + 1, rep.found,
                rep.missed, rep.mean_latency_ms,
                static_cast<unsigned long long>(rep.tx_cost));
  }
  const RunMetrics& m = world.metrics();
  std::printf("  total: %llu/%llu located (%.1f%%)\n\n",
              static_cast<unsigned long long>(m.queries_succeeded),
              static_cast<unsigned long long>(m.queries_issued),
              100.0 * m.success_rate());
}

}  // namespace

int main(int argc, char** argv) {
  const int fleet_size = argc > 1 ? std::atoi(argv[1]) : 12;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;
  run_protocol(hlsrg::Protocol::kHlsrg, fleet_size, rounds, seed);
  run_protocol(hlsrg::Protocol::kRlsmp, fleet_size, rounds, seed);
  return 0;
}
