// Scenario CLI: a flag-driven simulation driver (the "ns-2 command line" of
// this repository). Runs one scenario under any protocol and prints the full
// metric set; optionally writes a per-event CSV trace and/or a JSON run
// report (the same RunReport the benches embed — see docs/PROTOCOL.md).
//
//   $ ./scenario_cli --protocol hlsrg --vehicles 500 --size 2000 --seed 42
//   $ ./scenario_cli --workload poisson --no-rsus --trace out.csv
//   $ ./scenario_cli --map data/demo_irregular_2km.map --irregular
//   $ ./scenario_cli --replicas 8 --threads 4 --out run.json
//   $ ./scenario_cli --trace-out=trace.json     # open in Perfetto
//   $ ./scenario_cli --obs-out=obs.json         # region observatory document
#include <cstdio>
#include <fstream>
#include <string>

#include "harness/digest.h"
#include "harness/runner.h"
#include "obs/profiler.h"
#include "obs/region_telemetry.h"
#include "harness/scenario.h"
#include "harness/world.h"
#include "report/run_report.h"
#include "roadnet/map_io.h"
#include "trace/chrome_trace.h"
#include "trace/metrics.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace hlsrg;

  ScenarioConfig cfg = paper_scenario(500, 1);
  std::string protocol_str = "hlsrg";
  std::string workload_str = "oneshot";
  double warmup = cfg.warmup.sec();
  double window = cfg.query_window.sec();
  double grace = cfg.grace.sec();
  bool no_rsus = false;
  bool irregular = false;
  int replicas = 1;
  int threads = 0;
  std::string trace_path;
  std::string trace_out_path;
  std::string spans_path;
  int trace_cap = 0;
  std::string save_map_path;
  std::string out_path;
  std::string obs_out_path;
  std::string fault_plan_path;
  std::uint64_t fault_seed = 0;

  ArgParser args("runs one scenario under any protocol and prints metrics");
  args.add_choice("--protocol", "protocol under test", {"hlsrg", "rlsmp", "flood"},
                  &protocol_str);
  args.add_int("--vehicles", "N", "vehicle count", &cfg.vehicles);
  args.add_double("--size", "M", "map edge in metres", &cfg.map.size_m);
  args.add_uint64("--seed", "S", "master seed", &cfg.seed);
  args.add_int("--replicas", "N", "independent replicas (seeds S, S+1, ...)",
               &replicas);
  args.add_int("--threads", "T", "replica threads (0 = auto)", &threads);
  args.add_double("--warmup", "S", "warmup seconds", &warmup);
  args.add_double("--window", "S", "query-window seconds", &window);
  args.add_double("--grace", "S", "grace seconds", &grace);
  args.add_choice("--workload", "query workload", {"oneshot", "poisson", "hotspot"},
                  &workload_str);
  args.add_flag("--no-rsus", "HLSRG without infrastructure", &no_rsus);
  args.add_flag("--irregular", "jittered map with normal-road dropout",
                &irregular);
  args.add_string("--map", "FILE", "load the road network from FILE",
                  &cfg.map_file);
  args.add_string("--save-map", "FILE", "write the generated map to FILE",
                  &save_map_path);
  args.add_string("--trace", "FILE", "write per-event CSV trace (1 replica)",
                  &trace_path);
  args.add_string("--trace-out", "FILE",
                  "write Chrome-trace JSON spans (1 replica; Perfetto-ready)",
                  &trace_out_path);
  args.add_string("--spans", "FILE", "write the span-tree text dump (1 replica)",
                  &spans_path);
  args.add_int("--trace-cap", "N", "cap trace events/spans at N (0 = default)",
               &trace_cap);
  args.add_string("--out", "FILE", "write a JSON run report to FILE",
                  &out_path);
  args.add_flag("--profile",
                "wall-clock phase profiler (digest-neutral; adds a profile "
                "blob to --out and a flame track to --trace-out)",
                &cfg.profile);
  args.add_string("--obs-out", "FILE",
                  "write the region observatory JSON (telemetry + traffic "
                  "matrix + profile; implies --profile)",
                  &obs_out_path);
  args.add_string("--fault-plan", "FILE",
                  "run under a scripted fault plan (JSON, PROTOCOL.md §7)",
                  &fault_plan_path);
  args.add_uint64("--fault-seed", "S",
                  "pin the fault RNG stream (0 = derive from --seed)",
                  &fault_seed);
  double parked_fraction = cfg.mobility.parked_fraction;
  double park_rate = 0.0;
  double dwell_mean = cfg.mobility.churn.dwell_mean_sec;
  bool parked_hosting = false;
  bool no_handoff = false;
  args.add_double("--parked-fraction", "F",
                  "fraction of vehicles that start parked",
                  &parked_fraction);
  args.add_double("--park-rate", "R",
                  "parking-churn hazard per second (>0 enables the parking "
                  "lifecycle: moving vehicles pull over, dwell, depart)",
                  &park_rate);
  args.add_double("--dwell-mean", "S", "mean parked dwell in seconds",
                  &dwell_mean);
  args.add_flag("--parked-hosting",
                "host L2/L3 roles on the nearest parked vehicles instead of "
                "fixed RSUs (HLSRG only)",
                &parked_hosting);
  args.add_flag("--no-handoff",
                "disable the role table-handoff protocol (churn control: "
                "successors rebuild from beacons only)",
                &no_handoff);
  args.add_flag("--service-tier",
                "enable the heavy-traffic service tier (src/service)",
                &cfg.service.enabled);
  args.add_double("--open-loop-rate", "R",
                  "open-loop Poisson arrivals per second (needs --service-tier)",
                  &cfg.service.open_loop_rate_per_sec);
  args.add_double("--open-loop-ramp", "R",
                  "open-loop rate ramp in arrivals/s^2",
                  &cfg.service.open_loop_ramp_per_sec2);
  int max_outstanding = static_cast<int>(cfg.service.max_outstanding);
  args.add_int("--max-outstanding", "N",
               "shed queries above N outstanding (0 = never shed)",
               &max_outstanding);
  args.add_flag("--batching", "batch co-destined queries at L2/L3 RSUs",
                &cfg.service.batching);
  args.add_flag("--caching", "hot-destination location cache at RSUs",
                &cfg.service.caching);
  if (!args.parse(argc, argv)) return args.exit_code();
  cfg.service.max_outstanding =
      static_cast<std::size_t>(std::max(0, max_outstanding));

  Protocol protocol = Protocol::kHlsrg;
  if (protocol_str == "rlsmp") protocol = Protocol::kRlsmp;
  if (protocol_str == "flood") protocol = Protocol::kFlood;
  cfg.workload = ScenarioConfig::WorkloadKind::kOneShot;
  if (workload_str == "poisson") {
    cfg.workload = ScenarioConfig::WorkloadKind::kPoisson;
  } else if (workload_str == "hotspot") {
    cfg.workload = ScenarioConfig::WorkloadKind::kHotspot;
  }
  cfg.warmup = SimTime::from_sec(warmup);
  cfg.query_window = SimTime::from_sec(window);
  cfg.grace = SimTime::from_sec(grace);
  if (no_rsus) cfg.hlsrg.use_rsus = false;
  if (irregular) cfg.map.irregular = true;
  cfg.fault_plan_file = fault_plan_path;
  cfg.fault_seed = fault_seed;
  cfg.mobility.parked_fraction = parked_fraction;
  cfg.mobility.churn.dwell_mean_sec = dwell_mean;
  if (park_rate > 0.0) {
    cfg.mobility.churn.enabled = true;
    cfg.mobility.churn.park_rate_per_sec = park_rate;
  }
  cfg.hlsrg.parked_rsu_hosting = parked_hosting;
  if (no_handoff) cfg.hlsrg.enable_handoff = false;
  replicas = std::max(1, replicas);
  if (!obs_out_path.empty()) cfg.profile = true;
  const bool tracing =
      !trace_path.empty() || !trace_out_path.empty() || !spans_path.empty();
  if (trace_cap > 0 && !tracing) {
    // Fail fast instead of silently ignoring the cap: without a trace sink
    // the TraceLog is never attached, so the flag would do nothing.
    std::fprintf(stderr,
                 "--trace-cap has no effect without a trace output; add "
                 "--trace, --trace-out, or --spans\n");
    return 1;
  }
  if (fault_seed != 0 && fault_plan_path.empty()) {
    // Same fail-fast contract as --trace-cap: without a plan no injector is
    // built, so the pinned fault stream would be silently ignored.
    std::fprintf(stderr,
                 "--fault-seed has no effect without --fault-plan\n");
    return 1;
  }
  if (replicas > 1 && (tracing || !save_map_path.empty())) {
    std::fprintf(stderr,
                 "--trace/--trace-out/--spans/--save-map need --replicas 1\n");
    return 1;
  }

  RunMetrics metrics;
  EngineStats engine;
  std::vector<EngineStats> replica_engine;
  std::vector<std::uint64_t> digests;
  MetricsRegistry observability;
  RegionTelemetry regions;
  PhaseProfiler profile;
  const char* service_name = protocol_name(protocol);

  if (replicas == 1) {
    const double start = monotonic_now_sec();
    const double build_begin = 0.0;
    World world(cfg, protocol);
    const double build_end = monotonic_now_sec() - start;
    if (!save_map_path.empty()) {
      std::string error;
      if (!save_map_file(world.network(), save_map_path, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::printf("map:        wrote %s\n", save_map_path.c_str());
    }
    TraceLog trace;
    if (trace_cap > 0) {
      trace.set_capacity(static_cast<std::size_t>(trace_cap),
                         static_cast<std::size_t>(trace_cap));
    }
    if (tracing) world.attach_trace(&trace);

    metrics = world.run();
    const double run_end = monotonic_now_sec() - start;
    engine = world.sim().engine_stats();
    engine.wall_clock_sec = run_end;
    // Process peak at sample time — with one replica this IS the run's peak
    // (the multi-replica path had stamped fleet-wide peaks per replica; see
    // run_replicas). The single-replica path used to leave it zero.
    engine.peak_rss_bytes = process_peak_rss_bytes();
    engine.table_bytes = world.service().service_stats().table_bytes;
    digests.push_back(state_digest(world));
    replica_engine.push_back(engine);
    service_name = world.service().name();
    observability = world.sim().observability();
    regions = world.regions();
    if (world.profiler() != nullptr) profile = *world.profiler();

    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
      file << trace.to_csv();
      std::printf("trace:      %zu events -> %s\n", trace.size(),
                  trace_path.c_str());
    }
    if (!trace_out_path.empty()) {
      const std::vector<WallSpan> wall = {
          WallSpan{"build", 0, build_begin, build_end},
          WallSpan{"run", 0, build_end, run_end},
      };
      std::string error;
      if (!write_chrome_trace(trace, wall, trace_out_path, &error,
                              profile.empty() ? nullptr : &profile)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::printf("trace-out:  %zu spans -> %s\n", trace.span_count(),
                  trace_out_path.c_str());
    }
    if (!spans_path.empty()) {
      std::ofstream file(spans_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", spans_path.c_str());
        return 1;
      }
      file << trace.span_tree_text();
      std::printf("spans:      %zu spans -> %s\n", trace.span_count(),
                  spans_path.c_str());
    }
    if (engine.trace_events_dropped + engine.trace_spans_dropped > 0) {
      std::fprintf(stderr,
                   "warning: trace capacity hit (%llu events, %llu spans "
                   "dropped); raise --trace-cap\n",
                   static_cast<unsigned long long>(engine.trace_events_dropped),
                   static_cast<unsigned long long>(engine.trace_spans_dropped));
    }
  } else {
    const ReplicaSet set = run_replicas(cfg, protocol, replicas,
                                        static_cast<std::size_t>(threads));
    metrics = set.merged;
    engine = set.engine_total;
    engine.peak_rss_bytes = set.peak_rss_bytes;
    replica_engine = set.engine;
    digests = set.digests;
    observability = set.observability;
    regions = set.regions;
    profile = set.profile;
  }

  const RunMetrics& m = metrics;
  std::printf("protocol:   %s\n", service_name);
  std::printf("scenario:   %d vehicles, %.0f m map, seed %llu, %s%s, "
              "%d replica%s\n",
              cfg.vehicles, cfg.map.size_m,
              static_cast<unsigned long long>(cfg.seed),
              cfg.map.irregular ? "irregular, " : "",
              cfg.hlsrg.use_rsus ? "RSUs on" : "RSUs off", replicas,
              replicas == 1 ? "" : "s");
  std::printf("updates:    %llu originated, %llu transmissions\n",
              static_cast<unsigned long long>(m.update_packets_originated),
              static_cast<unsigned long long>(m.update_transmissions));
  std::printf("collection: %llu packets, %llu transmissions\n",
              static_cast<unsigned long long>(m.aggregation_packets),
              static_cast<unsigned long long>(m.aggregation_transmissions));
  std::printf("queries:    %llu issued, %llu ok, %llu failed (%.1f%%)\n",
              static_cast<unsigned long long>(m.queries_issued),
              static_cast<unsigned long long>(m.queries_succeeded),
              static_cast<unsigned long long>(m.queries_failed),
              100.0 * m.success_rate());
  std::printf("query cost: %llu radio tx + %llu wired msgs\n",
              static_cast<unsigned long long>(m.query_transmissions),
              static_cast<unsigned long long>(m.wired_messages));
  std::printf("delay:      mean %.1f ms  p50 %.1f  p95 %.1f  max %.1f\n",
              m.query_latency.mean_ms(), m.query_latency.p50_ms(),
              m.query_latency.p95_ms(), m.query_latency.max_ms());
  std::printf("radio:      %llu broadcasts, %llu unicasts, %llu drops, "
              "%llu route failures\n",
              static_cast<unsigned long long>(m.radio_broadcasts),
              static_cast<unsigned long long>(m.radio_unicasts),
              static_cast<unsigned long long>(m.radio_drops),
              static_cast<unsigned long long>(m.gpsr_failures));
  if (m.fault_plan_digest != 0) {
    std::printf("faults:     availability %.1f%% (%llu/%llu in-window), "
                "recovery %.1f ms, %llu stranded\n",
                100.0 * m.availability(),
                static_cast<unsigned long long>(m.fault_queries_ok),
                static_cast<unsigned long long>(m.fault_queries_issued),
                m.recovery_ms(),
                static_cast<unsigned long long>(m.queries_stranded));
    std::printf("resilience: %llu retries, %llu failovers, %llu wired drops, "
                "%llu suppressed at down RSUs\n",
                static_cast<unsigned long long>(m.query_retries),
                static_cast<unsigned long long>(m.query_failovers),
                static_cast<unsigned long long>(m.wired_drops),
                static_cast<unsigned long long>(m.rsu_suppressed));
  }
  if (cfg.service.enabled) {
    std::printf("service:    %llu offered, %llu shed (+%llu retry sheds), "
                "served %.1f%%, peak %llu outstanding\n",
                static_cast<unsigned long long>(m.queries_offered),
                static_cast<unsigned long long>(m.queries_shed),
                static_cast<unsigned long long>(m.retries_shed),
                100.0 * m.served_rate(),
                static_cast<unsigned long long>(m.peak_outstanding));
    std::printf("tier:       %llu cache hits / %llu misses, %llu invalidations; "
                "%llu queries in %llu batch flushes\n",
                static_cast<unsigned long long>(m.cache_hits),
                static_cast<unsigned long long>(m.cache_misses),
                static_cast<unsigned long long>(m.cache_invalidations),
                static_cast<unsigned long long>(m.batched_queries),
                static_cast<unsigned long long>(m.batch_flushes));
  }
  std::printf("engine:     %llu events, peak queue %llu, %.2f s wall, "
              "%.0f events/s\n",
              static_cast<unsigned long long>(engine.events_processed),
              static_cast<unsigned long long>(engine.peak_queue_depth),
              engine.wall_clock_sec, engine.events_per_sec());
  std::printf("memory:     peak RSS %.1f MB, tables %.2f MB\n",
              static_cast<double>(engine.peak_rss_bytes) / 1e6,
              static_cast<double>(engine.table_bytes) / 1e6);
  for (std::size_t i = 0; i < digests.size(); ++i) {
    std::printf("digest:     replica %zu = %016llx\n", i,
                static_cast<unsigned long long>(digests[i]));
  }
  if (regions.configured()) {
    const RegionTelemetry::Imbalance imb = regions.load_imbalance();
    std::printf("regions:    %dx%d L3, load max/mean %.2f, cv %.2f\n",
                regions.cols(), regions.rows(), imb.max_over_mean, imb.cv);
  }

  if (!obs_out_path.empty()) {
    std::string error;
    if (!write_json_file(
            obs_document(regions, profile.empty() ? nullptr : &profile),
            obs_out_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("obs:        %s\n", obs_out_path.c_str());
  }

  if (!out_path.empty()) {
    RunReport report = make_run_report(protocol, cfg, metrics, engine);
    report.observability = registry_to_json(observability);
    if (!profile.empty()) report.profile = profile.to_json();
    JsonValue doc = report.to_json();
    doc.set("schema", "hlsrg-run/v1");
    doc.set("replicas", replicas);
    doc.set("derived",
            derived_metrics_json(metrics, cfg.service.enabled,
                                 static_cast<std::size_t>(replicas)));
    JsonValue per_replica = JsonValue::array();
    for (const EngineStats& e : replica_engine) {
      per_replica.push_back(engine_to_json(e));
    }
    doc.set("replica_engine", std::move(per_replica));
    // Per-replica end-state digests (hex), for re-baselining documentation:
    // a code change that intends to shift digests records old/new from here.
    JsonValue digest_array = JsonValue::array();
    for (std::uint64_t d : digests) {
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(d));
      digest_array.push_back(JsonValue{std::string(hex)});
    }
    doc.set("digests", std::move(digest_array));
    std::string error;
    if (!write_json_file(doc, out_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("report:     %s\n", out_path.c_str());
  }
  return 0;
}
