// Scenario CLI: a flag-driven simulation driver (the "ns-2 command line" of
// this repository). Runs one scenario under any protocol and prints the full
// metric set; optionally writes a per-event CSV trace.
//
//   $ ./scenario_cli --protocol hlsrg --vehicles 500 --size 2000 --seed 42
//   $ ./scenario_cli --workload poisson --no-rsus --trace out.csv
//   $ ./scenario_cli --map data/demo_irregular_2km.map --irregular
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/scenario.h"
#include "harness/world.h"
#include "roadnet/map_io.h"

namespace {

using namespace hlsrg;

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --protocol hlsrg|rlsmp|flood   protocol under test (default hlsrg)\n"
      "  --vehicles N                   vehicle count (default 500)\n"
      "  --size M                       map edge in metres (default 2000)\n"
      "  --seed S                       master seed (default 1)\n"
      "  --warmup S / --window S / --grace S   phase durations in seconds\n"
      "  --workload oneshot|poisson|hotspot    query workload (default oneshot)\n"
      "  --no-rsus                      HLSRG without infrastructure\n"
      "  --irregular                    jittered map with normal-road dropout\n"
      "  --map FILE                     load the road network from FILE\n"
      "  --save-map FILE                write the generated map to FILE\n"
      "  --trace FILE                   write per-event CSV trace\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  Protocol protocol = Protocol::kHlsrg;
  ScenarioConfig cfg = paper_scenario(500, 1);
  const char* trace_path = nullptr;
  const char* save_map_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--protocol") == 0) {
      const std::string v = need_value("--protocol");
      if (v == "hlsrg") {
        protocol = Protocol::kHlsrg;
      } else if (v == "rlsmp") {
        protocol = Protocol::kRlsmp;
      } else if (v == "flood") {
        protocol = Protocol::kFlood;
      } else {
        std::fprintf(stderr, "unknown protocol '%s'\n", v.c_str());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--vehicles") == 0) {
      cfg.vehicles = std::atoi(need_value("--vehicles"));
    } else if (std::strcmp(argv[i], "--size") == 0) {
      cfg.map.size_m = std::atof(need_value("--size"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      cfg.warmup = SimTime::from_sec(std::atof(need_value("--warmup")));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      cfg.query_window = SimTime::from_sec(std::atof(need_value("--window")));
    } else if (std::strcmp(argv[i], "--grace") == 0) {
      cfg.grace = SimTime::from_sec(std::atof(need_value("--grace")));
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      const std::string v = need_value("--workload");
      if (v == "oneshot") {
        cfg.workload = ScenarioConfig::WorkloadKind::kOneShot;
      } else if (v == "poisson") {
        cfg.workload = ScenarioConfig::WorkloadKind::kPoisson;
      } else if (v == "hotspot") {
        cfg.workload = ScenarioConfig::WorkloadKind::kHotspot;
      } else {
        std::fprintf(stderr, "unknown workload '%s'\n", v.c_str());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--no-rsus") == 0) {
      cfg.hlsrg.use_rsus = false;
    } else if (std::strcmp(argv[i], "--irregular") == 0) {
      cfg.map.irregular = true;
    } else if (std::strcmp(argv[i], "--map") == 0) {
      cfg.map_file = need_value("--map");
    } else if (std::strcmp(argv[i], "--save-map") == 0) {
      save_map_path = need_value("--save-map");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = need_value("--trace");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage(argv[0]);
      return 1;
    }
  }

  World world(cfg, protocol);
  if (save_map_path != nullptr) {
    std::string error;
    if (!save_map_file(world.network(), save_map_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("map:        wrote %s\n", save_map_path);
  }
  TraceLog trace;
  if (trace_path != nullptr) world.attach_trace(&trace);

  const RunMetrics& m = world.run();

  std::printf("protocol:   %s\n", world.service().name());
  std::printf("scenario:   %d vehicles, %.0f m map, seed %llu, %s%s\n",
              cfg.vehicles, cfg.map.size_m,
              static_cast<unsigned long long>(cfg.seed),
              cfg.map.irregular ? "irregular, " : "",
              cfg.hlsrg.use_rsus ? "RSUs on" : "RSUs off");
  std::printf("updates:    %llu originated, %llu transmissions\n",
              static_cast<unsigned long long>(m.update_packets_originated),
              static_cast<unsigned long long>(m.update_transmissions));
  std::printf("collection: %llu packets, %llu transmissions\n",
              static_cast<unsigned long long>(m.aggregation_packets),
              static_cast<unsigned long long>(m.aggregation_transmissions));
  std::printf("queries:    %llu issued, %llu ok, %llu failed (%.1f%%)\n",
              static_cast<unsigned long long>(m.queries_issued),
              static_cast<unsigned long long>(m.queries_succeeded),
              static_cast<unsigned long long>(m.queries_failed),
              100.0 * m.success_rate());
  std::printf("query cost: %llu radio tx + %llu wired msgs\n",
              static_cast<unsigned long long>(m.query_transmissions),
              static_cast<unsigned long long>(m.wired_messages));
  std::printf("delay:      mean %.1f ms  p50 %.1f  p95 %.1f  max %.1f\n",
              m.query_latency.mean_ms(), m.query_latency.p50_ms(),
              m.query_latency.p95_ms(), m.query_latency.max_ms());
  std::printf("radio:      %llu broadcasts, %llu unicasts, %llu drops, "
              "%llu route failures\n",
              static_cast<unsigned long long>(m.radio_broadcasts),
              static_cast<unsigned long long>(m.radio_unicasts),
              static_cast<unsigned long long>(m.radio_drops),
              static_cast<unsigned long long>(m.gpsr_failures));

  if (trace_path != nullptr) {
    std::ofstream file(trace_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    file << trace.to_csv();
    std::printf("trace:      %zu events -> %s\n", trace.size(), trace_path);
  }
  return 0;
}
