// Quickstart: build the paper's 2 km evaluation world, run HLSRG and the
// RLSMP baseline on identical traffic, and print what happened.
//
//   $ ./quickstart [vehicles] [seed]
//
// This is the five-minute tour of the public API: ScenarioConfig -> World ->
// run() -> RunMetrics.
#include <cstdio>
#include <cstdlib>

#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/world.h"

int main(int argc, char** argv) {
  using namespace hlsrg;

  const int vehicles = argc > 1 ? std::atoi(argv[1]) : 300;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  ScenarioConfig cfg = paper_scenario(vehicles, seed);

  std::printf("HLSRG quickstart: %d vehicles on a %.0f m map, seed %llu\n",
              cfg.vehicles, cfg.map.size_m,
              static_cast<unsigned long long>(seed));

  for (Protocol protocol : {Protocol::kHlsrg, Protocol::kRlsmp}) {
    World world(cfg, protocol);
    if (protocol == Protocol::kHlsrg) {
      const auto& h = world.hierarchy();
      std::printf(
          "  road-adapted partition: %dx%d L1 grids, %dx%d L2, %dx%d L3, "
          "%zu RSUs\n",
          h.cols(GridLevel::kL1), h.rows(GridLevel::kL1),
          h.cols(GridLevel::kL2), h.rows(GridLevel::kL2),
          h.cols(GridLevel::kL3), h.rows(GridLevel::kL3),
          world.rsus() != nullptr ? world.rsus()->count() : 0);
    }
    const RunMetrics& m = world.run();
    std::printf(
        "  %-5s  updates=%llu  queries=%llu ok=%llu fail=%llu  "
        "success=%.1f%%  mean_delay=%.1f ms  query_tx=%llu wired=%llu\n",
        protocol_name(protocol),
        static_cast<unsigned long long>(m.update_packets_originated),
        static_cast<unsigned long long>(m.queries_issued),
        static_cast<unsigned long long>(m.queries_succeeded),
        static_cast<unsigned long long>(m.queries_failed),
        100.0 * m.success_rate(), m.query_latency.mean_ms(),
        static_cast<unsigned long long>(m.query_transmissions),
        static_cast<unsigned long long>(m.wired_messages));
  }
  return 0;
}
