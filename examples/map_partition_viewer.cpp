// Map & partition viewer: dumps the generated road network, the road-adapted
// partition (L1/L2/L3 boundaries), grid centers, RSU sites, and a snapshot
// of vehicle positions as an SVG you can open in any browser.
//
//   $ ./map_partition_viewer out.svg [--size-m 2000] [--irregular] [--seed 7]
#include <cstdio>
#include <fstream>

#include "harness/scenario.h"
#include "harness/visualize.h"
#include "harness/world.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  ScenarioConfig cfg = paper_scenario(300, 7);
  std::string out_path;
  std::uint64_t seed = cfg.seed;
  ArgParser args("renders the map, partition, RSUs, and vehicles as SVG");
  args.add_positional("out.svg", "output SVG path", &out_path);
  args.add_double("--size-m", "M", "map edge length in meters", &cfg.map.size_m);
  args.add_flag("--irregular", "perturb the grid into an irregular map",
                &cfg.map.irregular);
  args.add_uint64("--seed", "N", "scenario seed", &seed);
  if (!args.parse(argc, argv)) return args.exit_code();
  cfg.seed = seed;

  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(30.0));  // let traffic spread out

  VisualizeOptions options;
  options.draw_vehicles = true;
  const std::string svg = render_world_svg(
      world.network(), world.hierarchy(), world.rsus(), &world.mobility(),
      options);

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << svg;

  const auto& h = world.hierarchy();
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("  map: %.0f m %s, %zu intersections, %zu road segments\n",
              cfg.map.size_m, cfg.map.irregular ? "(irregular)" : "(regular)",
              world.network().intersection_count(),
              world.network().segment_count());
  std::printf("  partition: %dx%d L1 / %dx%d L2 / %dx%d L3, %zu RSUs\n",
              h.cols(GridLevel::kL1), h.rows(GridLevel::kL1),
              h.cols(GridLevel::kL2), h.rows(GridLevel::kL2),
              h.cols(GridLevel::kL3), h.rows(GridLevel::kL3),
              world.rsus() != nullptr ? world.rsus()->count() : 0);
  std::printf(
      "  legend: gray=normal roads, black=arteries, yellow/orange/red "
      "dashes=L1/L2/L3 boundaries,\n          blue=grid centers, "
      "orange/red disks=L2/L3 RSUs, green/gray dots=vehicles\n");
  return 0;
}
