// Map & partition viewer: dumps the generated road network, the road-adapted
// partition (L1/L2/L3 boundaries), grid centers, RSU sites, and a snapshot
// of vehicle positions as an SVG you can open in any browser.
//
//   $ ./map_partition_viewer out.svg [size_m] [--irregular] [seed]
#include <cstdio>
#include <cstring>
#include <fstream>

#include "harness/scenario.h"
#include "harness/visualize.h"
#include "harness/world.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s out.svg [size_m] [--irregular] [seed]\n", argv[0]);
    return 1;
  }
  const char* out_path = argv[1];
  ScenarioConfig cfg = paper_scenario(300, 7);
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--irregular") == 0) {
      cfg.map.irregular = true;
    } else if (double v = std::atof(argv[i]); v >= 500.0) {
      cfg.map.size_m = v;
    } else if (int s = std::atoi(argv[i]); s > 0) {
      cfg.seed = static_cast<std::uint64_t>(s);
    }
  }

  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(30.0));  // let traffic spread out

  VisualizeOptions options;
  options.draw_vehicles = true;
  const std::string svg = render_world_svg(
      world.network(), world.hierarchy(), world.rsus(), &world.mobility(),
      options);

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  file << svg;

  const auto& h = world.hierarchy();
  std::printf("wrote %s\n", out_path);
  std::printf("  map: %.0f m %s, %zu intersections, %zu road segments\n",
              cfg.map.size_m, cfg.map.irregular ? "(irregular)" : "(regular)",
              world.network().intersection_count(),
              world.network().segment_count());
  std::printf("  partition: %dx%d L1 / %dx%d L2 / %dx%d L3, %zu RSUs\n",
              h.cols(GridLevel::kL1), h.rows(GridLevel::kL1),
              h.cols(GridLevel::kL2), h.rows(GridLevel::kL2),
              h.cols(GridLevel::kL3), h.rows(GridLevel::kL3),
              world.rsus() != nullptr ? world.rsus()->count() : 0);
  std::printf(
      "  legend: gray=normal roads, black=arteries, yellow/orange/red "
      "dashes=L1/L2/L3 boundaries,\n          blue=grid centers, "
      "orange/red disks=L2/L3 RSUs, green/gray dots=vehicles\n");
  return 0;
}
