// Freight dispatch: the paper's second motivating workload ("the vehicles
// using the same local freight transport system are working together").
//
// Pickup requests arrive over time; each request pairs a random customer
// vehicle with the freight truck, which must first *locate* the customer via
// the location service before it can route to them. The example measures the
// end-to-end dispatch picture: location success, time-to-fix, and how stale
// the answer was (distance between the customer's true position at fix time
// and at request time — the operational cost of staleness).
//
//   $ ./freight_dispatch [requests] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/scenario.h"
#include "harness/world.h"

namespace {

using namespace hlsrg;

void run_protocol(Protocol protocol, int requests, std::uint64_t seed) {
  ScenarioConfig cfg = paper_scenario(500, seed);
  cfg.source_fraction = 0.0;
  World world(cfg, protocol);
  Rng workload(seed * 977 + 1);

  const VehicleId truck{std::uint32_t{0}};

  struct Request {
    QueryTracker::QueryId id;
    VehicleId customer;
    Vec2 customer_pos_at_request;
  };
  std::vector<Request> issued;

  // Requests arrive every 8 s after warmup.
  SimTime t = cfg.warmup;
  for (int i = 0; i < requests; ++i) {
    world.run_until(t);
    const VehicleId customer{static_cast<std::uint32_t>(
        workload.uniform_int(1, cfg.vehicles - 1))};
    issued.push_back({world.service().issue_query(truck, customer), customer,
                      world.mobility().position(customer)});
    t += SimTime::from_sec(8.0);
  }
  world.run_until(t + SimTime::from_sec(30.0));

  int fixed = 0;
  double latency_sum = 0.0, drift_sum = 0.0;
  for (const Request& r : issued) {
    if (!world.service().tracker().succeeded(r.id)) continue;
    ++fixed;
    latency_sum += world.service().tracker().latency(r.id).ms();
    // Customer drift between request and now is bounded by speed x latency;
    // compare request-time and current positions as a staleness proxy.
    drift_sum +=
        distance(r.customer_pos_at_request,
                 world.mobility().position(r.customer));
  }

  std::printf("%s freight dispatch: %d pickup requests\n",
              world.service().name(), requests);
  std::printf("  located:        %d/%d (%.1f%%)\n", fixed, requests,
              100.0 * fixed / requests);
  if (fixed > 0) {
    std::printf("  mean fix time:  %.1f ms\n", latency_sum / fixed);
    std::printf("  mean customer drift since request: %.1f m\n",
                drift_sum / fixed);
  }
  std::printf("  control cost:   %llu radio tx + %llu wired msgs\n\n",
              static_cast<unsigned long long>(
                  world.metrics().query_transmissions),
              static_cast<unsigned long long>(world.metrics().wired_messages));
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 25;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  run_protocol(hlsrg::Protocol::kHlsrg, requests, seed);
  run_protocol(hlsrg::Protocol::kRlsmp, requests, seed);
  return 0;
}
