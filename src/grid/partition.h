// Road-adapted grid partition (paper section 2.1.1).
//
// The partition chooses a set of boundary roads per axis so that grid cells
// are roughly `target_size` on a side, preferring main arteries and falling
// back to ("promoting") normal roads where arteries are too sparse. Because
// boundaries are roads, grid edges never cut through buildings — the property
// the paper credits for better delivery — and vehicles on arteries drive
// *along* boundaries instead of across them, which is what lets HLSRG
// suppress their updates.
#pragma once

#include <vector>

#include "roadnet/road_network.h"

namespace hlsrg {

struct PartitionConfig {
  // Desired L1 grid edge length; the paper uses 500 m = one radio range.
  double target_size = 500.0;
  // A boundary is accepted when its gap from the previous boundary is within
  // [min_frac, max_frac] * target_size. Arteries inside the window win over
  // normal roads; the window keeps grids "about 500 m x 500 m".
  double min_frac = 0.6;
  double max_frac = 1.4;
  // Minimum fraction of the map a road must span to be a boundary candidate.
  double min_span_frac = 0.95;
};

// One selected boundary line.
struct BoundaryLine {
  double coord = 0.0;
  RoadId road;          // invalid for synthesized map-edge boundaries
  bool is_artery = false;
};

// The partition result: boundary lines per axis, sorted ascending. Lines
// always include the map edges, so `x_lines.size() - 1` is the L1 column
// count.
struct Partition {
  std::vector<BoundaryLine> x_lines;  // vertical boundaries (x = coord)
  std::vector<BoundaryLine> y_lines;  // horizontal boundaries (y = coord)

  [[nodiscard]] int cols() const { return static_cast<int>(x_lines.size()) - 1; }
  [[nodiscard]] int rows() const { return static_cast<int>(y_lines.size()) - 1; }

  // True if `road` was selected as a boundary (a "selected main artery" when
  // its class is artery). Vehicles are class 1 only on selected arteries.
  [[nodiscard]] bool is_selected_boundary(RoadId road) const;
};

// Runs the area-partition procedure on `net`.
[[nodiscard]] Partition build_partition(const RoadNetwork& net,
                                        const PartitionConfig& cfg = {});

}  // namespace hlsrg
