#include "grid/partition.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hlsrg {

bool Partition::is_selected_boundary(RoadId road) const {
  if (!road.valid()) return false;
  auto match = [road](const BoundaryLine& l) { return l.road == road; };
  return std::any_of(x_lines.begin(), x_lines.end(), match) ||
         std::any_of(y_lines.begin(), y_lines.end(), match);
}

namespace {

// Greedy single-axis selection (the paper's step 1+2: take main arteries,
// then reject/add roads until grids are ~target sized).
std::vector<BoundaryLine> select_axis(const RoadNetwork& net,
                                      Orientation orient, double axis_lo,
                                      double axis_hi,
                                      const PartitionConfig& cfg) {
  // Candidates: roads of this orientation spanning the map, ascending coord.
  std::vector<BoundaryLine> candidates;
  for (RoadId rid : net.spanning_roads(orient, cfg.min_span_frac)) {
    const Road& r = net.road(rid);
    candidates.push_back(
        {r.coord, rid, r.cls == RoadClass::kMainArtery});
  }

  std::vector<BoundaryLine> chosen;
  // The map edge is always a boundary; if a candidate sits on the edge, use
  // it (it carries a real road id), otherwise synthesize an edge line.
  constexpr double kEdgeTol = 1.0;
  auto edge_line = [&](double coord) {
    for (const BoundaryLine& c : candidates) {
      if (std::abs(c.coord - coord) <= kEdgeTol) return c;
    }
    return BoundaryLine{coord, RoadId{}, false};
  };
  chosen.push_back(edge_line(axis_lo));

  while (chosen.back().coord + cfg.max_frac * cfg.target_size <
         axis_hi - kEdgeTol) {
    const double last = chosen.back().coord;
    const double ideal = last + cfg.target_size;
    const double win_lo = last + cfg.min_frac * cfg.target_size;
    const double win_hi = last + cfg.max_frac * cfg.target_size;

    const BoundaryLine* best = nullptr;
    auto consider = [&](const BoundaryLine& c, bool arteries_only) {
      if (c.coord < win_lo || c.coord > win_hi) return;
      if (arteries_only != c.is_artery) return;
      if (c.coord > axis_hi - kEdgeTol) return;  // reserved for the edge
      if (best == nullptr ||
          std::abs(c.coord - ideal) < std::abs(best->coord - ideal)) {
        best = &c;
      }
    };
    // Arteries first (the paper's priority); normal roads only if none fits.
    for (const BoundaryLine& c : candidates) consider(c, /*arteries_only=*/true);
    if (best == nullptr) {
      for (const BoundaryLine& c : candidates) consider(c, false);
    }
    if (best == nullptr) {
      // No road in the window at all (degenerate map): cut at the ideal
      // coordinate with a synthetic line so the hierarchy stays well formed.
      chosen.push_back({std::min(ideal, axis_hi), RoadId{}, false});
    } else {
      chosen.push_back(*best);
    }
  }
  chosen.push_back(edge_line(axis_hi));

  // Guard the invariants the hierarchy depends on.
  HLSRG_CHECK(chosen.size() >= 2);
  for (std::size_t i = 0; i + 1 < chosen.size(); ++i) {
    HLSRG_CHECK_MSG(chosen[i].coord < chosen[i + 1].coord,
                    "boundary lines must be strictly increasing");
  }
  return chosen;
}

}  // namespace

Partition build_partition(const RoadNetwork& net, const PartitionConfig& cfg) {
  HLSRG_CHECK(cfg.target_size > 0.0);
  HLSRG_CHECK(cfg.min_frac > 0.0 && cfg.min_frac <= 1.0);
  HLSRG_CHECK(cfg.max_frac >= 1.0);
  const Aabb box = net.bounds();
  Partition p;
  p.x_lines = select_axis(net, Orientation::kVertical, box.lo.x, box.hi.x, cfg);
  p.y_lines =
      select_axis(net, Orientation::kHorizontal, box.lo.y, box.hi.y, cfg);
  return p;
}

}  // namespace hlsrg
