#include "grid/hierarchy.h"

#include <algorithm>

#include "util/check.h"

namespace hlsrg {

namespace {

// Index of the half-open interval [lines[i], lines[i+1]) containing v,
// clamped to the valid range.
int interval_index(const std::vector<BoundaryLine>& lines, double v) {
  const int n = static_cast<int>(lines.size()) - 1;
  HLSRG_CHECK(n >= 1);
  auto it = std::upper_bound(
      lines.begin(), lines.end(), v,
      [](double value, const BoundaryLine& l) { return value < l.coord; });
  int idx = static_cast<int>(it - lines.begin()) - 1;
  return std::clamp(idx, 0, n - 1);
}

}  // namespace

GridHierarchy::GridHierarchy(const RoadNetwork& net, Partition partition)
    : partition_(std::move(partition)), net_(&net) {
  l1_cols_ = partition_.cols();
  l1_rows_ = partition_.rows();
  HLSRG_CHECK(l1_cols_ >= 1 && l1_rows_ >= 1);

  for (const auto* lines : {&partition_.x_lines, &partition_.y_lines}) {
    for (const BoundaryLine& l : *lines) {
      if (l.is_artery && l.road.valid()) selected_arteries_.push_back(l.road);
    }
  }
  std::sort(selected_arteries_.begin(), selected_arteries_.end());
  selected_arteries_.erase(
      std::unique(selected_arteries_.begin(), selected_arteries_.end()),
      selected_arteries_.end());

  // Precompute centers. L1: intersection nearest the cell's geometric
  // center. L2/L3: intersection nearest the corner shared by the cell's
  // children (for truncated edge cells, the nearest existing corner).
  l1_centers_.resize(static_cast<std::size_t>(l1_cols_) * l1_rows_);
  for (int row = 0; row < l1_rows_; ++row) {
    for (int col = 0; col < l1_cols_; ++col) {
      const Aabb box = cell_box({col, row}, GridLevel::kL1);
      l1_centers_[static_cast<std::size_t>(row) * l1_cols_ + col] =
          net.nearest_intersection(box.center());
    }
  }
  auto corner_center = [&](GridCoord c, int children_per_axis) {
    // Shared corner: boundary line index children_per_axis*coord + half.
    const int xi = std::min(children_per_axis * c.col + children_per_axis / 2,
                            l1_cols_);
    const int yi = std::min(children_per_axis * c.row + children_per_axis / 2,
                            l1_rows_);
    const Vec2 corner{partition_.x_lines[static_cast<std::size_t>(xi)].coord,
                      partition_.y_lines[static_cast<std::size_t>(yi)].coord};
    return net.nearest_intersection(corner);
  };
  l2_centers_.resize(static_cast<std::size_t>(cols(GridLevel::kL2)) *
                     rows(GridLevel::kL2));
  for (int row = 0; row < rows(GridLevel::kL2); ++row) {
    for (int col = 0; col < cols(GridLevel::kL2); ++col) {
      l2_centers_[static_cast<std::size_t>(row) * cols(GridLevel::kL2) + col] =
          corner_center({col, row}, 2);
    }
  }
  l3_centers_.resize(static_cast<std::size_t>(cols(GridLevel::kL3)) *
                     rows(GridLevel::kL3));
  for (int row = 0; row < rows(GridLevel::kL3); ++row) {
    for (int col = 0; col < cols(GridLevel::kL3); ++col) {
      l3_centers_[static_cast<std::size_t>(row) * cols(GridLevel::kL3) + col] =
          corner_center({col, row}, 4);
    }
  }
}

int GridHierarchy::shrink(int n, GridLevel level) {
  switch (level) {
    case GridLevel::kL1:
      return n;
    case GridLevel::kL2:
      return (n + 1) / 2;
    case GridLevel::kL3:
      return (n + 3) / 4;
  }
  HLSRG_CHECK(false);
  return 0;
}

int GridHierarchy::cols(GridLevel level) const { return shrink(l1_cols_, level); }
int GridHierarchy::rows(GridLevel level) const { return shrink(l1_rows_, level); }

GridCoord GridHierarchy::l1_at(Vec2 p) const {
  return {interval_index(partition_.x_lines, p.x),
          interval_index(partition_.y_lines, p.y)};
}

GridCoord GridHierarchy::coord_at(Vec2 p, GridLevel level) const {
  return parent(l1_at(p), level);
}

GridCoord GridHierarchy::parent(GridCoord l1, GridLevel level) {
  switch (level) {
    case GridLevel::kL1:
      return l1;
    case GridLevel::kL2:
      return {l1.col / 2, l1.row / 2};
    case GridLevel::kL3:
      return {l1.col / 4, l1.row / 4};
  }
  HLSRG_CHECK(false);
  return {};
}

GridId GridHierarchy::id_of(GridCoord c, GridLevel level) const {
  HLSRG_CHECK(c.col >= 0 && c.col < cols(level));
  HLSRG_CHECK(c.row >= 0 && c.row < rows(level));
  return GridId{static_cast<std::uint32_t>(c.row * cols(level) + c.col)};
}

GridCoord GridHierarchy::coord_of(GridId id, GridLevel level) const {
  HLSRG_CHECK(id.valid());
  const int v = static_cast<int>(id.value());
  HLSRG_CHECK(v < cell_count(level));
  return {v % cols(level), v / cols(level)};
}

Aabb GridHierarchy::cell_box(GridCoord c, GridLevel level) const {
  const int step = level == GridLevel::kL1 ? 1 : level == GridLevel::kL2 ? 2 : 4;
  const int x0 = std::min(c.col * step, l1_cols_);
  const int x1 = std::min(x0 + step, l1_cols_);
  const int y0 = std::min(c.row * step, l1_rows_);
  const int y1 = std::min(y0 + step, l1_rows_);
  HLSRG_CHECK(x0 < x1 && y0 < y1);
  return {{partition_.x_lines[static_cast<std::size_t>(x0)].coord,
           partition_.y_lines[static_cast<std::size_t>(y0)].coord},
          {partition_.x_lines[static_cast<std::size_t>(x1)].coord,
           partition_.y_lines[static_cast<std::size_t>(y1)].coord}};
}

IntersectionId GridHierarchy::center(GridCoord c, GridLevel level) const {
  const std::size_t idx =
      static_cast<std::size_t>(c.row) * cols(level) + static_cast<std::size_t>(c.col);
  switch (level) {
    case GridLevel::kL1:
      return l1_centers_[idx];
    case GridLevel::kL2:
      return l2_centers_[idx];
    case GridLevel::kL3:
      return l3_centers_[idx];
  }
  HLSRG_CHECK(false);
  return {};
}

Vec2 GridHierarchy::center_pos(GridCoord c, GridLevel level) const {
  return net_->position(center(c, level));
}

int GridHierarchy::crossing_level(Vec2 before, Vec2 after) const {
  const GridCoord a = l1_at(before);
  const GridCoord b = l1_at(after);
  if (a == b) return 0;
  if (parent(a, GridLevel::kL3) != parent(b, GridLevel::kL3)) return 3;
  if (parent(a, GridLevel::kL2) != parent(b, GridLevel::kL2)) return 2;
  return 1;
}

bool GridHierarchy::on_selected_artery(RoadId road) const {
  return std::binary_search(selected_arteries_.begin(),
                            selected_arteries_.end(), road);
}

}  // namespace hlsrg
