// Three-level grid hierarchy over a road-adapted partition (paper 2.1.2).
//
// Level-1 grids are the partition cells. Four L1 grids (2x2) form an L2 grid
// and four L2 grids form an L3 grid. Each L1 grid's center is the
// intersection nearest its geometric center (vehicles pause there at red
// lights); each L2/L3 center is the intersection shared by its four children
// — an RSU site. Maps whose cell counts are not multiples of 4 get truncated
// edge groups (ceil division), which the paper's figures implicitly assume
// away but real maps need.
#pragma once

#include <vector>

#include "geom/aabb.h"
#include "grid/partition.h"
#include "roadnet/road_network.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Grid coordinate within one level.
struct GridCoord {
  int col = 0;
  int row = 0;
  friend constexpr bool operator==(GridCoord, GridCoord) = default;
};

// Levels are 1-based to match the paper's terminology.
enum class GridLevel : int { kL1 = 1, kL2 = 2, kL3 = 3 };

class GridHierarchy {
 public:
  GridHierarchy(const RoadNetwork& net, Partition partition);

  [[nodiscard]] const Partition& partition() const { return partition_; }

  // --- per-level shape ----------------------------------------------------
  [[nodiscard]] int cols(GridLevel level) const;
  [[nodiscard]] int rows(GridLevel level) const;
  [[nodiscard]] int cell_count(GridLevel level) const {
    return cols(level) * rows(level);
  }

  // --- coordinate mapping -------------------------------------------------
  // L1 coordinate containing p; positions outside the map clamp to the edge
  // cells. Points exactly on a boundary line belong to the cell on the
  // greater side (half-open cells), so adjacent cells tile exactly.
  [[nodiscard]] GridCoord l1_at(Vec2 p) const;
  [[nodiscard]] GridCoord coord_at(Vec2 p, GridLevel level) const;

  // Parent coordinate of an L1 cell at the given level (identity for kL1).
  [[nodiscard]] static GridCoord parent(GridCoord l1, GridLevel level);

  // Dense id within a level: row * cols + col. Ids are only comparable
  // within the same level.
  [[nodiscard]] GridId id_of(GridCoord c, GridLevel level) const;
  [[nodiscard]] GridCoord coord_of(GridId id, GridLevel level) const;

  // --- geometry -----------------------------------------------------------
  [[nodiscard]] Aabb cell_box(GridCoord c, GridLevel level) const;

  // The grid-center intersection for a cell.
  [[nodiscard]] IntersectionId center(GridCoord c, GridLevel level) const;
  [[nodiscard]] Vec2 center_pos(GridCoord c, GridLevel level) const;

  // --- movement events ----------------------------------------------------
  // Highest-level boundary crossed when moving from `before` to `after`:
  // 0 = same L1 cell, otherwise 1..3.
  [[nodiscard]] int crossing_level(Vec2 before, Vec2 after) const;

  // True if `road` is a selected boundary artery — the roads whose vehicles
  // are "class 1" in the update rules.
  [[nodiscard]] bool on_selected_artery(RoadId road) const;

 private:
  [[nodiscard]] static int shrink(int n, GridLevel level);

  Partition partition_;
  int l1_cols_ = 0;
  int l1_rows_ = 0;
  // Precomputed center intersections, dense per level.
  std::vector<IntersectionId> l1_centers_;
  std::vector<IntersectionId> l2_centers_;
  std::vector<IntersectionId> l3_centers_;
  const RoadNetwork* net_;
  // Road ids selected as artery boundaries, sorted for binary search.
  std::vector<RoadId> selected_arteries_;
};

}  // namespace hlsrg
