#include "harness/world.h"

#include <cmath>
#include <vector>

#include "core/churn_manager.h"
#include "roadnet/map_io.h"
#include "util/check.h"

namespace hlsrg {

World::World(const ScenarioConfig& cfg, Protocol protocol)
    : cfg_(cfg), protocol_(protocol), sim_(cfg.seed) {
  // Fault plan first: its protocol overrides must land in cfg_.hlsrg before
  // the service snapshots the config.
  resolve_fault_plan();

  // Map: loaded from file when requested, generated otherwise. The
  // generator's own randomness (irregular variant) keys off the scenario
  // seed so replicas with different seeds get different irregular maps.
  if (!cfg_.map_file.empty()) {
    std::string error;
    net_ = load_map_file(cfg_.map_file, &error);
    HLSRG_CHECK_MSG(net_.intersection_count() > 0, error.c_str());
  } else {
    MapConfig map_cfg = cfg_.map;
    if (map_cfg.irregular) map_cfg.seed = cfg_.seed;
    net_ = build_manhattan_map(map_cfg);
  }

  // Road-adapted partition and hierarchy (used by HLSRG; also handy context
  // for examples even under RLSMP).
  hierarchy_ = std::make_unique<GridHierarchy>(
      net_, build_partition(net_, cfg_.partition));

  // Region telemetry mirrors the L1 boundary lines (and thus the exact L3
  // cell arithmetic) of the partition just built. Always attached: feeding
  // it is counter increments only, so it never perturbs digests.
  {
    const Partition& part = hierarchy_->partition();
    std::vector<double> x_edges;
    std::vector<double> y_edges;
    x_edges.reserve(part.x_lines.size());
    y_edges.reserve(part.y_lines.size());
    for (const BoundaryLine& l : part.x_lines) x_edges.push_back(l.coord);
    for (const BoundaryLine& l : part.y_lines) y_edges.push_back(l.coord);
    regions_ = RegionTelemetry(std::move(x_edges), std::move(y_edges));
  }
  sim_.set_regions(&regions_);
  if (cfg_.profile) {
    profiler_ = std::make_unique<PhaseProfiler>();
    sim_.set_profiler(profiler_.get());
  }

  medium_ = std::make_unique<RadioMedium>(sim_, registry_, cfg_.radio);
  gpsr_ = std::make_unique<GpsrRouter>(*medium_, registry_, cfg_.gpsr);
  GeocastConfig geocast_cfg = cfg_.geocast;
  if (protocol_ == Protocol::kFlood) {
    // The flooding baseline covers the whole map per flood; the default
    // rebroadcast budget is sized for HLSRG/RLSMP's small regions.
    geocast_cfg.max_transmissions =
        std::max(geocast_cfg.max_transmissions, 4 * cfg_.vehicles);
  }
  geocast_ = std::make_unique<GeocastService>(*medium_, registry_, geocast_cfg);
  wired_ = std::make_unique<WiredNetwork>(sim_, registry_, cfg_.wired);

  mobility_ = std::make_unique<MobilityModel>(sim_, net_, cfg_.mobility);
  mobility_->place_random_vehicles(cfg_.vehicles);
  // The pose bridge must be the FIRST movement listener: it pushes mobility
  // poses into the registry's SoA arrays before any protocol listener runs,
  // so agents reading positions mid-callback see exactly what the old
  // pull-through-callback registry returned.
  pose_bridge_.set_mobility(mobility_.get());
  mobility_->add_listener(&pose_bridge_);

  switch (protocol_) {
    case Protocol::kHlsrg: {
      if (cfg_.hlsrg.use_rsus) {
        rsus_ = std::make_unique<RsuGrid>(*hierarchy_, registry_, *wired_);
      }
      service_ = std::make_unique<HlsrgService>(
          sim_, net_, *hierarchy_, *mobility_, registry_, *medium_, *gpsr_,
          *geocast_, *wired_, rsus_.get(), cfg_.hlsrg);
      break;
    }
    case Protocol::kRlsmp: {
      cells_ = std::make_unique<CellGrid>(
          net_.bounds(), cfg_.rlsmp.cell_size_m, cfg_.rlsmp.origin_offset_m,
          cfg_.rlsmp.cluster_dim);
      service_ = std::make_unique<RlsmpService>(sim_, *mobility_, registry_,
                                                *medium_, *gpsr_, *geocast_,
                                                *cells_, cfg_.rlsmp);
      break;
    }
    case Protocol::kFlood: {
      service_ = std::make_unique<FloodService>(sim_, *mobility_, registry_,
                                                *medium_, *gpsr_, *geocast_,
                                                net_.bounds(), cfg_.flood);
      break;
    }
  }

  // Seed the registry's vehicle SoA rows (the service just bound them):
  // initial velocity, parked flag, and L3 region. From here on the pose
  // bridge keeps them current.
  for (int i = 0; i < cfg_.vehicles; ++i) {
    const VehicleId v{static_cast<std::uint32_t>(i)};
    const bool parked = mobility_->parked(v);
    registry_.set_vehicle_parked(v, parked);
    registry_.set_vehicle_velocity(
        v, parked ? Vec2{} : mobility_->heading(v) * mobility_->state(v).speed);
    registry_.set_vehicle_region(v,
                                 regions_.region_of(mobility_->position(v)));
  }

  // Service tier: the admission seam is always built (it is the single
  // query-issuance entry point), but with a disabled tier it neither draws
  // RNG nor schedules events, so seed-level behavior matches older builds.
  service_->configure_tier(cfg_.service);
  admission_ = std::make_unique<QueryAdmission>(sim_, *service_, cfg_.service);
  if (cfg_.service.enabled && (cfg_.service.open_loop_rate_per_sec > 0.0 ||
                               cfg_.service.open_loop_ramp_per_sec2 > 0.0)) {
    open_loop_ = std::make_unique<OpenLoopGenerator>(
        sim_, *admission_, cfg_.service, cfg_.vehicles,
        std::max(1, std::min(cfg_.hotspot_targets, cfg_.vehicles - 1)));
  }

  // Beacon-based neighbor discovery must start after every node (vehicles
  // and RSUs) is registered.
  if (cfg_.beacons.enabled) {
    beacons_ = std::make_unique<BeaconService>(*medium_, registry_,
                                               cfg_.beacons);
    gpsr_->set_beacons(beacons_.get());
  }

  // Fault injection: only a non-empty plan builds an injector (an empty
  // plan must leave the world event-for-event identical to a fault-unaware
  // build — see fault_injector.h).
  if (!cfg_.fault_plan.empty()) {
    fault_ = std::make_unique<FaultInjector>(sim_, cfg_.fault_plan,
                                             wired_.get(), medium_.get(),
                                             rsus_.get());
    if (protocol_ == Protocol::kHlsrg) {
      auto* hlsrg = static_cast<HlsrgService*>(service_.get());
      fault_->set_rsu_hook(
          [hlsrg](RsuId id, bool up) { hlsrg->set_rsu_up(id, up); });
      if (fault_->has_gps_noise()) {
        hlsrg->set_gps_transform(
            [this](Vec2 p) { return fault_->observed_pos(p); });
      }
    }
    // Burst departure (churn windows): each parked vehicle inside the box
    // abruptly departs with probability depart_fraction. Draws come off the
    // injector's fault RNG, vehicles scanned in index order, so the burst
    // never perturbs the mobility stream. Protocol-agnostic — HLSRG reacts
    // through its MovementListener.
    fault_->set_churn_hook([this](const FaultWindow& w, Rng& rng) {
      // Candidate scan off the registry's SoA arrays (flag + position reads,
      // no mobility geometry) — in sync because window edges fire between
      // mobility ticks.
      for (std::size_t i = 0; i < registry_.vehicle_count(); ++i) {
        const VehicleId v{i};
        if (!registry_.vehicle_parked(v)) continue;
        if (w.has_box && !w.box.contains(registry_.vehicle_position(v))) {
          continue;
        }
        if (!rng.chance(w.depart_fraction)) continue;
        mobility_->force_depart(v);
      }
    });
    fault_->arm(cfg_.end_time());
    sim_.metrics().fault_plan_digest = cfg_.fault_plan.digest();
  }

  mobility_->start();
  schedule_workload();
  if (open_loop_ != nullptr) {
    open_loop_->start(cfg_.warmup, cfg_.warmup + cfg_.query_window);
  }
  if (cfg_.sample_interval > SimTime{}) schedule_sampler();

#ifdef HLSRG_AUDIT_ENABLED
  // HLSRG_AUDIT=ON: enforce every invariant periodically during the run so a
  // corruption aborts at the audit tick where it first becomes visible.
  auditors_.attach_periodic(sim_, audit_scope(), SimTime::from_sec(10.0),
                            cfg_.end_time());
#endif
}

AuditScope World::audit_scope() {
  AuditScope scope;
  scope.sim = &sim_;
  scope.net = &net_;
  scope.hierarchy = hierarchy_.get();
  scope.mobility = mobility_.get();
  scope.service = service_.get();
  if (protocol_ == Protocol::kHlsrg) {
    scope.hlsrg = static_cast<const HlsrgService*>(service_.get());
  }
  return scope;
}

void World::schedule_workload() {
  const int n = cfg_.vehicles;
  if (n < 2) return;
  Rng& rng = sim_.workload_rng();

  if (cfg_.workload != ScenarioConfig::WorkloadKind::kOneShot) {
    // Poisson arrivals across the query window; hotspot skews destinations
    // toward a small popular set.
    const bool hotspot =
        cfg_.workload == ScenarioConfig::WorkloadKind::kHotspot;
    const int hot = std::max(1, std::min(cfg_.hotspot_targets, n - 1));
    double t = cfg_.warmup.sec();
    const double end = (cfg_.warmup + cfg_.query_window).sec();
    while (true) {
      // Exponential inter-arrival via inverse transform.
      t += -std::log(1.0 - rng.uniform()) / cfg_.poisson_rate_per_sec;
      if (t >= end) break;
      const VehicleId src{
          static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
      VehicleId dst;
      do {
        dst = hotspot ? VehicleId{static_cast<std::uint32_t>(
                            rng.uniform_int(0, hot - 1))}
                      : VehicleId{static_cast<std::uint32_t>(
                            rng.uniform_int(0, n - 1))};
      } while (dst == src);
      sim_.schedule_at(SimTime::from_sec(t), [this, src, dst] {
        admission_->submit(src, dst, QueryOrigin::kClosedLoop);
      });
      ++planned_queries_;
    }
    return;
  }

  const int sources = std::max(
      0, static_cast<int>(cfg_.source_fraction * n + 0.5));
  if (sources == 0) return;
  // Distinct sources via partial Fisher-Yates over vehicle indices.
  std::vector<std::uint32_t> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
  for (int i = 0; i < sources; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, n - 1));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
  }
  for (int i = 0; i < sources; ++i) {
    const VehicleId src{ids[static_cast<std::size_t>(i)]};
    // Destination: any vehicle other than the source (the paper picks the
    // queried vehicles randomly as well).
    VehicleId dst;
    do {
      dst = VehicleId{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    } while (dst == src);
    const SimTime when =
        cfg_.warmup + SimTime::from_us(static_cast<std::int64_t>(
                          rng.uniform(0.0, cfg_.query_window.sec()) * 1e6));
    sim_.schedule_at(when, [this, src, dst] {
      admission_->submit(src, dst, QueryOrigin::kClosedLoop);
    });
    ++planned_queries_;
  }
}

void World::resolve_fault_plan() {
  if (cfg_.fault_plan.empty() && !cfg_.fault_plan_file.empty()) {
    std::string error;
    const bool ok =
        FaultPlan::load(cfg_.fault_plan_file, &cfg_.fault_plan, &error);
    HLSRG_CHECK_MSG(ok, error.c_str());
  }
  if (cfg_.fault_seed != 0) cfg_.fault_plan.fault_seed = cfg_.fault_seed;
  const FaultProtocolOverrides& ov = cfg_.fault_plan.overrides;
  if (!ov.any()) return;
  HlsrgConfig& h = cfg_.hlsrg;
  if (ov.max_attempts) {
    h.max_attempts = std::max(1, std::min(*ov.max_attempts, 8));
  }
  if (ov.ack_timeout_sec) h.ack_timeout = SimTime::from_sec(*ov.ack_timeout_sec);
  if (ov.retry_backoff_base) h.retry_backoff_base = *ov.retry_backoff_base;
  if (ov.retry_backoff_cap_sec) {
    h.retry_backoff_cap = SimTime::from_sec(*ov.retry_backoff_cap_sec);
  }
  if (ov.l1_expiry_sec) h.l1_expiry = SimTime::from_sec(*ov.l1_expiry_sec);
  if (ov.l2_expiry_sec) h.l2_expiry = SimTime::from_sec(*ov.l2_expiry_sec);
  if (ov.l3_expiry_sec) h.l3_expiry = SimTime::from_sec(*ov.l3_expiry_sec);
}

void World::finalize_fault_summary() {
  if (fault_ == nullptr) return;
  RunMetrics& m = sim_.metrics();
  QueryTracker& tracker = service_->tracker();
  const std::size_t n = tracker.count();
  for (QueryTracker::QueryId id = 0; id < n; ++id) {
    if (!tracker.settled(id)) {
      // A query neither succeeded nor failed by the horizon. The
      // AvailabilityAuditor separately proves a retry is still armed for it
      // (it was not silently lost); here it just counts as stranded.
      m.queries_stranded++;
      continue;
    }
    if (fault_->fault_active_at(tracker.issued_at(id))) {
      m.fault_queries_issued++;
      if (tracker.succeeded(id)) m.fault_queries_ok++;
    }
  }
  // Time-to-recovery: for each finite window end T, the delay until the
  // first query success completing at or after T. Windows nothing recovered
  // after (no later success) are left out of the average.
  for (SimTime end : fault_->finite_window_ends()) {
    SimTime best;
    bool found = false;
    for (QueryTracker::QueryId id = 0; id < n; ++id) {
      if (!tracker.succeeded(id)) continue;
      const SimTime done = tracker.completed_at(id);
      if (done < end) continue;
      const SimTime delta = done - end;
      if (!found || delta < best) {
        best = delta;
        found = true;
      }
    }
    if (found) {
      m.recovery_time_us += best.us();
      m.recovery_windows++;
    }
  }
  MetricsRegistry& obs = sim_.observability();
  obs.set_gauge("fault.queries_stranded",
                static_cast<double>(m.queries_stranded));
  obs.set_gauge("fault.recovery_ms", m.recovery_ms());
  obs.set_gauge("fault.availability", m.availability());
}

void World::schedule_sampler() {
  // Periodic observability snapshot (trace/metrics.h time series). Samples
  // read state only — no RNG draws — so enabling them cannot perturb the
  // event stream or the determinism digests.
  sim_.schedule_after(cfg_.sample_interval, [this] {
    MetricsRegistry& obs = sim_.observability();
    const double now_sec = sim_.now().sec();
    const RunMetrics& m = sim_.metrics();
    obs.sample("world.live_queries", now_sec,
               static_cast<double>(m.queries_issued - m.queries_succeeded -
                                   m.queries_failed));
    obs.sample("world.pending_events", now_sec,
               static_cast<double>(sim_.queue().size()));
    const ServiceStats stats = service_->service_stats();
    obs.sample("world.table_records", now_sec,
               static_cast<double>(stats.table_records));
    if (cfg_.service.enabled) {
      obs.sample("service.cache_hits", now_sec,
                 static_cast<double>(stats.cache_hits));
      obs.sample("service.batch_flushes", now_sec,
                 static_cast<double>(stats.batch_flushes));
      obs.sample("service.shed_queries", now_sec,
                 static_cast<double>(stats.shed_queries));
      obs.sample("service.outstanding", now_sec,
                 static_cast<double>(service_->tracker().outstanding()));
    }
    if (fault_ != nullptr) {
      // Availability over time: the success rate among settled queries so
      // far. The chaos benches read the dip and recovery off this series.
      const std::uint64_t settled = m.queries_succeeded + m.queries_failed;
      obs.sample("avail.success_rate", now_sec,
                 settled == 0
                     ? 1.0
                     : static_cast<double>(m.queries_succeeded) / settled);
    }
    // Per-region gauges: vehicle population by current position, plus the
    // service's table/backlog attribution (see sample_region_stats).
    const auto regions = static_cast<std::size_t>(regions_.region_count());
    std::vector<std::uint64_t> vehicles(regions, 0);
    std::vector<std::uint64_t> table_records(regions, 0);
    std::vector<std::uint64_t> queue_depth(regions, 0);
    // Region ids come straight off the SoA row (maintained by the pose
    // bridge with the same region_of the old per-sample recompute used).
    for (int v = 0; v < cfg_.vehicles; ++v) {
      const int r =
          registry_.vehicle_region(VehicleId{static_cast<std::uint32_t>(v)});
      ++vehicles[static_cast<std::size_t>(r)];
    }
    service_->sample_region_stats(regions_, table_records, queue_depth);
    regions_.push_sample(now_sec, std::move(vehicles),
                         std::move(table_records), std::move(queue_depth));
    if (sim_.now() + cfg_.sample_interval <= cfg_.end_time()) {
      schedule_sampler();
    }
  });
}

void World::finalize_service_summary() {
  if (!cfg_.service.enabled) return;
  const RunMetrics& m = sim_.metrics();
  MetricsRegistry& obs = sim_.observability();
  obs.set_gauge("service.queries_offered",
                static_cast<double>(m.queries_offered));
  obs.set_gauge("service.queries_shed", static_cast<double>(m.queries_shed));
  obs.set_gauge("service.retries_shed", static_cast<double>(m.retries_shed));
  obs.set_gauge("service.cache_hits", static_cast<double>(m.cache_hits));
  obs.set_gauge("service.batched_queries",
                static_cast<double>(m.batched_queries));
  obs.set_gauge("service.peak_outstanding",
                static_cast<double>(m.peak_outstanding));
  obs.set_gauge("service.served_rate", m.served_rate());
}

void World::finalize_churn_summary() {
  if (protocol_ != Protocol::kHlsrg) return;
  ChurnManager* churn = static_cast<HlsrgService*>(service_.get())->churn();
  if (churn == nullptr) return;
  churn->expire_in_flight();
  const RunMetrics& m = sim_.metrics();
  MetricsRegistry& obs = sim_.observability();
  obs.set_gauge("churn.role_departures",
                static_cast<double>(m.role_departures));
  obs.set_gauge("churn.role_elections", static_cast<double>(m.role_elections));
  obs.set_gauge("churn.role_vacancies", static_cast<double>(m.role_vacancies));
  obs.set_gauge("churn.role_fills", static_cast<double>(m.role_fills));
  obs.set_gauge("churn.handoff_record_delivery_rate",
                m.handoff_record_delivery_rate());
}

const RunMetrics& World::run() {
  sim_.run_until(cfg_.end_time());
  finalize_fault_summary();
  finalize_service_summary();
  finalize_churn_summary();
#ifdef HLSRG_AUDIT_ENABLED
  audit_enforce();
#endif
  return sim_.metrics();
}

}  // namespace hlsrg
