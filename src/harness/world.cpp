#include "harness/world.h"

#include <cmath>
#include <vector>

#include "roadnet/map_io.h"
#include "util/check.h"

namespace hlsrg {

World::World(const ScenarioConfig& cfg, Protocol protocol)
    : cfg_(cfg), protocol_(protocol), sim_(cfg.seed) {
  // Map: loaded from file when requested, generated otherwise. The
  // generator's own randomness (irregular variant) keys off the scenario
  // seed so replicas with different seeds get different irregular maps.
  if (!cfg_.map_file.empty()) {
    std::string error;
    net_ = load_map_file(cfg_.map_file, &error);
    HLSRG_CHECK_MSG(net_.intersection_count() > 0, error.c_str());
  } else {
    MapConfig map_cfg = cfg_.map;
    if (map_cfg.irregular) map_cfg.seed = cfg_.seed;
    net_ = build_manhattan_map(map_cfg);
  }

  // Road-adapted partition and hierarchy (used by HLSRG; also handy context
  // for examples even under RLSMP).
  hierarchy_ = std::make_unique<GridHierarchy>(
      net_, build_partition(net_, cfg_.partition));

  medium_ = std::make_unique<RadioMedium>(sim_, registry_, cfg_.radio);
  gpsr_ = std::make_unique<GpsrRouter>(*medium_, registry_, cfg_.gpsr);
  GeocastConfig geocast_cfg = cfg_.geocast;
  if (protocol_ == Protocol::kFlood) {
    // The flooding baseline covers the whole map per flood; the default
    // rebroadcast budget is sized for HLSRG/RLSMP's small regions.
    geocast_cfg.max_transmissions =
        std::max(geocast_cfg.max_transmissions, 4 * cfg_.vehicles);
  }
  geocast_ = std::make_unique<GeocastService>(*medium_, registry_, geocast_cfg);
  wired_ = std::make_unique<WiredNetwork>(sim_, registry_, cfg_.wired);

  mobility_ = std::make_unique<MobilityModel>(sim_, net_, cfg_.mobility);
  mobility_->place_random_vehicles(cfg_.vehicles);

  switch (protocol_) {
    case Protocol::kHlsrg: {
      if (cfg_.hlsrg.use_rsus) {
        rsus_ = std::make_unique<RsuGrid>(*hierarchy_, registry_, *wired_);
      }
      service_ = std::make_unique<HlsrgService>(
          sim_, net_, *hierarchy_, *mobility_, registry_, *medium_, *gpsr_,
          *geocast_, *wired_, rsus_.get(), cfg_.hlsrg);
      break;
    }
    case Protocol::kRlsmp: {
      cells_ = std::make_unique<CellGrid>(
          net_.bounds(), cfg_.rlsmp.cell_size_m, cfg_.rlsmp.origin_offset_m,
          cfg_.rlsmp.cluster_dim);
      service_ = std::make_unique<RlsmpService>(sim_, *mobility_, registry_,
                                                *medium_, *gpsr_, *geocast_,
                                                *cells_, cfg_.rlsmp);
      break;
    }
    case Protocol::kFlood: {
      service_ = std::make_unique<FloodService>(sim_, *mobility_, registry_,
                                                *medium_, *gpsr_, *geocast_,
                                                net_.bounds(), cfg_.flood);
      break;
    }
  }

  // Beacon-based neighbor discovery must start after every node (vehicles
  // and RSUs) is registered.
  if (cfg_.beacons.enabled) {
    beacons_ = std::make_unique<BeaconService>(*medium_, registry_,
                                               cfg_.beacons);
    gpsr_->set_beacons(beacons_.get());
  }

  mobility_->start();
  schedule_workload();
  if (cfg_.sample_interval > SimTime{}) schedule_sampler();

#ifdef HLSRG_AUDIT_ENABLED
  // HLSRG_AUDIT=ON: enforce every invariant periodically during the run so a
  // corruption aborts at the audit tick where it first becomes visible.
  auditors_.attach_periodic(sim_, audit_scope(), SimTime::from_sec(10.0),
                            cfg_.end_time());
#endif
}

AuditScope World::audit_scope() {
  AuditScope scope;
  scope.sim = &sim_;
  scope.net = &net_;
  scope.hierarchy = hierarchy_.get();
  scope.mobility = mobility_.get();
  scope.service = service_.get();
  if (protocol_ == Protocol::kHlsrg) {
    scope.hlsrg = static_cast<const HlsrgService*>(service_.get());
  }
  return scope;
}

void World::schedule_workload() {
  const int n = cfg_.vehicles;
  if (n < 2) return;
  Rng& rng = sim_.workload_rng();

  if (cfg_.workload != ScenarioConfig::WorkloadKind::kOneShot) {
    // Poisson arrivals across the query window; hotspot skews destinations
    // toward a small popular set.
    const bool hotspot =
        cfg_.workload == ScenarioConfig::WorkloadKind::kHotspot;
    const int hot = std::max(1, std::min(cfg_.hotspot_targets, n - 1));
    double t = cfg_.warmup.sec();
    const double end = (cfg_.warmup + cfg_.query_window).sec();
    while (true) {
      // Exponential inter-arrival via inverse transform.
      t += -std::log(1.0 - rng.uniform()) / cfg_.poisson_rate_per_sec;
      if (t >= end) break;
      const VehicleId src{
          static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
      VehicleId dst;
      do {
        dst = hotspot ? VehicleId{static_cast<std::uint32_t>(
                            rng.uniform_int(0, hot - 1))}
                      : VehicleId{static_cast<std::uint32_t>(
                            rng.uniform_int(0, n - 1))};
      } while (dst == src);
      sim_.schedule_at(SimTime::from_sec(t),
                       [this, src, dst] { service_->issue_query(src, dst); });
      ++planned_queries_;
    }
    return;
  }

  const int sources = std::max(
      0, static_cast<int>(cfg_.source_fraction * n + 0.5));
  if (sources == 0) return;
  // Distinct sources via partial Fisher-Yates over vehicle indices.
  std::vector<std::uint32_t> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
  for (int i = 0; i < sources; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, n - 1));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
  }
  for (int i = 0; i < sources; ++i) {
    const VehicleId src{ids[static_cast<std::size_t>(i)]};
    // Destination: any vehicle other than the source (the paper picks the
    // queried vehicles randomly as well).
    VehicleId dst;
    do {
      dst = VehicleId{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    } while (dst == src);
    const SimTime when =
        cfg_.warmup + SimTime::from_us(static_cast<std::int64_t>(
                          rng.uniform(0.0, cfg_.query_window.sec()) * 1e6));
    sim_.schedule_at(when, [this, src, dst] { service_->issue_query(src, dst); });
    ++planned_queries_;
  }
}

void World::schedule_sampler() {
  // Periodic observability snapshot (trace/metrics.h time series). Samples
  // read state only — no RNG draws — so enabling them cannot perturb the
  // event stream or the determinism digests.
  sim_.schedule_after(cfg_.sample_interval, [this] {
    MetricsRegistry& obs = sim_.observability();
    const double now_sec = sim_.now().sec();
    const RunMetrics& m = sim_.metrics();
    obs.sample("world.live_queries", now_sec,
               static_cast<double>(m.queries_issued - m.queries_succeeded -
                                   m.queries_failed));
    obs.sample("world.pending_events", now_sec,
               static_cast<double>(sim_.queue().size()));
    obs.sample("world.table_records", now_sec,
               static_cast<double>(service_->table_records()));
    if (sim_.now() + cfg_.sample_interval <= cfg_.end_time()) {
      schedule_sampler();
    }
  });
}

const RunMetrics& World::run() {
  sim_.run_until(cfg_.end_time());
#ifdef HLSRG_AUDIT_ENABLED
  audit_enforce();
#endif
  return sim_.metrics();
}

}  // namespace hlsrg
