#include "harness/visualize.h"

#include <sstream>

namespace hlsrg {

namespace {

void draw_line(std::ostringstream& svg, Vec2 a, Vec2 b, const char* color,
               double width, const char* dash = nullptr) {
  svg << "<line x1='" << a.x << "' y1='" << a.y << "' x2='" << b.x << "' y2='"
      << b.y << "' stroke='" << color << "' stroke-width='" << width << "'";
  if (dash != nullptr) svg << " stroke-dasharray='" << dash << "'";
  svg << "/>\n";
}

void draw_circle(std::ostringstream& svg, Vec2 c, double r, const char* fill,
                 const char* stroke = nullptr) {
  svg << "<circle cx='" << c.x << "' cy='" << c.y << "' r='" << r
      << "' fill='" << fill << "'";
  if (stroke != nullptr) svg << " stroke='" << stroke << "' stroke-width='3'";
  svg << "/>\n";
}

}  // namespace

std::string render_world_svg(const RoadNetwork& net,
                             const GridHierarchy& hierarchy,
                             const RsuGrid* rsus,
                             const MobilityModel* mobility,
                             const VisualizeOptions& options) {
  const Aabb box = net.bounds().inflated(60.0);
  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' viewBox='" << box.lo.x << ' '
      << box.lo.y << ' ' << box.width() << ' ' << box.height() << "'>\n";
  svg << "<rect x='" << box.lo.x << "' y='" << box.lo.y << "' width='"
      << box.width() << "' height='" << box.height() << "' fill='#fafafa'/>\n";
  // Flip y so north is up.
  svg << "<g transform='translate(0," << (box.lo.y + box.hi.y)
      << ") scale(1,-1)'>\n";

  // Roads.
  for (const Road& r : net.roads()) {
    const bool artery = r.cls == RoadClass::kMainArtery;
    for (SegmentId sid : r.fwd_segments) {
      const LineSegment g = net.geometry(sid);
      draw_line(svg, g.a, g.b, artery ? "#444444" : "#bbbbbb",
                artery ? 7.0 : 2.5);
    }
  }

  if (options.draw_partition) {
    // Boundary overlays per level: L1 thin, L2 medium, L3 heavy.
    const Partition& p = hierarchy.partition();
    const Aabb mb = net.bounds();
    auto level_style = [](int index) {
      if (index % 4 == 0) return std::pair{"#c62828", 10.0};  // L3
      if (index % 2 == 0) return std::pair{"#ef6c00", 6.0};   // L2
      return std::pair{"#fbc02d", 3.5};                       // L1
    };
    for (std::size_t i = 0; i < p.x_lines.size(); ++i) {
      const auto [color, width] = level_style(static_cast<int>(i));
      const double x = p.x_lines[i].coord;
      draw_line(svg, {x, mb.lo.y}, {x, mb.hi.y}, color, width, "18,14");
    }
    for (std::size_t i = 0; i < p.y_lines.size(); ++i) {
      const auto [color, width] = level_style(static_cast<int>(i));
      const double y = p.y_lines[i].coord;
      draw_line(svg, {mb.lo.x, y}, {mb.hi.x, y}, color, width, "18,14");
    }
  }

  if (options.draw_centers) {
    for (int col = 0; col < hierarchy.cols(GridLevel::kL1); ++col) {
      for (int row = 0; row < hierarchy.rows(GridLevel::kL1); ++row) {
        draw_circle(svg, hierarchy.center_pos({col, row}, GridLevel::kL1),
                    14.0, "#1565c0");
      }
    }
  }

  if (options.draw_rsus && rsus != nullptr) {
    for (const RsuGrid::Rsu& r : rsus->all()) {
      const bool l3 = r.level == GridLevel::kL3;
      draw_circle(svg, r.pos, l3 ? 26.0 : 20.0, l3 ? "#c62828" : "#ef6c00",
                  "#ffffff");
    }
  }

  if (options.draw_vehicles && mobility != nullptr) {
    for (std::size_t i = 0; i < mobility->vehicle_count(); ++i) {
      const VehicleId v{i};
      const bool artery = mobility->network().is_artery(
          mobility->state(v).seg);
      draw_circle(svg, mobility->position(v), 6.0,
                  artery ? "#2e7d32" : "#9e9e9e");
    }
  }

  svg << "</g>\n</svg>\n";
  return svg.str();
}

}  // namespace hlsrg
