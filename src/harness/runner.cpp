#include "harness/runner.h"

#include <chrono>

#include "harness/digest.h"
#include "harness/parallel.h"
#include "util/check.h"

namespace hlsrg {

double ReplicaSet::mean_update_overhead() const {
  if (replicas.empty()) return 0.0;
  double sum = 0.0;
  for (const RunMetrics& m : replicas) {
    sum += static_cast<double>(m.total_update_overhead());
  }
  return sum / static_cast<double>(replicas.size());
}

double ReplicaSet::mean_query_overhead() const {
  if (replicas.empty()) return 0.0;
  double sum = 0.0;
  for (const RunMetrics& m : replicas) {
    sum += static_cast<double>(m.total_query_overhead());
  }
  return sum / static_cast<double>(replicas.size());
}

double ReplicaSet::mean_success_rate() const {
  // Pooled: total successes over total queries across replicas.
  return merged.success_rate();
}

double ReplicaSet::mean_query_latency_ms() const {
  return merged.query_latency.mean_ms();
}

ReplicaSet run_replicas(const ScenarioConfig& cfg, Protocol protocol,
                        int replicas, std::size_t threads) {
  HLSRG_CHECK(replicas >= 1);
  ReplicaSet out;
  out.replicas.resize(static_cast<std::size_t>(replicas));
  out.engine.resize(static_cast<std::size_t>(replicas));
  out.digests.resize(static_cast<std::size_t>(replicas));
  if (threads == 0) {
    threads = default_thread_count(static_cast<std::size_t>(replicas));
  }
  parallel_for(static_cast<std::size_t>(replicas), threads,
               [&](std::size_t i) {
                 ScenarioConfig replica_cfg = cfg;
                 replica_cfg.seed = cfg.seed + i;
                 const auto start = std::chrono::steady_clock::now();
                 World world(replica_cfg, protocol);
                 out.replicas[i] = world.run();
                 const auto stop = std::chrono::steady_clock::now();
                 out.digests[i] = state_digest(world);
                 out.engine[i] = world.sim().engine_stats();
                 out.engine[i].wall_clock_sec =
                     std::chrono::duration<double>(stop - start).count();
               });
  for (const RunMetrics& m : out.replicas) out.merged.merge(m);
  for (const EngineStats& e : out.engine) out.engine_total.merge(e);
  return out;
}

Comparison run_comparison(const ScenarioConfig& cfg, int replicas,
                          std::size_t threads) {
  Comparison c;
  c.hlsrg = run_replicas(cfg, Protocol::kHlsrg, replicas, threads);
  c.rlsmp = run_replicas(cfg, Protocol::kRlsmp, replicas, threads);
  return c;
}

}  // namespace hlsrg
