#include "harness/runner.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "harness/digest.h"
#include "harness/parallel.h"
#include "util/check.h"

namespace hlsrg {

std::uint64_t process_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB, macOS in bytes.
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

double ReplicaSet::mean_update_overhead() const {
  if (replicas.empty()) return 0.0;
  double sum = 0.0;
  for (const RunMetrics& m : replicas) {
    sum += static_cast<double>(m.total_update_overhead());
  }
  return sum / static_cast<double>(replicas.size());
}

double ReplicaSet::mean_query_overhead() const {
  if (replicas.empty()) return 0.0;
  double sum = 0.0;
  for (const RunMetrics& m : replicas) {
    sum += static_cast<double>(m.total_query_overhead());
  }
  return sum / static_cast<double>(replicas.size());
}

double ReplicaSet::mean_success_rate() const {
  // Pooled: total successes over total queries across replicas.
  return merged.success_rate();
}

double ReplicaSet::mean_query_latency_ms() const {
  return merged.query_latency.mean_ms();
}

ReplicaSet run_replicas(const ScenarioConfig& cfg, Protocol protocol,
                        int replicas, std::size_t threads,
                        TraceLog* trace_replica0) {
  HLSRG_CHECK(replicas >= 1);
  ReplicaSet out;
  const auto n = static_cast<std::size_t>(replicas);
  out.replicas.resize(n);
  out.engine.resize(n);
  out.digests.resize(n);
  // Three phases per replica, written by index — no locking needed.
  out.phases.resize(n * 3);
  std::vector<MetricsRegistry> registries(n);
  std::vector<RegionTelemetry> regions(n);
  std::vector<PhaseProfiler> profiles(n);
  if (threads == 0) {
    threads = default_thread_count(n);
  }
  // All wall-clock reads go through the sanctioned obs clock (see
  // src/obs/profiler.h); raw <chrono> stays confined to that TU.
  const double epoch = monotonic_now_sec();
  const auto since_epoch = [epoch] { return monotonic_now_sec() - epoch; };
  parallel_for(n, threads, [&](std::size_t i) {
    ScenarioConfig replica_cfg = cfg;
    replica_cfg.seed = cfg.seed + i;
    const int rep = static_cast<int>(i);
    const double start = monotonic_now_sec();
    const double build_begin = since_epoch();
    World world(replica_cfg, protocol);
    if (i == 0 && trace_replica0 != nullptr) {
      world.attach_trace(trace_replica0);
    }
    const double build_end = since_epoch();
    out.phases[i * 3] = EnginePhase{"build", rep, build_begin, build_end};
    out.replicas[i] = world.run();
    const double stop = monotonic_now_sec();
    const double run_end = since_epoch();
    out.phases[i * 3 + 1] = EnginePhase{"run", rep, build_end, run_end};
    out.digests[i] = state_digest(world);
    out.phases[i * 3 + 2] = EnginePhase{"digest", rep, run_end, since_epoch()};
    out.engine[i] = world.sim().engine_stats();
    out.engine[i].wall_clock_sec = stop - start;
    // Process peak at sample time, NOT this replica's own footprint — see
    // the ReplicaSet field comment. Kept per replica only as a growth
    // timeline; the once-per-run sample below is the quantitative one.
    out.engine[i].peak_rss_bytes = process_peak_rss_bytes();
    // End-of-run protocol-state footprint: tables + registry, one replica.
    out.engine[i].table_bytes = world.service().service_stats().table_bytes;
    registries[i] = world.sim().observability();
    regions[i] = world.regions();
    if (world.profiler() != nullptr) profiles[i] = *world.profiler();
  });
  // The run's true peak: sampled once, after every replica has finished.
  out.peak_rss_bytes = process_peak_rss_bytes();
  // Merge in replica order (not completion order) so the aggregate is a pure
  // function of the replica results regardless of thread interleaving.
  for (const RunMetrics& m : out.replicas) out.merged.merge(m);
  for (const EngineStats& e : out.engine) out.engine_total.merge(e);
  // engine_total's RSS is the run-level sample, not the max of the
  // per-replica process snapshots (same number in practice, but this one
  // has defined semantics).
  out.engine_total.peak_rss_bytes = out.peak_rss_bytes;
  for (const MetricsRegistry& r : registries) out.observability.merge(r);
  for (const RegionTelemetry& r : regions) out.regions.merge(r);
  for (const PhaseProfiler& p : profiles) out.profile.merge(p);
  return out;
}

Comparison run_comparison(const ScenarioConfig& cfg, int replicas,
                          std::size_t threads) {
  Comparison c;
  c.hlsrg = run_replicas(cfg, Protocol::kHlsrg, replicas, threads);
  c.rlsmp = run_replicas(cfg, Protocol::kRlsmp, replicas, threads);
  return c;
}

}  // namespace hlsrg
