// Scenario description: everything needed to build and run one simulated
// world. The defaults reproduce the paper's evaluation setup: a 2 km x 2 km
// map, 300-700 vehicles at 0-60 km/h, 50 s red lights, 500 m radio range,
// 10% of vehicles querying 10% of vehicles.
#pragma once

#include <cstdint>
#include <string>

#include "core/hlsrg_config.h"
#include "fault/fault_plan.h"
#include "flood/flood_config.h"
#include "grid/partition.h"
#include "mobility/mobility_model.h"
#include "net/beacons.h"
#include "net/geocast.h"
#include "net/gpsr.h"
#include "net/radio.h"
#include "net/wired.h"
#include "rlsmp/rlsmp_config.h"
#include "roadnet/map_builder.h"
#include "service/service_config.h"
#include "sim/time.h"

namespace hlsrg {

enum class Protocol { kHlsrg, kRlsmp, kFlood };

[[nodiscard]] inline const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kHlsrg:
      return "HLSRG";
    case Protocol::kRlsmp:
      return "RLSMP";
    case Protocol::kFlood:
      return "FLOOD";
  }
  return "?";
}

struct ScenarioConfig {
  // Master seed; expands into map/mobility/radio/protocol/workload streams.
  std::uint64_t seed = 1;

  MapConfig map;
  // When non-empty, the map is loaded from this file (roadnet/map_io.h
  // format) instead of being generated from `map`.
  std::string map_file;
  PartitionConfig partition;
  MobilityConfig mobility;
  RadioConfig radio;
  GpsrConfig gpsr;
  // HELLO-beacon neighbor discovery for GPSR; off = genie neighborhood.
  BeaconConfig beacons;
  GeocastConfig geocast;
  WiredConfig wired;
  HlsrgConfig hlsrg;
  RlsmpConfig rlsmp;
  FloodConfig flood;

  int vehicles = 300;

  // --- query workload -------------------------------------------------------
  // kOneShot reproduces the paper: `source_fraction` of vehicles each issue
  // one query for a random distinct destination at a uniform time inside the
  // query window. kPoisson issues arrivals at `poisson_rate_per_sec` with
  // random src/dst pairs. kHotspot is Poisson with destinations drawn from a
  // small popular set (`hotspot_targets`) — a dispatcher/fleet-style skew.
  enum class WorkloadKind { kOneShot, kPoisson, kHotspot };
  WorkloadKind workload = WorkloadKind::kOneShot;
  double source_fraction = 0.1;
  double poisson_rate_per_sec = 1.0;
  int hotspot_targets = 5;
  SimTime warmup = SimTime::from_sec(60.0);
  SimTime query_window = SimTime::from_sec(30.0);
  // Extra time after the window so in-flight queries settle.
  SimTime grace = SimTime::from_sec(60.0);

  // Period of the observability time-series sampler (live queries, pending
  // events, table records — see trace/metrics.h). Zero disables sampling.
  SimTime sample_interval = SimTime::from_sec(5.0);

  // Wall-clock phase profiler (src/obs/profiler.h). Off by default; enabling
  // it attaches hierarchical timers to the engine hot paths. Timers read the
  // host clock only — no RNG, no events — so digests are identical either
  // way (pinned by tests/obs_test.cpp).
  bool profile = false;

  // --- heavy-traffic service tier (src/service) ------------------------------
  // Open-loop load, RSU query batching, hot-destination caching, and load
  // shedding. Disabled by default: the default config is behaviorally inert
  // (no extra RNG draws, no extra events), so paper scenarios match
  // tier-unaware builds event for event.
  ServiceTierConfig service;

  // --- fault injection -------------------------------------------------------
  // Scripted fault schedule (fault/fault_plan.h). An empty plan is the
  // default and is behaviorally inert: no injector is built, no fault RNG is
  // drawn, and determinism digests match a fault-free build. When
  // `fault_plan_file` is non-empty and the inline `fault_plan` is empty, the
  // World loads the plan from that file. A nonzero `fault_seed` overrides
  // the plan's own seed after loading.
  FaultPlan fault_plan;
  std::string fault_plan_file;
  std::uint64_t fault_seed = 0;

  [[nodiscard]] SimTime end_time() const {
    return warmup + query_window + grace;
  }
};

// The paper's headline configuration (Fig 3.3-3.5 sweeps change `vehicles`).
[[nodiscard]] inline ScenarioConfig paper_scenario(int vehicles = 500,
                                                   std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.vehicles = vehicles;
  cfg.map.size_m = 2000.0;
  return cfg;
}

}  // namespace hlsrg
