// Determinism digests: a 64-bit FNV-1a hash over a replica's final state.
//
// Two runs of the same (scenario, protocol, seed) must end in bit-identical
// simulation state regardless of how many host threads ran the replica set —
// replicas share no mutable state, so thread count can only change digests
// if something leaks between them (a shared RNG, a global, a data race). The
// digest walks deterministic state only: simulation clock and event-queue
// counters, per-vehicle kinematic state, protocol metrics, and (for HLSRG)
// every location table. Host-side measurements like wall-clock time are
// excluded by construction.
#pragma once

#include <cstdint>
#include <vector>

namespace hlsrg {

class World;

// Digest of `world`'s current deterministic state.
[[nodiscard]] std::uint64_t state_digest(World& world);

// Index of the first position where the digest vectors differ (in value or
// length); returns SIZE_MAX when they match.
[[nodiscard]] std::size_t first_digest_mismatch(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b);

}  // namespace hlsrg
