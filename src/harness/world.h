// World: one fully assembled simulated replica — map, partition, hierarchy,
// mobility, radio, routing, RSUs, protocol, workload. A World owns all of
// its state; replicas running on different threads share nothing mutable.
#pragma once

#include <memory>
#include <optional>

#include "audit/audit_runner.h"
#include "core/hlsrg_service.h"
#include "fault/fault_injector.h"
#include "grid/hierarchy.h"
#include "harness/scenario.h"
#include "infra/rsu_grid.h"
#include "mobility/mobility_model.h"
#include "net/beacons.h"
#include "net/geocast.h"
#include "net/gpsr.h"
#include "net/node_registry.h"
#include "net/radio.h"
#include "net/wired.h"
#include "flood/flood_service.h"
#include "rlsmp/cell_grid.h"
#include "rlsmp/rlsmp_service.h"
#include "roadnet/road_network.h"
#include "service/admission.h"
#include "service/open_loop.h"
#include "sim/simulator.h"

namespace hlsrg {

class World {
 public:
  // Builds the world: map, partition, protocol agents, and vehicles at their
  // initial poses. Mobility starts on construction; the query workload is
  // scheduled per `cfg`.
  World(const ScenarioConfig& cfg, Protocol protocol);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // Runs to the scenario end; returns the final metrics.
  const RunMetrics& run();
  // Runs to an arbitrary time (for tests / incremental examples).
  void run_until(SimTime t) { sim_.run_until(t); }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const RoadNetwork& network() const { return net_; }
  [[nodiscard]] const GridHierarchy& hierarchy() const { return *hierarchy_; }
  [[nodiscard]] MobilityModel& mobility() { return *mobility_; }
  [[nodiscard]] LocationService& service() { return *service_; }
  [[nodiscard]] const RunMetrics& metrics() const { return sim_.metrics(); }
  [[nodiscard]] Protocol protocol() const { return protocol_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] const RsuGrid* rsus() const { return rsus_.get(); }
  [[nodiscard]] const CellGrid* cells() const { return cells_.get(); }
  // Null unless the scenario carries a non-empty fault plan.
  [[nodiscard]] const FaultInjector* fault() const { return fault_.get(); }

  // The single query-issuance seam: closed-loop workload, the open-loop
  // generator, and fault-retry admission all pass through here (see
  // service/admission.h). Always constructed, even when the tier is
  // disabled — with the default config submit() is a plain issue_query.
  [[nodiscard]] QueryAdmission& admission() { return *admission_; }
  // Null unless the service tier's open-loop generator is configured.
  [[nodiscard]] const OpenLoopGenerator* open_loop() const {
    return open_loop_.get();
  }

  // Number of queries the workload will issue.
  [[nodiscard]] int planned_queries() const { return planned_queries_; }

  // Attaches an event trace (see sim/trace.h); pass nullptr to detach. The
  // log must outlive the World's remaining run time.
  void attach_trace(TraceLog* trace) { sim_.set_trace(trace); }

  // Per-L3-region telemetry (always on; counter increments only, so it is
  // digest-neutral like MetricsRegistry).
  [[nodiscard]] const RegionTelemetry& regions() const { return regions_; }
  // Wall-clock phase profiler; null unless cfg.profile was set.
  [[nodiscard]] const PhaseProfiler* profiler() const {
    return profiler_.get();
  }

  // Node directory (failure injection in tests: silencing a node's sink
  // models an outage — packets to it fall on deaf ears).
  [[nodiscard]] NodeRegistry& registry() { return registry_; }
  // The shared radio (tests flip its reference-density seam to prove the
  // cached contention path is behavior-neutral).
  [[nodiscard]] RadioMedium& medium() { return *medium_; }

  // --- invariant auditing (src/audit) ---------------------------------------
  // The audit view of this world; `hlsrg` is set only under Protocol::kHlsrg.
  [[nodiscard]] AuditScope audit_scope();
  // One full pass of the standard auditors against the current state.
  [[nodiscard]] AuditReport audit_now() { return auditors_.run(audit_scope()); }
  // Like audit_now but aborts with the violation list on any finding. Under
  // -DHLSRG_AUDIT=ON the constructor also schedules this periodically and
  // run() calls it at the end of the horizon.
  void audit_enforce() { auditors_.enforce(audit_scope()); }

 private:
  // Mirrors every mobility write into the registry's SoA vehicle state.
  // Registered FIRST (before any service listener), so by the time a
  // protocol agent reacts to a movement callback the registry already holds
  // the pose the old pull-through-callback model would have returned:
  //  - on_moved pushes the end-of-tick pose, velocity, and region, then
  //    bumps the position generation (one bump per move, as before) —
  //    without the bump a neighbor index built earlier in the same
  //    timestamp (agents broadcast from inside the movement listeners,
  //    mid-tick) would be reused, stale, by everything ordered after the
  //    write.
  //  - on_intersection_pass pushes the mid-advance stop-line pose WITHOUT a
  //    bump: the pull model exposed that pose to the update rules while
  //    leaving cached neighbor sets alone, and digests pin that behavior.
  //  - the parking callbacks keep the parked flag and velocity in sync
  //    (positions do not change while parked).
  class PoseSyncBridge final : public MovementListener {
   public:
    PoseSyncBridge(NodeRegistry& registry, RegionTelemetry& regions)
        : registry_(&registry), regions_(&regions) {}
    void set_mobility(const MobilityModel* mobility) { mobility_ = mobility; }

    void on_moved(VehicleId v, Vec2, Vec2 after) override {
      registry_->set_position(registry_->vehicle_node(v), after);
      registry_->set_vehicle_velocity(
          v, mobility_->heading(v) * mobility_->state(v).speed);
      registry_->set_vehicle_region(v, regions_->region_of(after));
      registry_->bump_position_generation();
    }
    void on_intersection_pass(VehicleId v, IntersectionId, SegmentId,
                              SegmentId) override {
      registry_->set_position(registry_->vehicle_node(v),
                              mobility_->position(v));
    }
    void on_parked(VehicleId v) override {
      registry_->set_vehicle_parked(v, true);
      registry_->set_vehicle_velocity(v, Vec2{});
    }
    void on_departed(VehicleId v, bool) override {
      // Fired before the new speed is drawn — the vehicle is still at rest
      // here; the next on_moved pushes the real velocity.
      registry_->set_vehicle_parked(v, false);
      registry_->set_vehicle_velocity(v, Vec2{});
    }

   private:
    NodeRegistry* registry_;
    RegionTelemetry* regions_;
    const MobilityModel* mobility_ = nullptr;
  };

  void schedule_workload();
  void schedule_sampler();
  // Resolves the effective fault plan (inline vs file) into cfg_.fault_plan
  // and applies its protocol overrides to cfg_.hlsrg. Ctor-only, before the
  // service is built.
  void resolve_fault_plan();
  // Post-run fault bookkeeping: per-query availability split, stranded-query
  // count, and time-to-recovery per finite window end (see counters.h).
  void finalize_fault_summary();
  // Post-run service-tier gauges (offered/shed/cache/batch counters); no-op
  // when the tier is disabled.
  void finalize_service_summary();
  // Post-run churn settlement: expires handoff records still in flight at
  // the horizon (closing the conservation law exactly) and publishes the
  // churn gauges. No-op unless parked-RSU hosting is on.
  void finalize_churn_summary();

  ScenarioConfig cfg_;
  Protocol protocol_;
  Simulator sim_;
  RoadNetwork net_;
  std::unique_ptr<GridHierarchy> hierarchy_;
  RegionTelemetry regions_;
  std::unique_ptr<PhaseProfiler> profiler_;
  NodeRegistry registry_;
  std::unique_ptr<RadioMedium> medium_;
  std::unique_ptr<GpsrRouter> gpsr_;
  std::unique_ptr<BeaconService> beacons_;
  std::unique_ptr<GeocastService> geocast_;
  std::unique_ptr<WiredNetwork> wired_;
  std::unique_ptr<MobilityModel> mobility_;
  PoseSyncBridge pose_bridge_{registry_, regions_};
  std::unique_ptr<RsuGrid> rsus_;
  std::unique_ptr<CellGrid> cells_;
  std::unique_ptr<LocationService> service_;
  std::unique_ptr<QueryAdmission> admission_;
  std::unique_ptr<OpenLoopGenerator> open_loop_;
  std::unique_ptr<FaultInjector> fault_;
  AuditRunner auditors_ = AuditRunner::standard();
  int planned_queries_ = 0;
};

}  // namespace hlsrg
