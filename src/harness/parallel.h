// Minimal data-parallel utilities for the bench harness.
//
// Replica sweeps are embarrassingly parallel: each replica owns its World
// and touches no shared mutable state, so the only synchronization needed is
// work distribution (an atomic index) and the implicit join. This follows
// the Core Guidelines concurrency rules: no shared data, tasks over raw
// thread management at call sites.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>

namespace hlsrg {

// Number of worker threads to use by default: hardware concurrency capped by
// the job count, never less than 1.
[[nodiscard]] std::size_t default_thread_count(std::size_t jobs);

// Runs fn(i) for every i in [0, jobs) across up to `threads` workers.
// fn must not throw (simulation code reports failures via HLSRG_CHECK);
// exceptions escaping fn terminate, by design.
void parallel_for(std::size_t jobs, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hlsrg
