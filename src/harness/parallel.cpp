#include "harness/parallel.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace hlsrg {

std::size_t default_thread_count(std::size_t jobs) {
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  return std::clamp<std::size_t>(jobs, 1, hw);
}

void parallel_for(std::size_t jobs, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  HLSRG_CHECK(fn != nullptr);
  if (jobs == 0) return;
  threads = std::clamp<std::size_t>(threads, 1, jobs);
  if (threads == 1) {
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace hlsrg
