// SVG rendering of a built world: roads (arteries bold), the road-adapted
// partition (L1/L2/L3 boundaries at increasing weight), grid centers, RSUs,
// and optionally live vehicle positions. Used by the map_partition_viewer
// example and handy for debugging scenario geometry.
#pragma once

#include <string>

#include "grid/hierarchy.h"
#include "infra/rsu_grid.h"
#include "mobility/mobility_model.h"
#include "roadnet/road_network.h"

namespace hlsrg {

struct VisualizeOptions {
  bool draw_partition = true;
  bool draw_centers = true;
  bool draw_rsus = true;
  bool draw_vehicles = false;
};

// Renders the network plus hierarchy overlays. `rsus` and `mobility` may be
// null; the corresponding layers are skipped.
[[nodiscard]] std::string render_world_svg(const RoadNetwork& net,
                                           const GridHierarchy& hierarchy,
                                           const RsuGrid* rsus,
                                           const MobilityModel* mobility,
                                           const VisualizeOptions& options = {});

}  // namespace hlsrg
