// Replica runner: executes N independent replicas of a scenario (seeds
// seed, seed+1, ...) in parallel and merges their metrics. The figure
// benches are built on this — the paper averages 10 simulations for its
// delay figure, and the others stabilize similarly.
#pragma once

#include <vector>

#include "harness/scenario.h"
#include "harness/world.h"
#include "sim/counters.h"

namespace hlsrg {

struct ReplicaSet {
  // Per-replica metrics, index i ran with seed cfg.seed + i.
  std::vector<RunMetrics> replicas;
  // Per-replica engine stats (events processed, wall-clock), same indexing.
  std::vector<EngineStats> engine;
  // Per-replica end-state digests (harness/digest.h), same indexing. Pure
  // functions of (cfg, protocol, seed + i): any dependence on thread count
  // or run interleaving is a determinism bug.
  std::vector<std::uint64_t> digests;
  // All replicas merged (counts summed, latencies pooled).
  RunMetrics merged;
  // Engine stats aggregated across replicas (counts/times summed, peak
  // queue depth maxed).
  EngineStats engine_total;

  [[nodiscard]] double mean_update_overhead() const;
  [[nodiscard]] double mean_query_overhead() const;
  [[nodiscard]] double mean_success_rate() const;
  [[nodiscard]] double mean_query_latency_ms() const;
};

// Runs `replicas` worlds of (cfg, protocol); `threads` = 0 picks a default.
// Each replica's wall-clock time is captured around its World::run().
[[nodiscard]] ReplicaSet run_replicas(const ScenarioConfig& cfg,
                                      Protocol protocol, int replicas,
                                      std::size_t threads = 0);

// Paired comparison: same scenario (and seeds) under both protocols.
struct Comparison {
  ReplicaSet hlsrg;
  ReplicaSet rlsmp;
};

[[nodiscard]] Comparison run_comparison(const ScenarioConfig& cfg,
                                        int replicas, std::size_t threads = 0);

}  // namespace hlsrg
