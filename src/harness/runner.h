// Replica runner: executes N independent replicas of a scenario (seeds
// seed, seed+1, ...) in parallel and merges their metrics. The figure
// benches are built on this — the paper averages 10 simulations for its
// delay figure, and the others stabilize similarly.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.h"
#include "harness/world.h"
#include "obs/profiler.h"
#include "obs/region_telemetry.h"
#include "sim/counters.h"
#include "trace/metrics.h"

namespace hlsrg {

// One wall-clock engine phase of a replica (build / run / digest), measured
// against a common monotonic epoch taken at run_replicas entry. Feeds the
// engine track of the Chrome-trace exporter (trace/chrome_trace.h).
struct EnginePhase {
  std::string name;
  int replica = 0;
  double begin_sec = 0.0;
  double end_sec = 0.0;
};

struct ReplicaSet {
  // Per-replica metrics, index i ran with seed cfg.seed + i.
  std::vector<RunMetrics> replicas;
  // Per-replica engine stats (events processed, wall-clock), same indexing.
  // CAVEAT: each replica's peak_rss_bytes is the *process-wide* RSS
  // high-water mark at that replica's sample time — getrusage has no
  // per-thread view, so with --threads > 1 a replica's number includes
  // whatever its concurrently running siblings allocated. Use the run-level
  // peak_rss_bytes below for anything quantitative; the per-replica field
  // is only good for "how big had the process grown by then".
  std::vector<EngineStats> engine;
  // Process-wide peak RSS sampled exactly once, after every replica has
  // finished — the run's true memory high-water mark.
  std::uint64_t peak_rss_bytes = 0;
  // Per-replica end-state digests (harness/digest.h), same indexing. Pure
  // functions of (cfg, protocol, seed + i): any dependence on thread count
  // or run interleaving is a determinism bug.
  std::vector<std::uint64_t> digests;
  // All replicas merged (counts summed, latencies pooled).
  RunMetrics merged;
  // Engine stats aggregated across replicas (counts/times summed, peak
  // queue depth maxed).
  EngineStats engine_total;
  // Wall-clock engine phases (build/run/digest per replica), relative to the
  // run_replicas entry time.
  std::vector<EnginePhase> phases;
  // Observability registries of all replicas, merged (counters summed,
  // histograms pooled, time series kept from the first replica).
  MetricsRegistry observability;
  // Per-L3-region telemetry of all replicas, merged in replica order
  // (counters and traffic matrix summed, series kept from replica 0).
  RegionTelemetry regions;
  // Wall-clock phase profile merged across replicas; empty() unless
  // cfg.profile was set.
  PhaseProfiler profile;

  [[nodiscard]] double mean_update_overhead() const;
  [[nodiscard]] double mean_query_overhead() const;
  [[nodiscard]] double mean_success_rate() const;
  [[nodiscard]] double mean_query_latency_ms() const;
};

// Process-wide resident-set high-water mark (getrusage); 0 where
// unsupported. Monotone over the process lifetime — sample after the work
// whose peak you want to attribute.
[[nodiscard]] std::uint64_t process_peak_rss_bytes();

// Runs `replicas` worlds of (cfg, protocol); `threads` = 0 picks a default.
// Each replica's wall-clock time is captured around its World::run().
// `trace_replica0`, when non-null, is attached to replica 0's world for its
// whole run (event + span capture for the exporters).
[[nodiscard]] ReplicaSet run_replicas(const ScenarioConfig& cfg,
                                      Protocol protocol, int replicas,
                                      std::size_t threads = 0,
                                      TraceLog* trace_replica0 = nullptr);

// Paired comparison: same scenario (and seeds) under both protocols.
struct Comparison {
  ReplicaSet hlsrg;
  ReplicaSet rlsmp;
};

[[nodiscard]] Comparison run_comparison(const ScenarioConfig& cfg,
                                        int replicas, std::size_t threads = 0);

}  // namespace hlsrg
