#include "harness/digest.h"

#include <bit>
#include <cstddef>

#include "core/rsu_agent.h"
#include "core/vehicle_agent.h"
#include "harness/world.h"

namespace hlsrg {

namespace {

// FNV-1a, 64-bit.
class Fnv {
 public:
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ (v & 0xff)) * kPrime;
      v >>= 8;
    }
  }
  void mix_i64(std::int64_t v) { mix_u64(static_cast<std::uint64_t>(v)); }
  void mix_double(double v) { mix_u64(std::bit_cast<std::uint64_t>(v)); }
  void mix_bool(bool v) { mix_u64(v ? 1 : 0); }
  void mix_coord(GridCoord c) {
    mix_i64(c.col);
    mix_i64(c.row);
  }
  void mix_time(SimTime t) { mix_i64(t.us()); }
  void mix_vec(Vec2 v) {
    mix_double(v.x);
    mix_double(v.y);
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash_ = 14695981039346656037ULL;
};

void mix_metrics(Fnv& f, const RunMetrics& m) {
  f.mix_u64(m.update_packets_originated);
  f.mix_u64(m.update_transmissions);
  f.mix_u64(m.aggregation_packets);
  f.mix_u64(m.aggregation_transmissions);
  f.mix_u64(m.queries_issued);
  f.mix_u64(m.queries_succeeded);
  f.mix_u64(m.queries_failed);
  f.mix_u64(m.query_packets_originated);
  f.mix_u64(m.query_transmissions);
  f.mix_u64(m.server_lookup_hits);
  f.mix_u64(m.server_lookup_misses);
  f.mix_u64(m.rsu_lookup_hits);
  f.mix_u64(m.rsu_lookup_misses);
  f.mix_u64(m.notifications_sent);
  f.mix_u64(m.acks_sent);
  f.mix_u64(m.radio_broadcasts);
  f.mix_u64(m.radio_unicasts);
  f.mix_u64(m.radio_drops);
  f.mix_u64(m.wired_messages);
  f.mix_u64(m.gpsr_failures);
  f.mix_u64(m.channel.total_offered());
  f.mix_u64(m.channel.total_delivered());
  f.mix_u64(m.channel.total_dropped());
  f.mix_u64(m.query_latency.count());
  f.mix_double(m.query_latency.mean_ms());
  // Fault accounting joins the digest only when a fault schedule is active:
  // a zero-fault run must hash byte-identically to a fault-unaware build.
  if (m.fault_plan_digest != 0) {
    f.mix_u64(m.fault_plan_digest);
    f.mix_u64(m.wired_drops);
    f.mix_u64(m.rsu_suppressed);
    f.mix_u64(m.query_retries);
    f.mix_u64(m.query_failovers);
  }
  // Same gating idea for infrastructure churn: the counter block only joins
  // the hash when a ChurnManager was constructed, so zero-churn runs stay
  // byte-identical to pre-churn builds.
  if (m.churn_active != 0) {
    f.mix_u64(m.role_departures);
    f.mix_u64(m.role_elections);
    f.mix_u64(m.role_vacancies);
    f.mix_u64(m.role_fills);
    f.mix_u64(m.handoffs_sent);
    f.mix_u64(m.handoffs_delivered);
    f.mix_u64(m.handoffs_lost);
    f.mix_u64(m.handoff_records_sent);
    f.mix_u64(m.handoff_records_delivered);
    f.mix_u64(m.handoff_records_expired);
    f.mix_u64(m.handoff_records_in_flight);
    f.mix_u64(m.records_at_departure);
  }
}

// Tables are hashed through snapshot() — the canonical key-sorted view —
// so the digest is a function of table *contents*, not of the arena's
// insertion-and-erase history. The sorted order matches the old FlatTable
// iteration order byte for byte.
void mix_hlsrg_tables(Fnv& f, const HlsrgService& svc,
                      std::size_t vehicle_count) {
  for (std::size_t i = 0; i < vehicle_count; ++i) {
    const HlsrgVehicleAgent& agent = svc.vehicle_agent(VehicleId{i});
    f.mix_bool(agent.in_center());
    f.mix_u64(agent.table().size());
    for (const L1Record& rec : agent.table().snapshot()) {
      f.mix_u64(rec.vehicle.value());
      f.mix_vec(rec.pos);
      f.mix_time(rec.time);
      f.mix_coord(rec.l1);
    }
  }
  for (const auto& rsu : svc.rsu_agents()) {
    f.mix_i64(static_cast<int>(rsu.level()));
    f.mix_coord(rsu.coord());
    f.mix_u64(rsu.l2_table().size());
    for (const L2Summary& s : rsu.l2_table().snapshot()) {
      f.mix_u64(s.vehicle.value());
      f.mix_time(s.time);
      f.mix_coord(s.l1);
    }
    f.mix_u64(rsu.l3_table().size());
    for (const L3Summary& s : rsu.l3_table().snapshot()) {
      f.mix_u64(s.vehicle.value());
      f.mix_time(s.time);
      f.mix_coord(s.l2);
      f.mix_coord(s.owner_l3);
    }
    f.mix_u64(rsu.full_table().size());
    for (const L1Record& rec : rsu.full_table().snapshot()) {
      f.mix_u64(rec.vehicle.value());
      f.mix_vec(rec.pos);
      f.mix_time(rec.time);
    }
  }
}

}  // namespace

std::uint64_t state_digest(World& world) {
  Fnv f;

  const Simulator& sim = world.sim();
  f.mix_time(sim.now());
  f.mix_u64(sim.queue().events_scheduled());
  f.mix_u64(sim.queue().events_dispatched());
  f.mix_u64(sim.queue().events_cancelled());
  f.mix_u64(sim.queue().size());

  const MobilityModel& mobility = world.mobility();
  f.mix_u64(mobility.vehicle_count());
  for (std::size_t i = 0; i < mobility.vehicle_count(); ++i) {
    const VehicleId v{i};
    const VehicleState& s = mobility.state(v);
    f.mix_u64(s.seg.valid() ? s.seg.value() : 0);
    f.mix_double(s.offset);
    f.mix_double(s.speed);
    f.mix_bool(s.waiting);
    f.mix_vec(mobility.position(v));
  }

  mix_metrics(f, sim.metrics());

  if (world.protocol() == Protocol::kHlsrg) {
    mix_hlsrg_tables(f, static_cast<const HlsrgService&>(world.service()),
                     mobility.vehicle_count());
  }
  return f.value();
}

std::size_t first_digest_mismatch(const std::vector<std::uint64_t>& a,
                                  const std::vector<std::uint64_t>& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  if (a.size() != b.size()) return n;
  return static_cast<std::size_t>(-1);
}

}  // namespace hlsrg
