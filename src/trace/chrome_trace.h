// Chrome-trace-event exporter (loads in Perfetto / chrome://tracing).
//
// Three processes in the output: pid 1 is *simulated* time — one thread
// track per traced query (named "query <id>") carrying its span tree as
// complete ("X") events, plus shared tracks for non-query span trees and
// instant trace events; pid 2 is *wall-clock* engine time — one track per
// replica worker with the harness phases (build/run/digest); pid 3 (only
// when a profiler is passed) is the aggregated phase profile — the node
// tree laid out as synthetic nested "X" events whose durations are the
// inclusive nanosecond totals (a flame graph of where the run's wall time
// went, not a timeline). Timestamps are microseconds, as the format
// requires.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.h"

namespace hlsrg {

class JsonValue;
class PhaseProfiler;

// One wall-clock engine phase, seconds relative to the run's epoch.
struct WallSpan {
  std::string name;
  int track = 0;  // replica index -> tid under pid 2
  double begin_sec = 0.0;
  double end_sec = 0.0;
};

// Builds the full trace document: {"displayTimeUnit": "ms",
// "traceEvents": [...]}. Dump with .dump() and feed to Perfetto.
// `profile`, when non-null and non-empty, adds the pid-3 flame track.
[[nodiscard]] JsonValue chrome_trace_document(
    const TraceLog& log, const std::vector<WallSpan>& wall_spans = {},
    const PhaseProfiler* profile = nullptr);

// Convenience: chrome_trace_document(...).dump(...) written to `path`;
// false + *error on I/O failure.
bool write_chrome_trace(const TraceLog& log,
                        const std::vector<WallSpan>& wall_spans,
                        const std::string& path, std::string* error = nullptr,
                        const PhaseProfiler* profile = nullptr);

}  // namespace hlsrg
