#include "trace/metrics.h"

#include <algorithm>

#include "report/json.h"

namespace hlsrg {

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, nearest-rank rounded up).
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] < rank) {
      seen += buckets_[i];
      continue;
    }
    // Interpolate linearly inside the bucket, then clamp to the observed
    // range so edge buckets (which the true min/max only partially fill)
    // cannot report values never seen.
    const double lo = static_cast<double>(bucket_lo(i));
    const double hi = static_cast<double>(bucket_hi(i));
    const double within =
        static_cast<double>(rank - seen) / static_cast<double>(buckets_[i]);
    const double v = lo + (hi - lo) * within;
    return std::clamp(v, static_cast<double>(min_),
                      static_cast<double>(max_));
  }
  return static_cast<double>(max_);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_[name] = v;
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, s] : other.series_) {
    series_.emplace(name, s);  // keep-first: no-op when already present
  }
}

namespace {

JsonValue histogram_to_json(const Histogram& h) {
  JsonValue out = JsonValue::object();
  out.set("count", h.count());
  out.set("mean", h.mean());
  out.set("min", h.min());
  out.set("max", h.max());
  out.set("p50", h.quantile(0.50));
  out.set("p90", h.quantile(0.90));
  out.set("p95", h.quantile(0.95));
  out.set("p99", h.quantile(0.99));
  JsonValue buckets = JsonValue::array();
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket_count(i) == 0) continue;
    JsonValue b = JsonValue::object();
    b.set("le", Histogram::bucket_hi(i));
    b.set("count", h.bucket_count(i));
    buckets.push_back(std::move(b));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

}  // namespace

JsonValue registry_to_json(const MetricsRegistry& reg) {
  JsonValue out = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : reg.counters()) counters.set(name, v);
  out.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : reg.gauges()) gauges.set(name, v);
  out.set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::object();
  for (const auto& [name, h] : reg.histograms()) {
    hists.set(name, histogram_to_json(h));
  }
  out.set("histograms", std::move(hists));

  JsonValue series = JsonValue::object();
  for (const auto& [name, s] : reg.series()) {
    JsonValue one = JsonValue::object();
    JsonValue t = JsonValue::array();
    JsonValue v = JsonValue::array();
    for (double x : s.times_sec) t.push_back(x);
    for (double x : s.values) v.push_back(x);
    one.set("t_sec", std::move(t));
    one.set("v", std::move(v));
    series.set(name, std::move(one));
  }
  out.set("series", std::move(series));
  return out;
}

}  // namespace hlsrg
