// Span model for query-lifecycle tracing.
//
// A span is a timed interval in *simulated* time with a parent link: the
// root of each tree is a logical protocol operation (a query, an update, a
// notification) and the children are the legs it decomposed into — GPSR
// routes, individual radio hops, wired RSU hops, table lookups, the ACK leg
// back to the source. Span context propagates synchronously through the
// simulator's active-span register (see SpanScope in sim/simulator.h) and
// across event-queue hops by value, captured in the transport closures.
#pragma once

#include <cstdint>

#include "geom/vec2.h"
#include "sim/time.h"

namespace hlsrg {

// Span identifier within one TraceLog; 0 means "no span" so detached tracing
// can thread ids through closures for free.
using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

// Sentinel for "not a query-scoped span" (query ids start at 0).
inline constexpr std::uint32_t kNoQuery = 0xffffffffu;

enum class SpanKind : std::uint8_t {
  kQuery,         // root: issue -> settle, subject = Sv, other = Dv
  kUpdate,        // instant: location update broadcast, value = receivers
  kNotification,  // location server answers: notify toward Dv
  kAckLeg,        // Dv's ACK back toward Sv; closed when the query settles
  kGpsrRoute,     // one GPSR send end to end, value = hops
  kRadioHop,      // one unicast hop incl. MAC retries, value = retries used
  kWiredHop,      // one backhaul message, value = wired hop count
  kTableLookup,   // instant: location-table probe, ok = hit / failed = miss
  kRetry,         // instant: a query request re-issued after an ACK timeout,
                  // value = attempt number
  kFailover,      // instant: a send escalated around a dead component
                  // (crashed RSU, cut wired path); detail names the route
  kBatch,         // batching window at an RSU: armed -> flushed,
                  // value = queries in the batch
  kCacheHit,      // instant: RSU hot-destination cache answered a query
  kShed,          // instant: admission control refused a query or retry,
                  // detail names which
};

[[nodiscard]] const char* span_kind_name(SpanKind kind);

enum class SpanStatus : std::uint8_t {
  kOpen,    // begun, not yet ended (still possible at the run horizon)
  kOk,      // completed successfully (delivered / hit / settled ok)
  kFailed,  // abandoned / miss / query failed
};

[[nodiscard]] const char* span_status_name(SpanStatus status);

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  // kNoSpan = root
  SpanKind kind = SpanKind::kQuery;
  SpanStatus status = SpanStatus::kOpen;
  SimTime begin;
  SimTime end;
  // Participants; meaning is kind-dependent (vehicle ids for protocol spans,
  // node ids for transport hops). kNoQuery = not set.
  std::uint32_t subject = kNoQuery;
  std::uint32_t other = kNoQuery;
  Vec2 begin_pos;
  Vec2 end_pos;
  // Query this span belongs to; spans still open when the query settles are
  // closed with the query's outcome. kNoQuery for non-query spans.
  std::uint32_t query_id = kNoQuery;
  // Grid level context (1-3); -1 = not applicable.
  std::int8_t level = -1;
  // Kind-dependent magnitude: hops, receivers, retries.
  std::int32_t value = 0;
  // Static detail string (e.g. packet kind name); never owned.
  const char* detail = nullptr;

  [[nodiscard]] SimTime duration() const { return end - begin; }
};

}  // namespace hlsrg
