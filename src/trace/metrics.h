// Named metrics: counters, gauges, log-bucketed latency histograms, and
// periodic time series.
//
// The registry is the always-on companion to the optional TraceLog: feeding
// it draws no randomness and allocates only on first use of a name, so it is
// safe to populate unconditionally without perturbing determinism digests.
// Names use a dotted lowercase scheme, "<subsystem>.<quantity>[_<unit>]"
// (e.g. "query.delay_us", "gpsr.route_hops", "world.live_queries") — see
// DESIGN.md §8. Storage is std::map so iteration (and therefore JSON
// serialization) is sorted and deterministic, and node addresses are stable:
// hot paths cache the Histogram* once instead of re-hashing the name per
// sample.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hlsrg {

class JsonValue;

// Power-of-two-bucketed histogram of non-negative integer samples (latency
// in µs, hop counts, ...). Bucket 0 holds v <= 0 wholesale; bucket i >= 1
// covers [2^(i-1), 2^i - 1]. Quantiles interpolate linearly inside the
// bucket and are clamped to the exact observed [min, max], so single-sample
// and bucket-edge cases stay sane.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    ++buckets_[bucket_index(v)];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  [[nodiscard]] std::uint64_t bucket_count(int i) const { return buckets_[i]; }

  // Inclusive lower/upper value bounds of bucket i.
  [[nodiscard]] static std::int64_t bucket_lo(int i) {
    return i == 0 ? 0 : std::int64_t{1} << (i - 1);
  }
  [[nodiscard]] static std::int64_t bucket_hi(int i) {
    return i == 0 ? 0 : (std::int64_t{1} << i) - 1;
  }

  // q in [0, 1]; 0 samples -> 0.
  [[nodiscard]] double quantile(double q) const;

  // Bucket-wise sum; min/max/sum/count fold in too.
  void merge(const Histogram& other);

  [[nodiscard]] static int bucket_index(std::int64_t v) {
    if (v <= 0) return 0;
    const int w = std::bit_width(static_cast<std::uint64_t>(v));
    return w < kBuckets ? w : kBuckets - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

// One sampled time series: parallel (sim-time, value) columns.
struct TimeSeries {
  std::vector<double> times_sec;
  std::vector<double> values;

  void sample(double t_sec, double v) {
    times_sec.push_back(t_sec);
    values.push_back(v);
  }
};

class MetricsRegistry {
 public:
  // Monotonic named counter; returns a stable reference.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  // Last-write-wins named gauge.
  void set_gauge(const std::string& name, double v) { gauges_[name] = v; }

  // Named histogram; the returned pointer stays valid for the registry's
  // lifetime (std::map nodes don't move) — cache it on hot paths.
  Histogram* histogram(const std::string& name) { return &histograms_[name]; }

  // Appends one (t, v) point to a named series.
  void sample(const std::string& name, double t_sec, double v) {
    series_[name].sample(t_sec, v);
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, TimeSeries>& series() const {
    return series_;
  }

  // Cross-replica fold: counters sum, gauges keep the max, histograms merge
  // bucket-wise, series keep the first replica's samples (per-replica time
  // axes don't concatenate meaningfully).
  void merge(const MetricsRegistry& other);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

// JSON shape (report/json.h): {"counters": {...}, "gauges": {...},
// "histograms": {name: {count,mean,min,max,p50,p90,p95,p99,buckets}},
// "series": {name: {"t_sec": [...], "v": [...]}}.
[[nodiscard]] JsonValue registry_to_json(const MetricsRegistry& reg);

}  // namespace hlsrg
