#include "trace/chrome_trace.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>

#include "obs/profiler.h"
#include "report/json.h"

namespace hlsrg {
namespace {

constexpr int kSimPid = 1;
constexpr int kEnginePid = 2;
constexpr int kProfilePid = 3;
// tid layout under kSimPid: 999 = instant trace events, 1000 + query_id =
// per-query span trees, 1 + kind = spans whose root has no query id.
constexpr std::int64_t kEventsTid = 999;
constexpr std::int64_t kQueryTidBase = 1000;

std::int64_t track_for(const TraceLog& log, const Span& span) {
  const Span* root = &span;
  while (root->parent != kNoSpan) {
    const Span* parent = log.span(root->parent);
    if (parent == nullptr) break;
    root = parent;
  }
  if (root->query_id != kNoQuery) return kQueryTidBase + root->query_id;
  return 1 + static_cast<std::int64_t>(root->kind);
}

JsonValue span_args(const Span& s) {
  JsonValue args = JsonValue::object();
  args.set("status", span_status_name(s.status));
  if (s.subject != kNoQuery) args.set("subject", std::uint64_t{s.subject});
  if (s.other != kNoQuery) args.set("other", std::uint64_t{s.other});
  if (s.query_id != kNoQuery) args.set("query_id", std::uint64_t{s.query_id});
  if (s.level >= 0) args.set("level", static_cast<int>(s.level));
  if (s.value != 0) args.set("value", s.value);
  if (s.detail != nullptr) args.set("detail", s.detail);
  args.set("begin_x", s.begin_pos.x);
  args.set("begin_y", s.begin_pos.y);
  args.set("end_x", s.end_pos.x);
  args.set("end_y", s.end_pos.y);
  return args;
}

JsonValue meta_event(int pid, std::int64_t tid, const char* what,
                     const std::string& name) {
  JsonValue e = JsonValue::object();
  e.set("name", what);
  e.set("ph", "M");
  e.set("pid", pid);
  if (tid >= 0) e.set("tid", tid);
  JsonValue args = JsonValue::object();
  args.set("name", name);
  e.set("args", std::move(args));
  return e;
}

// Lays out the profile subtree rooted at `node` as nested "X" events
// starting at `ts_us`. This is a flame graph, not a timeline: a node's
// duration is its inclusive total and its children are packed side by side
// (name order) from its start, so nesting renders call structure while
// widths render time share.
void emit_profile_node(const PhaseProfiler& prof, int node, double ts_us,
                       JsonValue* events) {
  const PhaseProfiler::Node& n =
      prof.nodes()[static_cast<std::size_t>(node)];
  const double dur_us = static_cast<double>(n.inclusive_ns) / 1e3;
  JsonValue ev = JsonValue::object();
  ev.set("name", n.name);
  ev.set("cat", "profile");
  ev.set("ph", "X");
  ev.set("pid", kProfilePid);
  ev.set("tid", std::int64_t{0});
  ev.set("ts", ts_us);
  ev.set("dur", dur_us);
  JsonValue args = JsonValue::object();
  args.set("calls", n.calls);
  args.set("inclusive_ns", n.inclusive_ns);
  args.set("exclusive_ns", n.exclusive_ns());
  ev.set("args", std::move(args));
  events->push_back(std::move(ev));
  std::vector<int> children = n.children;
  std::sort(children.begin(), children.end(), [&prof](int a, int b) {
    return std::strcmp(prof.nodes()[static_cast<std::size_t>(a)].name,
                       prof.nodes()[static_cast<std::size_t>(b)].name) < 0;
  });
  double cursor = ts_us;
  for (int child : children) {
    emit_profile_node(prof, child, cursor, events);
    cursor += static_cast<double>(
                  prof.nodes()[static_cast<std::size_t>(child)].inclusive_ns) /
              1e3;
  }
}

}  // namespace

JsonValue chrome_trace_document(const TraceLog& log,
                                const std::vector<WallSpan>& wall_spans,
                                const PhaseProfiler* profile) {
  JsonValue events = JsonValue::array();

  // Horizon for spans still open at the end of the run.
  double max_sec = 0.0;
  for (const Span& s : log.spans()) {
    max_sec = std::max(max_sec, std::max(s.begin.sec(), s.end.sec()));
  }
  for (const TraceEvent& e : log.events()) {
    max_sec = std::max(max_sec, e.time.sec());
  }

  std::map<std::int64_t, std::string> sim_threads;
  for (const Span& s : log.spans()) {
    const std::int64_t tid = track_for(log, s);
    if (tid >= kQueryTidBase) {
      sim_threads.emplace(
          tid, "query " + std::to_string(tid - kQueryTidBase));
    } else {
      sim_threads.emplace(
          tid, std::string(span_kind_name(s.kind)) + " (no query)");
    }
    const double begin_sec = s.begin.sec();
    const double end_sec =
        s.status == SpanStatus::kOpen ? max_sec : s.end.sec();
    JsonValue ev = JsonValue::object();
    ev.set("name", span_kind_name(s.kind));
    ev.set("cat", "span");
    ev.set("pid", kSimPid);
    ev.set("tid", tid);
    ev.set("ts", begin_sec * 1e6);
    if (end_sec > begin_sec) {
      ev.set("ph", "X");
      ev.set("dur", (end_sec - begin_sec) * 1e6);
    } else {
      ev.set("ph", "i");
      ev.set("s", "t");
    }
    ev.set("args", span_args(s));
    events.push_back(std::move(ev));
  }

  if (!log.events().empty()) {
    sim_threads.emplace(kEventsTid, "events");
  }
  for (const TraceEvent& e : log.events()) {
    JsonValue ev = JsonValue::object();
    ev.set("name", trace_event_name(e.kind));
    ev.set("cat", "event");
    ev.set("ph", "i");
    ev.set("s", "t");
    ev.set("pid", kSimPid);
    ev.set("tid", kEventsTid);
    ev.set("ts", e.time.sec() * 1e6);
    JsonValue args = JsonValue::object();
    if (e.subject.valid()) args.set("subject", std::uint64_t{e.subject.value()});
    if (e.other.valid()) args.set("other", std::uint64_t{e.other.value()});
    args.set("query_id", std::uint64_t{e.query_id});
    args.set("x", e.pos.x);
    args.set("y", e.pos.y);
    ev.set("args", std::move(args));
    events.push_back(std::move(ev));
  }

  std::map<std::int64_t, std::string> engine_threads;
  for (const WallSpan& w : wall_spans) {
    engine_threads.emplace(w.track, "replica " + std::to_string(w.track));
    JsonValue ev = JsonValue::object();
    ev.set("name", w.name);
    ev.set("cat", "engine");
    ev.set("ph", "X");
    ev.set("pid", kEnginePid);
    ev.set("tid", std::int64_t{w.track});
    ev.set("ts", w.begin_sec * 1e6);
    ev.set("dur", std::max(0.0, w.end_sec - w.begin_sec) * 1e6);
    events.push_back(std::move(ev));
  }

  // pid 3: aggregated phase-profile flame track. The synthetic root never
  // closes (it has no inclusive time), so its children are packed from 0.
  if (profile != nullptr && !profile->empty()) {
    double cursor = 0.0;
    std::vector<int> roots = profile->nodes()[0].children;
    std::sort(roots.begin(), roots.end(), [profile](int a, int b) {
      return std::strcmp(
                 profile->nodes()[static_cast<std::size_t>(a)].name,
                 profile->nodes()[static_cast<std::size_t>(b)].name) < 0;
    });
    for (int child : roots) {
      emit_profile_node(*profile, child, cursor, &events);
      cursor +=
          static_cast<double>(
              profile->nodes()[static_cast<std::size_t>(child)].inclusive_ns) /
          1e3;
    }
    events.push_back(
        meta_event(kProfilePid, -1, "process_name", "phase profile (flame)"));
    events.push_back(meta_event(kProfilePid, 0, "thread_name", "phases"));
  }

  events.push_back(
      meta_event(kSimPid, -1, "process_name", "simulation (sim time)"));
  for (const auto& [tid, name] : sim_threads) {
    events.push_back(meta_event(kSimPid, tid, "thread_name", name));
  }
  if (!wall_spans.empty()) {
    events.push_back(
        meta_event(kEnginePid, -1, "process_name", "engine (wall clock)"));
    for (const auto& [tid, name] : engine_threads) {
      events.push_back(meta_event(kEnginePid, tid, "thread_name", name));
    }
  }

  JsonValue doc = JsonValue::object();
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(events));
  return doc;
}

bool write_chrome_trace(const TraceLog& log,
                        const std::vector<WallSpan>& wall_spans,
                        const std::string& path, std::string* error,
                        const PhaseProfiler* profile) {
  return write_json_file(chrome_trace_document(log, wall_spans, profile), path,
                         error);
}

}  // namespace hlsrg
