#include "trace/trace.h"

#include <cstdio>
#include <cstring>

namespace hlsrg {
namespace {

// Fixed-precision float -> string that is byte-stable across platforms: the
// C locale may use ',' as the decimal separator, so normalize it back to
// '.' after formatting.
std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  for (char* p = buf; *p != '\0'; ++p) {
    if (*p == ',') *p = '.';
  }
  return buf;
}

// RFC-4180 quoting: wrap fields containing separators/quotes/newlines and
// double any embedded quotes. Numeric fields never trigger it; it keeps the
// export safe if a detail/name field ever grows free text.
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kUpdateSent:
      return "update_sent";
    case TraceEventKind::kQueryIssued:
      return "query_issued";
    case TraceEventKind::kQuerySucceeded:
      return "query_succeeded";
    case TraceEventKind::kQueryFailed:
      return "query_failed";
    case TraceEventKind::kNotification:
      return "notification";
    case TraceEventKind::kAckSent:
      return "ack_sent";
    case TraceEventKind::kTableHandoff:
      return "table_handoff";
    case TraceEventKind::kTablePush:
      return "table_push";
  }
  return "unknown";
}

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kUpdate:
      return "update";
    case SpanKind::kNotification:
      return "notification";
    case SpanKind::kAckLeg:
      return "ack_leg";
    case SpanKind::kGpsrRoute:
      return "gpsr_route";
    case SpanKind::kRadioHop:
      return "radio_hop";
    case SpanKind::kWiredHop:
      return "wired_hop";
    case SpanKind::kTableLookup:
      return "table_lookup";
    case SpanKind::kRetry:
      return "retry";
    case SpanKind::kFailover:
      return "failover";
    case SpanKind::kBatch:
      return "batch";
    case SpanKind::kCacheHit:
      return "cache_hit";
    case SpanKind::kShed:
      return "shed";
  }
  return "unknown";
}

const char* span_status_name(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOpen:
      return "open";
    case SpanStatus::kOk:
      return "ok";
    case SpanStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

std::size_t TraceLog::count(TraceEventKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<TraceEvent> TraceLog::for_vehicle(VehicleId v) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.subject == v || e.other == v) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::for_query(std::uint32_t query_id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    // query_id 0 is a valid id, so filter by kinds that carry one.
    switch (e.kind) {
      case TraceEventKind::kQueryIssued:
      case TraceEventKind::kQuerySucceeded:
      case TraceEventKind::kQueryFailed:
      case TraceEventKind::kNotification:
      case TraceEventKind::kAckSent:
        if (e.query_id == query_id) out.push_back(e);
        break;
      default:
        break;
    }
  }
  return out;
}

std::string TraceLog::to_csv() const {
  std::string out = "time_s,kind,subject,other,x,y,query_id\n";
  for (const TraceEvent& e : events_) {
    out += format_fixed(e.time.sec(), 6);
    out += ',';
    out += csv_escape(trace_event_name(e.kind));
    out += ',';
    if (e.subject.valid()) out += std::to_string(e.subject.value());
    out += ',';
    if (e.other.valid()) out += std::to_string(e.other.value());
    out += ',';
    out += format_fixed(e.pos.x, 3);
    out += ',';
    out += format_fixed(e.pos.y, 3);
    out += ',';
    out += std::to_string(e.query_id);
    out += '\n';
  }
  return out;
}

SpanId TraceLog::begin_span(Span span, SimTime begin) {
  if (spans_.size() >= max_spans_) {
    ++dropped_spans_;
    return kNoSpan;
  }
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.status = SpanStatus::kOpen;
  span.begin = begin;
  span.end = begin;
  spans_.push_back(span);
  return span.id;
}

void TraceLog::end_span(SpanId id, SimTime end, SpanStatus status,
                        Vec2 end_pos, std::int32_t value) {
  if (id == kNoSpan || id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (s.status != SpanStatus::kOpen) return;  // first close wins
  s.status = status;
  s.end = end;
  s.end_pos = end_pos;
  if (value >= 0) s.value = value;
}

void TraceLog::end_open_spans_for_query(std::uint32_t query_id, SimTime end,
                                        SpanStatus status) {
  for (Span& s : spans_) {
    if (s.query_id != query_id || s.status != SpanStatus::kOpen) continue;
    s.status = status;
    s.end = end;
    s.end_pos = s.begin_pos;
  }
}

std::vector<Span> TraceLog::children_of(SpanId parent) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.parent == parent) out.push_back(s);
  }
  return out;
}

std::vector<Span> TraceLog::spans_for_query(std::uint32_t query_id) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.query_id == query_id) out.push_back(s);
  }
  return out;
}

namespace {

void append_span_line(std::string& out, const TraceLog& log, const Span& s,
                      int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += span_kind_name(s.kind);
  out += " [";
  out += span_status_name(s.status);
  out += "] ";
  out += format_fixed(s.begin.sec(), 6);
  out += "s -> ";
  out += format_fixed(s.end.sec(), 6);
  out += 's';
  if (s.subject != kNoQuery) {
    out += " subject=";
    out += std::to_string(s.subject);
  }
  if (s.other != kNoQuery) {
    out += " other=";
    out += std::to_string(s.other);
  }
  if (s.query_id != kNoQuery) {
    out += " query=";
    out += std::to_string(s.query_id);
  }
  if (s.level >= 0) {
    out += " level=";
    out += std::to_string(s.level);
  }
  if (s.value != 0) {
    out += " value=";
    out += std::to_string(s.value);
  }
  if (s.detail != nullptr) {
    out += " detail=";
    out += s.detail;
  }
  out += '\n';
  for (const Span& child : log.children_of(s.id)) {
    append_span_line(out, log, child, depth + 1);
  }
}

}  // namespace

std::string TraceLog::span_tree_text() const {
  std::string out;
  for (const Span& s : spans_) {
    if (s.parent == kNoSpan) append_span_line(out, *this, s, 0);
  }
  return out;
}

}  // namespace hlsrg
