// Optional per-run trace: semantic events plus query-lifecycle spans.
//
// When a TraceLog is attached to the Simulator, protocol code records
// semantic events (updates sent, queries issued/settled, notifications,
// ACKs, aggregation pushes) and span trees (query -> GPSR route -> radio
// hop, wired hop, table lookup, ACK leg) with sim-time stamps and positions.
// The trace costs nothing when detached (a null check) and gives
// examples/tests a way to assert on protocol *behaviour* rather than just
// aggregate counters, plus CSV / Chrome-trace / span-tree exports for
// offline analysis (see trace/chrome_trace.h).
//
// Memory is bounded: past the configured caps, new events/spans are counted
// in dropped_events()/dropped_spans() instead of stored, so long runs cannot
// exhaust the host.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec2.h"
#include "sim/time.h"
#include "trace/span.h"
#include "util/tagged_id.h"

namespace hlsrg {

enum class TraceEventKind : std::uint8_t {
  kUpdateSent,      // subject = updating vehicle
  kQueryIssued,     // subject = source, other = target
  kQuerySucceeded,  // subject = source, other = target
  kQueryFailed,     // subject = source, other = target
  kNotification,    // subject = target being searched
  kAckSent,         // subject = responder
  kTableHandoff,    // subject = leaving center vehicle
  kTablePush,       // subject = pushing vehicle (or RSU summary)
};

[[nodiscard]] const char* trace_event_name(TraceEventKind kind);

struct TraceEvent {
  SimTime time;
  TraceEventKind kind;
  VehicleId subject;
  VehicleId other;        // second participant where applicable
  Vec2 pos;               // where it happened (when known)
  std::uint32_t query_id = 0;
};

class TraceLog {
 public:
  // Default caps bound a trace to ~100 MB worst case; raise or lower per
  // run (scenario_cli --trace-cap). 0 disables the respective storage
  // entirely (everything is counted as dropped).
  static constexpr std::size_t kDefaultCap = std::size_t{1} << 20;

  TraceLog() = default;

  void set_capacity(std::size_t max_events, std::size_t max_spans) {
    max_events_ = max_events;
    max_spans_ = max_spans;
  }

  void record(TraceEvent event) {
    if (events_.size() >= max_events_) {
      ++dropped_events_;
      return;
    }
    events_.push_back(event);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped_events() const {
    return dropped_events_;
  }
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_spans_; }

  // Number of events of one kind.
  [[nodiscard]] std::size_t count(TraceEventKind kind) const;

  // Events touching one vehicle (as subject or other), in time order.
  [[nodiscard]] std::vector<TraceEvent> for_vehicle(VehicleId v) const;

  // Events for one query id, in time order.
  [[nodiscard]] std::vector<TraceEvent> for_query(std::uint32_t query_id) const;

  // CSV export: time_s,kind,subject,other,x,y,query_id. Floats are emitted
  // with fixed precision and a '.' decimal separator regardless of the
  // process locale, so the output is byte-stable across platforms.
  [[nodiscard]] std::string to_csv() const;

  // ---- spans ------------------------------------------------------------

  // Opens a span at `begin`; `span.id` is assigned (index + 1) and `parent`
  // is kept as passed. Returns kNoSpan when the span cap is reached.
  SpanId begin_span(Span span, SimTime begin);

  // Closes an open span; a no-op for kNoSpan or spans already ended, so the
  // settle-time sweep below cannot relabel legs that ended on their own.
  void end_span(SpanId id, SimTime end, SpanStatus status,
                Vec2 end_pos = Vec2{}, std::int32_t value = -1);

  // Closes every still-open span carrying `query_id` (root + in-flight
  // legs) with the query's outcome — called when a query settles.
  void end_open_spans_for_query(std::uint32_t query_id, SimTime end,
                                SpanStatus status);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }

  // nullptr for kNoSpan / dropped ids.
  [[nodiscard]] const Span* span(SpanId id) const {
    if (id == kNoSpan || id > spans_.size()) return nullptr;
    return &spans_[id - 1];
  }

  // Direct children of `parent`, in begin order (== record order).
  [[nodiscard]] std::vector<Span> children_of(SpanId parent) const;

  // All spans tagged with `query_id`, in record order.
  [[nodiscard]] std::vector<Span> spans_for_query(
      std::uint32_t query_id) const;

  // Indented text dump of every span tree, roots in begin order.
  [[nodiscard]] std::string span_tree_text() const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<Span> spans_;
  std::size_t max_events_ = kDefaultCap;
  std::size_t max_spans_ = kDefaultCap;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t dropped_spans_ = 0;
};

}  // namespace hlsrg
