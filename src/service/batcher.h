// Batching window for co-destined queries at an RSU (service tier).
//
// The first query toward a (wired destination, target vehicle) pair arms a
// window; queries for the same pair arriving inside it are held and the
// whole set leaves as a single kQueryBatch wired lookup when the window
// closes or the batch hits its size cap. Replies fan back out per query on
// the normal notification path, so batching changes wired-message count,
// never query semantics.
//
// The batcher is pure state: the owning RSU agent arms/cancels the window
// timers (it knows about crashes and the simulator), the batcher just keeps
// the pending sets keyed by destination.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/messages.h"
#include "sim/event_queue.h"
#include "trace/span.h"
#include "util/ordered.h"
#include "util/tagged_id.h"

namespace hlsrg {

class QueryBatcher {
 public:
  struct Batch {
    std::vector<QueryPayload> queries;
    EventHandle timer{};
    SpanId span = kNoSpan;  // kBatch span: armed -> flushed
  };

  enum class Enqueue {
    kArmWindow,  // first query of a new batch: caller arms the window timer
    kHeld,       // joined an existing open batch
    kFlushNow,   // batch reached max size: caller takes and sends it
  };

  Enqueue add(NodeId dest, VehicleId target, const QueryPayload& query,
              int max_batch) {
    Batch& b = pending_[key(dest, target)];
    b.queries.push_back(query);
    if (static_cast<int>(b.queries.size()) >= max_batch) {
      return Enqueue::kFlushNow;
    }
    return b.queries.size() == 1 ? Enqueue::kArmWindow : Enqueue::kHeld;
  }

  [[nodiscard]] Batch* find(NodeId dest, VehicleId target) {
    auto it = pending_.find(key(dest, target));
    return it == pending_.end() ? nullptr : &it->second;
  }

  // Removes and returns the batch for (dest, target); empty when none.
  [[nodiscard]] Batch take(NodeId dest, VehicleId target) {
    auto it = pending_.find(key(dest, target));
    if (it == pending_.end()) return {};
    Batch b = std::move(it->second);
    pending_.erase(it);
    return b;
  }

  // Removes every pending batch (crash path); the caller cancels the timers
  // and lets the sources' retry machinery recover the held queries. Drained
  // in (destination, target) key order: the caller re-dispatches these, so
  // drain order is digest-affecting and must not depend on hash layout.
  [[nodiscard]] std::vector<Batch> drain_all() {
    std::vector<Batch> out;
    out.reserve(pending_.size());
    for (auto* entry : det::sorted_view(pending_)) {
      out.push_back(std::move(entry->second));
    }
    pending_.clear();
    return out;
  }

  [[nodiscard]] std::size_t pending_batches() const { return pending_.size(); }

 private:
  [[nodiscard]] static std::uint64_t key(NodeId dest, VehicleId target) {
    return (static_cast<std::uint64_t>(dest.value()) << 32) |
           static_cast<std::uint64_t>(target.value());
  }
  std::unordered_map<std::uint64_t, Batch> pending_;
};

}  // namespace hlsrg
