#include "service/open_loop.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hlsrg {

OpenLoopGenerator::OpenLoopGenerator(Simulator& sim, QueryAdmission& admission,
                                     const ServiceTierConfig& cfg,
                                     std::size_t vehicles,
                                     std::size_t hotspot_targets)
    : sim_(&sim),
      admission_(&admission),
      cfg_(cfg),
      vehicles_(vehicles),
      hotspot_targets_(std::min(hotspot_targets, vehicles)) {
  HLSRG_CHECK(vehicles_ >= 2);
}

double OpenLoopGenerator::rate_at(SimTime t) const {
  const double dt = (t - begin_).sec();
  return std::max(0.0, cfg_.open_loop_rate_per_sec +
                           cfg_.open_loop_ramp_per_sec2 * dt);
}

void OpenLoopGenerator::start(SimTime begin, SimTime end) {
  if (cfg_.open_loop_rate_per_sec <= 0.0 &&
      cfg_.open_loop_ramp_per_sec2 <= 0.0) {
    return;
  }
  begin_ = begin;
  end_ = end;
  // The ramp is linear, so the rate's maximum over [begin, end) sits at an
  // endpoint; that is the thinning envelope.
  peak_rate_ = std::max(rate_at(begin), rate_at(end));
  if (peak_rate_ <= 0.0) return;
  schedule_next(begin);
}

void OpenLoopGenerator::schedule_next(SimTime from) {
  // Thinning (Lewis & Shedler): candidate arrivals at the constant envelope
  // rate, each accepted with probability rate(t)/peak. Exact for any rate
  // function bounded by the envelope, and O(1) state.
  Rng& rng = sim_->open_loop_rng();
  SimTime t = from;
  while (true) {
    const double u = std::max(rng.uniform(), 1e-12);
    t = t + SimTime::from_sec(-std::log(u) / peak_rate_);
    if (t >= end_) return;
    if (rng.uniform() * peak_rate_ <= rate_at(t)) break;
  }
  sim_->schedule_at(t, [this] { fire(); });
}

void OpenLoopGenerator::fire() {
  Rng& rng = sim_->open_loop_rng();
  const auto src = VehicleId{rng.uniform_u64(vehicles_)};
  VehicleId dst;
  if (hotspot_targets_ > 0 && rng.chance(cfg_.hotspot_fraction)) {
    dst = VehicleId{rng.uniform_u64(hotspot_targets_)};
  } else {
    dst = VehicleId{rng.uniform_u64(vehicles_)};
  }
  if (dst == src) dst = VehicleId{(dst.value() + 1) % vehicles_};
  ++generated_;
  admission_->submit(src, dst, QueryOrigin::kOpenLoop);
  schedule_next(sim_->now());
}

}  // namespace hlsrg
