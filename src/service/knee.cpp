#include "service/knee.h"

#include <algorithm>
#include <numeric>

namespace hlsrg {

KneeResult find_knee(const std::vector<LoadPoint>& points,
                     double p99_budget_ms, double min_served) {
  KneeResult result;
  if (points.empty()) return result;

  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&points](std::size_t a, std::size_t b) {
                     return points[a].offered_rate < points[b].offered_rate;
                   });

  for (std::size_t i : order) {
    const LoadPoint& p = points[i];
    const bool admissible = p.p99_ms <= p99_budget_ms &&
                            p.served_rate >= min_served;
    if (!admissible) continue;
    if (!result.found || p.offered_rate >= result.knee_rate) {
      result.found = true;
      result.knee_index = i;
      result.knee_rate = p.offered_rate;
      result.p99_at_knee_ms = p.p99_ms;
    }
    result.sustained_goodput = std::max(result.sustained_goodput, p.goodput);
  }
  return result;
}

}  // namespace hlsrg
