// Open-loop Poisson workload generator (service tier).
//
// The scenario's closed-loop requester issues a query, waits for it to
// settle, and only its retry cadence applies back-pressure — it cannot push
// a protocol past its saturation knee, because a slow service slows the
// offered load down with it. The open-loop generator has no such feedback:
// arrivals follow a (possibly ramped) Poisson process whether or not any
// earlier query ever settled, which is what exposes the knee that
// bench/load_knee sweeps for.
//
// Arrivals are scheduled one at a time (no precomputed arrival list, so
// memory is O(1) in the horizon) by thinning against the peak rate of the
// ramp, drawing exclusively from Simulator::open_loop_rng — enabling the
// generator never perturbs the mobility, radio, protocol, or closed-loop
// workload streams.
#pragma once

#include <cstdint>

#include "service/admission.h"
#include "service/service_config.h"
#include "sim/simulator.h"

namespace hlsrg {

class OpenLoopGenerator {
 public:
  // `vehicles` is the fleet size; sources are uniform over it, destinations
  // follow the hotspot skew over the first `hotspot_targets` vehicles.
  OpenLoopGenerator(Simulator& sim, QueryAdmission& admission,
                    const ServiceTierConfig& cfg, std::size_t vehicles,
                    std::size_t hotspot_targets);

  // Starts the arrival process over [begin, end). No-op when the configured
  // base rate is zero.
  void start(SimTime begin, SimTime end);

  // Instantaneous arrival rate at `t` (clamped at zero for negative ramps).
  [[nodiscard]] double rate_at(SimTime t) const;

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next(SimTime from);
  void fire();

  Simulator* sim_;
  QueryAdmission* admission_;
  ServiceTierConfig cfg_;
  std::size_t vehicles_;
  std::size_t hotspot_targets_;
  SimTime begin_;
  SimTime end_;
  double peak_rate_ = 0.0;
  std::uint64_t generated_ = 0;
};

}  // namespace hlsrg
