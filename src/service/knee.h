// Knee-point analysis for open-loop rate sweeps.
//
// A single-rate average hides saturation: goodput climbs with offered rate
// until queueing blows the tail delay up, then collapses. bench/load_knee
// sweeps offered rates and this module reduces the curve to its knee — the
// highest offered rate the service sustains while the p99 delay stays under
// a budget — so the report carries one comparable "sustained goodput"
// number per tier configuration.
#pragma once

#include <cstddef>
#include <vector>

namespace hlsrg {

// One point of a rate sweep (aggregated over replicas).
struct LoadPoint {
  double offered_rate = 0.0;  // queries/sec submitted to admission
  double goodput = 0.0;       // queries/sec answered successfully
  double p99_ms = 0.0;        // p99 query delay at this rate
  double served_rate = 0.0;   // succeeded / offered (shed included)
  double availability = 0.0;  // success rate inside fault windows
};

struct KneeResult {
  bool found = false;          // false when even the lowest rate busts p99
  std::size_t knee_index = 0;  // index into the (rate-sorted) points
  double knee_rate = 0.0;      // offered rate at the knee
  double sustained_goodput = 0.0;  // best goodput at or below the knee
  double p99_at_knee_ms = 0.0;
};

// Finds the knee of `points` under a p99 budget: the highest offered rate
// whose p99 delay is <= p99_budget_ms and whose served rate is >=
// min_served. Points are evaluated in offered-rate order (the input need
// not be sorted). `sustained_goodput` is the best goodput among admissible
// points, which tolerates non-monotone goodput near saturation.
[[nodiscard]] KneeResult find_knee(const std::vector<LoadPoint>& points,
                                   double p99_budget_ms, double min_served);

}  // namespace hlsrg
