// Configuration for the heavy-traffic serving tier (src/service).
//
// The tier layers four mechanisms over a protocol's query plane: an
// open-loop Poisson workload generator (arrivals keep coming whether or not
// earlier queries finished — the closed-loop requester model cannot push a
// protocol past its knee), a batching window at L2/L3 RSUs that aggregates
// co-destined queries into one wired lookup, a hot-destination record cache
// at RSUs, and admission control that sheds load once too many queries are
// outstanding. Everything defaults OFF: a default-constructed config leaves
// a run event-for-event identical to a tier-unaware build.
#pragma once

#include <cstddef>

#include "sim/time.h"

namespace hlsrg {

struct ServiceTierConfig {
  // Master switch. Off, the QueryAdmission seam still routes every query
  // (one accounting point for offered counts) but never sheds, never
  // caches, and never batches.
  bool enabled = false;

  // --- open-loop workload ---------------------------------------------------
  // Poisson arrival rate at the start of the query window; 0 disables the
  // generator. Arrivals are scheduled on the fly from a dedicated RNG
  // stream (Simulator::open_loop_rng), so replicas stay deterministic and
  // the closed-loop workload draws are untouched.
  double open_loop_rate_per_sec = 0.0;
  // Linear rate ramp: rate(t) = open_loop_rate_per_sec + ramp * (t - start).
  // Negative ramps are clamped at zero.
  double open_loop_ramp_per_sec2 = 0.0;
  // Destinations are drawn from the first `hotspot_targets` vehicles with
  // this probability (the existing hotspot skew); the rest are uniform.
  double hotspot_fraction = 0.8;

  // --- RSU serving capacity -------------------------------------------------
  // CPU/directory cost of one query lookup at an RSU. Each RSU processes
  // lookups serially: arrivals past its capacity wait in a FIFO, so offered
  // load beyond ~1/rsu_lookup_time per RSU queues up and the latency knee
  // becomes visible. A batched window is ONE lookup regardless of size —
  // that is what batching buys. 0 = instant lookups (the pre-tier model).
  SimTime rsu_lookup_time = SimTime{};

  // --- admission control / load shedding ------------------------------------
  // Shed new queries once this many are outstanding (hysteresis: overload
  // clears at half the bound). 0 = unlimited, never shed.
  std::size_t max_outstanding = 0;
  // While overloaded, protocol retry attempts are refused as well (the
  // query fails immediately and is counted — never silently dropped).
  bool shed_retries = true;

  // --- RSU batching window --------------------------------------------------
  bool batching = false;
  // How long the first query of a batch waits for co-destined company.
  SimTime batch_window = SimTime::from_ms(50.0);
  // Flush early once a batch reaches this many queries.
  int max_batch = 8;

  // --- hot-destination cache ------------------------------------------------
  bool caching = false;
  SimTime cache_ttl = SimTime::from_sec(10.0);
  std::size_t cache_capacity = 256;

  // Convenience: one call arms the whole tier with the given knobs.
  [[nodiscard]] static ServiceTierConfig full_tier(std::size_t max_outstanding,
                                                   SimTime batch_window,
                                                   int max_batch,
                                                   SimTime cache_ttl) {
    ServiceTierConfig c;
    c.enabled = true;
    c.max_outstanding = max_outstanding;
    c.batching = true;
    c.batch_window = batch_window;
    c.max_batch = max_batch;
    c.caching = true;
    c.cache_ttl = cache_ttl;
    return c;
  }
};

}  // namespace hlsrg
