// QueryAdmission: the single entry point for query issuance.
//
// Every query submission — the closed-loop requester, the open-loop
// generator, and (via LocationService::admission()) the protocol's
// ACK-timeout retry path — funnels through one object so offered load,
// shedding, and the cached-serve fast path are accounted in exactly one
// place. Shed work is never silent: it lands in RunMetrics
// (queries_shed / retries_shed), in the PacketLedger's shed column under
// the protocol's query kind, and as a kShed instant span, and the
// ConservationAuditor reconciles all three.
//
// Header-only on purpose: src/core (vehicle retry path) and src/harness
// both use it, and a .cpp here would cycle the core <-> service libraries.
#pragma once

#include <cstddef>
#include <optional>

#include "core/location_service.h"
#include "service/service_config.h"
#include "sim/simulator.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Who is submitting; reports and tests distinguish paper-scenario load from
// stress load.
enum class QueryOrigin : std::uint8_t {
  kClosedLoop,  // the scenario's requester model
  kOpenLoop,    // the service-tier Poisson generator
};

class QueryAdmission {
 public:
  QueryAdmission(Simulator& sim, LocationService& svc,
                 const ServiceTierConfig& cfg)
      : sim_(&sim), svc_(&svc), cfg_(cfg) {
    svc.set_admission(this);
  }

  // Submits a query for admission. Returns the tracked query id, or nullopt
  // when admission shed it (the query was counted but never issued).
  std::optional<QueryTracker::QueryId> submit(VehicleId src, VehicleId dst,
                                              QueryOrigin origin) {
    (void)origin;
    RunMetrics& m = sim_->metrics();
    ++m.queries_offered;
    update_overload();
    if (overloaded_) {
      ++m.queries_shed;
      m.channel.add_shed(static_cast<int>(svc_->query_kind()));
      if (RegionTelemetry* regions = sim_->regions()) {
        ++regions->at(regions->region_of(svc_->vehicle_position(src)))
              .queries_shed;
      }
      sim_->instant_span(SpanKind::kShed, SpanStatus::kFailed, src.value(),
                         dst.value(), Vec2{}, kNoQuery, -1, "query");
      return std::nullopt;
    }
    if (cfg_.enabled && cfg_.caching) {
      if (auto cached = svc_->serve_cached(src, dst)) return cached;
    }
    return svc_->issue_query(src, dst);
  }

  // Consulted by the protocol before re-sending a timed-out request. False
  // means the retry was shed — the caller must fail the query immediately so
  // it settles (shed work never strands a query).
  [[nodiscard]] bool admit_retry(QueryTracker::QueryId id, int attempt) {
    update_overload();
    if (!overloaded_ || !cfg_.shed_retries) return true;
    RunMetrics& m = sim_->metrics();
    ++m.retries_shed;
    m.channel.add_shed(static_cast<int>(svc_->query_kind()));
    if (RegionTelemetry* regions = sim_->regions()) {
      ++regions
            ->at(regions->region_of(
                svc_->vehicle_position(svc_->tracker().source_of(id))))
            .queries_shed;
    }
    sim_->instant_span(SpanKind::kShed, SpanStatus::kFailed,
                       svc_->tracker().source_of(id).value(),
                       svc_->tracker().target_of(id).value(), Vec2{}, id, -1,
                       "retry", attempt);
    return false;
  }

  [[nodiscard]] bool overloaded() const { return overloaded_; }
  [[nodiscard]] const ServiceTierConfig& config() const { return cfg_; }

 private:
  // Hysteresis: enter overload at the bound, leave at half of it, and tell
  // the protocol about each edge so it can shed secondary radio work too.
  void update_overload() {
    if (cfg_.max_outstanding == 0 || !cfg_.enabled) return;
    const std::size_t out = svc_->tracker().outstanding();
    if (!overloaded_ && out >= cfg_.max_outstanding) {
      overloaded_ = true;
      svc_->on_overload(true);
    } else if (overloaded_ && out <= cfg_.max_outstanding / 2) {
      overloaded_ = false;
      svc_->on_overload(false);
    }
  }

  Simulator* sim_;
  LocationService* svc_;
  ServiceTierConfig cfg_;
  bool overloaded_ = false;
};

}  // namespace hlsrg
