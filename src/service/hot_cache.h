// Hot-destination location cache for RSUs (service tier).
//
// Holds full L1 records for recently-served destinations so repeat queries
// for hot targets (the workload's `hotspot_targets` skew) are answered at
// the first RSU instead of walking the wired hierarchy. Entries expire by
// TTL and are explicitly invalidated when a fresher record for the vehicle
// arrives on the update plane — a cache must never outlive the table truth
// it shadows. Bounded capacity with oldest-first eviction; the cache is
// pure bookkeeping (no RNG, no events), so enabling it shifts only the
// packets it short-circuits.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>

#include "core/messages.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

class HotDestinationCache {
 public:
  void configure(SimTime ttl, std::size_t capacity) {
    ttl_ = ttl;
    capacity_ = capacity;
  }

  // Fresh record for `dst` if one is cached and inside the TTL; expired
  // entries are erased on probe. The pointer is valid until the next
  // non-const call.
  [[nodiscard]] const L1Record* probe(VehicleId dst, SimTime now) {
    auto it = entries_.find(dst);
    if (it == entries_.end()) return nullptr;
    if (now - it->second.inserted > ttl_) {
      entries_.erase(it);
      return nullptr;
    }
    return &it->second.record;
  }

  // Inserts or refreshes a record; evicts the oldest entry at capacity.
  void fill(const L1Record& record, SimTime now) {
    if (capacity_ == 0) return;
    auto it = entries_.find(record.vehicle);
    if (it != entries_.end()) {
      it->second = Entry{record, now};
      return;
    }
    if (entries_.size() >= capacity_) {
      // HLSRG_LINT_ALLOW(unordered-iteration): min over (inserted, key) is
      // iteration-order-insensitive — the key tie-break makes the evicted
      // entry independent of hash-table layout.
      entries_.erase(std::min_element(
          entries_.begin(), entries_.end(),
          [](const auto& a, const auto& b) {
            return a.second.inserted != b.second.inserted
                       ? a.second.inserted < b.second.inserted
                       : a.first < b.first;
          }));
    }
    entries_.emplace(record.vehicle, Entry{record, now});
  }

  // Drops the entry for `vehicle` if the cached record is older than
  // `fresh_time` (a newer update just arrived). Returns true when an entry
  // was actually invalidated.
  bool invalidate_if_stale(VehicleId vehicle, SimTime fresh_time) {
    auto it = entries_.find(vehicle);
    if (it == entries_.end()) return false;
    if (it->second.record.time >= fresh_time) return false;
    entries_.erase(it);
    return true;
  }

  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    L1Record record;
    SimTime inserted;
  };
  SimTime ttl_ = SimTime::from_sec(10.0);
  std::size_t capacity_ = 256;
  std::unordered_map<VehicleId, Entry> entries_;
};

}  // namespace hlsrg
