// Minimal command-line flag parser shared by the bench binaries and the
// example CLIs. One declaration style, one error style, one --help renderer —
// previously each bench and example hand-rolled its own argv loop.
//
//   ArgParser args("runs one scenario");
//   int replicas = 3;
//   std::string out;
//   args.add_int("--replicas", "N", "replicas per point", &replicas);
//   args.add_string("--out", "FILE", "write JSON report to FILE", &out);
//   if (!args.parse(argc, argv)) return args.exit_code();
//
// Flags always consume a value except those declared with add_flag (boolean
// presence flags). Unknown flags are errors (with a did-you-mean suggestion
// when a registered flag is close); `--help` prints usage and sets
// help_requested(). Positional operands are declared with add_positional /
// add_positional_opt and filled in declaration order; a bare non-flag
// argument with no positional slot left is an error. Registering the same
// flag name twice aborts at startup — that is always a programming bug.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hlsrg {

class ArgParser {
 public:
  explicit ArgParser(std::string description)
      : description_(std::move(description)) {}

  void add_flag(const char* name, const char* help, bool* out) {
    add_spec({name, "", help, /*takes_value=*/false,
              [out](const std::string&) {
                *out = true;
                return true;
              }});
  }

  void add_string(const char* name, const char* value_name, const char* help,
                  std::string* out) {
    add_spec({name, value_name, help, /*takes_value=*/true,
              [out](const std::string& v) {
                *out = v;
                return true;
              }});
  }

  void add_int(const char* name, const char* value_name, const char* help,
               int* out) {
    add_spec({name, value_name, help, /*takes_value=*/true,
              [out](const std::string& v) {
                char* end = nullptr;
                const long parsed = std::strtol(v.c_str(), &end, 10);
                if (end == v.c_str() || *end != '\0') return false;
                *out = static_cast<int>(parsed);
                return true;
              }});
  }

  void add_uint64(const char* name, const char* value_name, const char* help,
                  std::uint64_t* out) {
    add_spec({name, value_name, help, /*takes_value=*/true,
              [out](const std::string& v) {
                char* end = nullptr;
                const unsigned long long parsed =
                    std::strtoull(v.c_str(), &end, 10);
                if (end == v.c_str() || *end != '\0') return false;
                *out = static_cast<std::uint64_t>(parsed);
                return true;
              }});
  }

  void add_double(const char* name, const char* value_name, const char* help,
                  double* out) {
    add_spec({name, value_name, help, /*takes_value=*/true,
              [out](const std::string& v) {
                char* end = nullptr;
                const double parsed = std::strtod(v.c_str(), &end);
                if (end == v.c_str() || *end != '\0') return false;
                *out = parsed;
                return true;
              }});
  }

  // Enumerated string flag: value must be one of `choices`.
  void add_choice(const char* name, const char* help,
                  std::vector<std::string> choices, std::string* out) {
    std::string value_name;
    for (const std::string& c : choices) {
      if (!value_name.empty()) value_name += '|';
      value_name += c;
    }
    add_spec({name, value_name, help, /*takes_value=*/true,
              [out, choices = std::move(choices)](const std::string& v) {
                for (const std::string& c : choices) {
                  if (v == c) {
                    *out = v;
                    return true;
                  }
                }
                return false;
              }});
  }

  // Required positional operand (filled in declaration order). parse() fails
  // when it is missing.
  void add_positional(const char* value_name, const char* help,
                      std::string* out) {
    positionals_.push_back({value_name, help, /*required=*/true, out});
  }

  // Optional positional operand; left untouched when absent. Optional
  // positionals must be declared after every required one.
  void add_positional_opt(const char* value_name, const char* help,
                          std::string* out) {
    positionals_.push_back({value_name, help, /*required=*/false, out});
  }

  // Parses argv. Returns false when parsing should stop (error or --help);
  // the caller returns exit_code(). Errors print to stderr, --help to stdout.
  [[nodiscard]] bool parse(int argc, char** argv) {
    prog_ = argc > 0 ? argv[0] : "prog";
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_requested_ = true;
        std::fputs(usage().c_str(), stdout);
        return false;
      }
      if (arg.rfind("-", 0) != 0 || arg == "-") {
        // Bare operand: fill the next declared positional slot.
        if (next_positional >= positionals_.size()) {
          std::fprintf(stderr, "unexpected argument '%s'\n%s", arg.c_str(),
                       usage().c_str());
          exit_code_ = 2;
          return false;
        }
        *positionals_[next_positional++].out = arg;
        continue;
      }
      // Accept `--flag=value` as well as `--flag value`.
      std::string inline_value;
      bool has_inline_value = false;
      if (const std::size_t eq = arg.find('=');
          eq != std::string::npos && arg.rfind("--", 0) == 0) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg.resize(eq);
      }
      const Spec* spec = find(arg);
      if (spec == nullptr) {
        const std::string near = nearest(arg);
        if (!near.empty()) {
          std::fprintf(stderr, "unknown flag '%s' (did you mean '%s'?)\n%s",
                       arg.c_str(), near.c_str(), usage().c_str());
        } else {
          std::fprintf(stderr, "unknown flag '%s'\n%s", arg.c_str(),
                       usage().c_str());
        }
        exit_code_ = 2;
        return false;
      }
      if (has_inline_value && !spec->takes_value) {
        std::fprintf(stderr, "%s does not take a value\n", arg.c_str());
        exit_code_ = 2;
        return false;
      }
      std::string value;
      if (spec->takes_value) {
        if (has_inline_value) {
          value = inline_value;
        } else if (i + 1 >= argc) {
          std::fprintf(stderr, "%s requires a value (%s)\n", arg.c_str(),
                       spec->value_name.c_str());
          exit_code_ = 2;
          return false;
        } else {
          value = argv[++i];
        }
      }
      if (!spec->apply(value)) {
        std::fprintf(stderr, "invalid value '%s' for %s (expected %s)\n",
                     value.c_str(), arg.c_str(), spec->value_name.c_str());
        exit_code_ = 2;
        return false;
      }
    }
    for (std::size_t p = next_positional; p < positionals_.size(); ++p) {
      if (positionals_[p].required) {
        std::fprintf(stderr, "missing required argument %s\n%s",
                     positionals_[p].value_name.c_str(), usage().c_str());
        exit_code_ = 2;
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  // 0 after --help, 2 after a parse error.
  [[nodiscard]] int exit_code() const { return help_requested_ ? 0 : exit_code_; }

  [[nodiscard]] std::string usage() const {
    std::string out = "usage: " + prog_ + " [options]";
    for (const Positional& p : positionals_) {
      out += p.required ? " " + p.value_name : " [" + p.value_name + "]";
    }
    if (!description_.empty()) out += "\n" + description_;
    out += "\n";
    std::size_t width = std::string("--help").size();
    for (const Positional& p : positionals_) {
      width = std::max(width, p.value_name.size());
    }
    for (const Spec& s : specs_) width = std::max(width, lhs(s).size());
    for (const Positional& p : positionals_) {
      std::string line = "  " + p.value_name;
      line.append(width + 3 - p.value_name.size(), ' ');
      line += p.help + "\n";
      out += line;
    }
    for (const Spec& s : specs_) {
      std::string line = "  " + lhs(s);
      line.append(width + 3 - lhs(s).size(), ' ');
      line += s.help + "\n";
      out += line;
    }
    out += "  --help";
    out.append(width + 3 - std::string("--help").size(), ' ');
    out += "show this message\n";
    return out;
  }

 private:
  struct Spec {
    std::string name;
    std::string value_name;
    std::string help;
    bool takes_value;
    std::function<bool(const std::string&)> apply;
  };

  struct Positional {
    std::string value_name;
    std::string help;
    bool required;
    std::string* out;
  };

  void add_spec(Spec spec) {
    if (find(spec.name) != nullptr) {
      std::fprintf(stderr, "ArgParser: duplicate flag registration '%s'\n",
                   spec.name.c_str());
      std::abort();
    }
    specs_.push_back(std::move(spec));
  }

  [[nodiscard]] static std::string lhs(const Spec& s) {
    return s.takes_value ? s.name + " " + s.value_name : s.name;
  }

  [[nodiscard]] const Spec* find(const std::string& name) const {
    for (const Spec& s : specs_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  // Closest registered flag by edit distance, or "" when nothing is within
  // a third of the typed name's length (suggesting wildly unrelated flags
  // is worse than no suggestion).
  [[nodiscard]] std::string nearest(const std::string& name) const {
    std::string best;
    std::size_t best_dist = name.size() / 3 + 1;
    for (const Spec& s : specs_) {
      const std::size_t d = edit_distance(name, s.name);
      if (d < best_dist) {
        best_dist = d;
        best = s.name;
      }
    }
    return best;
  }

  [[nodiscard]] static std::size_t edit_distance(const std::string& a,
                                                 const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t prev = row[0];
      row[0] = i;
      for (std::size_t j = 1; j <= b.size(); ++j) {
        const std::size_t cur = row[j];
        row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                           prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
        prev = cur;
      }
    }
    return row[b.size()];
  }

  std::string description_;
  std::string prog_ = "prog";
  std::vector<Spec> specs_;
  std::vector<Positional> positionals_;
  bool help_requested_ = false;
  int exit_code_ = 0;
};

}  // namespace hlsrg
