// Minimal command-line flag parser shared by the bench binaries and the
// example CLIs. One declaration style, one error style, one --help renderer —
// previously each bench and example hand-rolled its own argv loop.
//
//   ArgParser args("runs one scenario");
//   int replicas = 3;
//   std::string out;
//   args.add_int("--replicas", "N", "replicas per point", &replicas);
//   args.add_string("--out", "FILE", "write JSON report to FILE", &out);
//   if (!args.parse(argc, argv)) return args.exit_code();
//
// Flags always consume a value except those declared with add_flag (boolean
// presence flags). Unknown flags are errors; `--help` prints usage and sets
// help_requested().
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hlsrg {

class ArgParser {
 public:
  explicit ArgParser(std::string description)
      : description_(std::move(description)) {}

  void add_flag(const char* name, const char* help, bool* out) {
    specs_.push_back({name, "", help, /*takes_value=*/false,
                      [out](const std::string&) {
                        *out = true;
                        return true;
                      }});
  }

  void add_string(const char* name, const char* value_name, const char* help,
                  std::string* out) {
    specs_.push_back({name, value_name, help, /*takes_value=*/true,
                      [out](const std::string& v) {
                        *out = v;
                        return true;
                      }});
  }

  void add_int(const char* name, const char* value_name, const char* help,
               int* out) {
    specs_.push_back({name, value_name, help, /*takes_value=*/true,
                      [out](const std::string& v) {
                        char* end = nullptr;
                        const long parsed = std::strtol(v.c_str(), &end, 10);
                        if (end == v.c_str() || *end != '\0') return false;
                        *out = static_cast<int>(parsed);
                        return true;
                      }});
  }

  void add_uint64(const char* name, const char* value_name, const char* help,
                  std::uint64_t* out) {
    specs_.push_back({name, value_name, help, /*takes_value=*/true,
                      [out](const std::string& v) {
                        char* end = nullptr;
                        const unsigned long long parsed =
                            std::strtoull(v.c_str(), &end, 10);
                        if (end == v.c_str() || *end != '\0') return false;
                        *out = static_cast<std::uint64_t>(parsed);
                        return true;
                      }});
  }

  void add_double(const char* name, const char* value_name, const char* help,
                  double* out) {
    specs_.push_back({name, value_name, help, /*takes_value=*/true,
                      [out](const std::string& v) {
                        char* end = nullptr;
                        const double parsed = std::strtod(v.c_str(), &end);
                        if (end == v.c_str() || *end != '\0') return false;
                        *out = parsed;
                        return true;
                      }});
  }

  // Enumerated string flag: value must be one of `choices`.
  void add_choice(const char* name, const char* help,
                  std::vector<std::string> choices, std::string* out) {
    std::string value_name;
    for (const std::string& c : choices) {
      if (!value_name.empty()) value_name += '|';
      value_name += c;
    }
    specs_.push_back({name, value_name, help, /*takes_value=*/true,
                      [out, choices = std::move(choices)](const std::string& v) {
                        for (const std::string& c : choices) {
                          if (v == c) {
                            *out = v;
                            return true;
                          }
                        }
                        return false;
                      }});
  }

  // Parses argv. Returns false when parsing should stop (error or --help);
  // the caller returns exit_code(). Errors print to stderr, --help to stdout.
  [[nodiscard]] bool parse(int argc, char** argv) {
    prog_ = argc > 0 ? argv[0] : "prog";
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_requested_ = true;
        std::fputs(usage().c_str(), stdout);
        return false;
      }
      // Accept `--flag=value` as well as `--flag value`.
      std::string inline_value;
      bool has_inline_value = false;
      if (const std::size_t eq = arg.find('=');
          eq != std::string::npos && arg.rfind("--", 0) == 0) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg.resize(eq);
      }
      const Spec* spec = find(arg);
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown flag '%s'\n%s", arg.c_str(),
                     usage().c_str());
        exit_code_ = 2;
        return false;
      }
      if (has_inline_value && !spec->takes_value) {
        std::fprintf(stderr, "%s does not take a value\n", arg.c_str());
        exit_code_ = 2;
        return false;
      }
      std::string value;
      if (spec->takes_value) {
        if (has_inline_value) {
          value = inline_value;
        } else if (i + 1 >= argc) {
          std::fprintf(stderr, "%s requires a value (%s)\n", arg.c_str(),
                       spec->value_name.c_str());
          exit_code_ = 2;
          return false;
        } else {
          value = argv[++i];
        }
      }
      if (!spec->apply(value)) {
        std::fprintf(stderr, "invalid value '%s' for %s (expected %s)\n",
                     value.c_str(), arg.c_str(), spec->value_name.c_str());
        exit_code_ = 2;
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  // 0 after --help, 2 after a parse error.
  [[nodiscard]] int exit_code() const { return help_requested_ ? 0 : exit_code_; }

  [[nodiscard]] std::string usage() const {
    std::string out = "usage: " + prog_ + " [options]";
    if (!description_.empty()) out += "\n" + description_;
    out += "\n";
    std::size_t width = std::string("--help").size();
    for (const Spec& s : specs_) width = std::max(width, lhs(s).size());
    for (const Spec& s : specs_) {
      std::string line = "  " + lhs(s);
      line.append(width + 3 - lhs(s).size(), ' ');
      line += s.help + "\n";
      out += line;
    }
    out += "  --help";
    out.append(width + 3 - std::string("--help").size(), ' ');
    out += "show this message\n";
    return out;
  }

 private:
  struct Spec {
    std::string name;
    std::string value_name;
    std::string help;
    bool takes_value;
    std::function<bool(const std::string&)> apply;
  };

  [[nodiscard]] static std::string lhs(const Spec& s) {
    return s.takes_value ? s.name + " " + s.value_name : s.name;
  }

  [[nodiscard]] const Spec* find(const std::string& name) const {
    for (const Spec& s : specs_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  std::string description_;
  std::string prog_ = "prog";
  std::vector<Spec> specs_;
  bool help_requested_ = false;
  int exit_code_ = 0;
};

}  // namespace hlsrg
