// Tiny text-table and CSV emitters used by the bench harness and examples.
//
// The figure benches print the same rows/series the paper plots; keeping the
// rendering in one place means every bench binary formats identically.
#pragma once

#include <string>
#include <vector>

namespace hlsrg {

// Accumulates rows of string cells and renders an aligned monospace table.
class TextTable {
 public:
  // The first added row is treated as the header.
  void add_row(std::vector<std::string> cells);

  // Renders with a separator line under the header. Columns are left-aligned
  // and padded to the widest cell.
  [[nodiscard]] std::string render() const;

  // Renders as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string render_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` places after the decimal point.
[[nodiscard]] std::string fmt_double(double v, int digits = 2);

// Formats `num/den` as a percentage string like "97.3%"; "n/a" if den == 0.
[[nodiscard]] std::string fmt_percent(double num, double den, int digits = 1);

}  // namespace hlsrg
