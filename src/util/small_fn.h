// Move-only callable with small-buffer optimization.
//
// The event queue stores one callback per pending event; with std::function
// every schedule that captures more than two pointers heap-allocates, and a
// dense scenario schedules millions of events. SmallFn inlines captures up
// to `InlineBytes` into the slot itself (a manual vtable of invoke /
// relocate / destroy keeps the object trivially movable between slab slots),
// falling back to the heap only for oversized captures. Move-only on
// purpose: actions are consumed exactly once, and demanding copyability
// would force every capture to be copyable the way std::function does.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace hlsrg {

template <std::size_t InlineBytes = 104>
class SmallFn {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() {
    HLSRG_DCHECK(vtable_ != nullptr);
    vtable_->invoke(&storage_);
  }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) {
    return f.vtable_ == nullptr;
  }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) {
    return f.vtable_ != nullptr;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(&storage_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-construct into `dst` from `src` storage, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= InlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  void emplace(F&& fn) {
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>()) {
      ::new (static_cast<void*>(&storage_)) Decayed(std::forward<F>(fn));
      static const VTable vt{
          [](void* s) { (*std::launder(reinterpret_cast<Decayed*>(s)))(); },
          [](void* dst, void* src) noexcept {
            auto* from = std::launder(reinterpret_cast<Decayed*>(src));
            ::new (dst) Decayed(std::move(*from));
            from->~Decayed();
          },
          [](void* s) noexcept {
            std::launder(reinterpret_cast<Decayed*>(s))->~Decayed();
          }};
      vtable_ = &vt;
    } else {
      // Heap fallback: the slot stores one owning pointer.
      auto* heap = new Decayed(std::forward<F>(fn));
      ::new (static_cast<void*>(&storage_)) Decayed*(heap);
      static const VTable vt{
          [](void* s) {
            (**std::launder(reinterpret_cast<Decayed**>(s)))();
          },
          [](void* dst, void* src) noexcept {
            auto* slot = std::launder(reinterpret_cast<Decayed**>(src));
            ::new (dst) Decayed*(*slot);
          },
          [](void* s) noexcept {
            delete *std::launder(reinterpret_cast<Decayed**>(s));
          }};
      vtable_ = &vt;
    }
  }

  void move_from(SmallFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(&storage_, &other.storage_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
};

}  // namespace hlsrg
