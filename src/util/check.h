// Runtime invariant checks that stay on in release builds.
//
// Simulation correctness depends on invariants (event times monotone, ids in
// range, probabilities in [0,1]). assert() vanishes under NDEBUG, which is
// exactly when long benchmark runs happen, so we use an always-on check that
// prints the failing expression and location before aborting.
#pragma once

#include <string_view>

namespace hlsrg::detail {

[[noreturn]] void check_failed(std::string_view expr, std::string_view file,
                               int line, std::string_view msg);

}  // namespace hlsrg::detail

// HLSRG_CHECK(cond): abort with diagnostics if cond is false.
#define HLSRG_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::hlsrg::detail::check_failed(#cond, __FILE__, __LINE__, {});        \
    }                                                                      \
  } while (false)

// HLSRG_CHECK_MSG(cond, msg): same, with an extra human-readable message.
#define HLSRG_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::hlsrg::detail::check_failed(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                      \
  } while (false)

// HLSRG_DCHECK(cond): debug-only invariant check. Active in Debug builds,
// compiled out under NDEBUG (the condition is still parsed and type-checked,
// so it cannot rot). Use it on per-element hot-path assertions whose cost
// would show up in Release benchmarks; use HLSRG_CHECK for everything else.
#ifdef NDEBUG
#define HLSRG_DCHECK(cond)       \
  do {                           \
    if (false && (cond)) {       \
    }                            \
  } while (false)
#else
#define HLSRG_DCHECK(cond) HLSRG_CHECK(cond)
#endif
