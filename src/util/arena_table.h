// Arena-backed table family for million-entity state (ROADMAP item 2).
//
// BumpArena: a chunked bump allocator. Allocations are never freed
// individually; addresses are stable for the arena's lifetime (chunks are
// kept, not reallocated), and reset() recycles every chunk without
// returning memory to the OS. Fixed-width table pages and variable-length
// payload copies both come from here, so a table's whole footprint is a
// handful of large allocations instead of per-entry heap nodes.
//
// ArenaTable<Key, Record>: an open-addressing key index (OpenAddressMap,
// tombstone-aware since PR 10) over densely packed fixed-width records
// stored in arena pages. Insert/find/erase are O(1); erase swap-pops the
// last record into the hole, so the dense array never fragments. Iteration
// order is insertion-and-erase order — deterministic for a deterministic
// operation sequence, but NOT sorted; consumers that need a canonical
// order (digests, wire payloads) use snapshot(), which copies and sorts by
// key. Record pointers from find() stay valid until the next erase (pages
// never move; swap-pop moves one record).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/flat_table.h"

namespace hlsrg {

// Chunked bump allocator. All memory is max_align_t-aligned; chunk size
// doubles up to a cap so small tables stay small and large tables amortize.
// The floor is deliberately tiny: the common ArenaTable is a per-vehicle
// L1 table holding a handful of records, and at 100k vehicles the cost of
// an occupied-but-small table is what dominates bytes-per-vehicle.
class BumpArena {
 public:
  static constexpr std::size_t kMinChunkBytes = 512;
  static constexpr std::size_t kMaxChunkBytes = 1u << 20;

  BumpArena() = default;
  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;
  BumpArena(BumpArena&&) = default;
  BumpArena& operator=(BumpArena&&) = default;

  // Returns `size` bytes aligned to alignof(std::max_align_t). Never fails
  // short of OOM; a request larger than the chunk cap gets its own chunk.
  void* allocate(std::size_t size) {
    constexpr std::size_t align = alignof(std::max_align_t);
    size = (size + align - 1) / align * align;
    if (chunk_ == chunks_.size() || used_ + size > chunks_[chunk_].size()) {
      next_chunk(size);
    }
    void* p = chunks_[chunk_].data() + used_;
    used_ += size;
    allocated_ += size;
    return p;
  }

  // Recycles every chunk: subsequent allocations reuse the memory in chunk
  // order. Previously returned pointers become dangling.
  void reset() {
    chunk_ = 0;
    used_ = 0;
    allocated_ = 0;
  }

  // Returns every chunk to the OS. Unlike reset(), nothing is kept: the
  // next allocation starts over at kMinChunkBytes.
  void release() {
    chunks_ = std::vector<Chunk>{};
    chunk_ = 0;
    used_ = 0;
    allocated_ = 0;
    next_size_ = kMinChunkBytes;
  }

  // Total bytes handed out since the last reset().
  [[nodiscard]] std::size_t allocated() const { return allocated_; }
  // Total bytes held from the OS (survives reset()).
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size();
    return total;
  }

 private:
  // Raw storage in max_align_t units; the vector's heap buffer never moves
  // once created, so pointers into a chunk are stable.
  struct Chunk {
    std::vector<std::max_align_t> units;
    [[nodiscard]] unsigned char* data() {
      return reinterpret_cast<unsigned char*>(units.data());
    }
    [[nodiscard]] std::size_t size() const {
      return units.size() * sizeof(std::max_align_t);
    }
  };

  void next_chunk(std::size_t need) {
    // Advance to the next recycled chunk that fits (post-reset reuse);
    // otherwise grow a fresh one.
    for (std::size_t i = (used_ == 0) ? chunk_ : chunk_ + 1;
         i < chunks_.size(); ++i) {
      if (chunks_[i].size() >= need) {
        chunk_ = i;
        used_ = 0;
        return;
      }
    }
    std::size_t bytes = std::max(kMinChunkBytes, next_size_);
    while (bytes < need) bytes *= 2;
    next_size_ = std::min(bytes * 2, kMaxChunkBytes);
    Chunk c;
    c.units.resize((bytes + sizeof(std::max_align_t) - 1) /
                   sizeof(std::max_align_t));
    chunks_.push_back(std::move(c));
    chunk_ = chunks_.size() - 1;
    used_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;      // current chunk index
  std::size_t used_ = 0;       // bytes used in the current chunk
  std::size_t allocated_ = 0;  // bytes handed out since reset()
  std::size_t next_size_ = kMinChunkBytes;
};

// Extracts a 64-bit hashable key from TaggedId or integral keys.
template <typename Key>
[[nodiscard]] constexpr std::uint64_t arena_key_u64(Key key) {
  if constexpr (std::is_integral_v<Key>) {
    return static_cast<std::uint64_t>(key);
  } else {
    return static_cast<std::uint64_t>(key.value());
  }
}

// Dense fixed-width record table over arena pages; see file comment.
template <typename Key, typename Record>
class ArenaTable {
  static_assert(std::is_trivially_copyable_v<Record>);
  static_assert(std::is_trivially_destructible_v<Record>);

 public:
  // Pages are allocated whole from the arena, so record addresses are
  // stable across growth. Page sizes ramp geometrically (8, 16, ...,
  // kPageRecords) and then stay constant: a per-vehicle table with three
  // records pays ~0.5 KB instead of a full 256-record page, while a
  // 100k-record RSU table still amortizes to one allocation per 256
  // records. At million-entity scale the small-table floor is the
  // bytes-per-vehicle term that matters.
  static constexpr std::size_t kMinPageRecords = 8;
  static constexpr std::size_t kPageRecords = 256;
  // Pages 0..kRampPages-1 double from kMinPageRecords to kPageRecords and
  // hold kRampEntries records in total; every later page is full-size.
  static constexpr std::size_t kRampPages = 6;
  static constexpr std::size_t kRampEntries =
      kMinPageRecords * ((1u << kRampPages) - 1);
  static_assert(kMinPageRecords << (kRampPages - 1) == kPageRecords);

  struct Entry {
    Key key;
    Record rec;
  };

  ArenaTable() = default;
  ArenaTable(const ArenaTable&) = delete;
  ArenaTable& operator=(const ArenaTable&) = delete;
  ArenaTable(ArenaTable&&) = default;
  ArenaTable& operator=(ArenaTable&&) = default;

  // Inserts or overwrites the record for `key`. Returns true if inserted.
  bool upsert(Key key, const Record& rec) {
    bool inserted = false;
    Record& slot = find_or_insert(key, rec, &inserted);
    if (!inserted) slot = rec;
    return inserted;
  }

  // Returns the record slot for `key`, inserting `fallback` first if absent.
  Record& find_or_insert(Key key, const Record& fallback,
                         bool* inserted = nullptr) {
    std::uint32_t& slot = index_.find_or_insert(arena_key_u64(key), kNoSlot);
    if (slot == kNoSlot) {
      slot = static_cast<std::uint32_t>(size_);
      Entry& e = push_entry();
      e.key = key;
      e.rec = fallback;
      if (inserted != nullptr) *inserted = true;
      return e.rec;
    }
    if (inserted != nullptr) *inserted = false;
    return entry_at(slot).rec;
  }

  [[nodiscard]] const Record* find(Key key) const {
    const std::uint32_t* slot = index_.find(arena_key_u64(key));
    if (slot == nullptr) return nullptr;
    return &entry_at(*slot).rec;
  }

  [[nodiscard]] Record* find(Key key) {
    return const_cast<Record*>(std::as_const(*this).find(key));
  }

  // Removes the entry for `key`; returns true if it existed. The last
  // record swap-pops into the hole, so one unrelated record moves.
  bool erase(Key key) {
    const std::uint32_t* slot = index_.find(arena_key_u64(key));
    if (slot == nullptr) return false;
    const std::uint32_t hole = *slot;
    index_.erase(arena_key_u64(key));
    const std::size_t last = size_ - 1;
    if (hole != last) {
      Entry& moved = entry_at(last);
      entry_at(hole) = moved;
      *index_.find(arena_key_u64(moved.key)) = hole;
    }
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Drops every entry. Pages and index capacity are kept for reuse.
  void clear() {
    index_.clear();
    size_ = 0;
  }

  // Drops every entry AND returns all memory to the OS. For tables whose
  // owner's duty has ended (an ex-center vehicle, a demoted RSU role):
  // at scale most agents are ex-holders, so keeping peak capacity "for
  // reuse" — what clear() does — is a per-agent memory leak in all but
  // name.
  void release() {
    index_.release();
    arena_.release();
    pages_ = std::vector<Entry*>{};
    size_ = 0;
    capacity_ = 0;
  }

  // Dense entry access, [0, size()); insertion-and-erase order.
  [[nodiscard]] const Entry& entry_at(std::size_t i) const {
    const auto [page, offset] = locate(i);
    return pages_[page][offset];
  }
  [[nodiscard]] Entry& entry_at(std::size_t i) {
    const auto [page, offset] = locate(i);
    return pages_[page][offset];
  }

  // Calls fn(key, const Record&) for every entry in dense order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      const Entry& e = entry_at(i);
      fn(e.key, e.rec);
    }
  }

  // Forward iteration over entries in dense (insertion-and-erase) order.
  // Entry's two members destructure as `const auto& [key, rec]`, matching
  // the FlatTable loops this table replaced.
  class const_iterator {
   public:
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const ArenaTable* table, std::size_t i)
        : table_(table), i_(i) {}

    const Entry& operator*() const { return table_->entry_at(i_); }
    const Entry* operator->() const { return &table_->entry_at(i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++i_;
      return out;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    const ArenaTable* table_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size_}; }

  // Canonical (key-sorted) copy of all records, for digests and wire
  // payloads whose byte layout must not depend on table history.
  [[nodiscard]] std::vector<Record> snapshot() const {
    std::vector<std::size_t> order(size_);
    for (std::size_t i = 0; i < size_; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return entry_at(a).key < entry_at(b).key;
    });
    std::vector<Record> out;
    out.reserve(size_);
    for (std::size_t i : order) out.push_back(entry_at(i).rec);
    return out;
  }

  // Records copied in dense (unsorted) order — the cheap bulk view for
  // handoff payloads where the receiver re-keys anyway.
  [[nodiscard]] std::vector<Record> unsorted_records() const {
    std::vector<Record> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(entry_at(i).rec);
    return out;
  }

  // Heap footprint: arena pages plus the key index.
  [[nodiscard]] std::size_t bytes() const {
    return arena_.capacity() + index_.bytes() +
           pages_.capacity() * sizeof(Entry*);
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  // Records in page `j` under the geometric ramp.
  static constexpr std::size_t page_records(std::size_t j) {
    return j < kRampPages ? kMinPageRecords << j : kPageRecords;
  }

  // Maps dense index -> (page, offset). Ramp pages start at
  // kMinPageRecords * (2^j - 1), so the page is one bit_width away; past
  // the ramp it is a shift and mask (kPageRecords is a power of two).
  static std::pair<std::size_t, std::size_t> locate(std::size_t i) {
    if (i < kRampEntries) {
      const std::size_t j =
          static_cast<std::size_t>(
              std::bit_width((i + kMinPageRecords) / kMinPageRecords)) -
          1;
      return {j, i + kMinPageRecords - (kMinPageRecords << j)};
    }
    return {kRampPages + (i - kRampEntries) / kPageRecords,
            (i - kRampEntries) % kPageRecords};
  }

  Entry& push_entry() {
    if (size_ == capacity_) {
      const std::size_t records = page_records(pages_.size());
      void* raw = arena_.allocate(sizeof(Entry) * records);
      pages_.push_back(static_cast<Entry*>(raw));
      capacity_ += records;
    }
    // Placement-new starts the entry's lifetime in the arena page; entries
    // are trivially destructible, so reuse after clear()/erase is free.
    const auto [page, offset] = locate(size_);
    Entry* e = ::new (static_cast<void*>(pages_[page] + offset)) Entry{};
    ++size_;
    return *e;
  }

  OpenAddressMap<std::uint64_t, std::uint32_t> index_;
  BumpArena arena_;
  std::vector<Entry*> pages_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;  // total records the allocated pages can hold
};

}  // namespace hlsrg
