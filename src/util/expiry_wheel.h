// Two-level timing wheel for table expiry (ROADMAP item 2).
//
// The old purge walked the whole table on every timer tick and query
// (O(population)). The wheel makes eviction O(active expirations): every
// time a record's timestamp advances, the table notes (key, time) here;
// purge drains only the buckets the expiry cutoff has passed.
//
// Coarse level: items bucket by time >> kBucketShift (about one second of
// sim time per bucket); a drain consumes whole buckets strictly below the
// cutoff's bucket wholesale. Fine level: the single boundary bucket is
// filtered item by item and the survivors stay put. The drain condition
// `time < cutoff` with cutoff = now - expiry is *exactly* the old scan's
// eviction predicate `time + expiry < now`, so eviction sets and times are
// identical to the full scan — determinism digests cannot tell them apart.
//
// Items are never deleted on table erase/overwrite; they become stale and
// the table filters them at drain time (a live record's timestamp decides).
// Tables arm ONE item per record — at insert time — and re-arm a record at
// its current timestamp when its item surfaces still fresh, instead of
// noting every update (which made the wheel the table's dominant footprint
// under beacon-rate traffic). An armed time never exceeds the live time, so
// a record satisfying the eviction predicate always has a surfaced item in
// the same drain — nothing can expire silently or late.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hlsrg {

class ExpiryWheel {
 public:
  // Bucket granularity in the time unit's own ticks. SimTime is integer
  // microseconds, so 20 bits is ~1.05 s per bucket — coarse enough that a
  // paper-scale run has a few hundred buckets, fine enough that a drain's
  // boundary filter touches only the newest second of records.
  static constexpr int kBucketShift = 20;

  struct Item {
    std::uint64_t key;
    std::int64_t time;
  };

  // Notes that the record under `key` now carries timestamp `time`.
  void note(std::uint64_t key, std::int64_t time) {
    std::vector<Item>* bucket = bucket_for(time >> kBucketShift);
    bucket->push_back(Item{key, time});
    ++items_;
  }

  // Calls fn(key, time) for every noted item with time < cutoff, removing
  // them from the wheel. Items at or above the cutoff stay. fn is invoked
  // in bucket order, oldest first (deterministic; callers must not depend
  // on the order within a bucket beyond insertion order, which is itself
  // deterministic for a deterministic run).
  template <typename Fn>
  std::size_t drain(std::int64_t cutoff, Fn&& fn) {
    const std::int64_t boundary = cutoff >> kBucketShift;
    std::size_t drained = 0;
    std::size_t consumed = 0;
    for (Bucket& b : buckets_) {
      if (b.id > boundary) break;
      if (b.id < boundary) {
        // Whole bucket is strictly below the cutoff's bucket: every item's
        // time < (boundary << shift) <= cutoff.
        for (const Item& it : b.items) fn(it.key, it.time);
        drained += b.items.size();
        b.items.clear();
        ++consumed;
        continue;
      }
      // Boundary bucket: filter item by item.
      std::size_t kept = 0;
      for (Item& it : b.items) {
        if (it.time < cutoff) {
          fn(it.key, it.time);
          ++drained;
        } else {
          b.items[kept++] = it;
        }
      }
      b.items.resize(kept);
      break;
    }
    if (consumed > 0) {
      buckets_.erase(buckets_.begin(),
                     buckets_.begin() + static_cast<std::ptrdiff_t>(consumed));
    }
    items_ -= drained;
    return drained;
  }

  // Pending (possibly stale) items across all buckets.
  [[nodiscard]] std::size_t pending() const { return items_; }

  void clear() {
    buckets_.clear();
    items_ = 0;
  }

  // clear() plus freeing the bucket array itself.
  void release() {
    buckets_ = std::vector<Bucket>{};
    items_ = 0;
  }

  // Heap footprint of the bucket structures.
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = buckets_.capacity() * sizeof(Bucket);
    for (const Bucket& b : buckets_) total += b.items.capacity() * sizeof(Item);
    return total;
  }

 private:
  struct Bucket {
    std::int64_t id = 0;
    std::vector<Item> items;
  };

  // Bucket list kept sorted by id; notes mostly hit the newest bucket, so
  // the common path is a tail append or tail lookup.
  std::vector<Item>* bucket_for(std::int64_t id) {
    if (!buckets_.empty() && buckets_.back().id == id) {
      return &buckets_.back().items;
    }
    if (buckets_.empty() || id > buckets_.back().id) {
      buckets_.push_back(Bucket{id, {}});
      return &buckets_.back().items;
    }
    // Out-of-order note (e.g. a handoff merging old records): binary-search
    // the slot, inserting a bucket if needed.
    auto it = std::lower_bound(
        buckets_.begin(), buckets_.end(), id,
        [](const Bucket& b, std::int64_t want) { return b.id < want; });
    if (it != buckets_.end() && it->id == id) return &it->items;
    it = buckets_.insert(it, Bucket{id, {}});
    return &it->items;
  }

  std::vector<Bucket> buckets_;
  std::size_t items_ = 0;
};

}  // namespace hlsrg
