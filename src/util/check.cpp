#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace hlsrg::detail {

void check_failed(std::string_view expr, std::string_view file, int line,
                  std::string_view msg) {
  std::fprintf(stderr, "HLSRG_CHECK failed: %.*s at %.*s:%d",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line);
  if (!msg.empty()) {
    std::fprintf(stderr, " — %.*s", static_cast<int>(msg.size()), msg.data());
  }
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace hlsrg::detail
