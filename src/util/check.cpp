#include "util/check.h"

#include <cstdio>
#include <cstdlib>

// Backtraces make a failed check actionable without rerunning under a
// debugger; execinfo is glibc-specific, so gate on the header being there.
#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define HLSRG_HAVE_EXECINFO 1
#endif
#endif

namespace hlsrg::detail {

namespace {

void print_backtrace() {
#ifdef HLSRG_HAVE_EXECINFO
  void* frames[64];
  const int depth = backtrace(frames, 64);
  if (depth > 0) {
    std::fputs("backtrace (innermost first; addr2line/llvm-symbolizer "
               "resolves addresses):\n",
               stderr);
    backtrace_symbols_fd(frames, depth, fileno(stderr));
  }
#endif
}

}  // namespace

void check_failed(std::string_view expr, std::string_view file, int line,
                  std::string_view msg) {
  std::fprintf(stderr, "HLSRG_CHECK failed: %.*s at %.*s:%d",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line);
  if (!msg.empty()) {
    std::fprintf(stderr, " — %.*s", static_cast<int>(msg.size()), msg.data());
  }
  std::fputc('\n', stderr);
  print_backtrace();
  std::abort();
}

}  // namespace hlsrg::detail
