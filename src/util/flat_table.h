// A small sorted-vector map keyed by a TaggedId.
//
// Location tables hold a few hundred entries that are scanned far more often
// than they are mutated (every query checks the table; expiry sweeps walk it).
// A sorted std::vector beats node-based maps here: one allocation, contiguous
// scans, O(log n) lookup (Core Guidelines Per.14/Per.16/Per.19).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace hlsrg {

template <typename Key, typename Value>
class FlatTable {
 public:
  using Entry = std::pair<Key, Value>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  // Inserts or overwrites the value for `key`. Returns true if inserted.
  bool upsert(Key key, Value value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
      return false;
    }
    entries_.insert(it, Entry{key, std::move(value)});
    return true;
  }

  // Returns a pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(Key key) const {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  [[nodiscard]] Value* find(Key key) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  // Removes the entry for `key`; returns true if it existed.
  bool erase(Key key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  // Removes every entry for which pred(key, value) is true; returns count.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    auto it = std::remove_if(entries_.begin(), entries_.end(),
                             [&](const Entry& e) {
                               return pred(e.first, e.second);
                             });
    const auto n = static_cast<std::size_t>(entries_.end() - it);
    entries_.erase(it, entries_.end());
    return n;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }

 private:
  [[nodiscard]] const_iterator lower_bound(Key key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, Key k) { return e.first < k; });
  }
  [[nodiscard]] iterator lower_bound(Key key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, Key k) { return e.first < k; });
  }

  std::vector<Entry> entries_;
};

}  // namespace hlsrg
