// Flat (vector-backed) associative containers.
//
// FlatTable: a small sorted-vector map keyed by a TaggedId. Location tables
// hold a few hundred entries that are scanned far more often than they are
// mutated (every query checks the table; expiry sweeps walk it). A sorted
// std::vector beats node-based maps here: one allocation, contiguous scans,
// O(log n) lookup (Core Guidelines Per.14/Per.16/Per.19).
//
// OpenAddressMap: a linear-probing hash map over trivially copyable keys and
// values for hot lookup paths (the neighbor index's cell table). One
// contiguous slot array, power-of-two capacity, no tombstones — the callers
// that need deletion rebuild instead.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hlsrg {

template <typename Key, typename Value>
class FlatTable {
 public:
  using Entry = std::pair<Key, Value>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  // Inserts or overwrites the value for `key`. Returns true if inserted.
  bool upsert(Key key, Value value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
      return false;
    }
    entries_.insert(it, Entry{key, std::move(value)});
    return true;
  }

  // Returns a pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(Key key) const {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  [[nodiscard]] Value* find(Key key) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  // Removes the entry for `key`; returns true if it existed.
  bool erase(Key key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  // Removes every entry for which pred(key, value) is true; returns count.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    auto it = std::remove_if(entries_.begin(), entries_.end(),
                             [&](const Entry& e) {
                               return pred(e.first, e.second);
                             });
    const auto n = static_cast<std::size_t>(entries_.end() - it);
    entries_.erase(it, entries_.end());
    return n;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }

 private:
  [[nodiscard]] const_iterator lower_bound(Key key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, Key k) { return e.first < k; });
  }
  [[nodiscard]] iterator lower_bound(Key key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, Key k) { return e.first < k; });
  }

  std::vector<Entry> entries_;
};

// Mixes a 64-bit key into a table index (SplitMix64 finalizer); good enough
// for packed coordinates and ids, and fully deterministic.
struct U64KeyHash {
  [[nodiscard]] std::uint64_t operator()(std::uint64_t k) const {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }
};

// Open-addressing hash map: linear probing, power-of-two capacity, grows at
// ~70% load. Insert-only by design (no erase, no tombstones): the hot users
// key on spatial cells whose set only grows within a run and rebuild via
// clear() when the world changes shape. Key and Value must be trivially
// copyable. One `empty_key` value marks free slots in the array; an entry
// under that exact key is still legal — it lives in a dedicated side slot so
// the full key space stays usable (packed cell coordinates hit every bit
// pattern, including the sentinel).
template <typename Key, typename Value, typename Hash = U64KeyHash>
class OpenAddressMap {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  explicit OpenAddressMap(Key empty_key = static_cast<Key>(-1))
      : empty_key_(empty_key) {}

  // Returns the value slot for `key`, inserting `fallback` first if absent.
  Value& find_or_insert(Key key, Value fallback) {
    if (key == empty_key_) {
      if (!has_empty_key_) {
        empty_key_value_ = fallback;
        has_empty_key_ = true;
      }
      return empty_key_value_;
    }
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash_(key)) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == empty_key_) {
        s.key = key;
        s.value = fallback;
        ++size_;
        return s.value;
      }
      i = (i + 1) & mask;
    }
  }

  // Pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(Key key) const {
    if (key == empty_key_) {
      return has_empty_key_ ? &empty_key_value_ : nullptr;
    }
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash_(key)) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == empty_key_) return nullptr;
      i = (i + 1) & mask;
    }
  }

  [[nodiscard]] Value* find(Key key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] std::size_t size() const {
    return size_ + (has_empty_key_ ? 1 : 0);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  // Drops every entry; keeps the slot array's capacity.
  void clear() {
    for (Slot& s : slots_) s.key = empty_key_;
    size_ = 0;
    has_empty_key_ = false;
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Slot{empty_key_, Value{}});
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != empty_key_) find_or_insert(s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;  // entries in slots_, excluding the side slot
  Key empty_key_;
  // Side slot for the one key the slot array cannot represent.
  Value empty_key_value_{};
  bool has_empty_key_ = false;
  Hash hash_;
};

}  // namespace hlsrg
