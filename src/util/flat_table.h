// Flat (vector-backed) associative containers.
//
// FlatTable: a small sorted-vector map keyed by a TaggedId. Location tables
// hold a few hundred entries that are scanned far more often than they are
// mutated (every query checks the table; expiry sweeps walk it). A sorted
// std::vector beats node-based maps here: one allocation, contiguous scans,
// O(log n) lookup (Core Guidelines Per.14/Per.16/Per.19).
//
// OpenAddressMap: a linear-probing hash map over trivially copyable keys and
// values for hot lookup paths (the neighbor index's cell table, the
// ArenaTable key index). One contiguous slot array plus a one-byte state
// array, power-of-two capacity. Erase writes a tombstone; the load factor
// counts tombstones, so heavy erase churn triggers a compacting rehash
// instead of degrading probes toward O(capacity).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hlsrg {

template <typename Key, typename Value>
class FlatTable {
 public:
  using Entry = std::pair<Key, Value>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  // Inserts or overwrites the value for `key`. Returns true if inserted.
  bool upsert(Key key, Value value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
      return false;
    }
    entries_.insert(it, Entry{key, std::move(value)});
    return true;
  }

  // Returns a pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(Key key) const {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  [[nodiscard]] Value* find(Key key) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  // Removes the entry for `key`; returns true if it existed.
  bool erase(Key key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  // Removes every entry for which pred(key, value) is true; returns count.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    auto it = std::remove_if(entries_.begin(), entries_.end(),
                             [&](const Entry& e) {
                               return pred(e.first, e.second);
                             });
    const auto n = static_cast<std::size_t>(entries_.end() - it);
    entries_.erase(it, entries_.end());
    return n;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  // Heap footprint of the entry array (capacity, not size).
  [[nodiscard]] std::size_t bytes() const {
    return entries_.capacity() * sizeof(Entry);
  }
  void clear() { entries_.clear(); }

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }

 private:
  [[nodiscard]] const_iterator lower_bound(Key key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, Key k) { return e.first < k; });
  }
  [[nodiscard]] iterator lower_bound(Key key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, Key k) { return e.first < k; });
  }

  std::vector<Entry> entries_;
};

// Mixes a 64-bit key into a table index (SplitMix64 finalizer); good enough
// for packed coordinates and ids, and fully deterministic.
struct U64KeyHash {
  [[nodiscard]] std::uint64_t operator()(std::uint64_t k) const {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }
};

// Open-addressing hash map: linear probing, power-of-two capacity, grows at
// ~70% load counting tombstones. A one-byte state array distinguishes
// empty / full / tombstone slots, so the whole key space is usable (packed
// cell coordinates hit every bit pattern — PR 5 reserved a sentinel key and
// parked it in a side slot; the state array removes that special case).
// Erase tombstones the slot; when the occupancy trigger fires and live
// entries alone are under the load limit, the rehash compacts in place at
// the same capacity instead of doubling, so erase-heavy churn (a long-lived
// neighbor-index cell map) cannot degrade probes toward O(capacity).
// Key and Value must be trivially copyable.
template <typename Key, typename Value, typename Hash = U64KeyHash>
class OpenAddressMap {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  OpenAddressMap() = default;

  // Returns the value slot for `key`, inserting `fallback` first if absent.
  Value& find_or_insert(Key key, Value fallback) {
    if (slots_.empty() || (size_ + tombstones_ + 1) * 10 > slots_.size() * 7) {
      rehash();
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash_(key)) & mask;
    std::size_t reuse = kNoSlot;
    while (true) {
      const std::uint8_t st = states_[i];
      if (st == kFull && slots_[i].key == key) return slots_[i].value;
      if (st == kTomb && reuse == kNoSlot) reuse = i;
      if (st == kEmpty) {
        if (reuse != kNoSlot) {
          i = reuse;
          --tombstones_;
        }
        states_[i] = kFull;
        slots_[i].key = key;
        slots_[i].value = fallback;
        ++size_;
        return slots_[i].value;
      }
      i = (i + 1) & mask;
    }
  }

  // Pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(Key key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash_(key)) & mask;
    while (true) {
      const std::uint8_t st = states_[i];
      if (st == kFull && slots_[i].key == key) return &slots_[i].value;
      if (st == kEmpty) return nullptr;
      i = (i + 1) & mask;
    }
  }

  [[nodiscard]] Value* find(Key key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  // Removes the entry for `key`; returns true if it existed. The slot
  // becomes a tombstone (probe chains through it stay intact); compaction
  // happens lazily at the next occupancy trigger.
  bool erase(Key key) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash_(key)) & mask;
    while (true) {
      const std::uint8_t st = states_[i];
      if (st == kFull && slots_[i].key == key) {
        states_[i] = kTomb;
        --size_;
        ++tombstones_;
        return true;
      }
      if (st == kEmpty) return false;
      i = (i + 1) & mask;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  // Dead slots awaiting compaction (observability for tests).
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  // Heap footprint of the slot and state arrays.
  [[nodiscard]] std::size_t bytes() const {
    return slots_.capacity() * sizeof(Slot) + states_.capacity();
  }

  // Drops every entry; keeps the slot array's capacity.
  void clear() {
    std::fill(states_.begin(), states_.end(), static_cast<std::uint8_t>(0));
    size_ = 0;
    tombstones_ = 0;
  }

  // Drops every entry and frees the slot arrays (see ArenaTable::release).
  void release() {
    slots_ = std::vector<Slot>{};
    states_ = std::vector<std::uint8_t>{};
    size_ = 0;
    tombstones_ = 0;
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct Slot {
    Key key;
    Value value;
  };

  // Rebuilds the table. Doubles capacity only when live entries need the
  // room; a tombstone-dominated table compacts at its current capacity.
  void rehash() {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    std::size_t cap = old_slots.empty() ? 16 : old_slots.size();
    if ((size_ + 1) * 10 > cap * 7) cap *= 2;
    slots_.assign(cap, Slot{Key{}, Value{}});
    states_.assign(cap, kEmpty);
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_states[i] == kFull) {
        find_or_insert(old_slots[i].key, old_slots[i].value);
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_ = 0;        // live entries
  std::size_t tombstones_ = 0;  // erased slots not yet compacted
  Hash hash_;
};

// Unsorted vector map for agent-local transient state (armed elections,
// outstanding own queries): a handful of live entries, point lookups only.
// One vector (24 B empty) replaces an unordered_map (56 B empty plus a heap
// node per entry) — at a hundred thousand agents the empty-container tax is
// what matters. Linear find; erase swap-pops.
template <typename Key, typename Value>
class SmallFlatMap {
 public:
  struct Entry {
    Key key;
    Value value;
  };

  // Returns the value slot for `key`, default-inserting if absent.
  Value& operator[](Key key) {
    for (Entry& e : entries_) {
      if (e.key == key) return e.value;
    }
    entries_.push_back(Entry{key, Value{}});
    return entries_.back().value;
  }

  [[nodiscard]] Value* find(Key key) {
    for (Entry& e : entries_) {
      if (e.key == key) return &e.value;
    }
    return nullptr;
  }
  [[nodiscard]] const Value* find(Key key) const {
    return const_cast<SmallFlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  bool erase(Key key) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key == key) {
        entries_[i] = std::move(entries_.back());
        entries_.pop_back();
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

// Sorted-vector id set for monotone-growing membership checks (settled
// elections, relayed requests, answered notifications). Binary-search
// contains; ordered insert keeps iteration deterministic by construction.
template <typename Key>
class SortedIdSet {
 public:
  // Inserts `key`; returns true if it was not already present.
  bool insert(Key key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return false;
    keys_.insert(it, key);
    return true;
  }

  [[nodiscard]] bool contains(Key key) const {
    return std::binary_search(keys_.begin(), keys_.end(), key);
  }

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }
  void clear() { keys_.clear(); }

 private:
  std::vector<Key> keys_;
};

}  // namespace hlsrg
