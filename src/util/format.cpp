#include "util/format.h"

#include <algorithm>
#include <cstdio>

namespace hlsrg {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  if (rows_.empty()) return {};
  std::size_t cols = 0;
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      out += cell;
      if (c + 1 < cols) out.append(width[c] - cell.size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(rows_.front());
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 < cols ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (std::size_t i = 1; i < rows_.size(); ++i) emit_row(rows_[i]);
  return out;
}

std::string TextTable::render_csv() const {
  std::string out;
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      const std::string& cell = r[c];
      const bool quote =
          cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out += '"';
        for (char ch : cell) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        out += cell;
      }
      if (c + 1 < r.size()) out += ',';
    }
    out += '\n';
  }
  return out;
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double num, double den, int digits) {
  if (den == 0.0) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, 100.0 * num / den);
  return buf;
}

}  // namespace hlsrg
