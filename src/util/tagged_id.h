// Strongly-typed integer identifiers.
//
// Every entity in the simulator (vehicle, intersection, road segment, grid,
// RSU, packet, ...) is addressed by a dense integer index into a flat vector.
// Bare integers invite silent cross-indexing bugs (a VehicleId used to index
// the intersection table), so each entity gets its own TaggedId instantiation:
// ids of different tags do not convert to each other or to int implicitly.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace hlsrg {

// A type-safe wrapper around a 32-bit index. `Tag` is any empty struct used
// only to make distinct instantiations distinct types.
template <typename Tag>
class TaggedId {
 public:
  using underlying_type = std::uint32_t;

  // Sentinel meaning "no entity". Default-constructed ids are invalid.
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(underlying_type value) : value_(value) {}
  // Convenience for size_t loop indices; checked narrowing is the caller's
  // responsibility (entity counts in this project are far below 2^32).
  constexpr explicit TaggedId(std::size_t value)
      : value_(static_cast<underlying_type>(value)) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

 private:
  underlying_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, TaggedId<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

// Entity id tags used across the library.
struct VehicleTag {};
struct IntersectionTag {};
struct SegmentTag {};
struct RoadTag {};
struct GridTag {};
struct RsuTag {};
struct PacketTag {};
struct NodeTag {};  // unified radio-node id space (vehicles + RSUs)
struct CellTag {};  // RLSMP baseline cells

using VehicleId = TaggedId<VehicleTag>;
using IntersectionId = TaggedId<IntersectionTag>;
using SegmentId = TaggedId<SegmentTag>;
using RoadId = TaggedId<RoadTag>;
using GridId = TaggedId<GridTag>;
using RsuId = TaggedId<RsuTag>;
using PacketId = TaggedId<PacketTag>;
using NodeId = TaggedId<NodeTag>;
using CellId = TaggedId<CellTag>;

}  // namespace hlsrg

// Hash support so tagged ids can key unordered containers.
namespace std {
template <typename Tag>
struct hash<hlsrg::TaggedId<Tag>> {
  size_t operator()(hlsrg::TaggedId<Tag> id) const noexcept {
    return std::hash<typename hlsrg::TaggedId<Tag>::underlying_type>{}(
        id.value());
  }
};
}  // namespace std
