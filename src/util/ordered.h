// Deterministic iteration over hash containers (namespace hlsrg::det).
//
// The determinism contract (DESIGN.md §12): simulation state may live in
// unordered containers — lookup and membership are order-free — but no
// digest-affecting behavior may depend on their iteration order, because
// that order varies across standard libraries, across insert/erase
// histories, and (once the engine shards by L3 region) across shard
// assignments. Any loop that *iterates* an unordered container in
// digest-affecting code must either go through one of these sorted
// snapshot views or carry an explicit
// `// HLSRG_LINT_ALLOW(unordered-iteration): <reason>` annotation proving
// the loop body is order-insensitive. tools/lint/determinism_lint.py
// enforces this mechanically (rule `unordered-iteration`).
//
// The views take an O(n log n) snapshot; that is the price of a stable
// order and is paid only on the cold paths that enumerate whole tables
// (crash drains, topology dumps, report serialization). Hot paths should
// use util/flat_table.h (FlatTable is sorted by construction) or redesign
// so they never enumerate.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

namespace hlsrg::det {

// Sorted snapshot of a map's entries as pointers to the container's own
// (key, value) pairs — no value copies, entries stay mutable through the
// non-const overload. Ordered by key (or by `cmp` on keys). The snapshot
// is invalidated by any rehash/insert/erase on the underlying container;
// take it, loop it, drop it.
//
//   for (auto* e : det::sorted_view(pending_)) use(e->first, e->second);
template <typename Map, typename Compare>
[[nodiscard]] std::vector<typename Map::value_type*> sorted_view(
    Map& map, Compare cmp) {
  std::vector<typename Map::value_type*> view;
  view.reserve(map.size());
  for (auto it = map.begin(); it != map.end(); ++it) view.push_back(&*it);
  std::sort(view.begin(), view.end(),
            [&cmp](const typename Map::value_type* a,
                   const typename Map::value_type* b) {
              return cmp(a->first, b->first);
            });
  return view;
}

template <typename Map, typename Compare>
[[nodiscard]] std::vector<const typename Map::value_type*> sorted_view(
    const Map& map, Compare cmp) {
  std::vector<const typename Map::value_type*> view;
  view.reserve(map.size());
  for (auto it = map.begin(); it != map.end(); ++it) view.push_back(&*it);
  std::sort(view.begin(), view.end(),
            [&cmp](const typename Map::value_type* a,
                   const typename Map::value_type* b) {
              return cmp(a->first, b->first);
            });
  return view;
}

template <typename Map>
[[nodiscard]] auto sorted_view(Map& map) {
  using Key = typename Map::key_type;
  return sorted_view(map, [](const Key& a, const Key& b) { return a < b; });
}

// Sorted snapshot of a set's (or map's) keys, by value. Use when the loop
// needs only the keys — cheaper to reason about than sorted_view and the
// only option for std::unordered_set, whose elements are const.
//
//   for (NodeId n : det::sorted_keys(down_nodes_)) ...
template <typename Container>
[[nodiscard]] std::vector<typename Container::key_type> sorted_keys(
    const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) {
    if constexpr (std::is_same_v<typename Container::key_type,
                                 typename Container::value_type>) {
      keys.push_back(entry);
    } else {
      keys.push_back(entry.first);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Ordered container aliases for state that is enumerated as often as it is
// probed: the tree containers iterate in key order natively, so loops over
// them are deterministic without a snapshot. Prefer these (or FlatTable)
// over unordered containers + sorted_view when iteration dominates.
template <typename Key, typename Value, typename Compare = std::less<Key>>
using map = std::map<Key, Value, Compare>;

template <typename Key, typename Compare = std::less<Key>>
using set = std::set<Key, Compare>;

}  // namespace hlsrg::det
