#include "obs/region_telemetry.h"

#include <cmath>
#include <utility>

#include "obs/profiler.h"

namespace hlsrg {

void RegionCounters::merge(const RegionCounters& other) {
  radio_broadcasts += other.radio_broadcasts;
  radio_unicasts += other.radio_unicasts;
  radio_delivered += other.radio_delivered;
  radio_dropped += other.radio_dropped;
  wired_out += other.wired_out;
  wired_in += other.wired_in;
  wired_dropped += other.wired_dropped;
  updates += other.updates;
  queries_served += other.queries_served;
  cache_hits += other.cache_hits;
  queries_shed += other.queries_shed;
  role_migrations += other.role_migrations;
  handoff_records += other.handoff_records;
}

RegionTelemetry::RegionTelemetry(std::vector<double> x_edges,
                                 std::vector<double> y_edges)
    : x_edges_(std::move(x_edges)), y_edges_(std::move(y_edges)) {
  l1_cols_ = static_cast<int>(x_edges_.size()) - 1;
  l1_rows_ = static_cast<int>(y_edges_.size()) - 1;
  HLSRG_CHECK(l1_cols_ >= 1 && l1_rows_ >= 1);
  // L3 shape: GridHierarchy::shrink — four L1 cells per axis, edge groups
  // truncated with ceil division.
  cols_ = (l1_cols_ + 3) / 4;
  rows_ = (l1_rows_ + 3) / 4;
  const std::size_t n = static_cast<std::size_t>(cols_) * rows_;
  counters_.resize(n);
  matrix_packets_.resize(n * n, 0);
  matrix_hops_.resize(n * n, 0);
  matrix_bytes_.resize(n * n, 0);
}

void RegionTelemetry::push_sample(double t_sec,
                                  std::vector<std::uint64_t> vehicles,
                                  std::vector<std::uint64_t> table_records,
                                  std::vector<std::uint64_t> queue_depth) {
  HLSRG_CHECK(vehicles.size() == counters_.size() &&
              table_records.size() == counters_.size() &&
              queue_depth.size() == counters_.size());
  times_sec_.push_back(t_sec);
  vehicles_.push_back(std::move(vehicles));
  table_records_.push_back(std::move(table_records));
  queue_depth_.push_back(std::move(queue_depth));
}

RegionTelemetry::Imbalance RegionTelemetry::load_imbalance() const {
  Imbalance im;
  if (counters_.empty()) return im;
  std::uint64_t max_load = 0;
  for (const RegionCounters& c : counters_) {
    im.total_load += c.load();
    if (c.load() > max_load) max_load = c.load();
  }
  if (im.total_load == 0) return im;
  const double mean = static_cast<double>(im.total_load) /
                      static_cast<double>(counters_.size());
  im.max_over_mean = static_cast<double>(max_load) / mean;
  double var = 0.0;
  for (const RegionCounters& c : counters_) {
    const double d = static_cast<double>(c.load()) - mean;
    var += d * d;
  }
  var /= static_cast<double>(counters_.size());
  im.cv = std::sqrt(var) / mean;
  return im;
}

void RegionTelemetry::merge(const RegionTelemetry& other) {
  if (!other.configured()) return;
  if (!configured()) {
    *this = other;
    return;
  }
  HLSRG_CHECK(cols_ == other.cols_ && rows_ == other.rows_);
  replicas_ += other.replicas_;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i].merge(other.counters_[i]);
  }
  for (std::size_t i = 0; i < matrix_packets_.size(); ++i) {
    matrix_packets_[i] += other.matrix_packets_[i];
    matrix_hops_[i] += other.matrix_hops_[i];
    matrix_bytes_[i] += other.matrix_bytes_[i];
  }
  // Series keep the first replica (this object), like MetricsRegistry.
}

namespace {

JsonValue u64_row(const std::vector<std::uint64_t>& row) {
  JsonValue v = JsonValue::array();
  for (std::uint64_t x : row) v.push_back(x);
  return v;
}

JsonValue u64_matrix(const std::vector<std::uint64_t>& flat, int n) {
  JsonValue rows = JsonValue::array();
  for (int r = 0; r < n; ++r) {
    JsonValue row = JsonValue::array();
    for (int c = 0; c < n; ++c) {
      row.push_back(flat[static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(c)]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

JsonValue sample_table(const std::vector<std::vector<std::uint64_t>>& rows) {
  JsonValue v = JsonValue::array();
  for (const auto& row : rows) v.push_back(u64_row(row));
  return v;
}

}  // namespace

JsonValue RegionTelemetry::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("l3_cols", cols_);
  doc.set("l3_rows", rows_);
  doc.set("replicas", replicas_);

  JsonValue edges_x = JsonValue::array();
  for (double e : x_edges_) edges_x.push_back(e);
  doc.set("x_edges", std::move(edges_x));
  JsonValue edges_y = JsonValue::array();
  for (double e : y_edges_) edges_y.push_back(e);
  doc.set("y_edges", std::move(edges_y));

  JsonValue regions = JsonValue::array();
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const RegionCounters& cnt = at(r * cols_ + c);
      JsonValue region = JsonValue::object();
      region.set("id", r * cols_ + c);
      region.set("col", c);
      region.set("row", r);
      region.set("radio_broadcasts", cnt.radio_broadcasts);
      region.set("radio_unicasts", cnt.radio_unicasts);
      region.set("radio_delivered", cnt.radio_delivered);
      region.set("radio_dropped", cnt.radio_dropped);
      region.set("wired_out", cnt.wired_out);
      region.set("wired_in", cnt.wired_in);
      region.set("wired_dropped", cnt.wired_dropped);
      region.set("updates", cnt.updates);
      region.set("queries_served", cnt.queries_served);
      region.set("cache_hits", cnt.cache_hits);
      region.set("queries_shed", cnt.queries_shed);
      region.set("role_migrations", cnt.role_migrations);
      region.set("handoff_records", cnt.handoff_records);
      region.set("load", cnt.load());
      regions.push_back(std::move(region));
    }
  }
  doc.set("regions", std::move(regions));

  const int n = region_count();
  JsonValue matrix = JsonValue::object();
  matrix.set("packets", u64_matrix(matrix_packets_, n));
  matrix.set("hops", u64_matrix(matrix_hops_, n));
  matrix.set("bytes", u64_matrix(matrix_bytes_, n));
  doc.set("matrix", std::move(matrix));

  JsonValue series = JsonValue::object();
  JsonValue times = JsonValue::array();
  for (double t : times_sec_) times.push_back(t);
  series.set("times_sec", std::move(times));
  series.set("vehicles", sample_table(vehicles_));
  series.set("table_records", sample_table(table_records_));
  series.set("queue_depth", sample_table(queue_depth_));
  doc.set("series", std::move(series));

  const Imbalance im = load_imbalance();
  JsonValue imbalance = JsonValue::object();
  imbalance.set("load_max_over_mean", im.max_over_mean);
  imbalance.set("load_cv", im.cv);
  imbalance.set("total_load", im.total_load);
  doc.set("imbalance", std::move(imbalance));
  return doc;
}

JsonValue obs_document(const RegionTelemetry& telemetry,
                       const PhaseProfiler* profiler) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "hlsrg-obs/v1");
  doc.set("telemetry", telemetry.to_json());
  doc.set("profile", profiler != nullptr && !profiler->empty()
                         ? profiler->to_json()
                         : JsonValue());
  return doc;
}

}  // namespace hlsrg
