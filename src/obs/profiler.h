// Wall-clock phase profiler: hierarchical RAII timers over engine phases.
//
// PhaseProfiler keeps a tree of named nodes (find-or-create by string
// literal under the current node); ProfileScope pushes a node on entry and
// adds the elapsed monotonic nanoseconds on exit. The profiler is pure
// observation: it draws no randomness, schedules no events, and touches no
// simulation state, so enabling it cannot perturb determinism digests — the
// clock values only ever flow into reports and traces, never back into the
// engine (the digest-neutrality test in tests/obs_test.cpp pins this).
//
// This file and profiler.cpp are the engine's single sanctioned wall-clock
// site (determinism lint rule `wall-clock`): everything else that needs a
// timestamp — the replica runner, scenario_cli, benches — goes through
// monotonic_now_ns()/monotonic_now_sec() so raw <chrono> clock reads stay
// confined to one translation unit.
#pragma once

#include <cstdint>
#include <vector>

#include "report/json.h"

namespace hlsrg {

// Monotonic wall clock. Defined in profiler.cpp (the allowlisted wall-clock
// translation unit); never use raw std::chrono clocks elsewhere in src/.
[[nodiscard]] std::uint64_t monotonic_now_ns();
[[nodiscard]] double monotonic_now_sec();

class PhaseProfiler {
 public:
  // Node 0 is the synthetic root; every top-level phase is its child.
  struct Node {
    const char* name = "";
    int parent = -1;
    std::uint64_t calls = 0;
    std::uint64_t inclusive_ns = 0;  // total time with this node open
    std::uint64_t child_ns = 0;      // time attributed to child nodes
    std::vector<int> children;

    // Self time; clamped because parent/child clock reads truncate
    // independently, so child sums can exceed the parent by a few ns.
    [[nodiscard]] std::uint64_t exclusive_ns() const {
      return inclusive_ns > child_ns ? inclusive_ns - child_ns : 0;
    }
  };

  PhaseProfiler() { nodes_.push_back(Node{"root", -1, 0, 0, 0, {}}); }

  // Opens the named phase as a child of the current one. `name` must outlive
  // the profiler (string literals in practice).
  void begin(const char* name) {
    current_ = child_of(current_, name);
    ++nodes_[static_cast<std::size_t>(current_)].calls;
  }

  // Closes the current phase, crediting `elapsed_ns` to it (inclusive) and
  // to the parent's child time.
  void end(std::uint64_t elapsed_ns) {
    Node& node = nodes_[static_cast<std::size_t>(current_)];
    node.inclusive_ns += elapsed_ns;
    if (node.parent >= 0) {
      nodes_[static_cast<std::size_t>(node.parent)].child_ns += elapsed_ns;
    }
    current_ = node.parent;
  }

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] bool empty() const { return nodes_.size() == 1; }

  // Child of `parent` named `name`, or -1. For tests and the exporters.
  [[nodiscard]] int find(const char* name, int parent = 0) const;

  // Sums `other` into this tree, matching nodes by name path (replica merge:
  // calls and times add; structure is the union of both trees).
  void merge(const PhaseProfiler& other);

  // {"schema":"hlsrg-profile/v1","root":{name,calls,inclusive_ns,
  //  exclusive_ns,children:[…]}} with children sorted by name so replica
  // merges and reruns serialize identically regardless of discovery order.
  [[nodiscard]] JsonValue to_json() const;

 private:
  [[nodiscard]] int child_of(int parent, const char* name);

  std::vector<Node> nodes_;
  int current_ = 0;
};

// RAII phase guard; a null profiler makes it a no-op (two pointer checks),
// so instrumentation sites never branch on "is profiling enabled".
class ProfileScope {
 public:
  ProfileScope(PhaseProfiler* profiler, const char* name) : prof_(profiler) {
    if (prof_ != nullptr) {
      prof_->begin(name);
      start_ns_ = monotonic_now_ns();
    }
  }
  ~ProfileScope() {
    if (prof_ != nullptr) prof_->end(monotonic_now_ns() - start_ns_);
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  PhaseProfiler* prof_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace hlsrg
