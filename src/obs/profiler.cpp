#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace hlsrg {

// The engine's single sanctioned wall-clock site (see the header). Keeping
// the <chrono> reads out-of-line here means no inline-expanded clock call
// ever appears in another translation unit.
std::uint64_t monotonic_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double monotonic_now_sec() {
  return static_cast<double>(monotonic_now_ns()) * 1e-9;
}

namespace {

// Literal-identity fast path, strcmp fallback for ODR-duplicated literals.
bool same_name(const char* a, const char* b) {
  return a == b || std::strcmp(a, b) == 0;
}

}  // namespace

int PhaseProfiler::find(const char* name, int parent) const {
  const Node& p = nodes_[static_cast<std::size_t>(parent)];
  for (int c : p.children) {
    if (same_name(nodes_[static_cast<std::size_t>(c)].name, name)) return c;
  }
  return -1;
}

int PhaseProfiler::child_of(int parent, const char* name) {
  const int found = find(name, parent);
  if (found >= 0) return found;
  const int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{name, parent, 0, 0, 0, {}});
  nodes_[static_cast<std::size_t>(parent)].children.push_back(idx);
  return idx;
}

void PhaseProfiler::merge(const PhaseProfiler& other) {
  // Recursive name-path match; sums are order-independent, so merging
  // replicas in any order yields the same tree totals.
  struct Frame {
    int theirs;
    int mine;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& theirs = other.nodes_[static_cast<std::size_t>(f.theirs)];
    Node& mine = nodes_[static_cast<std::size_t>(f.mine)];
    mine.calls += theirs.calls;
    mine.inclusive_ns += theirs.inclusive_ns;
    mine.child_ns += theirs.child_ns;
    for (int c : theirs.children) {
      const int mc =
          child_of(f.mine, other.nodes_[static_cast<std::size_t>(c)].name);
      stack.push_back({c, mc});
    }
  }
}

JsonValue PhaseProfiler::to_json() const {
  // Recursive export with children sorted by name for a stable byte layout.
  struct Export {
    const PhaseProfiler* prof;

    [[nodiscard]] JsonValue node(int idx) const {
      const Node& n = prof->nodes_[static_cast<std::size_t>(idx)];
      JsonValue v = JsonValue::object();
      v.set("name", n.name);
      v.set("calls", n.calls);
      v.set("inclusive_ns", n.inclusive_ns);
      v.set("exclusive_ns", n.exclusive_ns());
      std::vector<int> kids = n.children;
      std::sort(kids.begin(), kids.end(), [this](int a, int b) {
        return std::strcmp(prof->nodes_[static_cast<std::size_t>(a)].name,
                           prof->nodes_[static_cast<std::size_t>(b)].name) < 0;
      });
      JsonValue children = JsonValue::array();
      for (int c : kids) children.push_back(node(c));
      v.set("children", std::move(children));
      return v;
    }
  };

  JsonValue doc = JsonValue::object();
  doc.set("schema", "hlsrg-profile/v1");
  doc.set("root", Export{this}.node(0));
  return doc;
}

}  // namespace hlsrg
