// Per-L3-region telemetry: load counters, a cross-region wired traffic
// matrix, and sampled time series.
//
// One RegionTelemetry per World, always on (feeding it is counter
// increments only — no RNG, no events, no simulation state), so like
// MetricsRegistry it is digest-neutral by construction. Counters are
// recorded at the same decision sites as the PacketLedger, which makes the
// per-region sums close exactly against the global ledger and RunMetrics —
// the conservation laws pinned in tests/obs_test.cpp:
//
//   sum(radio_broadcasts)            == RunMetrics::radio_broadcasts
//   sum(radio_unicasts)              == RunMetrics::radio_unicasts
//   sum(radio_dropped)               == RunMetrics::radio_drops
//   sum(radio_delivered + wired_in)  == channel.total_delivered()
//   sum(radio_dropped + wired_dropped) == channel.total_dropped()
//   sum(updates)                     == update_packets_originated
//   sum(cache_hits)                  == RunMetrics::cache_hits
//   sum(queries_shed)                == queries_shed + retries_shed
//   sum(role_migrations)             == role_elections + role_fills
//   sum(handoff_records)             == handoff_records_delivered
//   matrix row/col sums              == wired_out / wired_in per region
//   matrix hop total                 == RunMetrics::wired_messages
//
// Region attribution: transmissions belong to the sender's region,
// receptions/losses to the receiver's, wired traffic to the endpoint
// regions (the matrix is directed: source row, destination column).
//
// The position→region mapper replicates GridHierarchy::coord_at(p, kL3)
// arithmetic exactly — upper_bound over the L1 boundary lines (half-open
// cells, outside positions clamped), then /4 — against a private copy of
// the boundary coordinates, so the hot instrumentation paths never touch
// the hierarchy or take an indirect call.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.h"
#include "report/json.h"
#include "util/check.h"

namespace hlsrg {

class PhaseProfiler;

// Per-region counter block. All counters are recorded at channel/protocol
// decision time (see the header comment for the exact laws).
struct RegionCounters {
  std::uint64_t radio_broadcasts = 0;  // broadcast transmissions from here
  std::uint64_t radio_unicasts = 0;    // unicast attempts from here
  std::uint64_t radio_delivered = 0;   // receptions scheduled for nodes here
  std::uint64_t radio_dropped = 0;     // channel losses at receivers here
  std::uint64_t wired_out = 0;         // wired packets sent from here
  std::uint64_t wired_in = 0;          // wired packets delivered here
  std::uint64_t wired_dropped = 0;     // wired sends from here with no path
  std::uint64_t updates = 0;           // update packets originated here
  std::uint64_t queries_served = 0;    // location-table lookup hits here
  std::uint64_t cache_hits = 0;        // service-tier cache answers here
  std::uint64_t queries_shed = 0;      // admissions refused for sources here
  std::uint64_t role_migrations = 0;   // role hosts elected/filled here
  std::uint64_t handoff_records = 0;   // handoff records delivered here

  // Deliveries a region's nodes had to handle — the load measure behind the
  // imbalance summary (radio receptions + wired arrivals).
  [[nodiscard]] std::uint64_t load() const {
    return radio_delivered + wired_in;
  }

  void merge(const RegionCounters& other);
};

class RegionTelemetry {
 public:
  // Unconfigured shell (0 regions); merge() adopts the first configured
  // source. The harness aggregate starts in this state.
  RegionTelemetry() = default;

  // `x_edges`/`y_edges` are the L1 boundary-line coordinates (map edges
  // included, ascending) from the road-adapted partition.
  RegionTelemetry(std::vector<double> x_edges, std::vector<double> y_edges);

  [[nodiscard]] bool configured() const { return cols_ > 0; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int region_count() const { return cols_ * rows_; }
  [[nodiscard]] int replicas() const { return replicas_; }

  // L3 region containing p; identical arithmetic to
  // GridHierarchy::coord_at(p, GridLevel::kL3) (clamped half-open cells).
  [[nodiscard]] int region_of(Vec2 p) const {
    return interval(y_edges_, l1_rows_, p.y) / 4 * cols_ +
           interval(x_edges_, l1_cols_, p.x) / 4;
  }

  [[nodiscard]] RegionCounters& at(int region) {
    return counters_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] const RegionCounters& at(int region) const {
    return counters_[static_cast<std::size_t>(region)];
  }

  // Wired delivery from region `from` to region `to`: matrix cell plus the
  // endpoint wired_out/wired_in counters.
  void add_wired_delivered(int from, int to, int hops, std::uint64_t bytes) {
    const std::size_t cell = static_cast<std::size_t>(from) *
                                 static_cast<std::size_t>(cols_ * rows_) +
                             static_cast<std::size_t>(to);
    ++matrix_packets_[cell];
    matrix_hops_[cell] += static_cast<std::uint64_t>(hops);
    matrix_bytes_[cell] += bytes;
    ++at(from).wired_out;
    ++at(to).wired_in;
  }
  void add_wired_dropped(int from) { ++at(from).wired_dropped; }

  [[nodiscard]] std::uint64_t matrix_packets(int from, int to) const {
    return matrix_packets_[static_cast<std::size_t>(from) *
                               static_cast<std::size_t>(cols_ * rows_) +
                           static_cast<std::size_t>(to)];
  }
  [[nodiscard]] std::uint64_t matrix_hops(int from, int to) const {
    return matrix_hops_[static_cast<std::size_t>(from) *
                            static_cast<std::size_t>(cols_ * rows_) +
                        static_cast<std::size_t>(to)];
  }
  [[nodiscard]] std::uint64_t matrix_bytes(int from, int to) const {
    return matrix_bytes_[static_cast<std::size_t>(from) *
                             static_cast<std::size_t>(cols_ * rows_) +
                         static_cast<std::size_t>(to)];
  }

  // Appends one sample tick (the World's periodic sampler). The three
  // vectors must be region_count() long.
  void push_sample(double t_sec, std::vector<std::uint64_t> vehicles,
                   std::vector<std::uint64_t> table_records,
                   std::vector<std::uint64_t> queue_depth);

  [[nodiscard]] std::size_t sample_count() const { return times_sec_.size(); }

  // Load-imbalance summary over RegionCounters::load().
  struct Imbalance {
    double max_over_mean = 0.0;  // hottest region vs the mean (1 = uniform)
    double cv = 0.0;             // coefficient of variation (stddev / mean)
    std::uint64_t total_load = 0;
  };
  [[nodiscard]] Imbalance load_imbalance() const;

  // Replica aggregation: counters and matrix cells add element-wise, the
  // sampled series keep the first replica (mirroring MetricsRegistry), and
  // an unconfigured shell adopts the source's geometry.
  void merge(const RegionTelemetry& other);

  // Region/matrix/series document (no schema key; obs_document() wraps it).
  [[nodiscard]] JsonValue to_json() const;

 private:
  // Index of the half-open interval [edges[i], edges[i+1]) containing v,
  // clamped to [0, n-1] — GridHierarchy's interval_index over plain doubles.
  // L1 edge counts are small (a handful of boundary roads per axis), so a
  // branchless-ish linear scan beats binary search and stays inline.
  [[nodiscard]] static int interval(const std::vector<double>& edges, int n,
                                    double v) {
    int idx = 0;
    // First interior edge is edges[1]; v >= edge means the greater side.
    for (int i = 1; i < n && v >= edges[static_cast<std::size_t>(i)]; ++i) {
      idx = i;
    }
    return idx;
  }

  int l1_cols_ = 0;
  int l1_rows_ = 0;
  int cols_ = 0;
  int rows_ = 0;
  int replicas_ = 1;
  std::vector<double> x_edges_;
  std::vector<double> y_edges_;
  std::vector<RegionCounters> counters_;
  // Directed region×region wired traffic, flattened row-major (from, to).
  std::vector<std::uint64_t> matrix_packets_;
  std::vector<std::uint64_t> matrix_hops_;
  std::vector<std::uint64_t> matrix_bytes_;
  // Sampled series: times_sec_[i] pairs with row i of each per-region table.
  std::vector<double> times_sec_;
  std::vector<std::vector<std::uint64_t>> vehicles_;
  std::vector<std::vector<std::uint64_t>> table_records_;
  std::vector<std::vector<std::uint64_t>> queue_depth_;
};

// Assembles the `--obs-out` document: {"schema":"hlsrg-obs/v1",
// "telemetry":{…},"profile":{…}|null}. `profiler` may be null (profiling
// off) or empty.
[[nodiscard]] JsonValue obs_document(const RegionTelemetry& telemetry,
                                     const PhaseProfiler* profiler);

}  // namespace hlsrg
