// Wireless medium (ns-2 substitute): unit-disk radio with a loss model.
//
// Reception succeeds within `range_m` with probability 1 - p_loss, where
// p_loss grows with distance (fading) and with the receiver-side neighbor
// count (contention — more stations in earshot, more collisions). Per-hop
// latency is a base MAC/propagation floor plus uniform jitter. This is the
// minimal channel that still produces the effects the paper's evaluation
// turns on: long hops and dense areas lose packets, so multi-hop
// vehicle-to-vehicle paths across "vast areas" are unreliable while short
// hops and wired RSUs are not.
//
// Hot-path shape: a broadcast does ONE index walk (query_with_density
// returns receivers and their cached contention densities together), draws
// per-receiver loss in a single pass over that batch, and shares one
// immutable Packet copy across every per-receiver delivery closure instead
// of copying the Packet into each.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/aabb.h"
#include "net/neighbor_index.h"
#include "net/node_registry.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hlsrg {

struct RadioConfig {
  // Communication range; the paper uses 500 m, matched to the L1 grid edge.
  double range_m = 500.0;
  // Per-hop latency floor and uniform jitter (MAC access + serialization).
  double base_delay_ms = 1.5;
  double jitter_ms = 2.5;
  // Loss model: p = base + distance_loss * (d/R)^2 + contention excess.
  // ns-2's two-ray-ground model delivers near-deterministically inside the
  // range; most real loss is contention. The distance term stays moderate so
  // edge-of-range hops are risky but not hopeless.
  double base_loss = 0.01;
  double distance_loss = 0.15;
  double contention_loss_per_neighbor = 0.002;
  int contention_free_neighbors = 15;
  double max_loss = 0.95;
  // MAC retransmissions for unicast frames (broadcasts are never retried,
  // as in 802.11).
  int unicast_retries = 2;
  double retry_delay_ms = 1.0;
};

// Region of degraded radio reception (jamming, interference, weather): any
// reception whose receiver sits inside `box` takes `extra_loss` additional
// loss probability. Installed/cleared by the fault layer at window edges.
struct RadioLossZone {
  Aabb box;
  double extra_loss = 0.0;
};

class RadioMedium {
 public:
  RadioMedium(Simulator& sim, const NodeRegistry& registry, RadioConfig cfg);

  // One-hop broadcast to every node in range of the sender. Each receiver
  // independently passes the loss draw. Returns the in-range receiver count
  // (before losses).
  int broadcast(NodeId sender, const Packet& pkt);

  // One-hop broadcast delivering to a callback instead of node sinks; the
  // geocast layer uses this to run region-limited floods with its own
  // duplicate suppression. Loss/delay semantics match broadcast(). The
  // callback fires at reception time, once per surviving receiver. `kind`
  // feeds the per-kind channel ledger (the frame carries no Packet, but the
  // conservation auditor still covers it).
  int broadcast_each(NodeId sender, PacketKind kind,
                     std::function<void(NodeId)> on_deliver);

  // One-hop unicast with MAC retries. `target` must currently be in range;
  // if it is not, or every retry is lost, `on_lost` fires (if provided).
  void unicast(NodeId sender, NodeId target, const Packet& pkt,
               std::function<void()> on_lost = {});

  // One-hop unicast of a bare frame: channel semantics (range check, loss,
  // retries, delay) without sink delivery. Routing layers use this for
  // intermediate hops so forwarders do not consume the packet; exactly one
  // of the callbacks fires, at delivery/abandon time. `kind` is the packet
  // kind the frame is carrying, for the channel ledger.
  void unicast_frame(NodeId sender, NodeId target, PacketKind kind,
                     std::function<void()> on_delivered,
                     std::function<void()> on_lost = {});

  // Nodes currently within range of `node`.
  void neighbors_of(NodeId node, std::vector<NodeId>* out);
  // Nodes currently within range of a position (excluding `exclude`).
  void nodes_near(Vec2 pos, double radius, NodeId exclude,
                  std::vector<NodeId>* out);

  [[nodiscard]] Vec2 position(NodeId id) const { return registry_->position(id); }
  [[nodiscard]] double range() const { return cfg_.range_m; }
  [[nodiscard]] const RadioConfig& config() const { return cfg_; }
  [[nodiscard]] Simulator& sim() { return *sim_; }

  // Loss probability for a hop of length `dist` with `local_neighbors`
  // stations audible at the receiver. Exposed for tests.
  [[nodiscard]] double loss_probability(double dist, int local_neighbors) const;
  // Same, with the receiver position folded against any active loss zones.
  // With no zones this is exactly the two-argument form.
  [[nodiscard]] double loss_probability(double dist, int local_neighbors,
                                        Vec2 receiver_pos) const;

  // Replaces the active degraded-reception zones. Zero zones restores the
  // nominal channel bit-for-bit (no extra RNG draws, same loss values).
  void set_loss_zones(std::vector<RadioLossZone> zones) {
    loss_zones_ = std::move(zones);
  }
  [[nodiscard]] const std::vector<RadioLossZone>& loss_zones() const {
    return loss_zones_;
  }

  // Test seam: forces the exact per-receiver density recount (bypassing the
  // cell-sum shortcut and the per-node cache), so digest-equality tests can
  // prove the cached path is behavior-neutral. Never set outside tests.
  void set_reference_density_for_test(bool on) { reference_density_ = on; }

 private:
  [[nodiscard]] SimTime hop_delay();
  // Schedules sink delivery of the shared packet. `ctx` is the span context
  // re-established around on_receive (so receivers inherit the sender's
  // query context across the event-queue hop); `span_to_end` is closed kOk
  // at reception time with `value` (MAC retries used).
  void deliver(NodeId to, std::shared_ptr<const Packet> pkt, NodeId from,
               SimTime delay, SpanId ctx = kNoSpan,
               SpanId span_to_end = kNoSpan, std::int32_t value = -1);
  void try_unicast(NodeId sender, NodeId target,
                   std::shared_ptr<const Packet> pkt, int attempts_left,
                   std::function<void()> on_lost, SpanId span, SpanId ctx);
  void try_unicast_frame(NodeId sender, NodeId target, PacketKind kind,
                         int attempts_left,
                         std::function<void()> on_delivered,
                         std::function<void()> on_lost, SpanId span,
                         SpanId ctx);
  // Receiver-side contention density for the loss model: the cached batched
  // value normally, the exact recount under the reference seam.
  [[nodiscard]] int density_at(NodeId rx);

  Simulator* sim_;
  const NodeRegistry* registry_;
  RadioConfig cfg_;
  NeighborIndex index_;
  std::vector<RadioLossZone> loss_zones_;
  std::vector<NodeId> scratch_;
  std::vector<std::int32_t> density_scratch_;
  bool reference_density_ = false;
};

}  // namespace hlsrg
