// GPSR: greedy perimeter stateless routing (Karp & Kung, MobiCom 2000).
//
// The paper assumes GPSR as the unicast substrate ("GPSR become the most
// popular routing protocol in VANETs"), so we implement it properly: greedy
// geographic forwarding with perimeter-mode recovery over a Gabriel-graph
// planarization of the neighbor set, using the right-hand rule. Packets hop
// through the event queue, so every hop pays the radio's latency and loss.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "net/beacons.h"
#include "net/radio.h"
#include "trace/metrics.h"

namespace hlsrg {

struct GpsrConfig {
  // Routing gives up after this many hops (covers perimeter loops on
  // disconnected topologies).
  int max_hops = 64;
  // A packet addressed to a position (no target node) is delivered to the
  // first node within this distance of the destination position.
  double default_delivery_radius = 80.0;
};

class GpsrRouter {
 public:
  // Delivery outcome callbacks. `deliver` receives the node the packet was
  // handed to (which also gets it via its PacketSink).
  using DeliverFn = std::function<void(NodeId)>;
  using FailFn = std::function<void()>;

  GpsrRouter(RadioMedium& medium, const NodeRegistry& registry,
             GpsrConfig cfg = {});

  // Switches neighbor discovery from the genie spatial index to HELLO
  // beacons (see net/beacons.h). Pass nullptr to revert. Forwarding
  // decisions then use last-heard positions, which may be stale.
  void set_beacons(BeaconService* beacons) { beacons_ = beacons; }

  // Routes `pkt` from `src` toward `dest_pos`.
  //  - If `dest_node` is set, delivery happens only at that node.
  //  - Otherwise the packet is delivered to the first node encountered within
  //    `delivery_radius` (<=0 uses the config default) of `dest_pos`.
  // Each hop transmission increments *tx_counter when provided. The packet
  // is handed to the receiving node's PacketSink on delivery, in addition to
  // the `deliver` callback.
  void send(NodeId src, Vec2 dest_pos, std::optional<NodeId> dest_node,
            Packet pkt, std::uint64_t* tx_counter = nullptr,
            DeliverFn deliver = {}, FailFn fail = {},
            double delivery_radius = 0.0);

 private:
  struct RouteState;
  // A neighbor as the router believes it to be: with beacons, `pos` is the
  // last advertised position, not ground truth.
  struct NeighborView {
    NodeId id;
    Vec2 pos;
  };

  void route_step(NodeId current, const std::shared_ptr<RouteState>& st);
  void gather_neighbors(NodeId current, std::vector<NeighborView>* out);
  // Greedy next hop: neighbor strictly closer to the destination; invalid id
  // if none exists (local minimum).
  [[nodiscard]] static NodeId greedy_next(
      Vec2 current_pos, Vec2 dest, const std::vector<NeighborView>& neighbors);
  // Perimeter next hop: first Gabriel-graph neighbor counter-clockwise from
  // the reference direction (right-hand rule).
  [[nodiscard]] static NodeId perimeter_next(
      Vec2 current_pos, Vec2 reference_toward,
      const std::vector<NeighborView>& neighbors);

  RadioMedium* medium_;
  const NodeRegistry* registry_;
  BeaconService* beacons_ = nullptr;
  GpsrConfig cfg_;
  // Always-on route-length histogram ("gpsr.route_hops"); the pointer is
  // cached because registry nodes are address-stable.
  Histogram* hops_hist_;
};

}  // namespace hlsrg
