#include "net/wired.h"

#include <algorithm>
#include <deque>

#include "util/check.h"
#include "util/ordered.h"

namespace hlsrg {

WiredNetwork::WiredNetwork(Simulator& sim, const NodeRegistry& registry,
                           WiredConfig cfg)
    : sim_(&sim), registry_(&registry), cfg_(cfg),
      hops_hist_(sim.observability().histogram("wired.message_hops")),
      unreachable_counter_(&sim.observability().counter("wired.unreachable")) {
}

void WiredNetwork::connect(NodeId a, NodeId b) {
  HLSRG_CHECK(a.valid() && b.valid() && a != b);
  auto& la = adjacency_[a];
  if (std::find(la.begin(), la.end(), b) == la.end()) la.push_back(b);
  auto& lb = adjacency_[b];
  if (std::find(lb.begin(), lb.end(), a) == lb.end()) lb.push_back(a);
  invalidate_cache();
}

void WiredNetwork::set_node_up(NodeId n, bool up) {
  HLSRG_CHECK(n.valid());
  const bool changed = up ? down_nodes_.erase(n.value()) > 0
                          : down_nodes_.insert(n.value()).second;
  if (changed) invalidate_cache();
}

void WiredNetwork::set_link_up(NodeId a, NodeId b, bool up) {
  HLSRG_CHECK(a.valid() && b.valid() && a != b);
  const std::uint64_t key = link_key(a, b);
  const bool changed =
      up ? down_links_.erase(key) > 0 : down_links_.insert(key).second;
  if (changed) invalidate_cache();
}

const std::unordered_map<NodeId, int>& WiredNetwork::distances_from(
    NodeId from) const {
  const auto cached = bfs_cache_.find(from);
  if (cached != bfs_cache_.end()) return cached->second;
  auto& dist = bfs_cache_[from];
  if (!node_up(from)) return dist;  // stays empty: a down node routes nothing
  dist[from] = 0;
  std::deque<NodeId> queue{from};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    const auto it = adjacency_.find(cur);
    if (it == adjacency_.end()) continue;
    for (NodeId next : it->second) {
      if (dist.contains(next)) continue;
      if (!node_up(next) || !link_up(cur, next)) continue;
      dist[next] = dist[cur] + 1;
      queue.push_back(next);
    }
  }
  return dist;
}

int WiredNetwork::hop_count(NodeId from, NodeId to) const {
  if (!node_up(from) || !node_up(to)) return -1;
  if (from == to) return 0;
  const auto& dist = distances_from(from);
  const auto it = dist.find(to);
  return it == dist.end() ? -1 : it->second;
}

bool WiredNetwork::send(NodeId from, NodeId to, const Packet& pkt,
                        std::uint64_t* tx_counter) {
  ProfileScope profile(sim_->profiler(), "wired_send");
  const int hops = hop_count(from, to);
  RegionTelemetry* regions = sim_->regions();
  if (hops < 0) {
    // Unreachable: the message is offered to the backhaul and lost at the
    // edge. Record the offered+dropped pair so the conservation auditor's
    // per-kind ledger still balances, and surface the loss to callers (who
    // may fail over to the radio plane).
    sim_->metrics().channel.add_offered(static_cast<int>(pkt.kind));
    sim_->metrics().channel.add_dropped(static_cast<int>(pkt.kind));
    ++sim_->metrics().wired_drops;
    if (regions != nullptr) {
      regions->add_wired_dropped(regions->region_of(registry_->position(from)));
    }
    ++*unreachable_counter_;
    return false;
  }
  sim_->metrics().wired_messages += static_cast<std::uint64_t>(hops);
  // A routable wired send always arrives: offered and delivered.
  sim_->metrics().channel.add_offered(static_cast<int>(pkt.kind));
  sim_->metrics().channel.add_delivered(static_cast<int>(pkt.kind));
  if (regions != nullptr) {
    regions->add_wired_delivered(
        regions->region_of(registry_->position(from)),
        regions->region_of(registry_->position(to)), hops,
        packet_wire_bytes(pkt.kind));
  }
  if (tx_counter != nullptr) *tx_counter += static_cast<std::uint64_t>(hops);
  hops_hist_->record(hops);
  const SimTime latency =
      SimTime::from_ms(cfg_.link_latency_ms * std::max(hops, 1));
  const SpanId ctx = sim_->active_span();
  const SpanId span =
      sim_->begin_span(SpanKind::kWiredHop, from.value(), to.value(),
                       registry_->position(from), kNoQuery, -1,
                       packet_kind_name(pkt.kind));
  sim_->schedule_after(latency, [this, to, pkt, from, ctx, span, hops] {
    sim_->end_span(span, SpanStatus::kOk, registry_->position(to), hops);
    SpanScope scope(*sim_, ctx);
    if (PacketSink* sink = registry_->sink(to)) sink->on_receive(pkt, from);
  });
  return true;
}

const std::vector<NodeId>& WiredNetwork::links_of(NodeId n) const {
  const auto it = adjacency_.find(n);
  return it == adjacency_.end() ? empty_ : it->second;
}

std::vector<std::pair<NodeId, NodeId>> WiredNetwork::links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (const auto* entry : det::sorted_view(adjacency_)) {
    for (NodeId peer : entry->second) {
      if (entry->first.value() < peer.value()) {
        out.emplace_back(entry->first, peer);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const std::pair<NodeId, NodeId>& x,
               const std::pair<NodeId, NodeId>& y) {
              return x.first.value() != y.first.value()
                         ? x.first.value() < y.first.value()
                         : x.second.value() < y.second.value();
            });
  return out;
}

}  // namespace hlsrg
