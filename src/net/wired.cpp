#include "net/wired.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace hlsrg {

WiredNetwork::WiredNetwork(Simulator& sim, const NodeRegistry& registry,
                           WiredConfig cfg)
    : sim_(&sim), registry_(&registry), cfg_(cfg),
      hops_hist_(sim.observability().histogram("wired.message_hops")) {}

void WiredNetwork::connect(NodeId a, NodeId b) {
  HLSRG_CHECK(a.valid() && b.valid() && a != b);
  auto& la = adjacency_[a];
  if (std::find(la.begin(), la.end(), b) == la.end()) la.push_back(b);
  auto& lb = adjacency_[b];
  if (std::find(lb.begin(), lb.end(), a) == lb.end()) lb.push_back(a);
}

int WiredNetwork::hop_count(NodeId from, NodeId to) const {
  if (from == to) return 0;
  std::unordered_map<NodeId, int> dist;
  dist[from] = 0;
  std::deque<NodeId> queue{from};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    const auto it = adjacency_.find(cur);
    if (it == adjacency_.end()) continue;
    for (NodeId next : it->second) {
      if (dist.contains(next)) continue;
      dist[next] = dist[cur] + 1;
      if (next == to) return dist[next];
      queue.push_back(next);
    }
  }
  return -1;
}

bool WiredNetwork::send(NodeId from, NodeId to, const Packet& pkt,
                        std::uint64_t* tx_counter) {
  const int hops = hop_count(from, to);
  if (hops < 0) return false;
  sim_->metrics().wired_messages += static_cast<std::uint64_t>(hops);
  // The wired plane is lossless: every send is offered and delivered.
  sim_->metrics().channel.add_offered(static_cast<int>(pkt.kind));
  sim_->metrics().channel.add_delivered(static_cast<int>(pkt.kind));
  if (tx_counter != nullptr) *tx_counter += static_cast<std::uint64_t>(hops);
  hops_hist_->record(hops);
  const SimTime latency =
      SimTime::from_ms(cfg_.link_latency_ms * std::max(hops, 1));
  const SpanId ctx = sim_->active_span();
  const SpanId span =
      sim_->begin_span(SpanKind::kWiredHop, from.value(), to.value(),
                       registry_->position(from), kNoQuery, -1,
                       packet_kind_name(pkt.kind));
  sim_->schedule_after(latency, [this, to, pkt, from, ctx, span, hops] {
    sim_->end_span(span, SpanStatus::kOk, registry_->position(to), hops);
    SpanScope scope(*sim_, ctx);
    if (PacketSink* sink = registry_->sink(to)) sink->on_receive(pkt, from);
  });
  return true;
}

const std::vector<NodeId>& WiredNetwork::links_of(NodeId n) const {
  const auto it = adjacency_.find(n);
  return it == adjacency_.end() ? empty_ : it->second;
}

}  // namespace hlsrg
