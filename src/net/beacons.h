// HELLO beaconing: distributed neighbor discovery for GPSR.
//
// By default the router reads neighbor sets from the genie spatial index —
// instantaneous, perfect knowledge, the common simulator idealization. Real
// GPSR learns neighbors from periodic HELLO beacons and works with positions
// that are up to one beacon interval stale; fast vehicles therefore leak out
// of (or into) neighbor tables late, which costs the occasional bad next-hop
// choice. This service implements that mechanism so the idealization is a
// measured choice (bench: abl_beacons), not an accident.
#pragma once

#include <cstdint>
#include <vector>

#include "net/radio.h"
#include "util/flat_table.h"

namespace hlsrg {

struct BeaconConfig {
  bool enabled = false;
  // HELLO interval per node; GPSR's classic default is ~1 s.
  double interval_sec = 1.0;
  // Entries not refreshed within this horizon are evicted (typically a few
  // intervals so a single lost beacon does not drop a live neighbor).
  double timeout_sec = 3.0;
};

class BeaconService {
 public:
  // Starts per-node beacon timers for every node currently registered.
  // Nodes registered later are not covered (worlds register everything
  // before the simulation starts).
  BeaconService(RadioMedium& medium, const NodeRegistry& registry,
                BeaconConfig cfg);

  struct Neighbor {
    NodeId id;
    Vec2 heard_pos;  // position advertised in the last HELLO received
  };

  // Appends the live neighbor table of `node` (staleness-purged) to `out`.
  void neighbors_of(NodeId node, std::vector<Neighbor>* out);

  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_sent_; }
  [[nodiscard]] const BeaconConfig& config() const { return cfg_; }

 private:
  struct Entry {
    Vec2 pos;
    SimTime heard;
  };

  void beacon_from(NodeId node);

  RadioMedium* medium_;
  const NodeRegistry* registry_;
  BeaconConfig cfg_;
  std::vector<FlatTable<NodeId, Entry>> tables_;  // indexed by NodeId
  std::uint64_t beacons_sent_ = 0;
};

}  // namespace hlsrg
