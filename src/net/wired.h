// Wired RSU backhaul.
//
// The paper wires every Level-2 RSU to its Level-3 RSU and every Level-3 RSU
// to its four compass neighbors, and treats the wired plane as fast and
// reliable. We model links with a fixed per-hop latency and no loss, and
// route messages over the shortest wired path (BFS), counting each traversed
// link as one wired message.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/node_registry.h"
#include "sim/simulator.h"

namespace hlsrg {

struct WiredConfig {
  double link_latency_ms = 1.0;
};

class WiredNetwork {
 public:
  WiredNetwork(Simulator& sim, const NodeRegistry& registry,
               WiredConfig cfg = {});

  // Adds a bidirectional link; idempotent.
  void connect(NodeId a, NodeId b);

  // Sends `pkt` from `from` to `to` over the shortest wired path. Delivery
  // invokes to's PacketSink after hops * link_latency. Returns false (and
  // sends nothing) if no wired path exists. Counts hops into the run metrics
  // and into *tx_counter when provided.
  bool send(NodeId from, NodeId to, const Packet& pkt,
            std::uint64_t* tx_counter = nullptr);

  // Wired hop count between two nodes, or -1 if unconnected.
  [[nodiscard]] int hop_count(NodeId from, NodeId to) const;

  [[nodiscard]] const std::vector<NodeId>& links_of(NodeId n) const;

 private:
  Simulator* sim_;
  const NodeRegistry* registry_;
  WiredConfig cfg_;
  // Always-on backhaul path-length histogram ("wired.message_hops").
  Histogram* hops_hist_;
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency_;
  std::vector<NodeId> empty_;
};

}  // namespace hlsrg
