// Wired RSU backhaul.
//
// The paper wires every Level-2 RSU to its Level-3 RSU and every Level-3 RSU
// to its four compass neighbors, and treats the wired plane as fast and
// reliable. We model links with a fixed per-hop latency and route messages
// over the shortest wired path (BFS), counting each traversed link as one
// wired message. The fault layer (src/fault) can take individual nodes and
// links down; sends that then find no path are dropped at the edge — and
// accounted through the packet ledger so conservation audits still balance.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/node_registry.h"
#include "sim/simulator.h"

namespace hlsrg {

struct WiredConfig {
  double link_latency_ms = 1.0;
};

class WiredNetwork {
 public:
  WiredNetwork(Simulator& sim, const NodeRegistry& registry,
               WiredConfig cfg = {});

  // Adds a bidirectional link; idempotent.
  void connect(NodeId a, NodeId b);

  // Sends `pkt` from `from` to `to` over the shortest wired path. Delivery
  // invokes to's PacketSink after hops * link_latency. Returns false if no
  // wired path exists (disjoint graph, cut link, or down endpoint); the
  // failed send is still offered+dropped in the ledger and counted in
  // RunMetrics::wired_drops and the "wired.unreachable" counter.
  bool send(NodeId from, NodeId to, const Packet& pkt,
            std::uint64_t* tx_counter = nullptr);

  // Wired hop count between two nodes, or -1 if unconnected. Results are
  // served from a per-source BFS cache that is invalidated whenever the
  // topology changes (connect / node or link state flips).
  [[nodiscard]] int hop_count(NodeId from, NodeId to) const;

  [[nodiscard]] const std::vector<NodeId>& links_of(NodeId n) const;

  // Every undirected link once, as (a, b) with a.value() < b.value(), sorted.
  // Enumeration order is deterministic; used by the fault layer to cut the
  // links crossing a partition boundary.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> links() const;

  // --- fault state (driven by src/fault) ---------------------------------
  // A down node neither originates, relays, nor receives wired messages; a
  // down link is skipped by routing. Both are reversible.
  void set_node_up(NodeId n, bool up);
  void set_link_up(NodeId a, NodeId b, bool up);
  [[nodiscard]] bool node_up(NodeId n) const {
    return !down_nodes_.contains(n.value());
  }
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const {
    return !down_links_.contains(link_key(a, b));
  }

 private:
  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) {
    const std::uint64_t lo = a.value() < b.value() ? a.value() : b.value();
    const std::uint64_t hi = a.value() < b.value() ? b.value() : a.value();
    return (lo << 32) | hi;
  }
  // Full single-source BFS distances honoring down nodes/links; cached.
  [[nodiscard]] const std::unordered_map<NodeId, int>& distances_from(
      NodeId from) const;
  void invalidate_cache() { bfs_cache_.clear(); }

  Simulator* sim_;
  const NodeRegistry* registry_;
  WiredConfig cfg_;
  // Always-on backhaul path-length histogram ("wired.message_hops").
  Histogram* hops_hist_;
  // Always-on count of sends lost for lack of a wired path.
  std::uint64_t* unreachable_counter_;
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency_;
  std::unordered_set<std::uint64_t> down_nodes_;  // NodeId::value()
  std::unordered_set<std::uint64_t> down_links_;  // link_key()
  // Distance maps per BFS source, rebuilt lazily after topology edits.
  mutable std::unordered_map<NodeId, std::unordered_map<NodeId, int>>
      bfs_cache_;
  std::vector<NodeId> empty_;
};

}  // namespace hlsrg
