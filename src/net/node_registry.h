// Unified id space and directory for every radio-capable node.
//
// Vehicles and RSUs share one NodeId space so the radio, GPSR, and geocast
// layers are agnostic to what a node is. Positions are supplied by callback:
// vehicles report their live mobility pose, RSUs a constant.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/vec2.h"
#include "net/packet.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Receiver interface implemented by protocol agents and RSUs.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_receive(const Packet& packet, NodeId from) = 0;
};

class NodeRegistry {
 public:
  using PositionFn = std::function<Vec2()>;

  // Registers a node; `sink` may be null for sniff-only placeholders and can
  // be set later (agents are often constructed after registration).
  NodeId add_node(PositionFn position, PacketSink* sink = nullptr);

  void set_sink(NodeId id, PacketSink* sink);

  [[nodiscard]] std::size_t count() const { return nodes_.size(); }
  [[nodiscard]] Vec2 position(NodeId id) const {
    return nodes_[id.index()].position();
  }
  [[nodiscard]] PacketSink* sink(NodeId id) const {
    return nodes_[id.index()].sink;
  }

  // Positions are pulled through callbacks, so writes are invisible to the
  // registry itself; mutators (the mobility tick, fault window edges) bump
  // this generation instead. Consumers that cache positions — the neighbor
  // index — key their rebuild on it, so a position change that does not
  // advance the clock still invalidates the cache.
  void bump_position_generation() { ++position_generation_; }
  [[nodiscard]] std::uint64_t position_generation() const {
    return position_generation_;
  }

 private:
  struct Entry {
    PositionFn position;
    PacketSink* sink = nullptr;
  };
  std::vector<Entry> nodes_;
  std::uint64_t position_generation_ = 0;
};

}  // namespace hlsrg
