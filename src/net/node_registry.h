// Unified id space and directory for every radio-capable node.
//
// Vehicles and RSUs share one NodeId space so the radio, GPSR, and geocast
// layers are agnostic to what a node is. Positions are supplied by callback:
// vehicles report their live mobility pose, RSUs a constant.
#pragma once

#include <functional>
#include <vector>

#include "geom/vec2.h"
#include "net/packet.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Receiver interface implemented by protocol agents and RSUs.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_receive(const Packet& packet, NodeId from) = 0;
};

class NodeRegistry {
 public:
  using PositionFn = std::function<Vec2()>;

  // Registers a node; `sink` may be null for sniff-only placeholders and can
  // be set later (agents are often constructed after registration).
  NodeId add_node(PositionFn position, PacketSink* sink = nullptr);

  void set_sink(NodeId id, PacketSink* sink);

  [[nodiscard]] std::size_t count() const { return nodes_.size(); }
  [[nodiscard]] Vec2 position(NodeId id) const {
    return nodes_[id.index()].position();
  }
  [[nodiscard]] PacketSink* sink(NodeId id) const {
    return nodes_[id.index()].sink;
  }

 private:
  struct Entry {
    PositionFn position;
    PacketSink* sink = nullptr;
  };
  std::vector<Entry> nodes_;
};

}  // namespace hlsrg
