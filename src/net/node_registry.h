// Unified id space and directory for every radio-capable node.
//
// Vehicles and RSUs share one NodeId space so the radio, GPSR, and geocast
// layers are agnostic to what a node is. Positions are stored SoA and
// *pushed* by whoever owns the node's motion: the world's pose bridge
// mirrors every mobility write here (vehicles), RSUs push once at
// registration. position() is a plain array load — the radio/GPSR hot
// paths used to chase a std::function per read (~48 B per node plus an
// indirect call); at million-entity scale both the bytes and the branch
// mattered.
//
// The registry also carries the dense per-vehicle SoA block (velocity,
// parked flag, L3 region), indexed by VehicleId. Consumers that used to
// poll the mobility model per vehicle (the region sampler, churn election,
// the fault layer's burst-departure hook) read these arrays instead; the
// pose bridge keeps them in sync on the mobility listener callbacks.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.h"
#include "net/packet.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Receiver interface implemented by protocol agents and RSUs.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_receive(const Packet& packet, NodeId from) = 0;
};

class NodeRegistry {
 public:
  // Registers a node at `position`; `sink` may be null for sniff-only
  // placeholders and can be set later (agents are often constructed after
  // registration).
  NodeId add_node(Vec2 position, PacketSink* sink = nullptr);

  void set_sink(NodeId id, PacketSink* sink);

  // Pushes a new pose. Deliberately does NOT bump the position generation:
  // the pose bridge decides when a write batch invalidates cached neighbor
  // sets (it bumps on on_moved, and only there — mid-advance intersection
  // poses become visible without a bump, exactly as the old pull-through-
  // callback model behaved).
  void set_position(NodeId id, Vec2 position) {
    positions_[id.index()] = position;
  }

  [[nodiscard]] std::size_t count() const { return positions_.size(); }
  [[nodiscard]] Vec2 position(NodeId id) const {
    return positions_[id.index()];
  }
  [[nodiscard]] PacketSink* sink(NodeId id) const {
    return sinks_[id.index()];
  }

  // Position writes are batched by the mobility tick; mutators (the pose
  // bridge, fault window edges) bump this generation to invalidate
  // consumers that cache positions — the neighbor index keys its rebuild on
  // it, so a position change that does not advance the clock still
  // invalidates the cache.
  void bump_position_generation() { ++position_generation_; }
  [[nodiscard]] std::uint64_t position_generation() const {
    return position_generation_;
  }

  // --- dense vehicle block (SoA, indexed by VehicleId) ---------------------

  // Binds vehicle `v` to its radio node and seeds its state row. Vehicles
  // bind in dense id order (the protocol services register them 0..n-1).
  void bind_vehicle(VehicleId v, NodeId node);

  void set_vehicle_velocity(VehicleId v, Vec2 velocity) {
    vehicle_velocity_[v.index()] = velocity;
  }
  void set_vehicle_parked(VehicleId v, bool parked) {
    vehicle_parked_[v.index()] = parked ? 1 : 0;
  }
  void set_vehicle_region(VehicleId v, std::int32_t region) {
    vehicle_region_[v.index()] = region;
  }

  [[nodiscard]] std::size_t vehicle_count() const {
    return vehicle_nodes_.size();
  }
  [[nodiscard]] NodeId vehicle_node(VehicleId v) const {
    return vehicle_nodes_[v.index()];
  }
  [[nodiscard]] Vec2 vehicle_position(VehicleId v) const {
    return positions_[vehicle_nodes_[v.index()].index()];
  }
  [[nodiscard]] Vec2 vehicle_velocity(VehicleId v) const {
    return vehicle_velocity_[v.index()];
  }
  [[nodiscard]] bool vehicle_parked(VehicleId v) const {
    return vehicle_parked_[v.index()] != 0;
  }
  [[nodiscard]] std::int32_t vehicle_region(VehicleId v) const {
    return vehicle_region_[v.index()];
  }

  // Heap footprint of the directory (bench memory gates).
  [[nodiscard]] std::size_t bytes() const;

 private:
  // Node SoA: hot position reads touch only positions_.
  std::vector<Vec2> positions_;
  std::vector<PacketSink*> sinks_;
  // Vehicle SoA, indexed by VehicleId.
  std::vector<NodeId> vehicle_nodes_;
  std::vector<Vec2> vehicle_velocity_;
  std::vector<std::uint8_t> vehicle_parked_;
  std::vector<std::int32_t> vehicle_region_;
  std::uint64_t position_generation_ = 0;
};

}  // namespace hlsrg
