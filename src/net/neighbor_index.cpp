#include "net/neighbor_index.h"

#include <cmath>

#include "util/check.h"

namespace hlsrg {

void NeighborIndex::refresh(SimTime now) {
  if (built_at_ == now && cached_pos_.size() == registry_->count()) return;
  cells_.clear();
  cached_pos_.resize(registry_->count());
  for (std::size_t i = 0; i < registry_->count(); ++i) {
    const NodeId id{i};
    const Vec2 p = registry_->position(id);
    cached_pos_[i] = p;
    cells_[key_for(p)].push_back(id);
  }
  built_at_ = now;
}

void NeighborIndex::query(Vec2 p, double radius, NodeId exclude,
                          std::vector<NodeId>* out) const {
  HLSRG_CHECK(out != nullptr);
  HLSRG_CHECK_MSG(radius <= cell_ + 1e-9,
                  "query radius must not exceed the hash cell size");
  const CellKey center = key_for(p);
  const double r2 = radius * radius;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find({center.x + dx, center.y + dy});
      if (it == cells_.end()) continue;
      for (NodeId id : it->second) {
        if (id == exclude) continue;
        if (distance2(cached_pos_[id.index()], p) <= r2) out->push_back(id);
      }
    }
  }
}

int NeighborIndex::count_within(Vec2 p, double radius, NodeId exclude) const {
  const CellKey center = key_for(p);
  const double r2 = radius * radius;
  int n = 0;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find({center.x + dx, center.y + dy});
      if (it == cells_.end()) continue;
      for (NodeId id : it->second) {
        if (id == exclude) continue;
        if (distance2(cached_pos_[id.index()], p) <= r2) ++n;
      }
    }
  }
  return n;
}

}  // namespace hlsrg
