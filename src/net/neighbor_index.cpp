#include "net/neighbor_index.h"

#include <algorithm>
#include <cmath>

#include "obs/profiler.h"
#include "util/check.h"

namespace hlsrg {

const std::vector<NodeId>* NeighborIndex::cell_nodes(std::uint64_t key) const {
  const std::uint32_t* slot = cell_index_.find(key);
  if (slot == nullptr) return nullptr;
  const std::vector<NodeId>& nodes = cells_[*slot];
  return nodes.empty() ? nullptr : &nodes;
}

std::vector<NodeId>& NeighborIndex::cell_nodes_mut(std::uint64_t key) {
  const std::uint32_t next = static_cast<std::uint32_t>(cells_.size());
  const std::uint32_t slot = cell_index_.find_or_insert(key, next);
  if (slot == next) cells_.emplace_back();
  return cells_[slot];
}

void NeighborIndex::refresh(SimTime now, PhaseProfiler* profiler) {
  const std::uint64_t generation = registry_->position_generation();
  if (built_at_ == now && built_generation_ == generation &&
      cached_pos_.size() == registry_->count()) {
    return;
  }
  ProfileScope scope(profiler, "neighbor_index_rebuild");
  ++stamp_;  // invalidates every cached density
  if (cached_pos_.size() == registry_->count() && !cached_pos_.empty()) {
    rebuild_incremental();
  } else {
    rebuild_full();
  }
  built_at_ = now;
  built_generation_ = generation;
}

void NeighborIndex::rebuild_full() {
  const std::size_t n = registry_->count();
  for (std::vector<NodeId>& nodes : cells_) nodes.clear();
  cached_pos_.resize(n);
  node_cell_.resize(n);
  density_.assign(n, 0);
  density_stamp_.assign(n, 0);
  // Ascending-id insertion keeps every cell list sorted, which the
  // incremental path preserves and query() relies on for receiver order.
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id{i};
    const Vec2 p = registry_->position(id);
    const std::uint64_t key = key_for(p);
    cached_pos_[i] = p;
    node_cell_[i] = key;
    cell_nodes_mut(key).push_back(id);
  }
}

void NeighborIndex::rebuild_incremental() {
  const std::size_t n = registry_->count();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id{i};
    const Vec2 p = registry_->position(id);
    Vec2& cached = cached_pos_[i];
    if (p.x == cached.x && p.y == cached.y) continue;
    cached = p;
    const std::uint64_t key = key_for(p);
    if (key == node_cell_[i]) continue;
    // Order-preserving move between the sorted cell lists.
    std::vector<NodeId>& from = cell_nodes_mut(node_cell_[i]);
    const auto it = std::lower_bound(from.begin(), from.end(), id);
    HLSRG_DCHECK(it != from.end() && *it == id);
    from.erase(it);
    std::vector<NodeId>& to = cell_nodes_mut(key);
    to.insert(std::lower_bound(to.begin(), to.end(), id), id);
    node_cell_[i] = key;
  }
}

void NeighborIndex::query(Vec2 p, double radius, NodeId exclude,
                          std::vector<NodeId>* out) const {
  HLSRG_CHECK(out != nullptr);
  HLSRG_CHECK_MSG(radius <= cell_ + 1e-9,
                  "query radius must not exceed the hash cell size");
  const auto cx = static_cast<std::int32_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int32_t>(std::floor(p.y / cell_));
  const double r2 = radius * radius;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const std::vector<NodeId>* nodes = cell_nodes(pack(cx + dx, cy + dy));
      if (nodes == nullptr) continue;
      for (NodeId id : *nodes) {
        if (id == exclude) continue;
        if (distance2(cached_pos_[id.index()], p) <= r2) out->push_back(id);
      }
    }
  }
}

int NeighborIndex::count_within(Vec2 p, double radius, NodeId exclude) const {
  const auto cx = static_cast<std::int32_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int32_t>(std::floor(p.y / cell_));
  const double r2 = radius * radius;
  int n = 0;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const std::vector<NodeId>* nodes = cell_nodes(pack(cx + dx, cy + dy));
      if (nodes == nullptr) continue;
      for (NodeId id : *nodes) {
        if (id == exclude) continue;
        if (distance2(cached_pos_[id.index()], p) <= r2) ++n;
      }
    }
  }
  return n;
}

std::int32_t NeighborIndex::compute_density(NodeId id) const {
  const Vec2 p = cached_pos_[id.index()];
  const auto cx = static_cast<std::int32_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int32_t>(std::floor(p.y / cell_));
  if (saturation_ >= 0) {
    // Cell-population bound first: the node's whole in-range neighborhood
    // lies inside its 3x3 cell block, so (block population - itself) bounds
    // the exact count from above. At or below the saturation threshold the
    // loss model cannot distinguish the two (excess is zero either way).
    std::int32_t block = 0;
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const std::vector<NodeId>* nodes = cell_nodes(pack(cx + dx, cy + dy));
        if (nodes != nullptr) block += static_cast<std::int32_t>(nodes->size());
      }
    }
    const std::int32_t bound = block - 1;
    if (bound <= saturation_) return bound;
  }
  return count_within(p, cell_, id);
}

std::int32_t NeighborIndex::local_density(NodeId id) {
  const std::size_t i = id.index();
  HLSRG_DCHECK(i < cached_pos_.size());
  if (density_stamp_[i] != stamp_) {
    density_[i] = compute_density(id);
    density_stamp_[i] = stamp_;
  }
  return density_[i];
}

void NeighborIndex::query_with_density(Vec2 p, double radius, NodeId exclude,
                                       std::vector<NodeId>* out,
                                       std::vector<std::int32_t>* density_out) {
  HLSRG_CHECK(out != nullptr && density_out != nullptr);
  HLSRG_CHECK_MSG(radius <= cell_ + 1e-9,
                  "query radius must not exceed the hash cell size");
  const auto cx = static_cast<std::int32_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int32_t>(std::floor(p.y / cell_));
  const double r2 = radius * radius;
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const std::vector<NodeId>* nodes = cell_nodes(pack(cx + dx, cy + dy));
      if (nodes == nullptr) continue;
      for (NodeId id : *nodes) {
        if (id == exclude) continue;
        if (distance2(cached_pos_[id.index()], p) <= r2) {
          out->push_back(id);
          density_out->push_back(local_density(id));
        }
      }
    }
  }
}

}  // namespace hlsrg
