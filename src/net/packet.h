// Packet model shared by the radio, routing, geocast, and wired layers.
//
// Protocol payloads derive from PayloadBase and are carried by shared_ptr so
// a broadcast delivers the same immutable payload to every receiver without
// copies. The `kind` discriminator is protocol-defined; receivers downcast
// with payload_as<T>() after checking it.
#pragma once

#include <memory>

#include "geom/vec2.h"
#include "sim/time.h"
#include "util/check.h"
#include "util/tagged_id.h"

namespace hlsrg {

struct PayloadBase {
  virtual ~PayloadBase() = default;
};

struct Packet {
  PacketId id;
  int kind = 0;           // protocol-defined discriminator
  NodeId origin;          // node that created the packet
  Vec2 origin_pos;        // where it was created
  SimTime created;
  std::shared_ptr<const PayloadBase> payload;
};

// Typed payload access; the caller vouches for `kind` having been checked.
template <typename T>
const T& payload_as(const Packet& p) {
  const T* typed = dynamic_cast<const T*>(p.payload.get());
  HLSRG_CHECK_MSG(typed != nullptr, "packet payload type mismatch");
  return *typed;
}

// Allocates monotonically increasing packet ids within one simulation.
class PacketIdSource {
 public:
  PacketId next() { return PacketId{counter_++}; }

 private:
  std::uint32_t counter_ = 0;
};

}  // namespace hlsrg
