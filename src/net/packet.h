// Packet model shared by the radio, routing, geocast, and wired layers.
//
// Protocol payloads derive from PayloadBase and are carried by shared_ptr so
// a broadcast delivers the same immutable payload to every receiver without
// copies. The `kind` discriminator is a shared typed enum; receivers downcast
// with payload_as<T>() after checking it.
#pragma once

#include <memory>

#include "geom/vec2.h"
#include "sim/time.h"
#include "util/check.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Every wire-message discriminator across the three protocols. One shared
// enum (instead of per-protocol int spaces) keeps Packet::kind type-safe and
// gives reports/traces readable packet-type names. Numeric values preserve
// the historical per-protocol blocks (HLSRG 1.., RLSMP 101.., FLOOD 201..)
// so dumps remain comparable across versions.
enum class PacketKind : int {
  kNone = 0,

  // --- HLSRG ---------------------------------------------------------------
  kLocationUpdate = 1,  // vehicle -> L1 center (one-hop broadcast)
  kTableHandoff = 2,    // leaving center vehicle -> center peers (one-hop)
  kTablePush = 3,       // L1 center -> L2 RSU (GPSR)
  kL2Summary = 4,       // L2 RSU -> L3 RSU (wired, periodic)
  kL3Gossip = 5,        // L3 RSU -> L3 neighbors (wired, periodic)
  kQueryRequest = 6,    // Sv -> level center; centers/RSUs forward
  kServerClaim = 7,     // election winner announcement (one-hop)
  kNotification = 8,    // location server -> Dv (geocast)
  kAck = 9,             // Dv -> Sv (GPSR)
  kQueryBatch = 10,     // L2/L3 RSU -> RSU: co-destined queries, one wired
                        // lookup (service-tier batching window)
  kCacheFill = 11,      // answering RSU -> querying RSU: record for the
                        // hot-destination cache (wired, reverse path)
  kRoleHandoff = 12,    // departing L2/L3 role host -> elected successor:
                        // full location-table snapshot (radio unicast), or
                        // -> parent/sibling on degradation (wired)

  // --- RLSMP ---------------------------------------------------------------
  kCellUpdate = 101,     // vehicle -> cell leader (one-hop broadcast)
  kCellSummary = 102,    // cell leader -> LSC (GPSR, periodic)
  kPushClaim = 103,      // aggregation suppression announcement (one-hop)
  kLeaderHandoff = 104,  // leaving leader-region vehicle -> peers (one-hop)
  kRlsmpQuery = 105,     // Sv -> LSC; LSC -> LSC (spiral); LSC -> cell leader
  kLscClaim = 106,       // LSC election winner announcement (one-hop)
  kRlsmpNotify = 107,    // cell leader -> Dv (region geocast)
  kRlsmpAck = 108,       // Dv -> Sv (GPSR)
  kRlsmpBatch = 109,     // LSC -> next LSC: aggregated unresolved queries

  // --- FLOOD ---------------------------------------------------------------
  kFloodUpdate = 201,  // network-wide location dissemination
  kFloodProbe = 202,   // src -> cached position of target (GPSR)
  kFloodQuery = 203,   // network-wide reactive search (cache miss)
  kFloodAck = 204,     // target -> src (GPSR)

  // --- Link layer ----------------------------------------------------------
  kHello = 240,  // periodic one-hop HELLO beacon (neighbor discovery)
};

// Stable lower_snake name for traces and JSON reports; "unknown" for values
// outside the enum.
[[nodiscard]] const char* packet_kind_name(PacketKind kind);

// Nominal on-wire size for backhaul accounting (region traffic matrix).
// Packet carries no real serialization, so this is a declared cost model —
// header plus a per-kind payload estimate — not a measurement; the matrix
// byte counts are only meaningful relative to each other.
[[nodiscard]] std::uint64_t packet_wire_bytes(PacketKind kind);

struct PayloadBase {
  virtual ~PayloadBase() = default;
};

struct Packet {
  PacketId id;
  PacketKind kind = PacketKind::kNone;
  NodeId origin;          // node that created the packet
  Vec2 origin_pos;        // where it was created
  SimTime created;
  std::shared_ptr<const PayloadBase> payload;
};

// Typed payload access; the caller vouches for `kind` having been checked.
template <typename T>
const T& payload_as(const Packet& p) {
  const T* typed = dynamic_cast<const T*>(p.payload.get());
  HLSRG_CHECK_MSG(typed != nullptr, "packet payload type mismatch");
  return *typed;
}

// Allocates monotonically increasing packet ids within one simulation.
class PacketIdSource {
 public:
  PacketId next() { return PacketId{counter_++}; }

 private:
  std::uint32_t counter_ = 0;
};

}  // namespace hlsrg
