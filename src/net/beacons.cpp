#include "net/beacons.h"

#include "util/check.h"

namespace hlsrg {

BeaconService::BeaconService(RadioMedium& medium, const NodeRegistry& registry,
                             BeaconConfig cfg)
    : medium_(&medium), registry_(&registry), cfg_(cfg) {
  HLSRG_CHECK(cfg.interval_sec > 0.0);
  HLSRG_CHECK(cfg.timeout_sec >= cfg.interval_sec);
  tables_.resize(registry.count());
  Simulator& sim = medium.sim();
  for (std::size_t i = 0; i < registry.count(); ++i) {
    const NodeId node{i};
    // Stagger first beacons across one interval so HELLOs do not collide in
    // lockstep.
    const double offset =
        sim.radio_rng().uniform(0.0, cfg.interval_sec);
    sim.schedule_after(SimTime::from_sec(offset),
                       [this, node] { beacon_from(node); });
  }
}

void BeaconService::beacon_from(NodeId node) {
  ++beacons_sent_;
  const Vec2 pos = registry_->position(node);
  const SimTime now = medium_->sim().now();
  medium_->broadcast_each(node, PacketKind::kHello,
                          [this, node, pos, now](NodeId rx) {
    if (rx.index() < tables_.size()) {
      tables_[rx.index()].upsert(node, Entry{pos, now});
    }
  });
  medium_->sim().schedule_after(SimTime::from_sec(cfg_.interval_sec),
                                [this, node] { beacon_from(node); });
}

void BeaconService::neighbors_of(NodeId node, std::vector<Neighbor>* out) {
  HLSRG_CHECK(out != nullptr);
  HLSRG_CHECK(node.index() < tables_.size());
  auto& table = tables_[node.index()];
  const SimTime now = medium_->sim().now();
  const SimTime horizon = SimTime::from_sec(cfg_.timeout_sec);
  table.erase_if([now, horizon](NodeId, const Entry& e) {
    return e.heard + horizon < now;
  });
  out->reserve(out->size() + table.size());
  for (const auto& [id, entry] : table) {
    out->push_back(Neighbor{id, entry.pos});
  }
}

}  // namespace hlsrg
