#include "net/packet.h"

namespace hlsrg {

const char* packet_kind_name(PacketKind kind) {
  switch (kind) {
    case PacketKind::kNone:
      return "none";
    case PacketKind::kLocationUpdate:
      return "location_update";
    case PacketKind::kTableHandoff:
      return "table_handoff";
    case PacketKind::kTablePush:
      return "table_push";
    case PacketKind::kL2Summary:
      return "l2_summary";
    case PacketKind::kL3Gossip:
      return "l3_gossip";
    case PacketKind::kQueryRequest:
      return "query_request";
    case PacketKind::kServerClaim:
      return "server_claim";
    case PacketKind::kNotification:
      return "notification";
    case PacketKind::kAck:
      return "ack";
    case PacketKind::kQueryBatch:
      return "query_batch";
    case PacketKind::kCacheFill:
      return "cache_fill";
    case PacketKind::kRoleHandoff:
      return "role_handoff";
    case PacketKind::kCellUpdate:
      return "cell_update";
    case PacketKind::kCellSummary:
      return "cell_summary";
    case PacketKind::kPushClaim:
      return "push_claim";
    case PacketKind::kLeaderHandoff:
      return "leader_handoff";
    case PacketKind::kRlsmpQuery:
      return "rlsmp_query";
    case PacketKind::kLscClaim:
      return "lsc_claim";
    case PacketKind::kRlsmpNotify:
      return "rlsmp_notify";
    case PacketKind::kRlsmpAck:
      return "rlsmp_ack";
    case PacketKind::kRlsmpBatch:
      return "rlsmp_batch";
    case PacketKind::kFloodUpdate:
      return "flood_update";
    case PacketKind::kFloodProbe:
      return "flood_probe";
    case PacketKind::kFloodQuery:
      return "flood_query";
    case PacketKind::kFloodAck:
      return "flood_ack";
    case PacketKind::kHello:
      return "hello";
  }
  return "unknown";
}

std::uint64_t packet_wire_bytes(PacketKind kind) {
  // 32-byte nominal header on every message; payload estimates by role:
  // aggregates (summaries, gossip, batches) dwarf single-record traffic.
  constexpr std::uint64_t kHeader = 32;
  switch (kind) {
    case PacketKind::kL2Summary:
    case PacketKind::kL3Gossip:
    case PacketKind::kCellSummary:
    case PacketKind::kQueryBatch:
    case PacketKind::kRlsmpBatch:
    case PacketKind::kRoleHandoff:
      return kHeader + 224;  // multi-record aggregate
    case PacketKind::kQueryRequest:
    case PacketKind::kRlsmpQuery:
    case PacketKind::kFloodQuery:
    case PacketKind::kFloodProbe:
    case PacketKind::kNotification:
    case PacketKind::kRlsmpNotify:
    case PacketKind::kCacheFill:
      return kHeader + 64;  // one record + routing context
    case PacketKind::kHello:
    case PacketKind::kServerClaim:
    case PacketKind::kLscClaim:
    case PacketKind::kPushClaim:
      return kHeader + 8;  // id-only control beacon
    default:
      return kHeader + 32;  // single location record
  }
}

}  // namespace hlsrg
