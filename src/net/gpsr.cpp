#include "net/gpsr.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "geom/segment.h"
#include "util/check.h"

namespace hlsrg {

struct GpsrRouter::RouteState {
  Vec2 dest_pos;
  std::optional<NodeId> dest_node;
  double delivery_radius = 0.0;
  // HLSRG_LINT_ALLOW(send-kind): carrier slot — holds the caller's
  // fully-formed packet (kind set by its make_packet factory) for the hops.
  Packet pkt;
  int hops = 0;
  bool perimeter = false;
  Vec2 perimeter_entry;  // position where perimeter mode was entered
  NodeId prev;           // previous hop, for the right-hand rule
  std::uint64_t* tx_counter = nullptr;
  DeliverFn deliver;
  FailFn fail;
  SpanId span = kNoSpan;  // the route's own span (parent of its hop spans)
  SpanId ctx = kNoSpan;   // caller context, re-established at delivery
};

GpsrRouter::GpsrRouter(RadioMedium& medium, const NodeRegistry& registry,
                       GpsrConfig cfg)
    : medium_(&medium), registry_(&registry), cfg_(cfg),
      hops_hist_(medium.sim().observability().histogram("gpsr.route_hops")) {}

void GpsrRouter::send(NodeId src, Vec2 dest_pos,
                      std::optional<NodeId> dest_node, Packet pkt,
                      std::uint64_t* tx_counter, DeliverFn deliver, FailFn fail,
                      double delivery_radius) {
  auto st = std::make_shared<RouteState>();
  st->dest_pos = dest_pos;
  st->dest_node = dest_node;
  st->delivery_radius =
      delivery_radius > 0.0 ? delivery_radius : cfg_.default_delivery_radius;
  st->pkt = std::move(pkt);
  st->tx_counter = tx_counter;
  st->deliver = std::move(deliver);
  st->fail = std::move(fail);
  Simulator& sim = medium_->sim();
  st->ctx = sim.active_span();
  st->span = sim.begin_span(
      SpanKind::kGpsrRoute, src.value(),
      dest_node.has_value() ? dest_node->value() : kNoQuery,
      registry_->position(src), kNoQuery, -1, packet_kind_name(st->pkt.kind));
  route_step(src, st);
}

void GpsrRouter::gather_neighbors(NodeId current,
                                  std::vector<NeighborView>* out) {
  out->clear();
  if (beacons_ != nullptr) {
    // Beacon mode: what the node has *heard*, positions possibly stale.
    std::vector<BeaconService::Neighbor> heard;
    beacons_->neighbors_of(current, &heard);
    out->reserve(heard.size());
    for (const auto& n : heard) out->push_back(NeighborView{n.id, n.heard_pos});
    return;
  }
  // Genie mode: perfect instantaneous neighborhood.
  std::vector<NodeId> ids;
  medium_->neighbors_of(current, &ids);
  out->reserve(ids.size());
  for (NodeId id : ids) {
    out->push_back(NeighborView{id, registry_->position(id)});
  }
}

NodeId GpsrRouter::greedy_next(Vec2 current_pos, Vec2 dest,
                               const std::vector<NeighborView>& neighbors) {
  const double here = distance2(current_pos, dest);
  NodeId best;
  double best_d = here;
  for (const NeighborView& n : neighbors) {
    const double d = distance2(n.pos, dest);
    if (d < best_d) {
      best_d = d;
      best = n.id;
    }
  }
  return best;  // invalid when no neighbor is strictly closer
}

NodeId GpsrRouter::perimeter_next(Vec2 current_pos, Vec2 reference_toward,
                                  const std::vector<NeighborView>& neighbors) {
  // Gabriel-graph planarization of the local star: keep edge (c, n) iff no
  // other neighbor lies inside the circle whose diameter is (c, n).
  std::vector<const NeighborView*> planar;
  for (const NeighborView& n : neighbors) {
    const Vec2 mid = (current_pos + n.pos) * 0.5;
    const double r2 = distance2(current_pos, mid);
    bool keep = true;
    for (const NeighborView& w : neighbors) {
      if (w.id == n.id) continue;
      if (distance2(w.pos, mid) < r2) {
        keep = false;
        break;
      }
    }
    if (keep) planar.push_back(&n);
  }
  if (planar.empty()) return {};

  // Right-hand rule: take the first planar edge counter-clockwise from the
  // reference direction.
  const double ref = (reference_toward - current_pos).angle();
  NodeId best;
  double best_delta = 2.0 * std::numbers::pi + 1.0;
  for (const NeighborView* n : planar) {
    const double a = (n->pos - current_pos).angle();
    double delta = a - ref;
    constexpr double kTwoPi = 2.0 * std::numbers::pi;
    while (delta <= 1e-9) delta += kTwoPi;  // strictly CCW of the reference
    if (delta < best_delta) {
      best_delta = delta;
      best = n->id;
    }
  }
  return best;
}

void GpsrRouter::route_step(NodeId current,
                            const std::shared_ptr<RouteState>& st) {
  const Vec2 cp = registry_->position(current);
  const double d = distance(cp, st->dest_pos);

  // Delivery checks.
  const bool at_dest_node =
      st->dest_node.has_value() && current == *st->dest_node;
  const bool in_dest_radius =
      !st->dest_node.has_value() && d <= st->delivery_radius;
  if (at_dest_node || in_dest_radius) {
    Simulator& sim = medium_->sim();
    sim.end_span(st->span, SpanStatus::kOk, cp, st->hops);
    hops_hist_->record(st->hops);
    SpanScope scope(sim, st->ctx);
    if (PacketSink* sink = registry_->sink(current)) {
      sink->on_receive(st->pkt, st->prev.valid() ? st->prev : current);
    }
    if (st->deliver) st->deliver(current);
    return;
  }

  if (++st->hops > cfg_.max_hops) {
    Simulator& sim = medium_->sim();
    sim.metrics().gpsr_failures++;
    sim.end_span(st->span, SpanStatus::kFailed, cp, st->hops);
    if (st->fail) {
      SpanScope scope(sim, st->ctx);
      st->fail();
    }
    return;
  }

  std::vector<NeighborView> neighbors;
  gather_neighbors(current, &neighbors);

  // Opportunistic direct hop to the target when it is audible.
  NodeId next;
  if (st->dest_node.has_value()) {
    for (const NeighborView& n : neighbors) {
      if (n.id == *st->dest_node) {
        next = n.id;
        break;
      }
    }
  }

  if (!next.valid()) {
    // Perimeter exit rule: back to greedy once closer than the entry point.
    if (st->perimeter &&
        d < distance(st->perimeter_entry, st->dest_pos) - 1e-9) {
      st->perimeter = false;
    }
    if (!st->perimeter) {
      next = greedy_next(cp, st->dest_pos, neighbors);
      if (!next.valid()) {
        st->perimeter = true;
        st->perimeter_entry = cp;
        next = perimeter_next(cp, st->dest_pos, neighbors);
      }
    } else {
      const Vec2 ref = st->prev.valid() ? registry_->position(st->prev)
                                        : st->dest_pos;
      next = perimeter_next(cp, ref, neighbors);
    }
  }

  if (!next.valid()) {
    Simulator& sim = medium_->sim();
    sim.metrics().gpsr_failures++;
    sim.end_span(st->span, SpanStatus::kFailed, cp, st->hops);
    if (st->fail) {
      SpanScope scope(sim, st->ctx);
      st->fail();
    }
    return;
  }

  if (st->tx_counter != nullptr) ++*st->tx_counter;
  const NodeId from = current;
  // Hop spans nest under the route span, and the continuation comes back
  // with the route span active (the radio re-establishes the context it
  // captures here around on_delivered).
  SpanScope scope(medium_->sim(), st->span);
  medium_->unicast_frame(
      current, next, st->pkt.kind,
      /*on_delivered=*/[this, from, next, st] {
        st->prev = from;
        route_step(next, st);
      },
      /*on_lost=*/[this, st] {
        Simulator& sim = medium_->sim();
        sim.metrics().gpsr_failures++;
        const Vec2 where = st->prev.valid() ? registry_->position(st->prev)
                                            : st->dest_pos;
        sim.end_span(st->span, SpanStatus::kFailed, where, st->hops);
        if (st->fail) {
          SpanScope fail_scope(sim, st->ctx);
          st->fail();
        }
      });
}

}  // namespace hlsrg
