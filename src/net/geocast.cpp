#include "net/geocast.h"

#include <unordered_set>

#include "util/check.h"

namespace hlsrg {

GeocastRegion GeocastRegion::corridor(Vec2 origin, Vec2 dir, double half_width,
                                      double max_ahead, double behind_slack) {
  GeocastRegion r;
  r.shape = Shape::kCorridor;
  r.corridor_origin = origin;
  r.corridor_dir = dir;
  r.half_width = half_width;
  r.max_ahead = max_ahead;
  r.behind_slack = behind_slack;
  return r;
}

GeocastRegion GeocastRegion::from_box(const Aabb& b, double margin) {
  GeocastRegion r;
  r.shape = Shape::kBox;
  r.box = b.inflated(margin);
  return r;
}

bool GeocastRegion::contains(Vec2 p) const {
  switch (shape) {
    case Shape::kCorridor:
      return in_corridor(p, corridor_origin, corridor_dir, half_width,
                         max_ahead, behind_slack);
    case Shape::kBox:
      return box.contains_closed(p);
  }
  return false;
}

struct GeocastService::FloodState {
  // HLSRG_LINT_ALLOW(send-kind): carrier slot — holds the caller's
  // fully-formed packet (kind set by its make_packet factory) for the flood.
  Packet pkt;
  GeocastRegion region;
  std::unordered_set<NodeId> seen;
  std::uint64_t* tx_counter = nullptr;
  int transmissions = 0;
};

GeocastService::GeocastService(RadioMedium& medium,
                               const NodeRegistry& registry, GeocastConfig cfg)
    : medium_(&medium), registry_(&registry), cfg_(cfg) {}

void GeocastService::flood(NodeId origin, Packet pkt, GeocastRegion region,
                           std::uint64_t* tx_counter) {
  auto st = std::make_shared<FloodState>();
  st->pkt = std::move(pkt);
  st->region = region;
  st->tx_counter = tx_counter;
  st->seen.insert(origin);
  step(origin, st);
}

void GeocastService::step(NodeId node, const std::shared_ptr<FloodState>& st) {
  if (st->transmissions >= cfg_.max_transmissions) return;
  ++st->transmissions;
  if (st->tx_counter != nullptr) ++*st->tx_counter;
  medium_->broadcast_each(node, st->pkt.kind, [this, node, st](NodeId rx) {
    if (!st->seen.insert(rx).second) return;
    if (!st->region.contains(registry_->position(rx))) return;
    if (PacketSink* sink = registry_->sink(rx)) sink->on_receive(st->pkt, node);
    const double jitter =
        medium_->sim().radio_rng().uniform(0.1, cfg_.rebroadcast_delay_ms);
    medium_->sim().schedule_after(SimTime::from_ms(jitter),
                                  [this, rx, st] { step(rx, st); });
  });
}

}  // namespace hlsrg
