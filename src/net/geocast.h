// Geocast: region-limited flooding.
//
// HLSRG's location servers find a destination vehicle either by broadcasting
// "along the road with a given direction" (a corridor flood) or "within the
// range of this Level 1 grid" (a box flood). Both are duplicate-suppressed
// floods where only nodes inside the region rebroadcast; loss and delay come
// from the radio layer per hop.
#pragma once

#include <cstdint>
#include <memory>

#include "geom/aabb.h"
#include "geom/segment.h"
#include "net/radio.h"

namespace hlsrg {

// The flood region: either a corridor (origin + direction + extent) or a box.
struct GeocastRegion {
  enum class Shape : std::uint8_t { kCorridor, kBox };
  Shape shape = Shape::kBox;

  // Corridor parameters (shape == kCorridor).
  Vec2 corridor_origin;
  Vec2 corridor_dir;       // need not be unit length
  double half_width = 0.0;
  double max_ahead = 0.0;
  double behind_slack = 0.0;

  // Box parameters (shape == kBox).
  Aabb box;

  [[nodiscard]] static GeocastRegion corridor(Vec2 origin, Vec2 dir,
                                              double half_width,
                                              double max_ahead,
                                              double behind_slack = 100.0);
  [[nodiscard]] static GeocastRegion from_box(const Aabb& b, double margin = 0.0);

  [[nodiscard]] bool contains(Vec2 p) const;
};

struct GeocastConfig {
  // Random forwarding delay per rebroadcast, uniform in (0, max]; staggers
  // rebroadcasts so they do not all collide at the same instant.
  double rebroadcast_delay_ms = 4.0;
  // Rebroadcast budget per flood; regions here are small so floods terminate
  // by geometry long before this.
  int max_transmissions = 256;
};

class GeocastService {
 public:
  GeocastService(RadioMedium& medium, const NodeRegistry& registry,
                 GeocastConfig cfg = {});

  // Floods `pkt` over all nodes in `region`, starting from `origin` (which
  // may itself be outside the region, e.g. a grid-center server flooding a
  // corridor that starts at a recorded position). Every in-region node
  // receives the packet exactly once via its PacketSink. Each transmission
  // increments *tx_counter when provided.
  void flood(NodeId origin, Packet pkt, GeocastRegion region,
             std::uint64_t* tx_counter = nullptr);

 private:
  struct FloodState;
  void step(NodeId node, const std::shared_ptr<FloodState>& st);

  RadioMedium* medium_;
  const NodeRegistry* registry_;
  GeocastConfig cfg_;
};

}  // namespace hlsrg
