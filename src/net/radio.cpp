#include "net/radio.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace hlsrg {

RadioMedium::RadioMedium(Simulator& sim, const NodeRegistry& registry,
                         RadioConfig cfg)
    : sim_(&sim), registry_(&registry), cfg_(cfg),
      // The index serves contention densities straight from its per-node
      // cache; counts at or below the contention-free threshold are
      // loss-equivalent however they were obtained (see neighbor_index.h).
      index_(registry, cfg.range_m, cfg.contention_free_neighbors) {
  HLSRG_CHECK(cfg.range_m > 0.0);
}

double RadioMedium::loss_probability(double dist, int local_neighbors) const {
  const double frac = std::clamp(dist / cfg_.range_m, 0.0, 1.0);
  const int excess = std::max(0, local_neighbors - cfg_.contention_free_neighbors);
  const double p = cfg_.base_loss + cfg_.distance_loss * frac * frac +
                   cfg_.contention_loss_per_neighbor * excess;
  return std::clamp(p, 0.0, cfg_.max_loss);
}

double RadioMedium::loss_probability(double dist, int local_neighbors,
                                     Vec2 receiver_pos) const {
  double extra = 0.0;
  for (const RadioLossZone& z : loss_zones_) {
    if (z.box.contains(receiver_pos)) extra += z.extra_loss;
  }
  if (extra <= 0.0) return loss_probability(dist, local_neighbors);
  // Zones may exceed max_loss up to certain loss (a fully jammed region),
  // which Rng::chance resolves without a draw.
  return std::clamp(loss_probability(dist, local_neighbors) + extra, 0.0, 1.0);
}

SimTime RadioMedium::hop_delay() {
  const double ms =
      cfg_.base_delay_ms + sim_->radio_rng().uniform(0.0, cfg_.jitter_ms);
  return SimTime::from_ms(ms);
}

int RadioMedium::density_at(NodeId rx) {
  if (reference_density_) return index_.exact_density(rx);
  return index_.local_density(rx);
}

void RadioMedium::deliver(NodeId to, std::shared_ptr<const Packet> pkt,
                          NodeId from, SimTime delay, SpanId ctx,
                          SpanId span_to_end, std::int32_t value) {
  sim_->schedule_after(delay, [this, to, pkt = std::move(pkt), from, ctx,
                               span_to_end, value] {
    sim_->end_span(span_to_end, SpanStatus::kOk, registry_->position(to),
                   value);
    SpanScope scope(*sim_, ctx);
    if (PacketSink* sink = registry_->sink(to)) sink->on_receive(*pkt, from);
  });
}

int RadioMedium::broadcast(NodeId sender, const Packet& pkt) {
  ProfileScope profile(sim_->profiler(), "radio_broadcast");
  index_.refresh(sim_->now(), sim_->profiler());
  scratch_.clear();
  density_scratch_.clear();
  const Vec2 sp = registry_->position(sender);
  if (reference_density_) {
    index_.query(sp, cfg_.range_m, sender, &scratch_);
    for (NodeId rx : scratch_) density_scratch_.push_back(density_at(rx));
  } else {
    index_.query_with_density(sp, cfg_.range_m, sender, &scratch_,
                              &density_scratch_);
  }
  sim_->metrics().radio_broadcasts++;
  RegionTelemetry* regions = sim_->regions();
  if (regions != nullptr) ++regions->at(regions->region_of(sp)).radio_broadcasts;
  const SimTime delay = hop_delay();
  const int kind = static_cast<int>(pkt.kind);
  const SpanId ctx = sim_->active_span();
  // One immutable copy shared by every surviving receiver's delivery
  // closure; the per-delivery state is just (to, from, ctx).
  std::shared_ptr<const Packet> shared;
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    const NodeId rx = scratch_[i];
    sim_->metrics().channel.add_offered(kind);
    const Vec2 rp = registry_->position(rx);
    if (sim_->radio_rng().chance(
            loss_probability(distance(sp, rp), density_scratch_[i], rp))) {
      sim_->metrics().radio_drops++;
      sim_->metrics().channel.add_dropped(kind);
      if (regions != nullptr) {
        ++regions->at(regions->region_of(rp)).radio_dropped;
      }
      continue;
    }
    sim_->metrics().channel.add_delivered(kind);
    if (regions != nullptr) {
      ++regions->at(regions->region_of(rp)).radio_delivered;
    }
    if (shared == nullptr) shared = std::make_shared<const Packet>(pkt);
    deliver(rx, shared, sender, delay, ctx);
  }
  return static_cast<int>(scratch_.size());
}

int RadioMedium::broadcast_each(NodeId sender, PacketKind pkt_kind,
                                std::function<void(NodeId)> on_deliver) {
  HLSRG_CHECK(on_deliver != nullptr);
  ProfileScope profile(sim_->profiler(), "radio_broadcast");
  index_.refresh(sim_->now(), sim_->profiler());
  scratch_.clear();
  density_scratch_.clear();
  const Vec2 sp = registry_->position(sender);
  if (reference_density_) {
    index_.query(sp, cfg_.range_m, sender, &scratch_);
    for (NodeId rx : scratch_) density_scratch_.push_back(density_at(rx));
  } else {
    index_.query_with_density(sp, cfg_.range_m, sender, &scratch_,
                              &density_scratch_);
  }
  sim_->metrics().radio_broadcasts++;
  RegionTelemetry* regions = sim_->regions();
  if (regions != nullptr) ++regions->at(regions->region_of(sp)).radio_broadcasts;
  const SimTime delay = hop_delay();
  const int kind = static_cast<int>(pkt_kind);
  const SpanId ctx = sim_->active_span();
  auto shared_deliver =
      std::make_shared<std::function<void(NodeId)>>(std::move(on_deliver));
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    const NodeId rx = scratch_[i];
    sim_->metrics().channel.add_offered(kind);
    const Vec2 rp = registry_->position(rx);
    if (sim_->radio_rng().chance(
            loss_probability(distance(sp, rp), density_scratch_[i], rp))) {
      sim_->metrics().radio_drops++;
      sim_->metrics().channel.add_dropped(kind);
      if (regions != nullptr) {
        ++regions->at(regions->region_of(rp)).radio_dropped;
      }
      continue;
    }
    sim_->metrics().channel.add_delivered(kind);
    if (regions != nullptr) {
      ++regions->at(regions->region_of(rp)).radio_delivered;
    }
    sim_->schedule_after(delay, [this, shared_deliver, rx, ctx] {
      SpanScope scope(sim(), ctx);
      (*shared_deliver)(rx);
    });
  }
  return static_cast<int>(scratch_.size());
}

void RadioMedium::try_unicast(NodeId sender, NodeId target,
                              std::shared_ptr<const Packet> pkt,
                              int attempts_left,
                              std::function<void()> on_lost, SpanId span,
                              SpanId ctx) {
  ProfileScope profile(sim_->profiler(), "radio_unicast");
  index_.refresh(sim_->now(), sim_->profiler());
  const Vec2 sp = registry_->position(sender);
  const Vec2 tp = registry_->position(target);
  const double d = distance(sp, tp);
  sim_->metrics().radio_unicasts++;
  RegionTelemetry* regions = sim_->regions();
  if (regions != nullptr) ++regions->at(regions->region_of(sp)).radio_unicasts;
  const int kind = static_cast<int>(pkt->kind);
  sim_->metrics().channel.add_offered(kind);
  const std::int32_t retries_used = cfg_.unicast_retries - attempts_left;
  if (d <= cfg_.range_m) {
    const int density = density_at(target);
    if (!sim_->radio_rng().chance(loss_probability(d, density, tp))) {
      sim_->metrics().channel.add_delivered(kind);
      if (regions != nullptr) {
        ++regions->at(regions->region_of(tp)).radio_delivered;
      }
      deliver(target, std::move(pkt), sender, hop_delay(), ctx, span,
              retries_used);
      return;
    }
  }
  sim_->metrics().radio_drops++;
  sim_->metrics().channel.add_dropped(kind);
  if (regions != nullptr) ++regions->at(regions->region_of(tp)).radio_dropped;
  if (attempts_left > 0) {
    sim_->schedule_after(
        SimTime::from_ms(cfg_.retry_delay_ms),
        [this, sender, target, pkt = std::move(pkt), attempts_left,
         on_lost = std::move(on_lost), span, ctx]() mutable {
          try_unicast(sender, target, std::move(pkt), attempts_left - 1,
                      std::move(on_lost), span, ctx);
        });
  } else {
    sim_->end_span(span, SpanStatus::kFailed, tp, retries_used);
    if (on_lost) {
      SpanScope scope(*sim_, ctx);
      on_lost();
    }
  }
}

void RadioMedium::unicast(NodeId sender, NodeId target, const Packet& pkt,
                          std::function<void()> on_lost) {
  // One hop span covering every MAC retry; ends at reception or abandon.
  const SpanId ctx = sim_->active_span();
  const SpanId span =
      sim_->begin_span(SpanKind::kRadioHop, sender.value(), target.value(),
                       registry_->position(sender), kNoQuery, -1,
                       packet_kind_name(pkt.kind));
  // One immutable copy shared across the whole retry chain.
  try_unicast(sender, target, std::make_shared<const Packet>(pkt),
              cfg_.unicast_retries, std::move(on_lost), span, ctx);
}

void RadioMedium::try_unicast_frame(NodeId sender, NodeId target,
                                    PacketKind pkt_kind, int attempts_left,
                                    std::function<void()> on_delivered,
                                    std::function<void()> on_lost, SpanId span,
                                    SpanId ctx) {
  ProfileScope profile(sim_->profiler(), "radio_unicast");
  index_.refresh(sim_->now(), sim_->profiler());
  const Vec2 sp = registry_->position(sender);
  const Vec2 tp = registry_->position(target);
  const double d = distance(sp, tp);
  sim_->metrics().radio_unicasts++;
  RegionTelemetry* regions = sim_->regions();
  if (regions != nullptr) ++regions->at(regions->region_of(sp)).radio_unicasts;
  const int kind = static_cast<int>(pkt_kind);
  sim_->metrics().channel.add_offered(kind);
  const std::int32_t retries_used = cfg_.unicast_retries - attempts_left;
  if (d <= cfg_.range_m) {
    const int density = density_at(target);
    if (!sim_->radio_rng().chance(loss_probability(d, density, tp))) {
      sim_->metrics().channel.add_delivered(kind);
      if (regions != nullptr) {
        ++regions->at(regions->region_of(tp)).radio_delivered;
      }
      sim_->schedule_after(
          hop_delay(), [this, cb = std::move(on_delivered), tp, span, ctx,
                        retries_used] {
            sim_->end_span(span, SpanStatus::kOk, tp, retries_used);
            SpanScope scope(*sim_, ctx);
            cb();
          });
      return;
    }
  }
  sim_->metrics().radio_drops++;
  sim_->metrics().channel.add_dropped(kind);
  if (regions != nullptr) ++regions->at(regions->region_of(tp)).radio_dropped;
  if (attempts_left > 0) {
    sim_->schedule_after(
        SimTime::from_ms(cfg_.retry_delay_ms),
        [this, sender, target, pkt_kind, attempts_left,
         on_delivered = std::move(on_delivered),
         on_lost = std::move(on_lost), span, ctx]() mutable {
          try_unicast_frame(sender, target, pkt_kind, attempts_left - 1,
                            std::move(on_delivered), std::move(on_lost), span,
                            ctx);
        });
  } else {
    sim_->end_span(span, SpanStatus::kFailed, tp, retries_used);
    if (on_lost) {
      SpanScope scope(*sim_, ctx);
      on_lost();
    }
  }
}

void RadioMedium::unicast_frame(NodeId sender, NodeId target, PacketKind kind,
                                std::function<void()> on_delivered,
                                std::function<void()> on_lost) {
  HLSRG_CHECK(on_delivered != nullptr);
  const SpanId ctx = sim_->active_span();
  const SpanId span =
      sim_->begin_span(SpanKind::kRadioHop, sender.value(), target.value(),
                       registry_->position(sender));
  try_unicast_frame(sender, target, kind, cfg_.unicast_retries,
                    std::move(on_delivered), std::move(on_lost), span, ctx);
}

void RadioMedium::neighbors_of(NodeId node, std::vector<NodeId>* out) {
  index_.refresh(sim_->now(), sim_->profiler());
  out->clear();
  index_.query(registry_->position(node), cfg_.range_m, node, out);
}

void RadioMedium::nodes_near(Vec2 pos, double radius, NodeId exclude,
                             std::vector<NodeId>* out) {
  HLSRG_CHECK(radius <= cfg_.range_m);
  index_.refresh(sim_->now(), sim_->profiler());
  out->clear();
  index_.query(pos, radius, exclude, out);
}

}  // namespace hlsrg
