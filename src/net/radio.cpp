#include "net/radio.h"

#include <algorithm>

#include "util/check.h"

namespace hlsrg {

RadioMedium::RadioMedium(Simulator& sim, const NodeRegistry& registry,
                         RadioConfig cfg)
    : sim_(&sim), registry_(&registry), cfg_(cfg),
      index_(registry, cfg.range_m) {
  HLSRG_CHECK(cfg.range_m > 0.0);
}

double RadioMedium::loss_probability(double dist, int local_neighbors) const {
  const double frac = std::clamp(dist / cfg_.range_m, 0.0, 1.0);
  const int excess = std::max(0, local_neighbors - cfg_.contention_free_neighbors);
  const double p = cfg_.base_loss + cfg_.distance_loss * frac * frac +
                   cfg_.contention_loss_per_neighbor * excess;
  return std::clamp(p, 0.0, cfg_.max_loss);
}

double RadioMedium::loss_probability(double dist, int local_neighbors,
                                     Vec2 receiver_pos) const {
  double extra = 0.0;
  for (const RadioLossZone& z : loss_zones_) {
    if (z.box.contains(receiver_pos)) extra += z.extra_loss;
  }
  if (extra <= 0.0) return loss_probability(dist, local_neighbors);
  // Zones may exceed max_loss up to certain loss (a fully jammed region),
  // which Rng::chance resolves without a draw.
  return std::clamp(loss_probability(dist, local_neighbors) + extra, 0.0, 1.0);
}

SimTime RadioMedium::hop_delay() {
  const double ms =
      cfg_.base_delay_ms + sim_->radio_rng().uniform(0.0, cfg_.jitter_ms);
  return SimTime::from_ms(ms);
}

void RadioMedium::deliver(NodeId to, const Packet& pkt, NodeId from,
                          SimTime delay, SpanId ctx, SpanId span_to_end,
                          std::int32_t value) {
  sim_->schedule_after(delay, [this, to, pkt, from, ctx, span_to_end, value] {
    sim_->end_span(span_to_end, SpanStatus::kOk, registry_->position(to),
                   value);
    SpanScope scope(*sim_, ctx);
    if (PacketSink* sink = registry_->sink(to)) sink->on_receive(pkt, from);
  });
}

int RadioMedium::broadcast(NodeId sender, const Packet& pkt) {
  index_.refresh(sim_->now());
  scratch_.clear();
  const Vec2 sp = registry_->position(sender);
  index_.query(sp, cfg_.range_m, sender, &scratch_);
  sim_->metrics().radio_broadcasts++;
  const SimTime delay = hop_delay();
  const int kind = static_cast<int>(pkt.kind);
  const SpanId ctx = sim_->active_span();
  for (NodeId rx : scratch_) {
    sim_->metrics().channel.add_offered(kind);
    const Vec2 rp = registry_->position(rx);
    const int density = index_.count_within(rp, cfg_.range_m, rx);
    if (sim_->radio_rng().chance(
            loss_probability(distance(sp, rp), density, rp))) {
      sim_->metrics().radio_drops++;
      sim_->metrics().channel.add_dropped(kind);
      continue;
    }
    sim_->metrics().channel.add_delivered(kind);
    deliver(rx, pkt, sender, delay, ctx);
  }
  return static_cast<int>(scratch_.size());
}

// broadcast_each and unicast_frame carry no Packet, so they are invisible to
// the per-kind channel ledger; the conservation auditor only covers the
// Packet-bearing paths.
int RadioMedium::broadcast_each(NodeId sender,
                                std::function<void(NodeId)> on_deliver) {
  HLSRG_CHECK(on_deliver != nullptr);
  index_.refresh(sim_->now());
  scratch_.clear();
  const Vec2 sp = registry_->position(sender);
  index_.query(sp, cfg_.range_m, sender, &scratch_);
  sim_->metrics().radio_broadcasts++;
  const SimTime delay = hop_delay();
  const SpanId ctx = sim_->active_span();
  auto shared_deliver =
      std::make_shared<std::function<void(NodeId)>>(std::move(on_deliver));
  for (NodeId rx : scratch_) {
    const Vec2 rp = registry_->position(rx);
    const int density = index_.count_within(rp, cfg_.range_m, rx);
    if (sim_->radio_rng().chance(
            loss_probability(distance(sp, rp), density, rp))) {
      sim_->metrics().radio_drops++;
      continue;
    }
    sim_->schedule_after(delay, [this, shared_deliver, rx, ctx] {
      SpanScope scope(sim(), ctx);
      (*shared_deliver)(rx);
    });
  }
  return static_cast<int>(scratch_.size());
}

void RadioMedium::try_unicast(NodeId sender, NodeId target, Packet pkt,
                              int attempts_left,
                              std::function<void()> on_lost, SpanId span,
                              SpanId ctx) {
  index_.refresh(sim_->now());
  const Vec2 sp = registry_->position(sender);
  const Vec2 tp = registry_->position(target);
  const double d = distance(sp, tp);
  sim_->metrics().radio_unicasts++;
  const int kind = static_cast<int>(pkt.kind);
  sim_->metrics().channel.add_offered(kind);
  const std::int32_t retries_used = cfg_.unicast_retries - attempts_left;
  if (d <= cfg_.range_m) {
    const int density = index_.count_within(tp, cfg_.range_m, target);
    if (!sim_->radio_rng().chance(loss_probability(d, density, tp))) {
      sim_->metrics().channel.add_delivered(kind);
      deliver(target, pkt, sender, hop_delay(), ctx, span, retries_used);
      return;
    }
  }
  sim_->metrics().radio_drops++;
  sim_->metrics().channel.add_dropped(kind);
  if (attempts_left > 0) {
    sim_->schedule_after(
        SimTime::from_ms(cfg_.retry_delay_ms),
        [this, sender, target, pkt = std::move(pkt), attempts_left,
         on_lost = std::move(on_lost), span, ctx]() mutable {
          try_unicast(sender, target, std::move(pkt), attempts_left - 1,
                      std::move(on_lost), span, ctx);
        });
  } else {
    sim_->end_span(span, SpanStatus::kFailed, tp, retries_used);
    if (on_lost) {
      SpanScope scope(*sim_, ctx);
      on_lost();
    }
  }
}

void RadioMedium::unicast(NodeId sender, NodeId target, const Packet& pkt,
                          std::function<void()> on_lost) {
  // One hop span covering every MAC retry; ends at reception or abandon.
  const SpanId ctx = sim_->active_span();
  const SpanId span =
      sim_->begin_span(SpanKind::kRadioHop, sender.value(), target.value(),
                       registry_->position(sender), kNoQuery, -1,
                       packet_kind_name(pkt.kind));
  try_unicast(sender, target, pkt, cfg_.unicast_retries, std::move(on_lost),
              span, ctx);
}

void RadioMedium::try_unicast_frame(NodeId sender, NodeId target,
                                    int attempts_left,
                                    std::function<void()> on_delivered,
                                    std::function<void()> on_lost, SpanId span,
                                    SpanId ctx) {
  index_.refresh(sim_->now());
  const Vec2 sp = registry_->position(sender);
  const Vec2 tp = registry_->position(target);
  const double d = distance(sp, tp);
  sim_->metrics().radio_unicasts++;
  const std::int32_t retries_used = cfg_.unicast_retries - attempts_left;
  if (d <= cfg_.range_m) {
    const int density = index_.count_within(tp, cfg_.range_m, target);
    if (!sim_->radio_rng().chance(loss_probability(d, density, tp))) {
      sim_->schedule_after(
          hop_delay(), [this, cb = std::move(on_delivered), tp, span, ctx,
                        retries_used] {
            sim_->end_span(span, SpanStatus::kOk, tp, retries_used);
            SpanScope scope(*sim_, ctx);
            cb();
          });
      return;
    }
  }
  sim_->metrics().radio_drops++;
  if (attempts_left > 0) {
    sim_->schedule_after(
        SimTime::from_ms(cfg_.retry_delay_ms),
        [this, sender, target, attempts_left,
         on_delivered = std::move(on_delivered),
         on_lost = std::move(on_lost), span, ctx]() mutable {
          try_unicast_frame(sender, target, attempts_left - 1,
                            std::move(on_delivered), std::move(on_lost), span,
                            ctx);
        });
  } else {
    sim_->end_span(span, SpanStatus::kFailed, tp, retries_used);
    if (on_lost) {
      SpanScope scope(*sim_, ctx);
      on_lost();
    }
  }
}

void RadioMedium::unicast_frame(NodeId sender, NodeId target,
                                std::function<void()> on_delivered,
                                std::function<void()> on_lost) {
  HLSRG_CHECK(on_delivered != nullptr);
  const SpanId ctx = sim_->active_span();
  const SpanId span =
      sim_->begin_span(SpanKind::kRadioHop, sender.value(), target.value(),
                       registry_->position(sender));
  try_unicast_frame(sender, target, cfg_.unicast_retries,
                    std::move(on_delivered), std::move(on_lost), span, ctx);
}

void RadioMedium::neighbors_of(NodeId node, std::vector<NodeId>* out) {
  index_.refresh(sim_->now());
  out->clear();
  index_.query(registry_->position(node), cfg_.range_m, node, out);
}

void RadioMedium::nodes_near(Vec2 pos, double radius, NodeId exclude,
                             std::vector<NodeId>* out) {
  HLSRG_CHECK(radius <= cfg_.range_m);
  index_.refresh(sim_->now());
  out->clear();
  index_.query(pos, radius, exclude, out);
}

}  // namespace hlsrg
