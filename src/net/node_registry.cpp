#include "net/node_registry.h"

#include "util/check.h"

namespace hlsrg {

NodeId NodeRegistry::add_node(Vec2 position, PacketSink* sink) {
  positions_.push_back(position);
  sinks_.push_back(sink);
  return NodeId{positions_.size() - 1};
}

void NodeRegistry::set_sink(NodeId id, PacketSink* sink) {
  HLSRG_CHECK(id.valid() && id.index() < sinks_.size());
  sinks_[id.index()] = sink;
}

void NodeRegistry::bind_vehicle(VehicleId v, NodeId node) {
  HLSRG_CHECK(v.valid() && node.valid() && node.index() < positions_.size());
  HLSRG_CHECK(v.index() == vehicle_nodes_.size());  // dense, in id order
  vehicle_nodes_.push_back(node);
  vehicle_velocity_.push_back(Vec2{});
  vehicle_parked_.push_back(0);
  vehicle_region_.push_back(-1);
}

std::size_t NodeRegistry::bytes() const {
  return positions_.capacity() * sizeof(Vec2) +
         sinks_.capacity() * sizeof(PacketSink*) +
         vehicle_nodes_.capacity() * sizeof(NodeId) +
         vehicle_velocity_.capacity() * sizeof(Vec2) +
         vehicle_parked_.capacity() * sizeof(std::uint8_t) +
         vehicle_region_.capacity() * sizeof(std::int32_t);
}

}  // namespace hlsrg
