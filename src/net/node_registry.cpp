#include "net/node_registry.h"

#include "util/check.h"

namespace hlsrg {

NodeId NodeRegistry::add_node(PositionFn position, PacketSink* sink) {
  HLSRG_CHECK(position != nullptr);
  nodes_.push_back(Entry{std::move(position), sink});
  return NodeId{nodes_.size() - 1};
}

void NodeRegistry::set_sink(NodeId id, PacketSink* sink) {
  HLSRG_CHECK(id.valid() && id.index() < nodes_.size());
  nodes_[id.index()].sink = sink;
}

}  // namespace hlsrg
