// Spatial hash over node positions for O(1) neighborhood queries.
//
// Cell size equals the radio range, so a range query touches at most the
// 3x3 cell block around the query point. The index is rebuilt lazily, keyed
// on (SimTime, registry position generation): node positions change when the
// mobility model ticks (which advances the clock) or when a mutator bumps
// the registry's position generation without advancing it (fault window
// edges), so a build tagged with both stays valid for every query under that
// key. Rebuilds are incremental — only nodes whose cell changed move between
// cell lists — and the cell table is an open-addressing flat map
// (util/flat_table.h) instead of an unordered_map.
//
// Receiver-side contention density is served from a per-node cache filled
// lazily once per rebuild. Density feeds the radio loss model only through
// `excess = max(0, n - contention_free_neighbors)` (net/radio.h), so any
// count that is provably at or below the saturation threshold yields the
// same loss as the exact count: local_density() returns the 3x3 cell
// population sum when that bound already clears the threshold and falls back
// to the exact distance-filtered count only in saturated neighborhoods.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "geom/vec2.h"
#include "net/node_registry.h"
#include "sim/time.h"
#include "util/flat_table.h"
#include "util/tagged_id.h"

namespace hlsrg {

class PhaseProfiler;

class NeighborIndex {
 public:
  // `density_saturation` < 0 disables the cell-sum shortcut: local_density()
  // then always returns the exact count.
  NeighborIndex(const NodeRegistry& registry, double cell_size,
                int density_saturation = -1)
      : registry_(&registry), cell_(cell_size),
        saturation_(density_saturation) {}

  // Ensures the index reflects positions as of `now` and the registry's
  // current position generation. A non-null profiler times the rebuild path
  // (the cheap staleness check is never profiled).
  void refresh(SimTime now, PhaseProfiler* profiler = nullptr);

  // Appends all nodes within `radius` of `p` (excluding `exclude` if valid)
  // to `out`. Caller must refresh() first; checked.
  void query(Vec2 p, double radius, NodeId exclude,
             std::vector<NodeId>* out) const;

  // Number of nodes within `radius` of `p`, excluding `exclude`. Always the
  // exact distance-filtered count.
  [[nodiscard]] int count_within(Vec2 p, double radius, NodeId exclude) const;

  // Batched receiver walk for the radio: one index walk appends every node
  // within `radius` of `p` to `out` and, in lockstep, each receiver's cached
  // contention density (see local_density) to `density_out`. Receiver order
  // matches query() exactly.
  void query_with_density(Vec2 p, double radius, NodeId exclude,
                          std::vector<NodeId>* out,
                          std::vector<std::int32_t>* density_out);

  // Contention density at node `id`: the number of other stations audible at
  // its position, as the radio loss model consumes it. Returns the exact
  // in-range count, except that unsaturated neighborhoods (3x3 cell sum
  // already at or below `density_saturation`) report the cell sum — loss-
  // equivalent by construction. Cached per node until the next refresh.
  [[nodiscard]] std::int32_t local_density(NodeId id);

  // Exact in-range count at `id`'s indexed position, bypassing the cell-sum
  // shortcut and the per-node cache. Reference implementation for the
  // equivalence tests: local_density() must be loss-equivalent to this.
  [[nodiscard]] std::int32_t exact_density(NodeId id) const {
    return count_within(cached_pos_[id.index()], cell_, id);
  }

 private:
  // Cells keyed by packed (x, y) 32-bit coordinates; value indexes cells_.
  [[nodiscard]] std::uint64_t key_for(Vec2 p) const {
    const auto x = static_cast<std::int32_t>(std::floor(p.x / cell_));
    const auto y = static_cast<std::int32_t>(std::floor(p.y / cell_));
    return pack(x, y);
  }
  [[nodiscard]] static std::uint64_t pack(std::int32_t x, std::int32_t y) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(y));
  }

  // Node list of the cell at `key`, or nullptr when the cell is empty.
  [[nodiscard]] const std::vector<NodeId>* cell_nodes(std::uint64_t key) const;
  // Mutable cell record for `key`, created on demand.
  std::vector<NodeId>& cell_nodes_mut(std::uint64_t key);

  void rebuild_full();
  void rebuild_incremental();
  [[nodiscard]] std::int32_t compute_density(NodeId id) const;

  const NodeRegistry* registry_;
  double cell_;
  int saturation_;

  // Cell table: packed key -> index into cells_. Cell records are recycled
  // across rebuilds (their node vectors keep capacity); the set of occupied
  // cells is bounded by map area / cell^2 and never shrinks within a run.
  OpenAddressMap<std::uint64_t, std::uint32_t> cell_index_;
  std::vector<std::vector<NodeId>> cells_;

  std::vector<Vec2> cached_pos_;
  std::vector<std::uint64_t> node_cell_;  // current cell key per node

  // Per-node density cache, valid while density_stamp_[i] == stamp_.
  std::vector<std::int32_t> density_;
  std::vector<std::uint64_t> density_stamp_;
  std::uint64_t stamp_ = 0;

  SimTime built_at_ = SimTime::from_us(-1);
  std::uint64_t built_generation_ = ~std::uint64_t{0};
};

}  // namespace hlsrg
