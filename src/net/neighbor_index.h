// Spatial hash over node positions for O(1) neighborhood queries.
//
// Cell size equals the radio range, so a range query touches at most the
// 3x3 cell block around the query point. The index is rebuilt lazily: node
// positions only change when the mobility model ticks (which advances the
// simulation clock), so a build tagged with the current SimTime stays valid
// for every query at that time.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/vec2.h"
#include "net/node_registry.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

class NeighborIndex {
 public:
  NeighborIndex(const NodeRegistry& registry, double cell_size)
      : registry_(&registry), cell_(cell_size) {}

  // Ensures the index reflects positions as of `now`.
  void refresh(SimTime now);

  // Appends all nodes within `radius` of `p` (excluding `exclude` if valid)
  // to `out`. Caller must refresh() first; checked.
  void query(Vec2 p, double radius, NodeId exclude,
             std::vector<NodeId>* out) const;

  // Number of nodes within `radius` of `p`, excluding `exclude`.
  [[nodiscard]] int count_within(Vec2 p, double radius, NodeId exclude) const;

 private:
  struct CellKey {
    std::int32_t x;
    std::int32_t y;
    friend bool operator==(CellKey, CellKey) = default;
  };
  struct CellKeyHash {
    std::size_t operator()(CellKey k) const {
      // Szudzik-style mix of the two 32-bit coordinates.
      const std::uint64_t a = static_cast<std::uint32_t>(k.x);
      const std::uint64_t b = static_cast<std::uint32_t>(k.y);
      std::uint64_t z = (a << 32) | b;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  [[nodiscard]] CellKey key_for(Vec2 p) const {
    return {static_cast<std::int32_t>(std::floor(p.x / cell_)),
            static_cast<std::int32_t>(std::floor(p.y / cell_))};
  }

  const NodeRegistry* registry_;
  double cell_;
  std::unordered_map<CellKey, std::vector<NodeId>, CellKeyHash> cells_;
  std::vector<Vec2> cached_pos_;
  SimTime built_at_ = SimTime::from_us(-1);
};

}  // namespace hlsrg
