#include "audit/table_audit.h"

#include <sstream>

#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "core/vehicle_agent.h"
#include "mobility/mobility_model.h"

namespace hlsrg {

namespace {

// Context shared by the per-entry checks.
struct TableCtx {
  const GridHierarchy* h = nullptr;
  SimTime now;
  std::size_t vehicle_count = 0;
  AuditReport* report = nullptr;
};

std::string coord_str(GridCoord c) {
  std::ostringstream os;
  os << "(" << c.col << "," << c.row << ")";
  return os.str();
}

void violation(const TableCtx& ctx, const std::string& where,
               VehicleId vehicle, const std::string& what) {
  std::ostringstream os;
  os << where << " entry for vehicle " << vehicle << " " << what;
  ctx.report->add("table", os.str());
}

bool coord_in_range(const TableCtx& ctx, GridCoord c, GridLevel level) {
  return c.col >= 0 && c.col < ctx.h->cols(level) && c.row >= 0 &&
         c.row < ctx.h->rows(level);
}

// Shared per-entry checks: key validity, timestamp sanity, bounded
// staleness. `max_age` is the level expiry plus two purge periods.
void check_entry(const TableCtx& ctx, const std::string& where,
                 VehicleId vehicle, SimTime time, SimTime max_age) {
  if (!vehicle.valid() || vehicle.index() >= ctx.vehicle_count) {
    violation(ctx, where, vehicle, "keys a vehicle that does not exist");
    return;
  }
  if (time > ctx.now) {
    std::ostringstream os;
    os << "is stamped in the future (" << time.sec() << "s > now "
       << ctx.now.sec() << "s)";
    violation(ctx, where, vehicle, os.str());
  }
  if (time < SimTime()) {
    violation(ctx, where, vehicle, "has a negative timestamp");
  }
  if (ctx.now - time > max_age) {
    std::ostringstream os;
    os << "is stale: age " << (ctx.now - time).sec() << "s exceeds "
       << max_age.sec() << "s (expiry plus two purge periods)";
    violation(ctx, where, vehicle, os.str());
  }
}

}  // namespace

void TableAuditor::check(const AuditScope& scope, AuditReport* report) const {
  const HlsrgService* svc = scope.hlsrg;
  if (svc == nullptr || scope.sim == nullptr || scope.mobility == nullptr) {
    return;
  }

  const HlsrgConfig& cfg = svc->cfg();
  TableCtx ctx{&svc->hierarchy(), scope.sim->now(),
               scope.mobility->vehicle_count(), report};

  // Expiry must be monotone up the hierarchy: a level summarizing another
  // must not forget faster than its source.
  if (cfg.l1_expiry <= SimTime() || cfg.l2_expiry < cfg.l1_expiry ||
      cfg.l3_expiry < cfg.l2_expiry) {
    report->add("table", "expiry configuration is not monotone: need 0 < l1 "
                         "<= l2 <= l3");
  }

  const SimTime l1_max =
      cfg.l1_expiry + cfg.l2_push_period + cfg.l2_push_period;
  const SimTime l2_max =
      cfg.l2_expiry + cfg.l2_push_period + cfg.l2_push_period;
  const SimTime l3_max =
      cfg.l3_expiry + cfg.l3_gossip_period + cfg.l3_gossip_period;

  for (const auto& agent : svc->rsu_agents()) {
    const std::string where =
        "L" + std::to_string(static_cast<int>(agent.level())) + " RSU " +
        coord_str(agent.coord());

    // Tables live only at their level.
    if (agent.level() == GridLevel::kL2 && !agent.l3_table().empty()) {
      report->add("table", where + " holds an L3 table");
    }
    if (agent.level() == GridLevel::kL3 && !agent.l2_table().empty()) {
      report->add("table", where + " holds an L2 table");
    }

    for (const auto& [vehicle, s] : agent.l2_table()) {
      check_entry(ctx, where + " l2_table", vehicle, s.time, l2_max);
      if (!coord_in_range(ctx, s.l1, GridLevel::kL1)) {
        violation(ctx, where + " l2_table", vehicle,
                  "references out-of-range L1 grid " + coord_str(s.l1));
      }
    }
    for (const auto& [vehicle, s] : agent.l3_table()) {
      check_entry(ctx, where + " l3_table", vehicle, s.time, l3_max);
      if (!coord_in_range(ctx, s.l2, GridLevel::kL2)) {
        violation(ctx, where + " l3_table", vehicle,
                  "references out-of-range L2 grid " + coord_str(s.l2));
      }
      if (!coord_in_range(ctx, s.owner_l3, GridLevel::kL3)) {
        violation(ctx, where + " l3_table", vehicle,
                  "references out-of-range L3 region " +
                      coord_str(s.owner_l3));
      }
    }

    const bool at_l2 = agent.level() == GridLevel::kL2;
    const SimTime full_expiry = at_l2 ? cfg.l2_expiry : cfg.l3_expiry;
    const SimTime full_max = at_l2 ? l2_max : l3_max;
    for (const auto& [vehicle, rec] : agent.full_table()) {
      check_entry(ctx, where + " full_table", vehicle, rec.time, full_max);
      if (!coord_in_range(ctx, rec.l1, GridLevel::kL1)) {
        violation(ctx, where + " full_table", vehicle,
                  "references out-of-range L1 grid " + coord_str(rec.l1));
      }
      // Summarization: full and thinned tables are written together
      // (newest-wins), so a fresh full record implies a summary at least as
      // new. Stale full records may outlive their summary between purges.
      if (ctx.now - rec.time <= full_expiry) {
        SimTime summary_time = SimTime::max();
        bool summarized = false;
        if (at_l2) {
          if (const L2Summary* s = agent.l2_table().find(vehicle)) {
            summarized = true;
            summary_time = s->time;
          }
        } else {
          if (const L3Summary* s = agent.l3_table().find(vehicle)) {
            summarized = true;
            summary_time = s->time;
          }
        }
        if (!summarized) {
          violation(ctx, where + " full_table", vehicle,
                    "is fresh but has no summary-table entry");
        } else if (summary_time < rec.time) {
          violation(ctx, where + " full_table", vehicle,
                    "is newer than its summary-table entry");
        }
      }
    }
  }

  // Grid-center L1 tables on vehicles.
  for (std::size_t i = 0; i < ctx.vehicle_count; ++i) {
    const HlsrgVehicleAgent& agent = svc->vehicle_agent(VehicleId{i});
    if (!agent.in_center()) {
      if (!agent.table().empty()) {
        std::ostringstream os;
        os << "vehicle " << agent.vehicle()
           << " holds an L1 table without center duty";
        report->add("table", os.str());
      }
      continue;
    }
    std::ostringstream os;
    os << "center vehicle " << agent.vehicle() << " l1_table";
    const std::string where = os.str();
    for (const auto& [vehicle, rec] : agent.table()) {
      check_entry(ctx, where, vehicle, rec.time, l1_max);
      if (!coord_in_range(ctx, rec.l1, GridLevel::kL1)) {
        violation(ctx, where, vehicle,
                  "references out-of-range L1 grid " + coord_str(rec.l1));
      }
    }
  }
}

}  // namespace hlsrg
