#include "audit/audit_runner.h"

#include <cstdio>
#include <functional>

#include "audit/availability_audit.h"
#include "audit/churn_audit.h"
#include "audit/conservation_audit.h"
#include "audit/grid_audit.h"
#include "audit/table_audit.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace hlsrg {

void AuditRunner::add(std::unique_ptr<Auditor> auditor) {
  HLSRG_CHECK(auditor != nullptr);
  auditors_.push_back(std::move(auditor));
}

AuditReport AuditRunner::run(const AuditScope& scope) const {
  ProfileScope profile(scope.sim != nullptr ? scope.sim->profiler() : nullptr,
                       "audit");
  AuditReport report;
  for (const auto& auditor : auditors_) {
    auditor->check(scope, &report);
  }
  return report;
}

void AuditRunner::enforce(const AuditScope& scope) const {
  const AuditReport report = run(scope);
  if (report.ok()) return;
  std::fprintf(stderr, "audit failed with %zu violation(s):\n%s",
               report.violations().size(), report.to_string().c_str());
  HLSRG_CHECK_MSG(false, "audit violations detected");
}

void AuditRunner::attach_periodic(Simulator& sim, AuditScope scope,
                                  SimTime period, SimTime until) const {
  HLSRG_CHECK(period > SimTime());
  // Self-rescheduling tick; copies the scope so the caller's goes away.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, &sim, scope, period, until, tick] {
    enforce(scope);
    if (sim.now() + period <= until) {
      sim.schedule_after(period, *tick);
    }
  };
  if (period <= until) sim.schedule_after(period, *tick);
}

AuditRunner AuditRunner::standard() {
  AuditRunner runner;
  runner.add(std::make_unique<GridAuditor>());
  runner.add(std::make_unique<TableAuditor>());
  runner.add(std::make_unique<ConservationAuditor>());
  runner.add(std::make_unique<AvailabilityAuditor>());
  runner.add(std::make_unique<ChurnAuditor>());
  return runner;
}

}  // namespace hlsrg
