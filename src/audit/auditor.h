// Invariant auditors: structural checks run against a live simulation.
//
// An Auditor inspects one slice of world state (grid geometry, location
// tables, counter conservation) and reports violations instead of crashing,
// so tests can assert both that corrupted worlds are caught and that clean
// worlds stay silent. The AuditRunner (audit_runner.h) composes auditors,
// turns violations into hard failures, and can self-schedule periodically.
//
// The audit library sits between core and harness: it reads protocol state
// through const accessors but never links the harness, so World can own a
// runner. Auditors receive an AuditScope of component pointers rather than a
// World — any subset may be null, and each auditor skips silently when the
// state it audits is absent (e.g. table checks on a non-HLSRG protocol).
#pragma once

#include <string>
#include <vector>

namespace hlsrg {

class Simulator;
class RoadNetwork;
class GridHierarchy;
class MobilityModel;
class LocationService;
class HlsrgService;

// The world slice an audit pass may inspect. All pointers are optional.
struct AuditScope {
  const Simulator* sim = nullptr;
  const RoadNetwork* net = nullptr;
  const GridHierarchy* hierarchy = nullptr;
  const MobilityModel* mobility = nullptr;
  // Non-const: LocationService::tracker() has no const overload.
  LocationService* service = nullptr;
  // Set only when the world runs HLSRG; table audits need the agents.
  const HlsrgService* hlsrg = nullptr;
};

// One broken invariant: which auditor found it and what it saw.
struct AuditViolation {
  std::string auditor;
  std::string what;
};

// Violations accumulated across one audit pass.
class AuditReport {
 public:
  void add(std::string auditor, std::string what) {
    violations_.push_back({std::move(auditor), std::move(what)});
  }

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }

  // Multi-line "auditor: what" listing; empty string when clean.
  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const AuditViolation& v : violations_) {
      out += v.auditor;
      out += ": ";
      out += v.what;
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<AuditViolation> violations_;
};

class Auditor {
 public:
  virtual ~Auditor() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  // Appends a violation to `report` for every invariant found broken; adds
  // nothing when the scope lacks the state this auditor covers.
  virtual void check(const AuditScope& scope, AuditReport* report) const = 0;
};

}  // namespace hlsrg
