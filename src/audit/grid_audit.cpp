#include "audit/grid_audit.h"

#include <cmath>
#include <sstream>

#include "grid/hierarchy.h"
#include "roadnet/road_network.h"

namespace hlsrg {

namespace {

// Boundary lines sit on real roads, which build_partition accepts when they
// run within kEdgeTol (1 m) of the map edge — so the outermost lines may
// miss the geometric bounds by up to that much.
constexpr double kCoverTol = 1.5;
// Slack for exact-by-construction coordinate comparisons (cells share the
// same boundary line values, so any drift is a genuine bug).
constexpr double kExactTol = 1e-9;

constexpr GridLevel kLevels[] = {GridLevel::kL1, GridLevel::kL2,
                                 GridLevel::kL3};

std::string coord_str(GridCoord c) {
  std::ostringstream os;
  os << "(" << c.col << "," << c.row << ")";
  return os.str();
}

void check_axis(const char* axis, const std::vector<BoundaryLine>& lines,
                double lo, double hi, AuditReport* report) {
  if (lines.size() < 2) {
    std::ostringstream os;
    os << axis << " axis has " << lines.size()
       << " boundary lines; need at least 2";
    report->add("grid", os.str());
    return;
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].coord <= lines[i - 1].coord) {
      std::ostringstream os;
      os << axis << " boundary lines not strictly increasing at index " << i
         << " (" << lines[i - 1].coord << " then " << lines[i].coord << ")";
      report->add("grid", os.str());
    }
  }
  if (std::abs(lines.front().coord - lo) > kCoverTol ||
      std::abs(lines.back().coord - hi) > kCoverTol) {
    std::ostringstream os;
    os << axis << " boundary lines span [" << lines.front().coord << ", "
       << lines.back().coord << "] but map spans [" << lo << ", " << hi
       << "]; partition does not cover the map";
    report->add("grid", os.str());
  }
}

}  // namespace

void GridAuditor::check(const AuditScope& scope, AuditReport* report) const {
  const GridHierarchy* h = scope.hierarchy;
  if (h == nullptr) return;

  const Partition& part = h->partition();
  const Aabb map = scope.net != nullptr
                       ? scope.net->bounds()
                       : Aabb{{part.x_lines.front().coord,
                               part.y_lines.front().coord},
                              {part.x_lines.back().coord,
                               part.y_lines.back().coord}};
  check_axis("x", part.x_lines, map.lo.x, map.hi.x, report);
  check_axis("y", part.y_lines, map.lo.y, map.hi.y, report);
  if (!report->ok()) return;  // tiling checks assume ordered lines

  const Aabb span{{part.x_lines.front().coord, part.y_lines.front().coord},
                  {part.x_lines.back().coord, part.y_lines.back().coord}};

  for (GridLevel level : kLevels) {
    const int cols = h->cols(level);
    const int rows = h->rows(level);
    if (cols < 1 || rows < 1) {
      std::ostringstream os;
      os << "level " << static_cast<int>(level) << " is " << cols << "x"
         << rows << " cells; must be at least 1x1";
      report->add("grid", os.str());
      continue;
    }
    for (int row = 0; row < rows; ++row) {
      for (int col = 0; col < cols; ++col) {
        const GridCoord c{col, row};
        const Aabb box = h->cell_box(c, level);
        const int lvl = static_cast<int>(level);

        if (box.width() <= 0.0 || box.height() <= 0.0) {
          report->add("grid", "L" + std::to_string(lvl) + " cell " +
                                  coord_str(c) + " has non-positive area");
          continue;
        }
        // Tiling: the first/last cells reach the partition span and each
        // cell abuts its east/north neighbor exactly. With ordered lines
        // this proves full coverage with no overlap (cells are half-open).
        if (col == 0 && std::abs(box.lo.x - span.lo.x) > kExactTol) {
          report->add("grid", "L" + std::to_string(lvl) + " west edge gap at " +
                                  coord_str(c));
        }
        if (row == 0 && std::abs(box.lo.y - span.lo.y) > kExactTol) {
          report->add("grid", "L" + std::to_string(lvl) +
                                  " south edge gap at " + coord_str(c));
        }
        if (col + 1 < cols) {
          const Aabb east = h->cell_box({col + 1, row}, level);
          if (std::abs(box.hi.x - east.lo.x) > kExactTol) {
            report->add("grid", "L" + std::to_string(lvl) + " cells " +
                                    coord_str(c) + " and " +
                                    coord_str({col + 1, row}) +
                                    " overlap or leave a gap");
          }
        } else if (std::abs(box.hi.x - span.hi.x) > kExactTol) {
          report->add("grid", "L" + std::to_string(lvl) + " east edge gap at " +
                                  coord_str(c));
        }
        if (row + 1 < rows) {
          const Aabb north = h->cell_box({col, row + 1}, level);
          if (std::abs(box.hi.y - north.lo.y) > kExactTol) {
            report->add("grid", "L" + std::to_string(lvl) + " cells " +
                                    coord_str(c) + " and " +
                                    coord_str({col, row + 1}) +
                                    " overlap or leave a gap");
          }
        } else if (std::abs(box.hi.y - span.hi.y) > kExactTol) {
          report->add("grid", "L" + std::to_string(lvl) +
                                  " north edge gap at " + coord_str(c));
        }

        // Point-mapping round trip through the cell's interior.
        if (!(h->coord_at(box.center(), level) == c)) {
          report->add("grid", "L" + std::to_string(lvl) + " cell " +
                                  coord_str(c) +
                                  " does not contain its own center point");
        }
        // Dense-id round trip.
        if (!(h->coord_of(h->id_of(c, level), level) == c)) {
          report->add("grid", "L" + std::to_string(lvl) + " id round trip " +
                                  "broken at " + coord_str(c));
        }
        // Every cell has a real center intersection inside the map.
        if (!h->center(c, level).valid()) {
          report->add("grid", "L" + std::to_string(lvl) + " cell " +
                                  coord_str(c) + " has no center intersection");
        } else if (!map.contains_closed(h->center_pos(c, level), kCoverTol)) {
          report->add("grid", "L" + std::to_string(lvl) + " cell " +
                                  coord_str(c) +
                                  " center intersection lies outside the map");
        }
      }
    }
  }

  // Parent reachability: every L1 cell nests inside an in-range L2 and L3
  // parent cell.
  for (int row = 0; row < h->rows(GridLevel::kL1); ++row) {
    for (int col = 0; col < h->cols(GridLevel::kL1); ++col) {
      const GridCoord l1{col, row};
      const Aabb child = h->cell_box(l1, GridLevel::kL1);
      for (GridLevel level : {GridLevel::kL2, GridLevel::kL3}) {
        const GridCoord p = GridHierarchy::parent(l1, level);
        const int lvl = static_cast<int>(level);
        if (p.col < 0 || p.col >= h->cols(level) || p.row < 0 ||
            p.row >= h->rows(level)) {
          report->add("grid", "L1 cell " + coord_str(l1) + " has L" +
                                  std::to_string(lvl) +
                                  " parent out of range: " + coord_str(p));
          continue;
        }
        const Aabb parent_box = h->cell_box(p, level);
        if (!parent_box.contains_closed(child.center(), kExactTol)) {
          report->add("grid", "L1 cell " + coord_str(l1) +
                                  " lies outside its L" + std::to_string(lvl) +
                                  " parent " + coord_str(p));
        }
      }
    }
  }
}

}  // namespace hlsrg
