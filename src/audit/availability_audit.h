// Query-availability auditor: no query is ever silently lost.
//
// Between any two events, every query the tracker still carries as
// unsettled must have a live retry armed at its source vehicle — the
// HLSRG requester erases the pending entry and synchronously either fails
// the query or re-issues it when the ACK timer fires, so "unsettled with
// no pending retry" can only mean a dropped continuation. Under fault
// injection (RSU crashes, partitions) this is the invariant that separates
// "the query failed and we counted it" from "the query vanished".
#pragma once

#include "audit/auditor.h"

namespace hlsrg {

class AvailabilityAuditor final : public Auditor {
 public:
  [[nodiscard]] const char* name() const override { return "availability"; }
  void check(const AuditScope& scope, AuditReport* report) const override;
};

}  // namespace hlsrg
