// Counter conservation-law auditor.
//
// The simulator's counters are not independent gauges: they are linked by
// exact accounting identities that hold at every instant the event loop is
// between actions. This auditor checks them:
//  - event queue:  scheduled == dispatched + cancelled + pending, and the
//    earliest pending event is never in the past;
//  - packet channel, per kind:  offered == delivered + dropped (in-flight
//    packets are pending events, so they live in the queue identity, not
//    this one), with radio_drops + wired_drops equal to the ledger's total
//    drops (every drop path is ledgered, frame paths included);
//  - queries:  issued == succeeded + failed + outstanding.
#pragma once

#include "audit/auditor.h"

namespace hlsrg {

class ConservationAuditor final : public Auditor {
 public:
  [[nodiscard]] const char* name() const override { return "conservation"; }
  void check(const AuditScope& scope, AuditReport* report) const override;
};

}  // namespace hlsrg
