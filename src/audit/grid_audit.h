// Grid-partition soundness auditor.
//
// Verifies that the road-adapted partition and the three-level hierarchy
// built over it form a proper tiling: boundary lines are strictly ordered
// and cover the map, cells at every level are positive-area, adjacent
// without overlap, and exhaustive; every L1 cell nests inside its L2/L3
// parent; coordinate/id round trips are exact; and every cell has a valid
// center intersection inside the map.
#pragma once

#include "audit/auditor.h"

namespace hlsrg {

class GridAuditor final : public Auditor {
 public:
  [[nodiscard]] const char* name() const override { return "grid"; }
  void check(const AuditScope& scope, AuditReport* report) const override;
};

}  // namespace hlsrg
