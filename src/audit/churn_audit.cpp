#include "audit/churn_audit.h"

#include <sstream>

#include "core/churn_manager.h"
#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "mobility/mobility_model.h"
#include "sim/simulator.h"

namespace hlsrg {

void ChurnAuditor::check(const AuditScope& scope, AuditReport* report) const {
  if (scope.hlsrg == nullptr || scope.sim == nullptr) return;
  const ChurnManager* churn = scope.hlsrg->churn();
  if (churn == nullptr) return;
  const RunMetrics& m = scope.sim->metrics();

  // Record conservation: handed-off records never vanish — delivered, still
  // in flight, or explicitly expired (successor rebuilds from beacons).
  const std::uint64_t settled = m.handoff_records_delivered +
                                m.handoff_records_expired +
                                m.handoff_records_in_flight;
  if (m.records_at_departure != settled) {
    std::ostringstream os;
    os << "handoff records leak: records_at_departure "
       << m.records_at_departure << " != delivered "
       << m.handoff_records_delivered << " + expired "
       << m.handoff_records_expired << " + in_flight "
       << m.handoff_records_in_flight;
    report->add("churn", os.str());
  }
  // Role law: every departure either elected a successor on the spot or
  // left an accounted vacancy for the fill sweep.
  if (m.role_departures != m.role_elections + m.role_vacancies) {
    std::ostringstream os;
    os << "role accounting unbalanced: departures " << m.role_departures
       << " != elections " << m.role_elections << " + vacancies "
       << m.role_vacancies;
    report->add("churn", os.str());
  }
  // Handoff packets settle at most once each (delivery and loss are
  // mutually exclusive outcomes of one send).
  if (m.handoffs_delivered + m.handoffs_lost > m.handoffs_sent) {
    std::ostringstream os;
    os << "handoffs settle twice: delivered " << m.handoffs_delivered
       << " + lost " << m.handoffs_lost << " > sent " << m.handoffs_sent;
    report->add("churn", os.str());
  }
  if (m.handoff_records_sent > m.records_at_departure) {
    std::ostringstream os;
    os << "more records shipped than snapshotted: sent "
       << m.handoff_records_sent << " > at_departure "
       << m.records_at_departure;
    report->add("churn", os.str());
  }

  // Binding invariants against the live world. "Staffed implies up" is NOT
  // checked: a crash fault window may legitimately down a staffed role.
  const RoleDirectory& directory = churn->directory();
  const auto& agents = scope.hlsrg->rsu_agents();
  for (std::size_t i = 0; i < directory.role_count(); ++i) {
    const RsuId role{i};
    const RoleBinding& binding = directory.binding(role);
    if (binding.kind == RoleHostKind::kNone) {
      if (i < agents.size() && agents[i].up()) {
        std::ostringstream os;
        os << "vacant role " << i << " has a live agent (nobody hosts it)";
        report->add("churn", os.str());
      }
      continue;
    }
    if (binding.kind == RoleHostKind::kParkedVehicle) {
      if (!binding.host.valid()) {
        std::ostringstream os;
        os << "role " << i << " bound to a parked vehicle with no host id";
        report->add("churn", os.str());
      } else if (scope.mobility != nullptr &&
                 !scope.mobility->parked(binding.host)) {
        std::ostringstream os;
        os << "role " << i << " hosted by vehicle " << binding.host.value()
           << " which is driving, not parked";
        report->add("churn", os.str());
      }
    }
  }
}

}  // namespace hlsrg
