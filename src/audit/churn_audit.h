// Infrastructure-churn auditor: no location record is silently lost and no
// role binding drifts from the world it describes.
//
// The churn layer's bounded-staleness guarantee is an exact conservation
// law: every record a departing role host held is either delivered to the
// successor/absorber, still in flight on the radio/wire, or ledger-accounted
// as expired (rebuild-from-beacons covers it) —
//
//   records_at_departure == handoff_records_delivered
//                         + handoff_records_expired
//                         + handoff_records_in_flight
//
// at every instant, alongside the role law (every departure either elected
// a successor or left an accounted vacancy) and the binding invariants
// (vacant roles are dark, parked-vehicle hosts are actually parked). Skips
// silently unless the scope runs HLSRG with parked-RSU hosting.
#pragma once

#include "audit/auditor.h"

namespace hlsrg {

class ChurnAuditor final : public Auditor {
 public:
  [[nodiscard]] const char* name() const override { return "churn"; }
  void check(const AuditScope& scope, AuditReport* report) const override;
};

}  // namespace hlsrg
