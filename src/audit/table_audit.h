// Hierarchical location-table consistency auditor (HLSRG worlds only).
//
// Checks every location table in the running protocol against invariants
// the collection pipeline guarantees by construction:
//  - entry timestamps are never in the future and never negative;
//  - grid coordinates stored in entries are within their level's range;
//  - entries are bounded-stale: no older than the level expiry plus two
//    purge periods (tables purge lazily on their periodic timers, so
//    entries age past the expiry only until the next tick);
//  - tables live only where their level does (no L3 summaries on an L2 RSU
//    and vice versa; grid-center L1 tables only while the vehicle holds
//    center duty);
//  - summarization: a fresh full record cached at an RSU always has a
//    summary-table entry at least as new (full and thinned tables are
//    written together, newest-wins).
//
// Deliberately NOT checked, because radio overhearing makes them unsound:
// that a summary's L1/L2 grid is a child of the recording RSU's cell (RSUs
// hear updates broadcast from adjacent cells), and any cross-RSU timestamp
// ordering (an L3 RSU can hear an update its child L2 never received).
#pragma once

#include "audit/auditor.h"

namespace hlsrg {

class TableAuditor final : public Auditor {
 public:
  [[nodiscard]] const char* name() const override { return "table"; }
  void check(const AuditScope& scope, AuditReport* report) const override;
};

}  // namespace hlsrg
