// Composes auditors, escalates violations, and self-schedules during runs.
//
// AuditRunner::standard() builds the full set (grid, table, conservation).
// `run` collects violations for inspection (tests); `enforce` aborts the
// process on the first dirty report, printing every violation first — in a
// periodic in-run audit that turns a silent state corruption into a loud
// failure at the tick where it first becomes visible.
#pragma once

#include <memory>
#include <vector>

#include "audit/auditor.h"
#include "sim/time.h"

namespace hlsrg {

class Simulator;

class AuditRunner {
 public:
  void add(std::unique_ptr<Auditor> auditor);

  [[nodiscard]] const std::vector<std::unique_ptr<Auditor>>& auditors() const {
    return auditors_;
  }

  // Runs every auditor; the report holds all violations found.
  [[nodiscard]] AuditReport run(const AuditScope& scope) const;

  // Runs every auditor and aborts (HLSRG_CHECK) on any violation, after
  // printing the full report to stderr.
  void enforce(const AuditScope& scope) const;

  // Schedules a recurring enforce() on `sim` every `period` until `until`
  // (inclusive of the first tick at now + period). The runner and every
  // component in `scope` must outlive the simulation.
  void attach_periodic(Simulator& sim, AuditScope scope, SimTime period,
                       SimTime until) const;

  // The full standard auditor set: grid, table, conservation.
  [[nodiscard]] static AuditRunner standard();

 private:
  std::vector<std::unique_ptr<Auditor>> auditors_;
};

}  // namespace hlsrg
