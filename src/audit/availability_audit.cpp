#include "audit/availability_audit.h"

#include <string>

#include "core/hlsrg_service.h"
#include "core/location_service.h"
#include "core/vehicle_agent.h"

namespace hlsrg {

void AvailabilityAuditor::check(const AuditScope& scope,
                                AuditReport* report) const {
  // Pending-retry state lives on the HLSRG vehicle agents; other protocols
  // have no equivalent introspection, so the auditor covers HLSRG only.
  if (scope.service == nullptr || scope.hlsrg == nullptr) return;
  QueryTracker& tracker = scope.service->tracker();
  const HlsrgConfig& cfg = scope.hlsrg->cfg();
  const std::size_t n = tracker.count();
  for (QueryTracker::QueryId id = 0; id < n; ++id) {
    if (tracker.settled(id)) continue;
    const VehicleId src = tracker.source_of(id);
    const HlsrgVehicleAgent& agent = scope.hlsrg->vehicle_agent(src);
    if (!agent.has_pending(id)) {
      report->add(name(), "query " + std::to_string(id) +
                              " unsettled with no retry pending at vehicle " +
                              std::to_string(src.value()) +
                              " (silently lost)");
      continue;
    }
    const int attempt = agent.pending_attempt(id);
    if (attempt > cfg.max_attempts) {
      report->add(name(), "query " + std::to_string(id) + " on attempt " +
                              std::to_string(attempt) + " > max_attempts " +
                              std::to_string(cfg.max_attempts));
    }
  }
}

}  // namespace hlsrg
