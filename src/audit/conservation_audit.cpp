#include "audit/conservation_audit.h"

#include <sstream>

#include "core/location_service.h"
#include "sim/simulator.h"

namespace hlsrg {

void ConservationAuditor::check(const AuditScope& scope,
                                AuditReport* report) const {
  if (scope.sim == nullptr) return;
  const Simulator& sim = *scope.sim;
  const EventQueue& queue = sim.queue();
  const RunMetrics& m = sim.metrics();

  const std::uint64_t accounted = queue.events_dispatched() +
                                  queue.events_cancelled() +
                                  static_cast<std::uint64_t>(queue.size());
  if (queue.events_scheduled() != accounted) {
    std::ostringstream os;
    os << "event queue leaks events: scheduled " << queue.events_scheduled()
       << " != dispatched " << queue.events_dispatched() << " + cancelled "
       << queue.events_cancelled() << " + pending " << queue.size();
    report->add("conservation", os.str());
  }
  if (queue.next_time() < queue.now()) {
    std::ostringstream os;
    os << "event queue time runs backwards: next event at "
       << queue.next_time() << " is before now " << queue.now();
    report->add("conservation", os.str());
  }

  for (int kind = 0; kind < static_cast<int>(PacketLedger::kSlots); ++kind) {
    const std::uint64_t offered = m.channel.offered(kind);
    const std::uint64_t settled =
        m.channel.delivered(kind) + m.channel.dropped(kind);
    if (offered != settled) {
      std::ostringstream os;
      os << "channel ledger unbalanced for packet kind " << kind
         << ": offered " << offered << " != delivered "
         << m.channel.delivered(kind) << " + dropped "
         << m.channel.dropped(kind);
      report->add("conservation", os.str());
    }
  }
  // Every ledger drop is either a radio drop or a wired unreachable drop,
  // and every drop path (including the packet-less frame paths) is ledgered,
  // so the totals must agree exactly.
  if (m.radio_drops + m.wired_drops != m.channel.total_dropped()) {
    std::ostringstream os;
    os << "radio_drops " << m.radio_drops << " + wired_drops "
       << m.wired_drops << " disagrees with the channel ledger's dropped total "
       << m.channel.total_dropped();
    report->add("conservation", os.str());
  }

  // Service-tier shedding happens before issuance: a shed query never reaches
  // the tracker, so every offered query is either issued or shed. Inequality
  // form because tests may call issue_query directly, bypassing the admission
  // seam (issued then exceeds offered, which is fine; the reverse is a leak).
  if (m.queries_shed > m.queries_offered) {
    std::ostringstream os;
    os << "more queries shed than offered: " << m.queries_shed << " shed > "
       << m.queries_offered << " offered";
    report->add("conservation", os.str());
  }
  if (m.queries_offered > m.queries_issued + m.queries_shed) {
    std::ostringstream os;
    os << "admission leaks queries: offered " << m.queries_offered
       << " > issued " << m.queries_issued << " + shed " << m.queries_shed;
    report->add("conservation", os.str());
  }
  // Every shed recorded in the packet ledger's shed column came from either
  // a fresh-query shed or a retry shed — the totals must agree exactly.
  if (m.channel.total_shed() != m.queries_shed + m.retries_shed) {
    std::ostringstream os;
    os << "shed ledger unbalanced: channel shed total "
       << m.channel.total_shed() << " != queries_shed " << m.queries_shed
       << " + retries_shed " << m.retries_shed;
    report->add("conservation", os.str());
  }

  if (m.queries_succeeded + m.queries_failed > m.queries_issued) {
    std::ostringstream os;
    os << "more queries settled than issued: " << m.queries_succeeded
       << " succeeded + " << m.queries_failed << " failed > "
       << m.queries_issued << " issued";
    report->add("conservation", os.str());
  }
  if (scope.service != nullptr) {
    const std::uint64_t outstanding = scope.service->tracker().outstanding();
    if (m.queries_issued !=
        m.queries_succeeded + m.queries_failed + outstanding) {
      std::ostringstream os;
      os << "query accounting unbalanced: issued " << m.queries_issued
         << " != succeeded " << m.queries_succeeded << " + failed "
         << m.queries_failed << " + outstanding " << outstanding;
      report->add("conservation", os.str());
    }
  }
}

}  // namespace hlsrg
