// Line-segment utilities: projection, distance, and corridor membership.
//
// Road segments are straight lines between intersections; the directional
// geocast used by HLSRG's location servers needs "is this point within w
// metres of the road, ahead of the start" tests, which live here.
#pragma once

#include "geom/vec2.h"

namespace hlsrg {

struct LineSegment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const { return distance(a, b); }
  [[nodiscard]] Vec2 direction() const { return (b - a).normalized(); }

  // Point at parameter t in [0,1] along the segment.
  [[nodiscard]] Vec2 lerp(double t) const { return a + (b - a) * t; }

  // Parameter of the closest point on the (clamped) segment to p.
  [[nodiscard]] double project(Vec2 p) const;

  // Closest point on the segment to p.
  [[nodiscard]] Vec2 closest_point(Vec2 p) const { return lerp(project(p)); }

  // Euclidean distance from p to the segment.
  [[nodiscard]] double distance_to(Vec2 p) const {
    return distance(p, closest_point(p));
  }
};

// True if p lies within `half_width` metres of the infinite ray that starts
// at `origin` and points along `dir` (unit not required), and the projection
// of p onto the ray is in [-behind_slack, max_ahead]. This is the corridor
// test for directional road geocast: flood only vehicles on the road ahead.
[[nodiscard]] bool in_corridor(Vec2 p, Vec2 origin, Vec2 dir,
                               double half_width, double max_ahead,
                               double behind_slack = 0.0);

// Returns true if segments [a1,b1] and [a2,b2] properly intersect or touch.
[[nodiscard]] bool segments_intersect(Vec2 a1, Vec2 b1, Vec2 a2, Vec2 b2);

// Normalizes an angle to (-pi, pi].
[[nodiscard]] double normalize_angle(double radians);

// Smallest absolute difference between two angles, in [0, pi].
[[nodiscard]] double angle_between(double a, double b);

}  // namespace hlsrg
