// Axis-aligned bounding box; grids, cells, and geocast regions are all AABBs.
#pragma once

#include <algorithm>

#include "geom/vec2.h"

namespace hlsrg {

struct Aabb {
  Vec2 lo;  // south-west corner (inclusive)
  Vec2 hi;  // north-east corner (exclusive for point-membership tests)

  // Half-open membership [lo, hi): adjacent boxes tile without overlap.
  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
  }

  // Closed membership with tolerance; used for "within the intersection
  // region" style tests where boundary points should count.
  [[nodiscard]] constexpr bool contains_closed(Vec2 p, double eps = 0.0) const {
    return p.x >= lo.x - eps && p.x <= hi.x + eps && p.y >= lo.y - eps &&
           p.y <= hi.y + eps;
  }

  [[nodiscard]] constexpr Vec2 center() const {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }
  [[nodiscard]] constexpr double width() const { return hi.x - lo.x; }
  [[nodiscard]] constexpr double height() const { return hi.y - lo.y; }

  // Smallest box containing both.
  [[nodiscard]] constexpr Aabb merged(const Aabb& o) const {
    return {{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)},
            {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)}};
  }

  // Box grown by `m` metres on every side.
  [[nodiscard]] constexpr Aabb inflated(double m) const {
    return {{lo.x - m, lo.y - m}, {hi.x + m, hi.y + m}};
  }

  // Distance from p to the box (0 if inside).
  [[nodiscard]] double distance_to(Vec2 p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return Vec2{dx, dy}.norm();
  }
};

}  // namespace hlsrg
