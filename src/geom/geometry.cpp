#include <algorithm>
#include <cmath>
#include <numbers>

#include "geom/segment.h"

namespace hlsrg {

double LineSegment::project(Vec2 p) const {
  const Vec2 d = b - a;
  const double len2 = d.norm2();
  if (len2 <= 0.0) return 0.0;
  return std::clamp((p - a).dot(d) / len2, 0.0, 1.0);
}

bool in_corridor(Vec2 p, Vec2 origin, Vec2 dir, double half_width,
                 double max_ahead, double behind_slack) {
  const Vec2 u = dir.normalized();
  if (u == Vec2{}) return distance(p, origin) <= half_width;
  const Vec2 rel = p - origin;
  const double along = rel.dot(u);
  if (along < -behind_slack || along > max_ahead) return false;
  const double across = std::abs(rel.cross(u));
  return across <= half_width;
}

namespace {

// Sign of the oriented area of triangle (a, b, c); 0 when collinear.
int orientation(Vec2 a, Vec2 b, Vec2 c) {
  const double v = (b - a).cross(c - a);
  constexpr double kEps = 1e-9;
  if (v > kEps) return 1;
  if (v < -kEps) return -1;
  return 0;
}

bool on_segment(Vec2 a, Vec2 b, Vec2 p) {
  return std::min(a.x, b.x) - 1e-9 <= p.x && p.x <= std::max(a.x, b.x) + 1e-9 &&
         std::min(a.y, b.y) - 1e-9 <= p.y && p.y <= std::max(a.y, b.y) + 1e-9;
}

}  // namespace

bool segments_intersect(Vec2 a1, Vec2 b1, Vec2 a2, Vec2 b2) {
  const int o1 = orientation(a1, b1, a2);
  const int o2 = orientation(a1, b1, b2);
  const int o3 = orientation(a2, b2, a1);
  const int o4 = orientation(a2, b2, b1);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(a1, b1, a2)) return true;
  if (o2 == 0 && on_segment(a1, b1, b2)) return true;
  if (o3 == 0 && on_segment(a2, b2, a1)) return true;
  if (o4 == 0 && on_segment(a2, b2, b1)) return true;
  return false;
}

double normalize_angle(double radians) {
  constexpr double kPi = std::numbers::pi;
  while (radians > kPi) radians -= 2.0 * kPi;
  while (radians <= -kPi) radians += 2.0 * kPi;
  return radians;
}

double angle_between(double a, double b) {
  return std::abs(normalize_angle(a - b));
}

}  // namespace hlsrg
