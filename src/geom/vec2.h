// 2-D vector type used for every position/direction in the simulator.
//
// Coordinates are metres in a local map frame (origin at the map's south-west
// corner, x east, y north). Double precision keeps dead-reckoning error far
// below the 1 m scale that matters to the protocols.
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace hlsrg {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend constexpr Vec2 operator/(Vec2 a, double s) { return {a.x / s, a.y / s}; }
  constexpr Vec2& operator+=(Vec2 b) { x += b.x; y += b.y; return *this; }
  constexpr Vec2& operator-=(Vec2 b) { x -= b.x; y -= b.y; return *this; }

  friend constexpr bool operator==(Vec2, Vec2) = default;

  [[nodiscard]] constexpr double dot(Vec2 b) const { return x * b.x + y * b.y; }
  // z-component of the 3-D cross product; >0 when b is counter-clockwise.
  [[nodiscard]] constexpr double cross(Vec2 b) const { return x * b.y - y * b.x; }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }

  // Unit vector in the same direction; the zero vector normalizes to zero.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  // Perpendicular vector (rotated +90 degrees).
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }

  // Angle in radians in (-pi, pi], measured from +x counter-clockwise.
  [[nodiscard]] double angle() const { return std::atan2(y, x); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
[[nodiscard]] constexpr double distance2(Vec2 a, Vec2 b) {
  return (a - b).norm2();
}

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace hlsrg
