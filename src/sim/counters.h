// Named counters and latency accumulators for per-run metrics.
//
// Every protocol-relevant transmission increments a counter here; the bench
// harness reads the registry after a run to produce the paper's figures.
// Counters are plain members (not a string-keyed map) so the hot path is an
// increment, and so the set of metrics is a compile-time-visible contract.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace hlsrg {

// Per-packet-kind channel accounting for the conservation auditor. Every
// channel-level delivery decision is recorded at decision time: a broadcast
// offers the packet to each in-range receiver, a unicast to its target, a
// wired send to its destination; each offer settles immediately as either
// delivered (reception scheduled) or dropped (lost to the channel). The
// invariant `offered == delivered + dropped` therefore holds per kind at
// every instant — in-flight packets are counted as pending events by the
// event-queue conservation law instead. The kind key is the raw PacketKind
// value (sim cannot depend on net/packet.h); all kinds fit in one byte.
class PacketLedger {
 public:
  static constexpr std::size_t kSlots = 256;

  void add_offered(int kind) { ++offered_[slot(kind)]; }
  void add_delivered(int kind) { ++delivered_[slot(kind)]; }
  void add_dropped(int kind) { ++dropped_[slot(kind)]; }
  // Shed packets were refused by admission control *before* reaching a
  // channel, so they are deliberately outside the offered/delivered/dropped
  // law; the auditor reconciles them against the RunMetrics shed counters.
  void add_shed(int kind) { ++shed_[slot(kind)]; }

  [[nodiscard]] std::uint64_t offered(int kind) const {
    return offered_[slot(kind)];
  }
  [[nodiscard]] std::uint64_t delivered(int kind) const {
    return delivered_[slot(kind)];
  }
  [[nodiscard]] std::uint64_t dropped(int kind) const {
    return dropped_[slot(kind)];
  }
  [[nodiscard]] std::uint64_t shed(int kind) const { return shed_[slot(kind)]; }

  [[nodiscard]] std::uint64_t total_offered() const { return sum(offered_); }
  [[nodiscard]] std::uint64_t total_delivered() const {
    return sum(delivered_);
  }
  [[nodiscard]] std::uint64_t total_dropped() const { return sum(dropped_); }
  [[nodiscard]] std::uint64_t total_shed() const { return sum(shed_); }

  void merge(const PacketLedger& other) {
    for (std::size_t i = 0; i < kSlots; ++i) {
      offered_[i] += other.offered_[i];
      delivered_[i] += other.delivered_[i];
      dropped_[i] += other.dropped_[i];
      shed_[i] += other.shed_[i];
    }
  }

 private:
  [[nodiscard]] static std::size_t slot(int kind) {
    HLSRG_DCHECK(kind >= 0 && kind < static_cast<int>(kSlots));
    return static_cast<std::size_t>(kind) % kSlots;
  }
  [[nodiscard]] static std::uint64_t sum(
      const std::array<std::uint64_t, kSlots>& a) {
    std::uint64_t t = 0;
    for (std::uint64_t v : a) t += v;
    return t;
  }

  std::array<std::uint64_t, kSlots> offered_{};
  std::array<std::uint64_t, kSlots> delivered_{};
  std::array<std::uint64_t, kSlots> dropped_{};
  std::array<std::uint64_t, kSlots> shed_{};
};

// Accumulates latency samples; reports count/mean/min/max and percentiles.
// Sample counts here are small (one per query), so every sample is kept and
// percentiles are exact.
class LatencyStat {
 public:
  void add(SimTime sample);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean_ms() const;
  [[nodiscard]] double min_ms() const;
  [[nodiscard]] double max_ms() const;
  // Exact percentile (nearest-rank), q in [0,1]; 0 when empty.
  [[nodiscard]] double percentile_ms(double q) const;
  [[nodiscard]] double p50_ms() const { return percentile_ms(0.50); }
  [[nodiscard]] double p90_ms() const { return percentile_ms(0.90); }
  [[nodiscard]] double p95_ms() const { return percentile_ms(0.95); }
  [[nodiscard]] double p99_ms() const { return percentile_ms(0.99); }

  // Merges another accumulator into this one (used when averaging replicas).
  void merge(const LatencyStat& other);

 private:
  std::uint64_t count_ = 0;
  std::int64_t sum_us_ = 0;
  std::int64_t min_us_ = 0;
  std::int64_t max_us_ = 0;
  // Kept unsorted; sorted on demand by percentile_ms.
  mutable std::vector<std::int64_t> samples_us_;
  mutable bool sorted_ = false;
};

// Engine-level execution statistics for one run: how much work the
// discrete-event core did and how fast the host executed it. Protocol
// metrics (RunMetrics) describe the simulated world; EngineStats describe
// the simulator itself — the bench reports emit both so perf PRs are
// measurable.
struct EngineStats {
  std::uint64_t events_processed = 0;   // events dispatched by the queue
  std::uint64_t events_scheduled = 0;   // events ever scheduled
  std::uint64_t peak_queue_depth = 0;   // pending-event high-water mark
  std::uint64_t broadcasts = 0;         // radio broadcast transmissions
  std::uint64_t peak_rss_bytes = 0;     // process RSS high-water mark
  std::uint64_t table_bytes = 0;        // protocol-table + registry heap
                                        // bytes at end of run
  std::uint64_t trace_events_dropped = 0;  // trace records past the cap
  std::uint64_t trace_spans_dropped = 0;   // spans past the cap
  std::uint64_t peak_outstanding_queries = 0;  // unsettled-query high-water
                                               // mark (admission pressure)
  double sim_time_sec = 0.0;            // simulated horizon covered
  double wall_clock_sec = 0.0;          // host time spent running the replica

  // Host throughput; 0 when wall-clock was not captured.
  [[nodiscard]] double events_per_sec() const {
    return wall_clock_sec > 0.0
               ? static_cast<double>(events_processed) / wall_clock_sec
               : 0.0;
  }
  [[nodiscard]] double broadcasts_per_sec() const {
    return wall_clock_sec > 0.0
               ? static_cast<double>(broadcasts) / wall_clock_sec
               : 0.0;
  }

  // Aggregates replicas: counts and times sum, peaks take the max (replicas
  // run concurrently, so depths never stack in one queue, and RSS is a
  // process-wide high-water mark to begin with).
  void merge(const EngineStats& other);
};

// All metrics for one simulation run. Semantics:
//   *_originated : packets created by their source (what the paper counts as
//                  "number of location update packets").
//   *_transmissions : every radio transmission, including forwards/rebroadcasts
//                  (overhead in airtime terms).
struct RunMetrics {
  // --- location update traffic ---
  std::uint64_t update_packets_originated = 0;
  std::uint64_t update_transmissions = 0;
  // Hierarchy maintenance: L1 table handoffs/pushes, L2->L3 merges (HLSRG);
  // leader->LSC aggregation (RLSMP).
  std::uint64_t aggregation_packets = 0;
  std::uint64_t aggregation_transmissions = 0;

  // --- query traffic ---
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_succeeded = 0;
  std::uint64_t queries_failed = 0;
  std::uint64_t query_packets_originated = 0;  // request + notification + ACK
  std::uint64_t query_transmissions = 0;       // all hops of the above

  // --- protocol-event accounting (diagnosis + tests) ---
  std::uint64_t server_lookup_hits = 0;    // L1 center / LSC table hit
  std::uint64_t server_lookup_misses = 0;  // ... miss (forwarded up / spiral)
  std::uint64_t rsu_lookup_hits = 0;       // L2/L3 RSU table hit
  std::uint64_t rsu_lookup_misses = 0;
  std::uint64_t notifications_sent = 0;    // geocasts toward Dv
  std::uint64_t acks_sent = 0;             // Dv answered

  // --- radio-level accounting ---
  std::uint64_t radio_broadcasts = 0;   // one-hop broadcast transmissions
  std::uint64_t radio_unicasts = 0;     // GPSR hop transmissions
  std::uint64_t radio_drops = 0;        // receptions lost to the channel
  std::uint64_t wired_messages = 0;     // RSU backhaul messages
  std::uint64_t gpsr_failures = 0;      // unicast abandoned (no route)

  // --- fault + degradation accounting (src/fault) ---
  std::uint64_t wired_drops = 0;        // wired sends lost: no path, cut
                                        // link, or down endpoint
  std::uint64_t rsu_suppressed = 0;     // packets arriving at a crashed RSU
  std::uint64_t query_retries = 0;      // request re-issues (attempt > 1)
  std::uint64_t query_failovers = 0;    // sends escalated around a dead
                                        // component (RSU / wired path)
  std::uint64_t queries_stranded = 0;   // unsettled at the run horizon
  std::uint64_t fault_queries_issued = 0;  // issued during a fault window
  std::uint64_t fault_queries_ok = 0;      // ... of those, succeeded
  std::uint64_t recovery_time_us = 0;   // sum of fault-clear -> first-success
                                        // gaps over recovered windows
  std::uint64_t recovery_windows = 0;   // finite fault windows with a
                                        // post-clearance success
  // FNV digest of the active fault schedule; 0 = no faults scheduled. Folded
  // into the determinism digest only when nonzero, so zero-fault runs stay
  // byte-identical with fault-unaware builds.
  std::uint64_t fault_plan_digest = 0;

  // --- service-tier accounting (src/service) ---
  std::uint64_t queries_offered = 0;    // submissions seen by QueryAdmission
  std::uint64_t queries_shed = 0;       // new queries refused under overload
  std::uint64_t retries_shed = 0;       // retry attempts refused (the query
                                        // then fails, never hangs silently)
  std::uint64_t cache_hits = 0;         // RSU hot-destination cache answered
  std::uint64_t cache_misses = 0;       // cache probed, no fresh entry
  std::uint64_t cache_invalidations = 0;  // entries evicted by fresher update
  std::uint64_t batched_queries = 0;    // queries that rode a batch flush
  std::uint64_t batch_flushes = 0;      // wired batch lookups sent
  std::uint64_t peak_outstanding = 0;   // unsettled-query high-water mark

  // --- infrastructure-churn accounting (parked-cars-as-RSUs, src/core) ---
  // Record conservation law (ChurnAuditor):
  //   records_at_departure == handoff_records_delivered
  //                           + handoff_records_expired
  //                           + handoff_records_in_flight
  // holds at every instant — in-flight records settle when their handoff
  // packet is delivered (merged), suppressed at a crashed receiver, or lost
  // after MAC retries. Role law: role_departures == role_elections +
  // role_vacancies.
  std::uint64_t role_departures = 0;    // hosts that left an L2/L3 role
  std::uint64_t role_elections = 0;     // successor bound at departure time
  std::uint64_t role_vacancies = 0;     // departures that left the role down
  std::uint64_t role_fills = 0;         // vacant roles re-staffed later
  std::uint64_t handoffs_sent = 0;      // kRoleHandoff packets sent
  std::uint64_t handoffs_delivered = 0; // ... merged by the receiver
  std::uint64_t handoffs_lost = 0;      // ... lost / suppressed / unreachable
  std::uint64_t handoff_records_sent = 0;       // records riding a handoff
  std::uint64_t handoff_records_delivered = 0;  // ... merged at the receiver
  std::uint64_t handoff_records_expired = 0;    // records ledger-accounted as
                                                // expired (abrupt departure,
                                                // lost packet, no absorber)
  std::uint64_t handoff_records_in_flight = 0;  // gauge: sent, not settled
  std::uint64_t records_at_departure = 0;       // records held by leaving hosts
  // Nonzero when the churn subsystem ran (ChurnManager constructed). Gates
  // the determinism-digest mix of the counters above so zero-churn runs stay
  // byte-identical with churn-unaware builds (mirrors fault_plan_digest).
  std::uint64_t churn_active = 0;

  // Per-kind channel conservation ledger (offered == delivered + dropped),
  // fed by the radio broadcast/unicast and wired paths that carry a Packet.
  PacketLedger channel;

  LatencyStat query_latency;

  void merge(const RunMetrics& other);

  // Total control transmissions attributable to updates (Fig 3.2's metric).
  [[nodiscard]] std::uint64_t total_update_overhead() const {
    return update_packets_originated;
  }
  // Total transmissions attributable to queries (Fig 3.3's metric).
  [[nodiscard]] std::uint64_t total_query_overhead() const {
    return query_transmissions + wired_messages;
  }
  [[nodiscard]] double success_rate() const {
    return queries_issued == 0
               ? 0.0
               : static_cast<double>(queries_succeeded) /
                     static_cast<double>(queries_issued);
  }
  // Goodput against *offered* load: successes over everything submitted,
  // shed included. Falls back to success_rate() for runs that bypass the
  // admission seam (direct issue_query callers in tests).
  [[nodiscard]] double served_rate() const {
    return queries_offered == 0
               ? success_rate()
               : static_cast<double>(queries_succeeded) /
                     static_cast<double>(queries_offered);
  }
  // Success rate restricted to queries issued while a fault window was
  // active; falls back to the overall rate when no query overlapped a fault.
  [[nodiscard]] double availability() const {
    return fault_queries_issued == 0
               ? success_rate()
               : static_cast<double>(fault_queries_ok) /
                     static_cast<double>(fault_queries_issued);
  }
  // Mean time from a fault window clearing to the first query success at or
  // after the clearance; 0 when no finite window recovered.
  [[nodiscard]] double recovery_ms() const {
    return recovery_windows == 0
               ? 0.0
               : static_cast<double>(recovery_time_us) /
                     static_cast<double>(recovery_windows) * 1e-3;
  }
  // Fraction of handed-off location records that reached their successor /
  // absorber; 1 when no handoff ever carried a record.
  [[nodiscard]] double handoff_record_delivery_rate() const {
    return handoff_records_sent == 0
               ? 1.0
               : static_cast<double>(handoff_records_delivered) /
                     static_cast<double>(handoff_records_sent);
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace hlsrg
