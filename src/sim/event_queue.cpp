#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace hlsrg {

EventHandle EventQueue::schedule_at(SimTime when, Action action) {
  HLSRG_CHECK_MSG(when >= now_, "cannot schedule into the past");
  HLSRG_CHECK(action != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  actions_.emplace(seq, std::move(action));
  peak_depth_ = std::max(peak_depth_, actions_.size());
  return EventHandle{seq};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (actions_.erase(handle.seq_) == 0) return false;
  ++events_cancelled_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !actions_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? SimTime::max() : heap_.top().when;
}

bool EventQueue::run_one() {
  drop_cancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = actions_.find(entry.seq);
  HLSRG_CHECK(it != actions_.end());
  Action action = std::move(it->second);
  actions_.erase(it);
  HLSRG_CHECK(entry.when >= now_);
  now_ = entry.when;
  ++events_dispatched_;
  action();
  return true;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t dispatched = 0;
  while (next_time() <= until) {
    if (!run_one()) break;
    ++dispatched;
  }
  if (now_ < until) now_ = until;
  return dispatched;
}

}  // namespace hlsrg
