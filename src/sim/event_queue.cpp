#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace hlsrg {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  slots_[slot].seq = 0;
  slots_[slot].action.reset();
  free_slots_.push_back(slot);
}

EventHandle EventQueue::schedule_at(SimTime when, Action action) {
  HLSRG_CHECK_MSG(when >= now_, "cannot schedule into the past");
  HLSRG_CHECK(action != nullptr);
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].seq = seq;
  slots_[slot].action = std::move(action);
  heap_.push(Entry{when, seq, slot});
  ++live_;
  peak_depth_ = std::max(peak_depth_, live_);
  return EventHandle{seq, slot};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (handle.slot_ >= slots_.size()) return false;
  // The slot may have been recycled for a newer event; the seq match proves
  // the handle's event is the one still pending.
  if (slots_[handle.slot_].seq != handle.seq_) return false;
  release_slot(handle.slot_);
  --live_;
  ++events_cancelled_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && slots_[heap_.top().slot].seq != heap_.top().seq) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? SimTime::max() : heap_.top().when;
}

bool EventQueue::run_one() {
  drop_cancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  HLSRG_DCHECK(slots_[entry.slot].seq == entry.seq);
  // Move the action out before running: the action may schedule new events,
  // growing `slots_` and recycling this very slot.
  Action action = std::move(slots_[entry.slot].action);
  release_slot(entry.slot);
  --live_;
  HLSRG_CHECK(entry.when >= now_);
  now_ = entry.when;
  ++events_dispatched_;
  action();
  return true;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t dispatched = 0;
  while (next_time() <= until) {
    if (!run_one()) break;
    ++dispatched;
  }
  if (now_ < until) now_ = until;
  return dispatched;
}

}  // namespace hlsrg
