// Deterministic random number generation.
//
// Every stochastic decision in a run (mobility turns, radio loss, back-off
// draws) comes from an explicitly seeded generator, so a (scenario, seed)
// pair reproduces bit-identically. We use xoshiro256** seeded via SplitMix64
// — the reference-recommended pairing — rather than std::mt19937 because it
// is faster, smaller (32 bytes of state), and its streams split cleanly:
// mobility and protocol draw from independent streams so that changing the
// protocol cannot perturb vehicle trajectories (paired comparisons stay
// paired).
#pragma once

#include <cstdint>

#include "util/check.h"

namespace hlsrg {

// Named RNG stream ids. Every subsystem stream is split from the root
// generator under one of these tags; the numeric values are frozen (they
// feed SplitMix64 directly, so renumbering changes every digest in the
// repo). The determinism lint (tools/lint, rule `rng-discipline`) rejects
// `split(<bare integer>)` — a named id documents which subsystem owns the
// stream and keeps tag collisions impossible by construction, which is
// what lets per-shard streams merge deterministically once the engine
// shards by L3 region.
enum class RngStreamId : std::uint64_t {
  kMobility = 1,  // vehicle trajectories (turns, speeds, spawn jitter)
  kRadio = 2,     // per-reception loss draws
  kProtocol = 3,  // protocol back-off and election jitter
  kWorkload = 4,  // closed-loop query generation
  kFault = 5,     // fault-plan window edge jitter (src/fault)
  kOpenLoop = 6,  // open-loop Poisson arrivals (src/service)
};

// Stable lower_snake name for traces and error messages.
[[nodiscard]] constexpr const char* rng_stream_name(RngStreamId id) {
  switch (id) {
    case RngStreamId::kMobility: return "mobility";
    case RngStreamId::kRadio: return "radio";
    case RngStreamId::kProtocol: return "protocol";
    case RngStreamId::kWorkload: return "workload";
    case RngStreamId::kFault: return "fault";
    case RngStreamId::kOpenLoop: return "open_loop";
  }
  return "unknown";
}

// SplitMix64: used only to expand a user seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the workhorse generator.
class Rng {
 public:
  // Satisfy UniformRandomBitGenerator so <random> distributions also work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    HLSRG_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n). n must be > 0. Uses Lemire's method to avoid
  // modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n) {
    HLSRG_CHECK(n > 0);
    const std::uint64_t x = next();
    // 128-bit multiply-shift; rejection step keeps the result unbiased.
    unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) *
            static_cast<unsigned __int128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HLSRG_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Bernoulli draw with success probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Derives an independent child stream. The named overload is the public
  // spelling — one RngStreamId per subsystem, enforced by the determinism
  // lint. The raw-tag overload stays for derived sub-streams whose tag is a
  // computed value (e.g. a per-shard offset), never a bare literal.
  Rng split(RngStreamId id) { return split(static_cast<std::uint64_t>(id)); }

  Rng split(std::uint64_t stream_tag) {
    SplitMix64 sm(next() ^ (0x6a09e667f3bcc909ULL + stream_tag));
    return Rng(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace hlsrg
