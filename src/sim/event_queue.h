// Discrete-event queue with deterministic ordering.
//
// Events at equal timestamps are dispatched in scheduling order (FIFO via a
// monotonically increasing sequence number). Without the tie-break, heap
// order for equal keys would be unspecified and runs would not reproduce.
//
// Actions live in a slab of small-buffer-optimized callback slots recycled
// through a freelist, so steady-state schedule/cancel/pop never allocate
// (the old design kept an unordered_map<seq, std::function> beside the heap
// and paid a node plus a closure allocation per event). The heap holds
// (time, seq, slot) triples; a handle remembers both its slot and its seq,
// and since seqs are never reused a recycled slot simply fails the seq match
// — cancel keeps its exact semantics: it returns true iff the event was
// still pending, and a cancelled heap entry is skipped lazily at pop time.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.h"
#include "util/small_fn.h"

namespace hlsrg {

// Handle to a scheduled event; lets callers cancel timers (e.g., an ACK
// arriving cancels the pending query-timeout event).
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  EventHandle(std::uint64_t seq, std::uint32_t slot)
      : seq_(seq), slot_(slot) {}
  std::uint64_t seq_ = 0;
  std::uint32_t slot_ = 0;
};

class EventQueue {
 public:
  // Sized so a Slot (seq + callback) spans two cache lines; captures beyond
  // this spill to the heap (see util/small_fn.h).
  using Action = SmallFn<104>;

  // Schedules `action` at absolute time `when`. `when` must not be earlier
  // than the current simulation time.
  EventHandle schedule_at(SimTime when, Action action);

  // Cancels a previously scheduled event. Returns true iff the event was
  // still pending; cancelling a fired or already-cancelled event is a no-op.
  bool cancel(EventHandle handle);

  // Pops and runs the earliest pending event. Returns false if none remain.
  bool run_one();

  // Runs events until none remain at or before `until` (events exactly at
  // `until` are run), then advances the clock to `until`. Returns the number
  // of events dispatched.
  std::size_t run_until(SimTime until);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // --- engine statistics (bench reports) -----------------------------------
  // Events dispatched (run, not cancelled) since construction.
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return events_dispatched_;
  }
  // Events scheduled since construction (includes later-cancelled ones).
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return next_seq_ - 1;
  }
  // Events cancelled before firing. Together with the other counters this
  // closes the queue's conservation law, which the conservation auditor
  // checks: scheduled == dispatched + cancelled + pending.
  [[nodiscard]] std::uint64_t events_cancelled() const {
    return events_cancelled_;
  }
  // High-water mark of pending (uncancelled) events.
  [[nodiscard]] std::size_t peak_depth() const { return peak_depth_; }

  // Time of the earliest pending event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  // One slab cell: `seq` identifies the event currently occupying the cell
  // (0 = free) and disambiguates stale heap entries and handles after reuse.
  struct Slot {
    std::uint64_t seq = 0;
    Action action;
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  // Pops heap entries whose slots were cancelled (lazy deletion).
  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace hlsrg
