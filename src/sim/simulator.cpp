#include "sim/simulator.h"

namespace hlsrg {

std::size_t Simulator::run_until(SimTime until) {
  if (profiler_ == nullptr) return queue_.run_until(until);

  // Profiled dispatch: same order and same counters as EventQueue::run_until
  // (next_time() re-checked every iteration picks up events scheduled by the
  // one just dispatched), with a ProfileScope around each event so in-event
  // scopes (radio_broadcast, wired_send, …) nest under "dispatch".
  ProfileScope loop(profiler_, "event_loop");
  std::size_t dispatched = 0;
  while (queue_.next_time() <= until) {
    ProfileScope scope(profiler_, "dispatch");
    if (!queue_.run_one()) break;
    ++dispatched;
  }
  // No events remain at or before `until`; this only advances the clock,
  // exactly like the tail of EventQueue::run_until.
  queue_.run_until(until);
  return dispatched;
}

}  // namespace hlsrg
