// Simulator is header-only today; this TU anchors the library target and
// keeps a place for future out-of-line definitions.
#include "sim/simulator.h"
