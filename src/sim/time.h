// Simulation time as integer microseconds.
//
// Floating-point clocks accumulate representation error and make event order
// depend on summation order, which destroys run-to-run reproducibility. An
// int64 microsecond tick is exact, compares exactly, and covers ~292k years.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace hlsrg {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime from_us(std::int64_t us) {
    return SimTime{us};
  }
  [[nodiscard]] static constexpr SimTime from_ms(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e3)};
  }
  [[nodiscard]] static constexpr SimTime from_sec(double sec) {
    return SimTime{static_cast<std::int64_t>(sec * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime from_min(double min) {
    return from_sec(min * 60.0);
  }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{INT64_MAX};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) * 1e-3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) * 1e-6; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us_ + b.us_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us_ - b.us_};
  }
  constexpr SimTime& operator+=(SimTime b) { us_ += b.us_; return *this; }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.sec() << "s";
}

}  // namespace hlsrg
