#include "sim/counters.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hlsrg {

void LatencyStat::add(SimTime sample) {
  const std::int64_t us = sample.us();
  if (count_ == 0) {
    min_us_ = max_us_ = us;
  } else {
    min_us_ = std::min(min_us_, us);
    max_us_ = std::max(max_us_, us);
  }
  sum_us_ += us;
  ++count_;
  samples_us_.push_back(us);
  sorted_ = false;
}

double LatencyStat::percentile_ms(double q) const {
  if (samples_us_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_us_.begin(), samples_us_.end());
    sorted_ = true;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank: ceil(q*n), 1-based.
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(q * static_cast<double>(samples_us_.size()))));
  return static_cast<double>(samples_us_[rank - 1]) * 1e-3;
}

double LatencyStat::mean_ms() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_us_) /
                           static_cast<double>(count_) * 1e-3;
}

double LatencyStat::min_ms() const {
  return count_ == 0 ? 0.0 : static_cast<double>(min_us_) * 1e-3;
}

double LatencyStat::max_ms() const {
  return count_ == 0 ? 0.0 : static_cast<double>(max_us_) * 1e-3;
}

void LatencyStat::merge(const LatencyStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_us_ = std::min(min_us_, other.min_us_);
  max_us_ = std::max(max_us_, other.max_us_);
  sum_us_ += other.sum_us_;
  count_ += other.count_;
  samples_us_.insert(samples_us_.end(), other.samples_us_.begin(),
                     other.samples_us_.end());
  sorted_ = false;
}

void EngineStats::merge(const EngineStats& other) {
  events_processed += other.events_processed;
  events_scheduled += other.events_scheduled;
  peak_queue_depth = std::max(peak_queue_depth, other.peak_queue_depth);
  broadcasts += other.broadcasts;
  peak_rss_bytes = std::max(peak_rss_bytes, other.peak_rss_bytes);
  // Replicas each hold a full copy of the world; the max is the footprint a
  // single replica needs, which is what the memory gate compares.
  table_bytes = std::max(table_bytes, other.table_bytes);
  trace_events_dropped += other.trace_events_dropped;
  trace_spans_dropped += other.trace_spans_dropped;
  peak_outstanding_queries =
      std::max(peak_outstanding_queries, other.peak_outstanding_queries);
  sim_time_sec += other.sim_time_sec;
  wall_clock_sec += other.wall_clock_sec;
}

void RunMetrics::merge(const RunMetrics& other) {
  update_packets_originated += other.update_packets_originated;
  update_transmissions += other.update_transmissions;
  aggregation_packets += other.aggregation_packets;
  aggregation_transmissions += other.aggregation_transmissions;
  queries_issued += other.queries_issued;
  queries_succeeded += other.queries_succeeded;
  queries_failed += other.queries_failed;
  query_packets_originated += other.query_packets_originated;
  query_transmissions += other.query_transmissions;
  server_lookup_hits += other.server_lookup_hits;
  server_lookup_misses += other.server_lookup_misses;
  rsu_lookup_hits += other.rsu_lookup_hits;
  rsu_lookup_misses += other.rsu_lookup_misses;
  notifications_sent += other.notifications_sent;
  acks_sent += other.acks_sent;
  radio_broadcasts += other.radio_broadcasts;
  radio_unicasts += other.radio_unicasts;
  radio_drops += other.radio_drops;
  wired_messages += other.wired_messages;
  gpsr_failures += other.gpsr_failures;
  wired_drops += other.wired_drops;
  rsu_suppressed += other.rsu_suppressed;
  query_retries += other.query_retries;
  query_failovers += other.query_failovers;
  queries_stranded += other.queries_stranded;
  fault_queries_issued += other.fault_queries_issued;
  fault_queries_ok += other.fault_queries_ok;
  recovery_time_us += other.recovery_time_us;
  recovery_windows += other.recovery_windows;
  // Replicas of one sweep share a plan; keep the (common) nonzero digest.
  fault_plan_digest = std::max(fault_plan_digest, other.fault_plan_digest);
  queries_offered += other.queries_offered;
  queries_shed += other.queries_shed;
  retries_shed += other.retries_shed;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_invalidations += other.cache_invalidations;
  batched_queries += other.batched_queries;
  batch_flushes += other.batch_flushes;
  // Replicas run in separate worlds; the fleet-wide peak is the worst one.
  peak_outstanding = std::max(peak_outstanding, other.peak_outstanding);
  role_departures += other.role_departures;
  role_elections += other.role_elections;
  role_vacancies += other.role_vacancies;
  role_fills += other.role_fills;
  handoffs_sent += other.handoffs_sent;
  handoffs_delivered += other.handoffs_delivered;
  handoffs_lost += other.handoffs_lost;
  handoff_records_sent += other.handoff_records_sent;
  handoff_records_delivered += other.handoff_records_delivered;
  handoff_records_expired += other.handoff_records_expired;
  handoff_records_in_flight += other.handoff_records_in_flight;
  records_at_departure += other.records_at_departure;
  // Like fault_plan_digest: a common marker across replicas of one sweep.
  churn_active = std::max(churn_active, other.churn_active);
  channel.merge(other.channel);
  query_latency.merge(other.query_latency);
}

std::string RunMetrics::summary() const {
  std::ostringstream os;
  os << "updates=" << update_packets_originated
     << " (tx=" << update_transmissions << ")"
     << " aggregation=" << aggregation_packets
     << " queries=" << queries_issued << " ok=" << queries_succeeded
     << " fail=" << queries_failed << " query_tx=" << query_transmissions
     << " wired=" << wired_messages
     << " mean_query_ms=" << query_latency.mean_ms();
  return os.str();
}

}  // namespace hlsrg
