// Simulator façade: event queue + per-subsystem RNG streams + metrics.
//
// One Simulator instance is one independent world; replicas in a benchmark
// sweep each own a Simulator and run on separate threads with zero shared
// mutable state.
#pragma once

#include <cstdint>

#include "obs/profiler.h"
#include "obs/region_telemetry.h"
#include "sim/counters.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace hlsrg {

class Simulator {
 public:
  // `seed` determines every stochastic choice in the run. The six streams
  // are split from it so subsystems cannot perturb each other's draws:
  // protocol changes leave mobility trajectories identical, fault injection
  // (src/fault) draws from its own stream so a scripted fault plan cannot
  // shift radio/mobility/workload draw order, and the open-loop generator
  // (src/service) is decoupled from the closed-loop workload stream so
  // enabling it never re-times the paper-scenario queries.
  explicit Simulator(std::uint64_t seed)
      : root_rng_(seed),
        mobility_rng_(root_rng_.split(RngStreamId::kMobility)),
        radio_rng_(root_rng_.split(RngStreamId::kRadio)),
        protocol_rng_(root_rng_.split(RngStreamId::kProtocol)),
        workload_rng_(root_rng_.split(RngStreamId::kWorkload)),
        fault_rng_(root_rng_.split(RngStreamId::kFault)),
        open_loop_rng_(root_rng_.split(RngStreamId::kOpenLoop)) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return queue_.now(); }

  EventHandle schedule_at(SimTime when, EventQueue::Action action) {
    return queue_.schedule_at(when, std::move(action));
  }
  EventHandle schedule_after(SimTime delay, EventQueue::Action action) {
    return queue_.schedule_at(queue_.now() + delay, std::move(action));
  }
  bool cancel(EventHandle h) { return queue_.cancel(h); }

  // Runs the queue up to `until`. With a profiler attached the dispatch loop
  // runs here (one "dispatch" scope per event under "event_loop") instead of
  // inside EventQueue; order, counters, and the final clock advance are
  // identical either way, so the profiled and unprofiled paths produce the
  // same digests.
  std::size_t run_until(SimTime until);

  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }
  [[nodiscard]] Rng& mobility_rng() { return mobility_rng_; }
  [[nodiscard]] Rng& radio_rng() { return radio_rng_; }
  [[nodiscard]] Rng& protocol_rng() { return protocol_rng_; }
  [[nodiscard]] Rng& workload_rng() { return workload_rng_; }
  [[nodiscard]] Rng& fault_rng() { return fault_rng_; }
  [[nodiscard]] Rng& open_loop_rng() { return open_loop_rng_; }

  [[nodiscard]] RunMetrics& metrics() { return metrics_; }
  [[nodiscard]] const RunMetrics& metrics() const { return metrics_; }

  // Snapshot of the engine counters (wall_clock_sec and peak_rss_bytes are
  // the harness's to fill; the simulator has no business probing the host).
  [[nodiscard]] EngineStats engine_stats() const {
    EngineStats s;
    s.events_processed = queue_.events_dispatched();
    s.events_scheduled = queue_.events_scheduled();
    s.peak_queue_depth = queue_.peak_depth();
    s.broadcasts = metrics_.radio_broadcasts;
    s.peak_outstanding_queries = metrics_.peak_outstanding;
    s.sim_time_sec = queue_.now().sec();
    if (trace_ != nullptr) {
      s.trace_events_dropped = trace_->dropped_events();
      s.trace_spans_dropped = trace_->dropped_spans();
    }
    return s;
  }

  // Optional event trace: null (default) means tracing is off. The log must
  // outlive the simulation.
  void set_trace(TraceLog* trace) { trace_ = trace; }
  [[nodiscard]] TraceLog* trace() { return trace_; }

  // Records an event when tracing is enabled; otherwise a no-op.
  void trace_event(TraceEvent event) {
    if (trace_ != nullptr) {
      event.time = now();
      trace_->record(event);
    }
  }

  // ---- span context ------------------------------------------------------
  // The active span is the parent for spans begun synchronously under it;
  // it propagates across event-queue hops by value (captured in transport
  // closures and re-established with SpanScope around delivery). Everything
  // here degrades to a null check + integer copies when tracing is off.

  [[nodiscard]] SpanId active_span() const { return active_span_; }
  void set_active_span(SpanId id) { active_span_ = id; }

  // Opens a span at now() parented under the active span. kNoSpan when
  // tracing is detached (or the span cap was hit) — safe to thread through
  // closures and pass back to end_span either way.
  SpanId begin_span(SpanKind kind, std::uint32_t subject, std::uint32_t other,
                    Vec2 pos, std::uint32_t query_id = kNoQuery,
                    int level = -1, const char* detail = nullptr) {
    if (trace_ == nullptr) return kNoSpan;
    Span s;
    s.parent = active_span_;
    s.kind = kind;
    s.subject = subject;
    s.other = other;
    s.begin_pos = pos;
    s.end_pos = pos;
    s.query_id = query_id;
    s.level = static_cast<std::int8_t>(level);
    s.detail = detail;
    return trace_->begin_span(s, now());
  }

  // Closes a span at now(); idempotent, no-op for kNoSpan / when detached.
  void end_span(SpanId id, SpanStatus status, Vec2 pos = Vec2{},
                std::int32_t value = -1) {
    if (trace_ != nullptr) trace_->end_span(id, now(), status, pos, value);
  }

  // Zero-duration span (table lookups, update broadcasts).
  void instant_span(SpanKind kind, SpanStatus status, std::uint32_t subject,
                    std::uint32_t other, Vec2 pos,
                    std::uint32_t query_id = kNoQuery, int level = -1,
                    const char* detail = nullptr, std::int32_t value = -1) {
    if (trace_ == nullptr) return;
    const SpanId id = begin_span(kind, subject, other, pos, query_id, level,
                                 detail);
    trace_->end_span(id, now(), status, pos, value);
  }

  // Always-on named metrics (counters/gauges/histograms/series); feeding it
  // draws no randomness, so it never perturbs determinism digests.
  [[nodiscard]] MetricsRegistry& observability() { return observability_; }
  [[nodiscard]] const MetricsRegistry& observability() const {
    return observability_;
  }

  // Per-L3-region telemetry; null (default) when the world has no region
  // geometry (unit tests driving the simulator bare). Counter increments
  // only — digest-neutral like observability().
  void set_regions(RegionTelemetry* regions) { regions_ = regions; }
  [[nodiscard]] RegionTelemetry* regions() { return regions_; }

  // One-line region-counter bumps for protocol sites; no-ops when no
  // telemetry is attached. `pos` decides the region (update origination →
  // the vehicle's region, lookups/cache answers → the serving node's).
  void count_region_update(Vec2 pos) {
    if (regions_ != nullptr) ++regions_->at(regions_->region_of(pos)).updates;
  }
  void count_region_served(Vec2 pos) {
    if (regions_ != nullptr) {
      ++regions_->at(regions_->region_of(pos)).queries_served;
    }
  }
  void count_region_cache_hit(Vec2 pos) {
    if (regions_ != nullptr) {
      ++regions_->at(regions_->region_of(pos)).cache_hits;
    }
  }

  // Wall-clock phase profiler; null (default) means profiling is off and
  // every ProfileScope built from this pointer is a no-op.
  void set_profiler(PhaseProfiler* profiler) { profiler_ = profiler; }
  // Const on purpose: profiling timers are not simulation state, so even
  // const observers (auditors) may open scopes.
  [[nodiscard]] PhaseProfiler* profiler() const { return profiler_; }

 private:
  EventQueue queue_;
  TraceLog* trace_ = nullptr;
  SpanId active_span_ = kNoSpan;
  MetricsRegistry observability_;
  RegionTelemetry* regions_ = nullptr;
  PhaseProfiler* profiler_ = nullptr;
  Rng root_rng_;
  Rng mobility_rng_;
  Rng radio_rng_;
  Rng protocol_rng_;
  Rng workload_rng_;
  Rng fault_rng_;
  Rng open_loop_rng_;
  RunMetrics metrics_;
};

// RAII span-context guard: makes `span` the active span (the parent for
// spans begun while in scope) and restores the previous context on exit.
// Used both to nest synchronous work under a new span and to re-anchor
// async continuations (timer callbacks, sink deliveries) to the span they
// logically belong to. Costs two integer copies when tracing is detached.
class SpanScope {
 public:
  SpanScope(Simulator& sim, SpanId span)
      : sim_(sim), saved_(sim.active_span()) {
    sim_.set_active_span(span);
  }
  ~SpanScope() { sim_.set_active_span(saved_); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Simulator& sim_;
  SpanId saved_;
};

}  // namespace hlsrg
