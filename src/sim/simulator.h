// Simulator façade: event queue + per-subsystem RNG streams + metrics.
//
// One Simulator instance is one independent world; replicas in a benchmark
// sweep each own a Simulator and run on separate threads with zero shared
// mutable state.
#pragma once

#include <cstdint>

#include "sim/counters.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace hlsrg {

class Simulator {
 public:
  // `seed` determines every stochastic choice in the run. The four streams
  // are split from it so subsystems cannot perturb each other's draws:
  // protocol changes leave mobility trajectories identical.
  explicit Simulator(std::uint64_t seed)
      : root_rng_(seed),
        mobility_rng_(root_rng_.split(1)),
        radio_rng_(root_rng_.split(2)),
        protocol_rng_(root_rng_.split(3)),
        workload_rng_(root_rng_.split(4)) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return queue_.now(); }

  EventHandle schedule_at(SimTime when, EventQueue::Action action) {
    return queue_.schedule_at(when, std::move(action));
  }
  EventHandle schedule_after(SimTime delay, EventQueue::Action action) {
    return queue_.schedule_at(queue_.now() + delay, std::move(action));
  }
  bool cancel(EventHandle h) { return queue_.cancel(h); }

  std::size_t run_until(SimTime until) { return queue_.run_until(until); }

  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }
  [[nodiscard]] Rng& mobility_rng() { return mobility_rng_; }
  [[nodiscard]] Rng& radio_rng() { return radio_rng_; }
  [[nodiscard]] Rng& protocol_rng() { return protocol_rng_; }
  [[nodiscard]] Rng& workload_rng() { return workload_rng_; }

  [[nodiscard]] RunMetrics& metrics() { return metrics_; }
  [[nodiscard]] const RunMetrics& metrics() const { return metrics_; }

  // Snapshot of the engine counters (wall_clock_sec is the harness's to
  // fill; the simulator has no business timing the host).
  [[nodiscard]] EngineStats engine_stats() const {
    EngineStats s;
    s.events_processed = queue_.events_dispatched();
    s.events_scheduled = queue_.events_scheduled();
    s.peak_queue_depth = queue_.peak_depth();
    s.sim_time_sec = queue_.now().sec();
    return s;
  }

  // Optional event trace: null (default) means tracing is off. The log must
  // outlive the simulation.
  void set_trace(TraceLog* trace) { trace_ = trace; }
  [[nodiscard]] TraceLog* trace() { return trace_; }

  // Records an event when tracing is enabled; otherwise a no-op.
  void trace_event(TraceEvent event) {
    if (trace_ != nullptr) {
      event.time = now();
      trace_->record(event);
    }
  }

 private:
  EventQueue queue_;
  TraceLog* trace_ = nullptr;
  Rng root_rng_;
  Rng mobility_rng_;
  Rng radio_rng_;
  Rng protocol_rng_;
  Rng workload_rng_;
  RunMetrics metrics_;
};

}  // namespace hlsrg
