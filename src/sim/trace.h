// Optional per-run event trace.
//
// When a TraceLog is attached to the Simulator, protocol code records
// semantic events (updates sent, queries issued/settled, notifications,
// ACKs, aggregation pushes) with timestamps and positions. The trace costs
// nothing when detached (a null check) and gives examples/tests a way to
// assert on protocol *behaviour* rather than just aggregate counters, plus a
// CSV export for offline analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec2.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

enum class TraceEventKind : std::uint8_t {
  kUpdateSent,      // subject = updating vehicle
  kQueryIssued,     // subject = source, other = target
  kQuerySucceeded,  // subject = source, other = target
  kQueryFailed,     // subject = source, other = target
  kNotification,    // subject = target being searched
  kAckSent,         // subject = responder
  kTableHandoff,    // subject = leaving center vehicle
  kTablePush,       // subject = pushing vehicle (or RSU summary)
};

[[nodiscard]] const char* trace_event_name(TraceEventKind kind);

struct TraceEvent {
  SimTime time;
  TraceEventKind kind;
  VehicleId subject;
  VehicleId other;        // second participant where applicable
  Vec2 pos;               // where it happened (when known)
  std::uint32_t query_id = 0;
};

class TraceLog {
 public:
  void record(TraceEvent event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  // Number of events of one kind.
  [[nodiscard]] std::size_t count(TraceEventKind kind) const;

  // Events touching one vehicle (as subject or other), in time order.
  [[nodiscard]] std::vector<TraceEvent> for_vehicle(VehicleId v) const;

  // Events for one query id, in time order.
  [[nodiscard]] std::vector<TraceEvent> for_query(std::uint32_t query_id) const;

  // CSV export: time_s,kind,subject,other,x,y,query_id
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hlsrg
