#include "sim/trace.h"

#include <sstream>

namespace hlsrg {

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kUpdateSent:
      return "update_sent";
    case TraceEventKind::kQueryIssued:
      return "query_issued";
    case TraceEventKind::kQuerySucceeded:
      return "query_succeeded";
    case TraceEventKind::kQueryFailed:
      return "query_failed";
    case TraceEventKind::kNotification:
      return "notification";
    case TraceEventKind::kAckSent:
      return "ack_sent";
    case TraceEventKind::kTableHandoff:
      return "table_handoff";
    case TraceEventKind::kTablePush:
      return "table_push";
  }
  return "unknown";
}

std::size_t TraceLog::count(TraceEventKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<TraceEvent> TraceLog::for_vehicle(VehicleId v) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.subject == v || e.other == v) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::for_query(std::uint32_t query_id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    // query_id 0 is a valid id, so filter by kinds that carry one.
    switch (e.kind) {
      case TraceEventKind::kQueryIssued:
      case TraceEventKind::kQuerySucceeded:
      case TraceEventKind::kQueryFailed:
      case TraceEventKind::kNotification:
      case TraceEventKind::kAckSent:
        if (e.query_id == query_id) out.push_back(e);
        break;
      default:
        break;
    }
  }
  return out;
}

std::string TraceLog::to_csv() const {
  std::ostringstream os;
  os << "time_s,kind,subject,other,x,y,query_id\n";
  for (const TraceEvent& e : events_) {
    os << e.time.sec() << ',' << trace_event_name(e.kind) << ',';
    if (e.subject.valid()) os << e.subject.value();
    os << ',';
    if (e.other.valid()) os << e.other.value();
    os << ',' << e.pos.x << ',' << e.pos.y << ',' << e.query_id << '\n';
  }
  return os.str();
}

}  // namespace hlsrg
