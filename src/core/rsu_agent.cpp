#include "core/rsu_agent.h"

#include "core/hlsrg_service.h"
#include "obs/region_telemetry.h"
#include "util/check.h"

namespace hlsrg {

HlsrgRsuAgent::HlsrgRsuAgent(HlsrgService& service, RsuId rsu, GridLevel level,
                             GridCoord coord, NodeId node)
    : svc_(&service), rsu_(rsu), level_(level), coord_(coord), node_(node) {
  HLSRG_CHECK(level == GridLevel::kL2 || level == GridLevel::kL3);
}

void HlsrgRsuAgent::start_timers() {
  if (level_ == GridLevel::kL2) {
    svc_->sim().schedule_after(svc_->cfg().l2_push_period,
                               [this] { push_summary_to_l3(); });
  } else {
    svc_->sim().schedule_after(svc_->cfg().l3_gossip_period,
                               [this] { gossip_to_neighbors(); });
  }
}

void HlsrgRsuAgent::configure_tier(const ServiceTierConfig& cfg) {
  if (cfg.enabled && cfg.caching) {
    cache_.configure(cfg.cache_ttl, cfg.cache_capacity);
  } else {
    cache_.configure(cfg.cache_ttl, 0);  // capacity 0 = never fills
  }
}

bool HlsrgRsuAgent::cache_fresh(VehicleId dst) {
  return cache_.probe(dst, svc_->sim().now()) != nullptr;
}

void HlsrgRsuAgent::set_up(bool up) {
  if (!up && up_) {
    // Crash mid-window: every pending batch dies with the RSU. Cancel the
    // window timers and fail their spans; the held queries' sources recover
    // through the normal ACK-timeout retry path — the requests were already
    // channel-accounted when they arrived here, so nothing leaks in the
    // conservation ledger.
    for (QueryBatcher::Batch& b : batcher_.drain_all()) {
      svc_->sim().cancel(b.timer);
      svc_->sim().end_span(b.span, SpanStatus::kFailed,
                           svc_->registry().position(node_),
                           static_cast<std::int32_t>(b.queries.size()));
    }
    cache_.clear();
  }
  if (up && !up_) {
    // Reboot loses everything: tables rebuild from child re-registration
    // (update broadcasts, table pushes, summaries, gossip), and the query
    // dedup set resets so re-issued requests get served, not swallowed.
    // release() rather than clear(): the rebuilt tables re-grow to their
    // working size, and a unit that stays down returns its capacity.
    l2_table_.release();
    l3_table_.release();
    full_table_.release();
    seen_queries_.clear();
    cache_.clear();
    busy_until_ = SimTime{};
  }
  up_ = up;
}

void HlsrgRsuAgent::on_receive(const Packet& packet, NodeId /*from*/) {
  ProfileScope profile(svc_->sim().profiler(), "rsu_handle");
  if (!up_) {
    // Crashed: the packet reached the radio/wire but nobody is listening.
    // Channel-level accounting already settled at the sender, so this is a
    // sink-side suppression, not a ledger event.
    svc_->metrics().rsu_suppressed++;
    svc_->sim().observability().add("fault.rsu_suppressed");
    if (packet.kind == PacketKind::kRoleHandoff) {
      // The handoff's records were still in flight; the successor crashed
      // (or was taken down) before they landed. Settle them as expired so
      // the churn conservation law closes instead of leaking the gauge.
      const auto& h = payload_as<RoleHandoffPayload>(packet);
      RunMetrics& m = svc_->metrics();
      ++m.handoffs_lost;
      m.handoff_records_in_flight -= h.record_count();
      m.handoff_records_expired += h.record_count();
    }
    return;
  }
  switch (packet.kind) {
    case PacketKind::kLocationUpdate: {
      // RSUs are always-on receivers at grid corners: any update broadcast
      // within radio range lands here too, feeding the same tables as the
      // grid-center collection path ("data aggregation" role, paper 2.1.2).
      const auto& u = payload_as<UpdatePayload>(packet);
      full_table_.record(u.record);
      invalidate_cache(u.record.vehicle, u.record.time);
      if (level_ == GridLevel::kL2) {
        l2_table_.record(
            L2Summary{u.record.vehicle, u.record.time, u.record.l1});
      } else {
        const GridCoord l2 = GridHierarchy::parent(u.record.l1, GridLevel::kL2);
        l3_table_.record(L3Summary{u.record.vehicle, u.record.time, l2, coord_});
      }
      return;
    }
    case PacketKind::kTablePush: {
      // Grid-center table arriving at this L2 RSU: thin to the L2 schema.
      if (level_ != GridLevel::kL2) return;
      const auto& t = payload_as<TablePayload>(packet);
      for (const L1Record& r : t.records) {
        l2_table_.record(L2Summary{r.vehicle, r.time, r.l1});
        invalidate_cache(r.vehicle, r.time);
      }
      full_table_.merge(t.records);
      return;
    }
    case PacketKind::kL2Summary: {
      if (level_ != GridLevel::kL3) return;
      const auto& s = payload_as<L2SummaryPayload>(packet);
      for (const L2Summary& r : s.records) {
        l3_table_.record(L3Summary{r.vehicle, r.time, s.l2, coord_});
      }
      return;
    }
    case PacketKind::kL3Gossip: {
      if (level_ != GridLevel::kL3) return;
      const auto& g = payload_as<L3GossipPayload>(packet);
      l3_table_.merge(g.records);
      return;
    }
    case PacketKind::kQueryRequest: {
      const auto& q = payload_as<QueryPayload>(packet);
      if (!seen_queries_.insert(q.dedup_key()).second) return;
      schedule_lookup([this, q] { dispatch_query(q); });
      return;
    }
    case PacketKind::kQueryBatch: {
      // One wired lookup carrying a whole batching window: unbatch and run
      // each request through the exact dedup + handling path a lone
      // kQueryRequest takes. The whole batch occupies ONE lookup slot —
      // that is the capacity the batching window buys.
      const auto& batch = payload_as<BatchedQueryPayload>(packet);
      std::vector<QueryPayload> fresh;
      fresh.reserve(batch.queries.size());
      for (const QueryPayload& q : batch.queries) {
        if (seen_queries_.insert(q.dedup_key()).second) fresh.push_back(q);
      }
      if (fresh.empty()) return;
      schedule_lookup([this, fresh = std::move(fresh)] {
        for (const QueryPayload& q : fresh) dispatch_query(q);
      });
      return;
    }
    case PacketKind::kCacheFill: {
      const auto& fill = payload_as<CacheFillPayload>(packet);
      cache_.fill(fill.record, svc_->sim().now());
      return;
    }
    case PacketKind::kRoleHandoff: {
      // A departing role host's tables landing on their new home: the
      // elected successor (radio) or the absorbing parent/sibling on
      // degradation (wired). Merge level-appropriately; every carried
      // record counts as delivered — thinning changes schema, not custody.
      const auto& h = payload_as<RoleHandoffPayload>(packet);
      if (level_ == GridLevel::kL2) {
        full_table_.merge(h.full_records);
        l2_table_.merge(h.l2_records);
        for (const L1Record& r : h.full_records) {
          l2_table_.record(L2Summary{r.vehicle, r.time, r.l1});
        }
        for (const L2Summary& r : h.l2_records) {
          invalidate_cache(r.vehicle, r.time);
        }
      } else {
        // L3 receiver: thin the L2-schema rows to L3 summaries. The handed-
        // off role's grid cell is the sender coordinate; this RSU now owns
        // the detail pointer.
        const GridCoord sender_l2 =
            h.level == GridLevel::kL2
                ? svc_->rsus()->rsu(h.role).coord
                : GridCoord{};
        for (const L2Summary& r : h.l2_records) {
          l3_table_.record(L3Summary{r.vehicle, r.time, sender_l2, coord_});
        }
        for (const L1Record& r : h.full_records) {
          const GridCoord l2 = GridHierarchy::parent(r.l1, GridLevel::kL2);
          l3_table_.record(L3Summary{r.vehicle, r.time, l2, coord_});
          full_table_.record(r);
        }
        l3_table_.merge(h.l3_records);
      }
      RunMetrics& m = svc_->metrics();
      ++m.handoffs_delivered;
      m.handoff_records_in_flight -= h.record_count();
      m.handoff_records_delivered += h.record_count();
      if (RegionTelemetry* regions = svc_->sim().regions()) {
        if (regions->configured()) {
          const Vec2 here = svc_->registry().position(node_);
          regions->at(regions->region_of(here)).handoff_records +=
              h.record_count();
        }
      }
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Service tier: hot-destination cache + batching window
// ---------------------------------------------------------------------------

void HlsrgRsuAgent::dispatch_query(const QueryPayload& query) {
  if (level_ == GridLevel::kL2) {
    handle_query_l2(query);
  } else {
    handle_query_l3(query);
  }
}

void HlsrgRsuAgent::schedule_lookup(std::function<void()> lookup) {
  const SimTime cost =
      svc_->tier().enabled ? svc_->tier().rsu_lookup_time : SimTime{};
  if (!(cost > SimTime{})) {
    lookup();
    return;
  }
  const SimTime now = svc_->sim().now();
  const SimTime start = busy_until_ > now ? busy_until_ : now;
  busy_until_ = start + cost;
  svc_->sim().schedule_at(busy_until_, [this, lookup = std::move(lookup)] {
    if (!up_) {
      // Crashed while the lookup waited in the work queue: the request dies
      // here; the source's ACK-timeout retry covers it.
      svc_->metrics().rsu_suppressed++;
      svc_->sim().observability().add("fault.rsu_suppressed");
      return;
    }
    lookup();
  });
}

void HlsrgRsuAgent::invalidate_cache(VehicleId vehicle, SimTime fresh_time) {
  if (cache_.invalidate_if_stale(vehicle, fresh_time)) {
    svc_->metrics().cache_invalidations++;
    svc_->sim().observability().add("service.cache_invalidations");
  }
}

void HlsrgRsuAgent::send_cache_fill(const L1Record& record,
                                    const QueryPayload& query) {
  if (!svc_->tier().enabled || !svc_->tier().caching) return;
  if (!query.via_rsu.valid() || query.via_rsu == node_) return;
  auto fill = std::make_shared<CacheFillPayload>();
  fill->record = record;
  svc_->wired().send(node_, query.via_rsu,
                     svc_->make_packet(PacketKind::kCacheFill, node_, fill),
                     &svc_->metrics().query_transmissions);
}

void HlsrgRsuAgent::send_query_wired(const QueryPayload& query, NodeId dest) {
  if (svc_->tier().enabled && svc_->tier().batching) {
    enqueue_for_batch(query, dest);
    return;
  }
  auto q = std::make_shared<QueryPayload>(query);
  const bool sent = svc_->wired().send(
      node_, dest, svc_->make_packet(PacketKind::kQueryRequest, node_, q),
      &svc_->metrics().query_transmissions);
  if (!sent) wired_query_failed(query, dest);
}

void HlsrgRsuAgent::enqueue_for_batch(const QueryPayload& query, NodeId dest) {
  const QueryBatcher::Enqueue action =
      batcher_.add(dest, query.target, query, svc_->tier().max_batch);
  QueryBatcher::Batch* b = batcher_.find(dest, query.target);
  HLSRG_CHECK(b != nullptr);
  switch (action) {
    case QueryBatcher::Enqueue::kArmWindow: {
      b->span = svc_->sim().begin_span(
          SpanKind::kBatch, node_.value(), query.target.value(),
          svc_->registry().position(node_), kNoQuery,
          static_cast<int>(level_), "window");
      const VehicleId target = query.target;
      b->timer = svc_->sim().schedule_after(
          svc_->tier().batch_window,
          [this, dest, target] { flush_batch(dest, target); });
      return;
    }
    case QueryBatcher::Enqueue::kHeld:
      return;
    case QueryBatcher::Enqueue::kFlushNow:
      svc_->sim().cancel(b->timer);
      flush_batch(dest, query.target);
      return;
  }
}

void HlsrgRsuAgent::flush_batch(NodeId dest, VehicleId target) {
  ProfileScope profile(svc_->sim().profiler(), "batch_flush");
  QueryBatcher::Batch batch = batcher_.take(dest, target);
  if (batch.queries.empty()) return;  // drained by a crash meanwhile
  auto payload = std::make_shared<BatchedQueryPayload>();
  payload->target = target;
  payload->queries = std::move(batch.queries);
  svc_->metrics().batch_flushes++;
  svc_->metrics().batched_queries += payload->queries.size();
  svc_->sim().observability().add("service.batch_flushes");
  svc_->sim().end_span(batch.span, SpanStatus::kOk,
                       svc_->registry().position(node_),
                       static_cast<std::int32_t>(payload->queries.size()));
  const bool sent = svc_->wired().send(
      node_, dest, svc_->make_packet(PacketKind::kQueryBatch, node_, payload),
      &svc_->metrics().query_transmissions);
  if (!sent) {
    // The whole window failed in one shot; escalate each query on the same
    // failover route an unbatched send would have taken.
    for (const QueryPayload& q : payload->queries) wired_query_failed(q, dest);
  }
}

void HlsrgRsuAgent::wired_query_failed(const QueryPayload& query, NodeId dest) {
  if (!svc_->cfg().enable_failover) return;
  if (level_ == GridLevel::kL2) {
    // Home L3 unreachable (crashed, or every wired path cut): escalate over
    // the radio to the nearest L3 RSU still up.
    escalate_to_l3_by_radio(query);
    return;
  }
  if (svc_->wired().node_up(dest)) {
    // Wired path to the owner L2 is cut but the RSU itself is alive: push
    // the request over the radio instead.
    auto q = std::make_shared<QueryPayload>(query);
    escalate_by_radio(svc_->make_packet(PacketKind::kQueryRequest, node_, q),
                      dest, "l3_to_l2_radio");
  }
}

// ---------------------------------------------------------------------------
// Collection timers
// ---------------------------------------------------------------------------

void HlsrgRsuAgent::push_summary_to_l3() {
  if (!up_) {  // idle while crashed; keep the timer cadence
    svc_->sim().schedule_after(svc_->cfg().l2_push_period,
                               [this] { push_summary_to_l3(); });
    return;
  }
  l2_table_.purge(svc_->sim().now(), svc_->cfg().l2_expiry);
  full_table_.purge(svc_->sim().now(), svc_->cfg().l2_expiry);
  if (!l2_table_.empty()) {
    auto payload = std::make_shared<L2SummaryPayload>();
    payload->l2 = coord_;
    payload->records = l2_table_.unsorted_records();
    const GridCoord parent{coord_.col / 2, coord_.row / 2};
    const NodeId l3 = svc_->rsus()->node_at(parent, GridLevel::kL3);
    svc_->metrics().aggregation_packets++;
    svc_->wired().send(node_, l3,
                       svc_->make_packet(PacketKind::kL2Summary, node_, payload),
                       &svc_->metrics().aggregation_transmissions);
  }
  svc_->sim().schedule_after(svc_->cfg().l2_push_period,
                             [this] { push_summary_to_l3(); });
}

void HlsrgRsuAgent::gossip_to_neighbors() {
  if (!up_) {  // idle while crashed; keep the timer cadence
    svc_->sim().schedule_after(svc_->cfg().l3_gossip_period,
                               [this] { gossip_to_neighbors(); });
    return;
  }
  l3_table_.purge(svc_->sim().now(), svc_->cfg().l3_expiry);
  full_table_.purge(svc_->sim().now(), svc_->cfg().l3_expiry);
  const auto& neighbors = svc_->wired().links_of(node_);
  if (!l3_table_.empty() && !neighbors.empty()) {
    auto payload = std::make_shared<L3GossipPayload>();
    payload->records = l3_table_.unsorted_records();
    const Packet pkt = svc_->make_packet(PacketKind::kL3Gossip, node_, payload);
    for (NodeId n : neighbors) {
      // Only L3 peers gossip; skip child L2 RSUs on the same wire.
      const RsuId peer = svc_->rsus()->rsu_of_node(n);
      if (!peer.valid() ||
          svc_->rsus()->rsu(peer).level != GridLevel::kL3) {
        continue;
      }
      svc_->metrics().aggregation_packets++;
      svc_->wired().send(node_, n, pkt,
                         &svc_->metrics().aggregation_transmissions);
    }
  }
  svc_->sim().schedule_after(svc_->cfg().l3_gossip_period,
                             [this] { gossip_to_neighbors(); });
}

// ---------------------------------------------------------------------------
// Query service (paper 2.3.2, Level-2 and Level-3 cases)
// ---------------------------------------------------------------------------

void HlsrgRsuAgent::forward_down_to_l1(const QueryPayload& query,
                                       GridCoord l1) {
  auto q = std::make_shared<QueryPayload>(query);
  q->from_l3 = false;
  const Vec2 center = svc_->hierarchy().center_pos(l1, GridLevel::kL1);
  svc_->gpsr().send(node_, center, std::nullopt,
                    svc_->make_packet(PacketKind::kQueryRequest, node_, q),
                    &svc_->metrics().query_transmissions,
                    /*deliver=*/{}, /*fail=*/{},
                    /*delivery_radius=*/svc_->cfg().center_radius_m);
}

void HlsrgRsuAgent::handle_query_l2(const QueryPayload& query) {
  l2_table_.purge(svc_->sim().now(), svc_->cfg().l2_expiry);
  full_table_.purge(svc_->sim().now(), svc_->cfg().l2_expiry);
  const Vec2 here = svc_->registry().position(node_);
  if (const L1Record* rec = full_table_.find(query.target)) {
    // Case (1a): the RSU holds the fresh detail itself — "the RSU will ...
    // act as the location server of this request".
    svc_->metrics().rsu_lookup_hits++;
    svc_->sim().count_region_served(here);
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kOk,
                             node_.value(), query.target.value(), here,
                             query.query_id, 2, "full_table");
    cache_.fill(*rec, svc_->sim().now());
    send_cache_fill(*rec, query);
    svc_->send_notification(node_, *rec, query);
    return;
  }
  if (const L2Summary* s = l2_table_.find(query.target)) {
    // Case (1b): known by summary only — down to the L1 grid center that has
    // the detail.
    svc_->metrics().rsu_lookup_hits++;
    svc_->sim().count_region_served(here);
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kOk,
                             node_.value(), query.target.value(), here,
                             query.query_id, 2, "l2_summary");
    forward_down_to_l1(query, s->l1);
    return;
  }
  // Service tier: before climbing the hierarchy, try the hot-destination
  // cache — a fresh remote record here turns the wired walk into a local
  // serve. Local tables stay authoritative (checked above); the cache only
  // shortcuts what would otherwise leave this RSU.
  if (svc_->tier().enabled && svc_->tier().caching) {
    if (const L1Record* rec = cache_.probe(query.target, svc_->sim().now())) {
      svc_->metrics().cache_hits++;
      svc_->sim().count_region_cache_hit(here);
      svc_->sim().observability().add("service.cache_hits");
      svc_->sim().instant_span(SpanKind::kCacheHit, SpanStatus::kOk,
                               node_.value(), query.target.value(), here,
                               query.query_id, 2);
      svc_->send_notification(node_, *rec, query);
      return;
    }
    svc_->metrics().cache_misses++;
  }
  svc_->metrics().rsu_lookup_misses++;
  svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kFailed,
                           node_.value(), query.target.value(), here,
                           query.query_id, 2);
  // Case (2): unknown — up the hierarchy over the wire (through the
  // batching window when the tier enables it). Stamp this RSU as the
  // query's reverse-path cache target if none is set yet.
  QueryPayload q = query;
  if (!q.via_rsu.valid()) q.via_rsu = node_;
  const GridCoord parent{coord_.col / 2, coord_.row / 2};
  const NodeId l3 = svc_->rsus()->node_at(parent, GridLevel::kL3);
  send_query_wired(q, l3);
}

void HlsrgRsuAgent::escalate_to_l3_by_radio(const QueryPayload& query) {
  const Vec2 here = svc_->registry().position(node_);
  NodeId best;
  double best_d = 0.0;
  for (const RsuGrid::Rsu& r : svc_->rsus()->all()) {
    if (r.level != GridLevel::kL3) continue;
    if (!svc_->wired().node_up(r.node)) continue;  // crashed RSUs stay silent
    const double d = distance(here, r.pos);
    if (!best.valid() || d < best_d ||
        (d == best_d && r.node.value() < best.value())) {
      best = r.node;
      best_d = d;
    }
  }
  if (!best.valid()) return;  // every L3 down: the requester's retry covers it
  auto q = std::make_shared<QueryPayload>(query);
  escalate_by_radio(svc_->make_packet(PacketKind::kQueryRequest, node_, q),
                    best, "l2_to_sibling_l3");
}

void HlsrgRsuAgent::escalate_by_radio(const Packet& pkt, NodeId target,
                                      const char* route) {
  svc_->metrics().query_failovers++;
  svc_->sim().observability().add("query.failovers");
  svc_->sim().instant_span(SpanKind::kFailover, SpanStatus::kOk, node_.value(),
                           target.value(), svc_->registry().position(node_),
                           kNoQuery, static_cast<int>(level_), route);
  svc_->gpsr().send(node_, svc_->registry().position(target), target, pkt,
                    &svc_->metrics().query_transmissions);
}

void HlsrgRsuAgent::handle_query_l3(const QueryPayload& query) {
  l3_table_.purge(svc_->sim().now(), svc_->cfg().l3_expiry);
  full_table_.purge(svc_->sim().now(), svc_->cfg().l3_expiry);
  const Vec2 here = svc_->registry().position(node_);
  if (const L1Record* rec = full_table_.find(query.target)) {
    // The L3 RSU heard the update itself: serve directly.
    svc_->metrics().rsu_lookup_hits++;
    svc_->sim().count_region_served(here);
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kOk,
                             node_.value(), query.target.value(), here,
                             query.query_id, 3, "full_table");
    cache_.fill(*rec, svc_->sim().now());
    send_cache_fill(*rec, query);
    svc_->send_notification(node_, *rec, query);
    return;
  }
  // Service tier: a fresh cached record beats another wired leg to the
  // owner L2 (see handle_query_l2 for the probe-order rationale).
  if (svc_->tier().enabled && svc_->tier().caching) {
    if (const L1Record* rec = cache_.probe(query.target, svc_->sim().now())) {
      svc_->metrics().cache_hits++;
      svc_->sim().count_region_cache_hit(here);
      svc_->sim().observability().add("service.cache_hits");
      svc_->sim().instant_span(SpanKind::kCacheHit, SpanStatus::kOk,
                               node_.value(), query.target.value(), here,
                               query.query_id, 3);
      send_cache_fill(*rec, query);
      svc_->send_notification(node_, *rec, query);
      return;
    }
    svc_->metrics().cache_misses++;
  }
  if (const L3Summary* s = l3_table_.find(query.target)) {
    // Hit: hand the request to the L2 RSU that reported the vehicle; the
    // wired mesh routes across regions (L3 -> owner L3 -> child L2),
    // through the batching window when the tier enables it.
    svc_->metrics().rsu_lookup_hits++;
    svc_->sim().count_region_served(here);
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kOk,
                             node_.value(), query.target.value(), here,
                             query.query_id, 3, "l3_summary");
    QueryPayload q = query;
    q.from_l3 = true;
    const NodeId l2 = svc_->rsus()->node_at(s->l2, GridLevel::kL2);
    send_query_wired(q, l2);
    return;
  }
  svc_->metrics().rsu_lookup_misses++;
  svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kFailed,
                           node_.value(), query.target.value(), here,
                           query.query_id, 3);
  if (query.from_l3) return;  // sideways forwards are answered or dropped
  // Miss from below: ask the wired L3 neighbors (the paper assumes the L3
  // plane collectively knows every vehicle; gossip approximates that, and
  // this covers records that have not gossiped over yet).
  auto q = std::make_shared<QueryPayload>(query);
  q->from_l3 = true;
  const Packet pkt = svc_->make_packet(PacketKind::kQueryRequest, node_, q);
  for (NodeId n : svc_->wired().links_of(node_)) {
    const RsuId peer = svc_->rsus()->rsu_of_node(n);
    if (!peer.valid() || svc_->rsus()->rsu(peer).level != GridLevel::kL3) {
      continue;
    }
    svc_->wired().send(node_, n, pkt, &svc_->metrics().query_transmissions);
  }
}

}  // namespace hlsrg
