// Protocol-agnostic location-service contract and query bookkeeping.
//
// Both HLSRG and the RLSMP baseline implement LocationService, so scenario
// code, the workload driver, and the metric pipeline are shared; a benchmark
// compares protocols by running the same (map, mobility, seed, workload)
// world twice with a different service plugged in.
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Tracks outstanding queries and settles them into RunMetrics exactly once.
class QueryTracker {
 public:
  explicit QueryTracker(Simulator& sim)
      : sim_(&sim),
        delay_hist_(sim.observability().histogram("query.delay_us")) {}

  using QueryId = std::uint32_t;

  // Registers a query issued now; counts into metrics.queries_issued.
  QueryId issue(VehicleId src, VehicleId dst);

  // Marks success (idempotent; late duplicate ACKs are ignored). Records the
  // latency from issue to now.
  void succeed(QueryId id);

  // Marks failure (idempotent; a success beats a later failure and vice
  // versa — first settle wins).
  void fail(QueryId id);

  // Number of queries ever issued; ids are dense in [0, count()).
  [[nodiscard]] std::size_t count() const { return records_.size(); }

  [[nodiscard]] bool settled(QueryId id) const;
  // True iff the query settled successfully.
  [[nodiscard]] bool succeeded(QueryId id) const;
  // Latency from issue to success; zero for unsettled or failed queries.
  [[nodiscard]] SimTime latency(QueryId id) const;
  [[nodiscard]] std::size_t outstanding() const;
  [[nodiscard]] VehicleId source_of(QueryId id) const;
  [[nodiscard]] VehicleId target_of(QueryId id) const;
  [[nodiscard]] SimTime issued_at(QueryId id) const;
  // Settle time; zero for unsettled queries.
  [[nodiscard]] SimTime completed_at(QueryId id) const;
  // The query's root span (kNoSpan when tracing is off); protocol timers use
  // this to re-anchor async continuations via SpanScope.
  [[nodiscard]] SpanId span_of(QueryId id) const;

 private:
  struct Record {
    VehicleId src;
    VehicleId dst;
    SimTime issued;
    SimTime completed;
    bool settled = false;
    bool success = false;
    SpanId span = kNoSpan;
  };
  Simulator* sim_;
  Histogram* delay_hist_;  // always-on "query.delay_us"
  std::vector<Record> records_;
};

// The public face of a location service protocol.
class LocationService {
 public:
  virtual ~LocationService() = default;

  // Protocol name for reports ("HLSRG", "RLSMP").
  [[nodiscard]] virtual const char* name() const = 0;

  // Issues a location query: `src` wants the position of `dst`. Asynchronous;
  // the outcome lands in the simulator metrics via the protocol's tracker.
  // Returns the query id for per-query inspection via tracker().
  virtual QueryTracker::QueryId issue_query(VehicleId src, VehicleId dst) = 0;

  [[nodiscard]] virtual QueryTracker& tracker() = 0;

  // Total location-table entries currently held across the protocol's
  // servers (vehicles + RSUs); sampled into the "world.table_records" time
  // series. 0 when a protocol keeps no tables.
  [[nodiscard]] virtual std::size_t table_records() const { return 0; }
};

}  // namespace hlsrg
