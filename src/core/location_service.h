// Protocol-agnostic location-service contract and query bookkeeping.
//
// Both HLSRG and the RLSMP baseline implement LocationService, so scenario
// code, the workload driver, and the metric pipeline are shared; a benchmark
// compares protocols by running the same (map, mobility, seed, workload)
// world twice with a different service plugged in.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/tagged_id.h"

namespace hlsrg {

class QueryAdmission;
struct ServiceTierConfig;

// Tracks outstanding queries and settles them into RunMetrics exactly once.
class QueryTracker {
 public:
  explicit QueryTracker(Simulator& sim)
      : sim_(&sim),
        delay_hist_(sim.observability().histogram("query.delay_us")) {}

  using QueryId = std::uint32_t;

  // Registers a query issued now; counts into metrics.queries_issued.
  QueryId issue(VehicleId src, VehicleId dst);

  // Marks success (idempotent; late duplicate ACKs are ignored). Records the
  // latency from issue to now.
  void succeed(QueryId id);

  // Marks failure (idempotent; a success beats a later failure and vice
  // versa — first settle wins).
  void fail(QueryId id);

  // Number of queries ever issued; ids are dense in [0, count()).
  [[nodiscard]] std::size_t count() const { return records_.size(); }

  [[nodiscard]] bool settled(QueryId id) const;
  // True iff the query settled successfully.
  [[nodiscard]] bool succeeded(QueryId id) const;
  // Latency from issue to success; zero for unsettled or failed queries.
  [[nodiscard]] SimTime latency(QueryId id) const;
  [[nodiscard]] std::size_t outstanding() const;
  [[nodiscard]] VehicleId source_of(QueryId id) const;
  [[nodiscard]] VehicleId target_of(QueryId id) const;
  [[nodiscard]] SimTime issued_at(QueryId id) const;
  // Settle time; zero for unsettled queries.
  [[nodiscard]] SimTime completed_at(QueryId id) const;
  // Unsettled-query high-water mark over the run so far.
  [[nodiscard]] std::size_t peak_outstanding() const {
    return peak_outstanding_;
  }
  // The query's root span (kNoSpan when tracing is off); protocol timers use
  // this to re-anchor async continuations via SpanScope.
  [[nodiscard]] SpanId span_of(QueryId id) const;

 private:
  struct Record {
    VehicleId src;
    VehicleId dst;
    SimTime issued;
    SimTime completed;
    bool settled = false;
    bool success = false;
    SpanId span = kNoSpan;
  };
  Simulator* sim_;
  Histogram* delay_hist_;  // always-on "query.delay_us"
  std::vector<Record> records_;
  // outstanding() is on the admission hot path (every submit under load), so
  // settles are counted as they happen instead of rescanning records_.
  std::size_t settled_count_ = 0;
  std::size_t peak_outstanding_ = 0;
};

// Structured observability snapshot of a LocationService: table occupancy
// plus the service-tier counters. One value type instead of the old
// table_records() grab-bag so adding a field is a compile-visible change at
// every sampler, not a silently-zero default.
struct ServiceStats {
  // Location-table entries currently held across the protocol's servers
  // (vehicles + RSUs); 0 for protocols that keep no tables.
  std::size_t table_records = 0;
  // Heap bytes behind those tables plus the node registry's SoA arrays —
  // the protocol-state footprint (container capacities, not malloc
  // overhead). Feeds the bytes-per-vehicle memory gate in the bench
  // pipeline; process peak RSS is tracked separately by the runner.
  std::size_t table_bytes = 0;
  // Hot-destination cache traffic (HLSRG RSU tier; 0 elsewhere).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidations = 0;
  // Batching-window traffic.
  std::uint64_t batched_queries = 0;
  std::uint64_t batch_flushes = 0;
  // Queries and retries refused by admission control.
  std::uint64_t shed_queries = 0;
};

// The public face of a location service protocol.
class LocationService {
 public:
  virtual ~LocationService() = default;

  // Protocol name for reports ("HLSRG", "RLSMP").
  [[nodiscard]] virtual const char* name() const = 0;

  // Issues a location query: `src` wants the position of `dst`. Asynchronous;
  // the outcome lands in the simulator metrics via the protocol's tracker.
  // Returns the query id for per-query inspection via tracker().
  virtual QueryTracker::QueryId issue_query(VehicleId src, VehicleId dst) = 0;

  [[nodiscard]] virtual QueryTracker& tracker() = 0;

  // Observability snapshot: table occupancy plus service-tier counters.
  // Sampled periodically by the World; the default reports an empty service.
  [[nodiscard]] virtual ServiceStats service_stats() const { return {}; }

  // Current position of a vehicle as the protocol sees it; region telemetry
  // attributes admission decisions (sheds) to the source's region with it.
  // The origin default only matters for bespoke test stubs with no mobility.
  [[nodiscard]] virtual Vec2 vehicle_position(VehicleId v) const {
    (void)v;
    return Vec2{};
  }

  // Per-region gauge sampling for the World's periodic sampler: adds this
  // service's table records and pending-work depth into the per-region rows
  // (both pre-sized to regions.region_count()). Protocols without tables
  // keep the default no-op.
  virtual void sample_region_stats(
      const RegionTelemetry& regions,
      std::vector<std::uint64_t>& table_records,
      std::vector<std::uint64_t>& queue_depth) const {
    (void)regions;
    (void)table_records;
    (void)queue_depth;
  }

  // Wire discriminator of this protocol's query-request packet; admission
  // control books shed queries under it in the PacketLedger.
  [[nodiscard]] virtual PacketKind query_kind() const {
    return PacketKind::kNone;
  }

  // ---- service-tier hooks (no-op defaults) -------------------------------
  // Applies heavy-traffic tier knobs (batching window, cache TTL, overload
  // response). Protocols without a serving tier ignore it.
  virtual void configure_tier(const ServiceTierConfig& cfg) { (void)cfg; }

  // Admission control edge transition: entered (true) or left (false) the
  // overloaded regime. Protocols may shed secondary radio work while set.
  virtual void on_overload(bool overloaded) { (void)overloaded; }

  // Fast path consulted by admission before the full protocol machinery:
  // serve `src`'s query for `dst` from a warm service-tier cache if one
  // holds a fresh record. Must issue and (eventually) settle a tracked
  // query when it returns an id; nullopt = no cached answer, run the full
  // path.
  virtual std::optional<QueryTracker::QueryId> serve_cached(VehicleId src,
                                                            VehicleId dst) {
    (void)src;
    (void)dst;
    return std::nullopt;
  }

  // The admission seam this service's retry path should consult; null until
  // the harness installs one (tests that drive issue_query directly never
  // need it).
  void set_admission(QueryAdmission* admission) { admission_ = admission; }
  [[nodiscard]] QueryAdmission* admission() const { return admission_; }

 private:
  QueryAdmission* admission_ = nullptr;
};

}  // namespace hlsrg
