#include "core/hlsrg_service.h"

#include "core/churn_manager.h"
#include "core/rsu_agent.h"
#include "core/vehicle_agent.h"
#include "util/check.h"

namespace hlsrg {

HlsrgService::HlsrgService(Simulator& sim, const RoadNetwork& net,
                           const GridHierarchy& hierarchy,
                           MobilityModel& mobility, NodeRegistry& registry,
                           RadioMedium& medium, GpsrRouter& gpsr,
                           GeocastService& geocast, WiredNetwork& wired,
                           const RsuGrid* rsus, HlsrgConfig cfg)
    : sim_(&sim),
      net_(&net),
      hierarchy_(&hierarchy),
      mobility_(&mobility),
      registry_(&registry),
      medium_(&medium),
      gpsr_(&gpsr),
      geocast_(&geocast),
      wired_(&wired),
      rsus_(rsus),
      cfg_(cfg),
      rules_(net, hierarchy, mobility.turn_policy(), cfg_),
      tracker_(sim) {
  HLSRG_CHECK_MSG(!cfg_.use_rsus || rsus_ != nullptr,
                  "use_rsus requires a deployed RsuGrid");

  // One radio node + agent per vehicle.
  const std::size_t n = mobility.vehicle_count();
  vehicle_nodes_.reserve(n);
  vehicle_agents_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VehicleId v{i};
    const NodeId node = registry.add_node(mobility.position(v));
    registry.bind_vehicle(v, node);
    // Parked flag seeded here, not in the world's later seeding pass: the
    // churn manager's initial staffing scan (below) already reads it.
    registry.set_vehicle_parked(v, mobility.parked(v));
    vehicle_nodes_.push_back(node);
    // reserve(n) above makes this the agent's final address — its timers
    // capture `this` at construction time.
    vehicle_agents_.emplace_back(*this, v, node);
    registry.set_sink(node, &vehicle_agents_.back());
  }

  // RSU agents (sinks installed onto the infra-registered nodes).
  if (rsus_ != nullptr && cfg_.use_rsus) {
    rsu_agents_.reserve(rsus_->all().size());
    for (const RsuGrid::Rsu& r : rsus_->all()) {
      rsu_agents_.emplace_back(*this, r.id, r.level, r.coord, r.node);
      registry.set_sink(r.node, &rsu_agents_.back());
      rsu_agents_.back().start_timers();
    }
  }

  // Parked-cars-as-RSUs: the ChurnManager binds initial hosts (vacant roles
  // go dark) and reacts to the parking lifecycle. Constructed only when the
  // knob is on, so fixed-RSU runs carry no churn state at all.
  if (cfg_.parked_rsu_hosting) {
    HLSRG_CHECK_MSG(rsus_ != nullptr && cfg_.use_rsus,
                    "parked_rsu_hosting requires RSUs");
    churn_ = std::make_unique<ChurnManager>(*this);
  }

  mobility.add_listener(this);
}

HlsrgService::~HlsrgService() = default;

const HlsrgVehicleAgent& HlsrgService::vehicle_agent(VehicleId v) const {
  return vehicle_agents_[v.index()];
}

HlsrgVehicleAgent& HlsrgService::vehicle_agent(VehicleId v) {
  return vehicle_agents_[v.index()];
}

HlsrgRsuAgent& HlsrgService::rsu_agent(RsuId id) {
  return rsu_agents_[id.index()];
}

QueryTracker::QueryId HlsrgService::issue_query(VehicleId src,
                                                VehicleId dst) {
  HLSRG_CHECK(src.index() < vehicle_agents_.size());
  HLSRG_CHECK(dst.index() < vehicle_agents_.size());
  const QueryTracker::QueryId qid = tracker_.issue(src, dst);
  // Everything the source agent does now (lookup, election, GPSR send)
  // nests under the query's root span.
  SpanScope scope(*sim_, tracker_.span_of(qid));
  vehicle_agents_[src.index()].start_query(qid, dst);
  return qid;
}

void HlsrgService::set_rsu_up(RsuId id, bool up) {
  if (id.index() >= rsu_agents_.size()) return;  // no RSUs (A2 ablation)
  if (churn_ != nullptr) {
    // The churn layer owns role liveness: reboots of vacant roles are
    // refused (there is no host to boot).
    churn_->set_rsu_up(id, up);
    return;
  }
  rsu_agents_[id.index()].set_up(up);
}

void HlsrgService::on_parked(VehicleId v) {
  if (churn_ != nullptr) churn_->on_parked(v);
}

void HlsrgService::on_departed(VehicleId v, bool abrupt) {
  if (churn_ != nullptr) churn_->on_departed(v, abrupt);
}

void HlsrgService::configure_tier(const ServiceTierConfig& cfg) {
  tier_ = cfg;
  for (auto& agent : rsu_agents_) agent.configure_tier(cfg);
}

std::optional<QueryTracker::QueryId> HlsrgService::serve_cached(
    VehicleId src, VehicleId dst) {
  if (!tier_.enabled || !tier_.caching || rsus_ == nullptr || !cfg_.use_rsus) {
    return std::nullopt;
  }
  // Only the source's home L2 RSU is worth a detour: the first attempt
  // already passes near it, so a warm cache there turns the whole hierarchy
  // walk into one radio round-trip.
  const Vec2 pos = vehicle_pos(src);
  const GridCoord l2 =
      GridHierarchy::parent(hierarchy_->l1_at(pos), GridLevel::kL2);
  const RsuId id = rsus_->rsu_at(l2, GridLevel::kL2);
  HlsrgRsuAgent& agent = rsu_agents_[id.index()];
  if (!agent.up() || !agent.cache_fresh(dst)) return std::nullopt;
  const QueryTracker::QueryId qid = tracker_.issue(src, dst);
  SpanScope scope(*sim_, tracker_.span_of(qid));
  // Route the request straight at the warm RSU. Physics still applies — the
  // request rides GPSR and can be lost, and the retry path then walks the
  // normal hierarchy.
  vehicle_agents_[src.index()].start_query(qid, dst, rsus_->rsu(id).node);
  return qid;
}

ServiceStats HlsrgService::service_stats() const {
  ServiceStats s;
  for (const auto& agent : vehicle_agents_) {
    s.table_records += agent.table().size();
    s.table_bytes += agent.table().bytes();
  }
  for (const auto& agent : rsu_agents_) {
    s.table_records += agent.l2_table().size() + agent.l3_table().size() +
                       agent.full_table().size();
    s.table_bytes += agent.l2_table().bytes() + agent.l3_table().bytes() +
                     agent.full_table().bytes();
  }
  s.table_bytes += registry_->bytes();
  const RunMetrics& m = sim_->metrics();
  s.cache_hits = m.cache_hits;
  s.cache_misses = m.cache_misses;
  s.cache_invalidations = m.cache_invalidations;
  s.batched_queries = m.batched_queries;
  s.batch_flushes = m.batch_flushes;
  s.shed_queries = m.queries_shed + m.retries_shed;
  return s;
}

void HlsrgService::sample_region_stats(
    const RegionTelemetry& regions, std::vector<std::uint64_t>& table_records,
    std::vector<std::uint64_t>& queue_depth) const {
  // Vehicle-held L1 tables land in the holder's current region (SoA row,
  // mirrors `regions`' region_of); RSU tables and the batching-window
  // backlog land in the RSU's (fixed) region.
  for (std::size_t i = 0; i < vehicle_agents_.size(); ++i) {
    const int r = registry_->vehicle_region(VehicleId{i});
    table_records[static_cast<std::size_t>(r)] +=
        vehicle_agents_[i].table().size();
  }
  if (rsus_ == nullptr) return;
  for (const RsuGrid::Rsu& rsu : rsus_->all()) {
    const HlsrgRsuAgent& agent = rsu_agents_[rsu.id.index()];
    const auto r = static_cast<std::size_t>(regions.region_of(rsu.pos));
    table_records[r] += agent.l2_table().size() + agent.l3_table().size() +
                        agent.full_table().size();
    queue_depth[r] += agent.pending_batches();
  }
}

void HlsrgService::on_intersection_pass(VehicleId v, IntersectionId node,
                                        SegmentId in_seg, SegmentId out_seg) {
  vehicle_agents_[v.index()].handle_intersection_pass(node, in_seg, out_seg);
}

void HlsrgService::on_moved(VehicleId v, Vec2 before, Vec2 after) {
  vehicle_agents_[v.index()].handle_moved(before, after);
}

void HlsrgService::send_notification(NodeId origin,
                                     const L1Record& target_record,
                                     const QueryPayload& query) {
  auto note = std::make_shared<NotificationPayload>();
  note->query_id = query.query_id;
  note->target = query.target;
  note->src_vehicle = query.src_vehicle;
  note->src_node = query.src_node;
  note->src_pos = query.src_pos;
  const Packet pkt = make_packet(PacketKind::kNotification, origin, note);
  metrics().query_packets_originated++;
  metrics().notifications_sent++;
  sim_->trace_event({{}, TraceEventKind::kNotification, query.target,
                     query.src_vehicle, target_record.pos, query.query_id});
  // Open until the query settles (the notification has no ACK of its own);
  // the route/flood legs below nest under it.
  const SpanId note_span = sim_->begin_span(
      SpanKind::kNotification, query.target.value(), query.src_vehicle.value(),
      target_record.pos, query.query_id, 1,
      target_record.on_artery ? "artery_corridor" : "l1_grid_flood");
  SpanScope scope(*sim_, note_span);

  if (target_record.on_artery) {
    // Strategy (1): Dv updated from a main artery — geocast along the road
    // in the recorded direction. The recorded position can be far from the
    // server, so the notification is routed there first and the corridor
    // flood starts from whichever node is found nearby.
    const GeocastRegion region = GeocastRegion::corridor(
        target_record.pos, target_record.dir, cfg_.corridor_half_width_m,
        cfg_.search_ahead_m, cfg_.corridor_behind_m);
    gpsr_->send(
        origin, target_record.pos, std::nullopt, pkt,
        &metrics().query_transmissions,
        /*deliver=*/
        [this, pkt, region](NodeId at) {
          geocast_->flood(at, pkt, region, &metrics().query_transmissions);
        },
        /*fail=*/{}, /*delivery_radius=*/cfg_.center_radius_m * 2.0);
  } else {
    // Strategy (2): Dv updated from a normal road — "still driving within
    // this Level 1 grid"; flood the grid.
    const GeocastRegion region = GeocastRegion::from_box(
        hierarchy_->cell_box(target_record.l1, GridLevel::kL1),
        /*margin=*/cfg_.corridor_half_width_m);
    geocast_->flood(origin, pkt, region, &metrics().query_transmissions);
  }
}

Packet HlsrgService::make_packet(PacketKind kind, NodeId origin,
                                 std::shared_ptr<const PayloadBase> payload) {
  Packet p;
  p.id = packet_ids_.next();
  p.kind = kind;
  p.origin = origin;
  p.origin_pos = registry_->position(origin);
  p.created = sim_->now();
  p.payload = std::move(payload);
  return p;
}

}  // namespace hlsrg
