#include "core/location_service.h"

#include "util/check.h"

namespace hlsrg {

QueryTracker::QueryId QueryTracker::issue(VehicleId src, VehicleId dst) {
  records_.push_back(Record{src, dst, sim_->now(), SimTime{}, false, false});
  sim_->metrics().queries_issued++;
  const auto id = static_cast<QueryId>(records_.size() - 1);
  // Root of the query's span tree; every leg recorded until the query
  // settles hangs under it (directly or via propagated context).
  records_.back().span = sim_->begin_span(
      SpanKind::kQuery, src.value(), dst.value(), Vec2{}, id);
  sim_->trace_event({{}, TraceEventKind::kQueryIssued, src, dst, {}, id});
  const std::size_t out = records_.size() - settled_count_;
  if (out > peak_outstanding_) {
    peak_outstanding_ = out;
    sim_->metrics().peak_outstanding = out;
  }
  return id;
}

void QueryTracker::succeed(QueryId id) {
  HLSRG_CHECK(id < records_.size());
  Record& r = records_[id];
  if (r.settled) return;
  r.settled = true;
  ++settled_count_;
  r.success = true;
  r.completed = sim_->now();
  sim_->metrics().queries_succeeded++;
  sim_->metrics().query_latency.add(sim_->now() - r.issued);
  delay_hist_->record((sim_->now() - r.issued).us());
  if (TraceLog* trace = sim_->trace()) {
    trace->end_open_spans_for_query(id, sim_->now(), SpanStatus::kOk);
  }
  sim_->trace_event({{}, TraceEventKind::kQuerySucceeded, r.src, r.dst, {}, id});
}

void QueryTracker::fail(QueryId id) {
  HLSRG_CHECK(id < records_.size());
  Record& r = records_[id];
  if (r.settled) return;
  r.settled = true;
  ++settled_count_;
  r.completed = sim_->now();
  sim_->metrics().queries_failed++;
  if (TraceLog* trace = sim_->trace()) {
    trace->end_open_spans_for_query(id, sim_->now(), SpanStatus::kFailed);
  }
  sim_->trace_event({{}, TraceEventKind::kQueryFailed, r.src, r.dst, {}, id});
}

bool QueryTracker::settled(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  return records_[id].settled;
}

bool QueryTracker::succeeded(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  return records_[id].success;
}

SimTime QueryTracker::latency(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  const Record& r = records_[id];
  return r.success ? r.completed - r.issued : SimTime{};
}

std::size_t QueryTracker::outstanding() const {
  return records_.size() - settled_count_;
}

VehicleId QueryTracker::source_of(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  return records_[id].src;
}

VehicleId QueryTracker::target_of(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  return records_[id].dst;
}

SimTime QueryTracker::issued_at(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  return records_[id].issued;
}

SimTime QueryTracker::completed_at(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  return records_[id].completed;
}

SpanId QueryTracker::span_of(QueryId id) const {
  HLSRG_CHECK(id < records_.size());
  return records_[id].span;
}

}  // namespace hlsrg
