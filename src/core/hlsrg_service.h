// HLSRG protocol service: wires vehicle agents, RSU agents, and the update /
// collection / query machinery over the substrates (paper chapter 2 end to
// end). One HlsrgService instance runs one protocol world.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/hlsrg_config.h"
#include "core/location_service.h"
#include "core/messages.h"
#include "core/update_rules.h"
#include "grid/hierarchy.h"
#include "infra/rsu_grid.h"
#include "mobility/mobility_model.h"
#include "net/geocast.h"
#include "net/gpsr.h"
#include "net/radio.h"
#include "net/wired.h"
#include "service/service_config.h"
#include "sim/simulator.h"

namespace hlsrg {

class HlsrgVehicleAgent;
class HlsrgRsuAgent;
class ChurnManager;

class HlsrgService final : public LocationService, public MovementListener {
 public:
  // `rsus` may be null (A2 ablation: vehicle-only collection); cfg.use_rsus
  // must then be false. The service registers one radio node per vehicle,
  // installs itself as a mobility listener, installs RSU sinks, and starts
  // the RSU timers.
  HlsrgService(Simulator& sim, const RoadNetwork& net,
               const GridHierarchy& hierarchy, MobilityModel& mobility,
               NodeRegistry& registry, RadioMedium& medium, GpsrRouter& gpsr,
               GeocastService& geocast, WiredNetwork& wired,
               const RsuGrid* rsus, HlsrgConfig cfg);
  ~HlsrgService() override;

  // --- LocationService ------------------------------------------------------
  [[nodiscard]] const char* name() const override { return "HLSRG"; }
  QueryTracker::QueryId issue_query(VehicleId src, VehicleId dst) override;
  [[nodiscard]] QueryTracker& tracker() override { return tracker_; }
  [[nodiscard]] ServiceStats service_stats() const override;
  [[nodiscard]] Vec2 vehicle_position(VehicleId v) const override {
    return vehicle_pos(v);
  }
  void sample_region_stats(const RegionTelemetry& regions,
                           std::vector<std::uint64_t>& table_records,
                           std::vector<std::uint64_t>& queue_depth)
      const override;
  [[nodiscard]] PacketKind query_kind() const override {
    return PacketKind::kQueryRequest;
  }
  void configure_tier(const ServiceTierConfig& cfg) override;
  void on_overload(bool overloaded) override { overloaded_ = overloaded; }
  std::optional<QueryTracker::QueryId> serve_cached(VehicleId src,
                                                    VehicleId dst) override;

  // --- MovementListener -----------------------------------------------------
  void on_intersection_pass(VehicleId v, IntersectionId node, SegmentId in_seg,
                            SegmentId out_seg) override;
  void on_moved(VehicleId v, Vec2 before, Vec2 after) override;
  // Parking lifecycle (forwarded to the ChurnManager when hosting is on).
  void on_parked(VehicleId v) override;
  void on_departed(VehicleId v, bool abrupt) override;

  // --- context shared with agents --------------------------------------------
  [[nodiscard]] Simulator& sim() { return *sim_; }
  [[nodiscard]] RunMetrics& metrics() { return sim_->metrics(); }
  [[nodiscard]] const HlsrgConfig& cfg() const { return cfg_; }
  [[nodiscard]] const RoadNetwork& network() const { return *net_; }
  [[nodiscard]] const GridHierarchy& hierarchy() const { return *hierarchy_; }
  [[nodiscard]] MobilityModel& mobility() { return *mobility_; }
  [[nodiscard]] NodeRegistry& registry() { return *registry_; }
  [[nodiscard]] RadioMedium& medium() { return *medium_; }
  [[nodiscard]] GpsrRouter& gpsr() { return *gpsr_; }
  [[nodiscard]] GeocastService& geocast() { return *geocast_; }
  [[nodiscard]] WiredNetwork& wired() { return *wired_; }
  [[nodiscard]] const RsuGrid* rsus() const { return rsus_; }
  // Heavy-traffic tier knobs (default-constructed = tier off) and the
  // current admission-control regime; RSU/vehicle agents consult both.
  [[nodiscard]] const ServiceTierConfig& tier() const { return tier_; }
  [[nodiscard]] bool overloaded() const { return overloaded_; }

  [[nodiscard]] NodeId node_of(VehicleId v) const {
    return vehicle_nodes_[v.index()];
  }
  [[nodiscard]] Vec2 vehicle_pos(VehicleId v) const {
    return mobility_->position(v);
  }

  // Builds a packet stamped with origin/time.
  [[nodiscard]] Packet make_packet(PacketKind kind, NodeId origin,
                                   std::shared_ptr<const PayloadBase> payload);

  // Acts as Dv's location server for `query` using the stored record: sends
  // the notification by directional road geocast (artery records; routed to
  // the recorded position first) or by flooding the record's L1 grid
  // (normal-road records). Shared by grid-center vehicles and L2 RSUs — the
  // paper lets either act as the location server.
  void send_notification(NodeId origin, const L1Record& target_record,
                         const QueryPayload& query);

  // --- fault layer hooks ------------------------------------------------------
  // Crash/reboot an RSU agent (FaultInjector callback). No-op without RSUs.
  void set_rsu_up(RsuId id, bool up);
  // GPS error model: every position written into a protocol record passes
  // through this transform (identity when unset). Installed by the fault
  // layer for gps_noise windows; the map-matched L1 grid/road fields stay
  // topology-derived and are NOT perturbed.
  void set_gps_transform(std::function<Vec2(Vec2)> transform) {
    gps_transform_ = std::move(transform);
  }
  [[nodiscard]] Vec2 observed_pos(Vec2 p) const {
    return gps_transform_ ? gps_transform_(p) : p;
  }

  // Test/diagnostic access. Out-of-line: the agents are stored by value and
  // indexing the vectors needs their complete types (forward-declared here).
  [[nodiscard]] const HlsrgVehicleAgent& vehicle_agent(VehicleId v) const;
  [[nodiscard]] HlsrgVehicleAgent& vehicle_agent(VehicleId v);
  [[nodiscard]] const UpdateRuleEngine& rules() const { return rules_; }
  [[nodiscard]] const std::vector<HlsrgRsuAgent>& rsu_agents() const {
    return rsu_agents_;
  }
  // Direct agent access for the churn layer (host installs cycle set_up).
  [[nodiscard]] HlsrgRsuAgent& rsu_agent(RsuId id);
  // Non-null iff cfg().parked_rsu_hosting (and RSUs exist).
  [[nodiscard]] ChurnManager* churn() { return churn_.get(); }
  [[nodiscard]] const ChurnManager* churn() const { return churn_.get(); }

 private:
  Simulator* sim_;
  const RoadNetwork* net_;
  const GridHierarchy* hierarchy_;
  MobilityModel* mobility_;
  NodeRegistry* registry_;
  RadioMedium* medium_;
  GpsrRouter* gpsr_;
  GeocastService* geocast_;
  WiredNetwork* wired_;
  const RsuGrid* rsus_;
  HlsrgConfig cfg_;
  ServiceTierConfig tier_;
  bool overloaded_ = false;
  UpdateRuleEngine rules_;
  QueryTracker tracker_;
  PacketIdSource packet_ids_;

  std::vector<NodeId> vehicle_nodes_;
  // Agents stored by value: one contiguous block instead of a pointer array
  // plus one heap node per agent. The constructor reserves the exact counts
  // up front and the vectors never grow after that, so the `this` pointers
  // the agents capture in their scheduled timers stay valid for the run.
  std::vector<HlsrgVehicleAgent> vehicle_agents_;
  std::vector<HlsrgRsuAgent> rsu_agents_;
  std::unique_ptr<ChurnManager> churn_;
  std::function<Vec2(Vec2)> gps_transform_;
};

}  // namespace hlsrg
