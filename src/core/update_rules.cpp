#include "core/update_rules.h"

namespace hlsrg {

UpdateDecision UpdateRuleEngine::evaluate(IntersectionId node,
                                          SegmentId in_seg,
                                          SegmentId out_seg) const {
  const Segment& in = net_->segment(in_seg);
  const Segment& out = net_->segment(out_seg);
  const Vec2 at = net_->position(node);

  // Probe points 1 m before/after the intersection along the path. Grid
  // membership is half-open, so a probe exactly on a boundary line lands on
  // a consistent side; displacing along the travel direction cannot move the
  // probe across the perpendicular boundary being tested.
  constexpr double kProbe = 1.0;
  const Vec2 before = at - in.unit_dir * kProbe;
  const Vec2 after = at + out.unit_dir * kProbe;

  UpdateDecision d;
  d.old_l1 = hierarchy_->l1_at(before);
  d.new_l1 = hierarchy_->l1_at(after);
  d.grid_changed = !(d.old_l1 == d.new_l1);
  d.crossing_level = hierarchy_->crossing_level(before, after);

  const bool turning = policy_->is_turn(in_seg, out_seg);
  const bool in_on_selected_artery = hierarchy_->on_selected_artery(in.road);
  const bool out_on_selected_artery = hierarchy_->on_selected_artery(out.road);
  d.was_class1 = in_on_selected_artery;

  if (cfg_->naive_every_crossing) {
    // Strawman baseline rule: update whenever the L1 cell changes.
    d.send = d.grid_changed;
    return d;
  }

  const bool class1 = in_on_selected_artery && cfg_->suppress_artery_updates;
  if (class1) {
    // Class 1: turn, or straight across an L3 boundary.
    d.send = turning || (!turning && d.crossing_level >= 3);
  } else {
    // Class 2: straight across any boundary, or turning onto a selected
    // artery.
    d.send = (!turning && d.crossing_level >= 1) ||
             (turning && out_on_selected_artery);
  }
  return d;
}

}  // namespace hlsrg
