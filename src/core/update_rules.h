// The location-update rule engine (paper 2.2.1) — pure decision logic.
//
// Class 1 — vehicles driving on a *selected* main artery (an artery chosen as
// a grid boundary) — send an update only when:
//   (1) driving straight across a Level-3 boundary, or
//   (2) turning onto any other road.
// Class 2 — everyone else — sends an update when:
//   (1) driving straight across a boundary of any level, or
//   (2) turning onto a selected main artery.
//
// All boundary crossings happen at intersections (boundaries are roads), so
// the engine is evaluated once per intersection pass. It is side-effect-free
// and fully unit-testable.
#pragma once

#include "core/hlsrg_config.h"
#include "grid/hierarchy.h"
#include "mobility/turn_policy.h"
#include "roadnet/road_network.h"

namespace hlsrg {

struct UpdateDecision {
  bool send = false;
  GridCoord old_l1;  // cell just before the intersection
  GridCoord new_l1;  // cell just after
  bool grid_changed = false;
  int crossing_level = 0;  // 0 = none, else highest level crossed
  bool was_class1 = false;
};

class UpdateRuleEngine {
 public:
  UpdateRuleEngine(const RoadNetwork& net, const GridHierarchy& hierarchy,
                   const TurnPolicy& policy, const HlsrgConfig& cfg)
      : net_(&net), hierarchy_(&hierarchy), policy_(&policy), cfg_(&cfg) {}

  // Decides whether a vehicle passing through `node` (arriving on `in_seg`,
  // departing on `out_seg`) must send a location update.
  [[nodiscard]] UpdateDecision evaluate(IntersectionId node, SegmentId in_seg,
                                        SegmentId out_seg) const;

 private:
  const RoadNetwork* net_;
  const GridHierarchy* hierarchy_;
  const TurnPolicy* policy_;
  const HlsrgConfig* cfg_;
};

}  // namespace hlsrg
