#include "core/churn_manager.h"

#include <memory>
#include <utility>

#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "obs/region_telemetry.h"
#include "util/check.h"

namespace hlsrg {

namespace {

// Books one role migration against the role's L3 region (obs law:
// sum(role_migrations) == role_elections + role_fills).
void count_migration(Simulator& sim, Vec2 role_pos) {
  if (RegionTelemetry* regions = sim.regions()) {
    if (regions->configured()) {
      ++regions->at(regions->region_of(role_pos)).role_migrations;
    }
  }
}

}  // namespace

ChurnManager::ChurnManager(HlsrgService& service)
    : svc_(&service),
      directory_(service.rsus() != nullptr ? service.rsus()->count() : 0) {
  HLSRG_CHECK_MSG(service.rsus() != nullptr,
                  "parked_rsu_hosting requires an RSU grid");
  // Marks every report/digest from this run as churn-carrying, mirroring
  // fault_plan_digest: zero-churn runs never construct a ChurnManager, so
  // their digests ignore the churn counter block entirely.
  svc_->metrics().churn_active = 1;

  // Initial staffing, in RsuId order. Roles with no parked candidate start
  // vacant: agent down, wired node down, queries ride the failover ladder.
  // Initial binds are not departures, so the role_* conservation counters
  // stay untouched; the obs registry records the staffing split instead.
  MetricsRegistry& obs = svc_->sim().observability();
  for (std::size_t i = 0; i < directory_.role_count(); ++i) {
    const RsuId role{i};
    const VehicleId host = elect_host(role, VehicleId{});
    if (host.valid()) {
      directory_.bind_vehicle(role, host);
      obs.add("churn.initial_hosts");
    } else {
      directory_.vacate(role);
      take_role_down(role);
      obs.add("churn.initial_vacant");
    }
  }
}

void ChurnManager::on_parked(VehicleId v) {
  if (directory_.vacant_count() == 0) return;
  // Only bother sweeping when the new parker could actually staff something.
  const Vec2 pos = svc_->vehicle_pos(v);
  const double r2 = svc_->cfg().host_radius_m * svc_->cfg().host_radius_m;
  for (std::size_t i = 0; i < directory_.role_count(); ++i) {
    const RsuId role{i};
    if (directory_.staffed(role)) continue;
    if (distance2(pos, svc_->rsus()->rsu(role).pos) <= r2) {
      schedule_fill_sweep(svc_->cfg().role_fill_delay);
      return;
    }
  }
}

void ChurnManager::on_departed(VehicleId v, bool abrupt) {
  const RsuId role = directory_.role_of(v);
  if (!role.valid()) return;

  RunMetrics& m = svc_->metrics();
  ++m.role_departures;
  // Snapshot before any reboot/down wipes the agent's tables.
  std::shared_ptr<RoleHandoffPayload> snapshot = snapshot_role(role);
  const std::uint64_t n = snapshot->record_count();
  m.records_at_departure += n;
  directory_.vacate(role);

  if (abrupt) {
    // Fault-forced: the host vanishes mid-window with no chance to hand off.
    // Records are ledger-accounted as expired, the role goes dark, and the
    // vacancy is only noticed at the next detect sweep — the successor
    // rebuilds from beacons (the RSU reboot path).
    ++m.role_vacancies;
    m.handoff_records_expired += n;
    take_role_down(role);
    svc_->sim().observability().add("churn.abrupt_departures");
    schedule_fill_sweep(svc_->cfg().churn_detect_delay);
    return;
  }

  const VehicleId successor = elect_host(role, v);
  if (successor.valid()) {
    ++m.role_elections;
    count_migration(svc_->sim(), svc_->rsus()->rsu(role).pos);
    // Install first (the reboot wipes the agent), then ship the outgoing
    // host's snapshot from its still-parked radio to the role node.
    install_host(role, successor);
    if (svc_->cfg().enable_handoff && n > 0) {
      send_handoff_radio(svc_->node_of(v), std::move(snapshot));
    } else {
      m.handoff_records_expired += n;
    }
  } else {
    // Graceful degradation: no candidate in range. Ship the tables over the
    // wire to the absorbing parent/sibling before the role node goes down.
    ++m.role_vacancies;
    if (svc_->cfg().enable_handoff && n > 0) {
      send_handoff_wired(role, std::move(snapshot));
    } else {
      m.handoff_records_expired += n;
    }
    take_role_down(role);
  }
}

void ChurnManager::set_rsu_up(RsuId role, bool up) {
  if (up && !directory_.staffed(role)) {
    // A fault window ending cannot reboot a role nobody hosts. The injector
    // already re-raised the wired node before this hook ran; put it back.
    svc_->wired().set_node_up(svc_->rsus()->rsu(role).node, false);
    return;
  }
  svc_->rsu_agent(role).set_up(up);
}

void ChurnManager::expire_in_flight() {
  RunMetrics& m = svc_->metrics();
  m.handoff_records_expired += m.handoff_records_in_flight;
  m.handoff_records_in_flight = 0;
}

VehicleId ChurnManager::elect_host(RsuId role, VehicleId exclude) const {
  const Vec2 center = svc_->rsus()->rsu(role).pos;
  const double r2 = svc_->cfg().host_radius_m * svc_->cfg().host_radius_m;
  // Candidate scan off the registry's SoA rows (flag + position loads, no
  // road-graph geometry per vehicle). In sync with mobility at every call
  // site: elections run from parking callbacks (the pose bridge is ordered
  // first) and from timer events between ticks.
  const NodeRegistry& registry = svc_->registry();
  VehicleId best;
  double best_d2 = 0.0;
  for (std::size_t i = 0; i < registry.vehicle_count(); ++i) {
    const VehicleId v{i};
    if (v == exclude) continue;
    if (!registry.vehicle_parked(v)) continue;
    if (directory_.role_of(v).valid()) continue;  // one role per vehicle
    const double d2 = distance2(registry.vehicle_position(v), center);
    if (d2 > r2) continue;
    // Strict < keeps the lowest id on exact distance ties (ascending scan).
    if (!best.valid() || d2 < best_d2) {
      best = v;
      best_d2 = d2;
    }
  }
  return best;
}

void ChurnManager::install_host(RsuId role, VehicleId host) {
  directory_.bind_vehicle(role, host);
  HlsrgRsuAgent& agent = svc_->rsu_agent(role);
  // Cycle through down/up: a host swap is a reboot — the successor starts
  // with empty tables and refills from the handoff (graceful) or from child
  // re-registration (abrupt / handoff lost).
  if (agent.up()) agent.set_up(false);
  agent.set_up(true);
  svc_->wired().set_node_up(svc_->rsus()->rsu(role).node, true);
}

void ChurnManager::take_role_down(RsuId role) {
  HlsrgRsuAgent& agent = svc_->rsu_agent(role);
  if (agent.up()) agent.set_up(false);
  svc_->wired().set_node_up(svc_->rsus()->rsu(role).node, false);
}

void ChurnManager::send_handoff_radio(
    NodeId from_node, std::shared_ptr<RoleHandoffPayload> payload) {
  RunMetrics& m = svc_->metrics();
  const std::uint64_t n = payload->record_count();
  const NodeId target = svc_->rsus()->rsu(payload->role).node;
  ++m.handoffs_sent;
  m.handoff_records_sent += n;
  m.handoff_records_in_flight += n;
  svc_->sim().observability().add("churn.handoffs_radio");
  const Packet pkt =
      svc_->make_packet(PacketKind::kRoleHandoff, from_node, payload);
  // The MAC retries settle asynchronously: delivery books the records at the
  // receiver, final loss expires them here. Until then they are in flight.
  svc_->medium().unicast(from_node, target, pkt, [this, n] {
    RunMetrics& metrics = svc_->metrics();
    ++metrics.handoffs_lost;
    metrics.handoff_records_in_flight -= n;
    metrics.handoff_records_expired += n;
  });
}

void ChurnManager::send_handoff_wired(
    RsuId role, std::shared_ptr<RoleHandoffPayload> payload) {
  RunMetrics& m = svc_->metrics();
  const std::uint64_t n = payload->record_count();
  const RsuGrid::Rsu& r = svc_->rsus()->rsu(role);

  // Absorber: the parent L3 for an L2 role; the nearest up sibling L3
  // (lowest node id on ties) for an L3 role — the PR-4 escalation targets.
  NodeId target;
  if (r.level == GridLevel::kL2) {
    const GridCoord parent{r.coord.col / 2, r.coord.row / 2};
    const NodeId parent_node = svc_->rsus()->node_at(parent, GridLevel::kL3);
    if (parent_node.valid() && svc_->wired().node_up(parent_node)) {
      target = parent_node;
    }
  } else {
    double best_d = 0.0;
    for (const NodeId peer : svc_->wired().links_of(r.node)) {
      const RsuId peer_rsu = svc_->rsus()->rsu_of_node(peer);
      if (!peer_rsu.valid()) continue;
      if (svc_->rsus()->rsu(peer_rsu).level != GridLevel::kL3) continue;
      if (!svc_->wired().node_up(peer)) continue;
      const double d = distance(svc_->rsus()->rsu(peer_rsu).pos, r.pos);
      if (!target.valid() || d < best_d ||
          (d == best_d && peer.value() < target.value())) {
        target = peer;
        best_d = d;
      }
    }
  }

  if (!target.valid()) {
    // Nobody to absorb the region's records: they expire, and queries for
    // them rebuild through re-registration once a successor is staffed.
    m.handoff_records_expired += n;
    return;
  }

  ++m.handoffs_sent;
  m.handoff_records_sent += n;
  m.handoff_records_in_flight += n;
  svc_->sim().observability().add("churn.handoffs_wired");
  const Packet pkt =
      svc_->make_packet(PacketKind::kRoleHandoff, r.node, payload);
  if (!svc_->wired().send(r.node, target, pkt,
                          &m.aggregation_transmissions)) {
    ++m.handoffs_lost;
    m.handoff_records_in_flight -= n;
    m.handoff_records_expired += n;
  }
}

void ChurnManager::schedule_fill_sweep(SimTime delay) {
  if (sweep_pending_) return;
  sweep_pending_ = true;
  svc_->sim().schedule_after(delay, [this] {
    sweep_pending_ = false;
    fill_sweep();
  });
}

void ChurnManager::fill_sweep() {
  RunMetrics& m = svc_->metrics();
  for (std::size_t i = 0; i < directory_.role_count(); ++i) {
    const RsuId role{i};
    if (directory_.staffed(role)) continue;
    const VehicleId host = elect_host(role, VehicleId{});
    if (!host.valid()) continue;
    ++m.role_fills;
    count_migration(svc_->sim(), svc_->rsus()->rsu(role).pos);
    install_host(role, host);
    svc_->sim().observability().add("churn.role_fills");
  }
}

std::shared_ptr<RoleHandoffPayload> ChurnManager::snapshot_role(RsuId role) {
  const HlsrgRsuAgent& agent = svc_->rsu_agent(role);
  auto payload = std::make_shared<RoleHandoffPayload>();
  payload->role = role;
  payload->level = agent.level();
  // Bulk-copied in dense arena order (no sort): the receiver's thinning
  // re-keys every record through newest-wins merges, so payload order is
  // semantically inert — table contents, counters, and digests are
  // byte-identical to the old sorted-snapshot path (pinned by
  // tests/churn_test.cpp HandoffPayloadOrderIsSemanticallyInert).
  payload->full_records = agent.full_table().unsorted_records();
  payload->l2_records = agent.l2_table().unsorted_records();
  payload->l3_records = agent.l3_table().unsorted_records();
  return payload;
}

}  // namespace hlsrg
