// Infrastructure churn: parked vehicles hosting the L2/L3 RSU roles (PR-9,
// after "Smarter Cities with Parked Cars as Roadside Units").
//
// The logical roles — node ids, grid coordinates, wiring — stay exactly the
// RsuGrid the paper deploys; what churns is the *host* backing each role.
// The ChurnManager owns the RoleDirectory and reacts to the mobility
// parking lifecycle:
//
//   * Initial staffing: each role binds the nearest parked vehicle within
//     host_radius_m of its grid center (lowest-id tiebreak, one role per
//     vehicle, roles staffed in RsuId order). Roles with no candidate start
//     vacant: their agent is down and their wired node is down, so queries
//     for the region ride the PR-4 failover ladder from t = 0.
//   * Graceful departure (dwell expiry): snapshot the agent's tables, elect
//     the successor deterministically (same nearest/lowest-id rule, no RNG),
//     cycle the agent through set_up(false)/set_up(true) — the reboot wipes
//     state — and unicast the snapshot as a ledgered kRoleHandoff from the
//     departing host's radio to the role node. A lost handoff falls back to
//     the reboot rebuild-from-beacons path; nothing is retried.
//   * No successor: degrade gracefully — ship the snapshot over the wire to
//     the parent L3 (L2 roles) or the nearest up sibling L3 (L3 roles), then
//     take the role down. An unreachable absorber expires the records.
//   * Abrupt departure (fault-forced force_depart): no handoff — the records
//     are ledger-accounted as expired — and the vacancy is only noticed at
//     the next detect sweep, churn_detect_delay later.
//   * Re-staffing: a vehicle parking near a vacant role schedules a fill
//     sweep role_fill_delay later; sweeps staff every vacant role they can.
//
// Record conservation (checked by the ChurnAuditor): every record held at a
// departure is delivered to a successor/absorber, in flight, or expired —
// records_at_departure == handoff_records_delivered +
// handoff_records_expired + handoff_records_in_flight at every instant.
//
// Determinism: the manager draws no RNG at all — elections are pure
// geometry + id order — and it only exists when
// HlsrgConfig::parked_rsu_hosting is set, so zero-churn runs are
// byte-identical to the fixed-RSU world.
#pragma once

#include <cstdint>

#include "core/messages.h"
#include "infra/role_directory.h"
#include "util/tagged_id.h"

namespace hlsrg {

class HlsrgService;

class ChurnManager {
 public:
  // Binds initial hosts (and downs unstaffed roles). The service must have
  // its RSU agents constructed and vehicles placed before this runs.
  explicit ChurnManager(HlsrgService& service);

  // Mobility lifecycle (forwarded by HlsrgService's MovementListener).
  void on_parked(VehicleId v);
  void on_departed(VehicleId v, bool abrupt);

  // Fault-layer seam: reboots of a vacant role are refused (there is no
  // host to boot); everything else passes through to the agent.
  void set_rsu_up(RsuId role, bool up);

  // End-of-run sweep: handoff records still in flight at the horizon are
  // ledger-accounted as expired so the conservation law closes exactly.
  void expire_in_flight();

  [[nodiscard]] const RoleDirectory& directory() const { return directory_; }
  // Corruption seam for the audit tests (mirrors the agents' mutable_*
  // table accessors); production code goes through the lifecycle hooks.
  [[nodiscard]] RoleDirectory& mutable_directory() { return directory_; }

 private:
  // Nearest eligible parked vehicle within host_radius_m of the role's
  // center (lowest id on distance ties); `exclude` skips the departing host.
  [[nodiscard]] VehicleId elect_host(RsuId role, VehicleId exclude) const;
  // Staffs `role` with `host`: binds, reboots the agent empty, brings the
  // wired node up.
  void install_host(RsuId role, VehicleId host);
  void take_role_down(RsuId role);
  // Ships `payload` from the departing host's radio to the role node.
  void send_handoff_radio(NodeId from_node,
                          std::shared_ptr<RoleHandoffPayload> payload);
  // Degradation: ships `payload` over the wire to the absorbing RSU
  // (parent L3 for L2 roles, nearest up sibling for L3 roles); expires the
  // records when no absorber is reachable.
  void send_handoff_wired(RsuId role,
                          std::shared_ptr<RoleHandoffPayload> payload);
  // Schedules one pending fill sweep `delay` from now (coalesced).
  void schedule_fill_sweep(SimTime delay);
  void fill_sweep();
  [[nodiscard]] std::shared_ptr<RoleHandoffPayload> snapshot_role(RsuId role);

  HlsrgService* svc_;
  RoleDirectory directory_;
  bool sweep_pending_ = false;
};

}  // namespace hlsrg
