// Location tables with per-level schemas and freshness expiry (paper 2.2.2).
//
// L1 tables live on vehicles dwelling at grid centers and hold full records;
// L2/L3 tables live on RSUs and hold thinning summaries. All tables evict
// entries whose last update is older than the level's expiry (2.2 min for
// L1/L2, 4.4 min for L3 — "about 1000 m" / "about 2000 m" of driving).
#pragma once

#include "core/messages.h"
#include "sim/time.h"
#include "util/flat_table.h"

namespace hlsrg {

// L1: full records, keyed by vehicle.
class L1Table {
 public:
  // Inserts/overwrites if `rec` is newer than any existing entry.
  void record(const L1Record& rec);
  void erase(VehicleId v) { table_.erase(v); }
  [[nodiscard]] const L1Record* find(VehicleId v) const { return table_.find(v); }
  // Evicts entries older than `expiry` relative to `now`; returns count.
  std::size_t purge(SimTime now, SimTime expiry);
  // Snapshot of all records (for handoff / push packets).
  [[nodiscard]] std::vector<L1Record> snapshot() const;
  void merge(const std::vector<L1Record>& records);
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  [[nodiscard]] auto begin() const { return table_.begin(); }
  [[nodiscard]] auto end() const { return table_.end(); }

 private:
  FlatTable<VehicleId, L1Record> table_;
};

// L2: {vehicle, time, sender L1 grid}.
class L2Table {
 public:
  void record(const L2Summary& s);
  [[nodiscard]] const L2Summary* find(VehicleId v) const { return table_.find(v); }
  std::size_t purge(SimTime now, SimTime expiry);
  [[nodiscard]] std::vector<L2Summary> snapshot() const;
  void merge(const std::vector<L2Summary>& records);
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  [[nodiscard]] auto begin() const { return table_.begin(); }
  [[nodiscard]] auto end() const { return table_.end(); }

 private:
  FlatTable<VehicleId, L2Summary> table_;
};

// L3: {vehicle, time, sender L2 RSU, owning L3 region}.
class L3Table {
 public:
  void record(const L3Summary& s);
  [[nodiscard]] const L3Summary* find(VehicleId v) const { return table_.find(v); }
  std::size_t purge(SimTime now, SimTime expiry);
  [[nodiscard]] std::vector<L3Summary> snapshot() const;
  void merge(const std::vector<L3Summary>& records);
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  [[nodiscard]] auto begin() const { return table_.begin(); }
  [[nodiscard]] auto end() const { return table_.end(); }

 private:
  FlatTable<VehicleId, L3Summary> table_;
};

}  // namespace hlsrg
