// Location tables with per-level schemas and freshness expiry (paper 2.2.2).
//
// L1 tables live on vehicles dwelling at grid centers and hold full records;
// L2/L3 tables live on RSUs and hold thinning summaries. All tables evict
// entries whose last update is older than the level's expiry (2.2 min for
// L1/L2, 4.4 min for L3 — "about 1000 m" / "about 2000 m" of driving).
//
// Since PR 10 the three levels share one arena-backed implementation:
// records live densely packed in ArenaTable pages (O(1) upsert/find/erase),
// and expiry runs off an ExpiryWheel armed once per live record (on insert,
// re-armed lazily at purge time when a surfaced record turns out fresh), so
// a purge costs O(surfaced items) instead of O(table) and the wheel holds
// ~one 16-byte item per record instead of one per update. The live record's
// timestamp always decides eviction with the old full-scan predicate
// (time + expiry < now), so eviction sets and times — and therefore
// determinism digests — are unchanged.
//
// Iteration (begin/end, for_each) is in dense arena order: deterministic,
// but not sorted. snapshot() is the canonical key-sorted view used for wire
// payloads and digests; unsorted_records() is the cheap bulk view for role
// handoffs, where the receiver thins and re-keys every record anyway.
#pragma once

#include <span>

#include "core/messages.h"
#include "sim/time.h"
#include "util/arena_table.h"
#include "util/expiry_wheel.h"

namespace hlsrg {

namespace detail {

// Shared level implementation; Rec must expose `VehicleId vehicle` and
// `SimTime time` members.
template <typename Rec>
class LocationTableBase {
 public:
  // Inserts/overwrites if `rec` is newer than any existing entry. Only an
  // insert arms the wheel: updates just advance the live timestamp, and
  // purge() re-arms fresh records when their item surfaces. That keeps the
  // wheel at ~one item per live record instead of one per update — under
  // beacon-rate traffic the per-update items were the table's dominant
  // footprint (nothing expires inside a short run, so they never drained).
  void record(const Rec& rec) {
    bool inserted = false;
    Rec& slot = table_.find_or_insert(rec.vehicle, rec, &inserted);
    if (!inserted) {
      if (slot.time >= rec.time) return;
      slot = rec;
      return;
    }
    wheel_.note(rec.vehicle.value(), rec.time.us());
  }

  void erase(VehicleId v) { table_.erase(v); }

  [[nodiscard]] const Rec* find(VehicleId v) const { return table_.find(v); }

  // Evicts entries older than `expiry` relative to `now`; returns count.
  // O(records whose armed time the cutoff passed), not O(table). An item
  // surfaces when the cutoff passes the time it was armed at; the LIVE
  // record's timestamp then decides. A record's armed time never exceeds
  // its live time, so `live < cutoff` implies its item surfaces in the
  // same drain — eviction sets and times are bit-identical to the full
  // scan's `time + expiry < now`. Fresh records re-arm at their current
  // timestamp (outside the drain: note() mutates the bucket list); erased
  // keys' stale items simply drop.
  std::size_t purge(SimTime now, SimTime expiry) {
    const std::int64_t cutoff = (now - expiry).us();
    std::size_t purged = 0;
    rearm_.clear();
    wheel_.drain(cutoff, [&](std::uint64_t key, std::int64_t /*armed*/) {
      const VehicleId v{static_cast<std::uint32_t>(key)};
      const Rec* rec = table_.find(v);
      if (rec == nullptr) return;
      if (rec->time.us() < cutoff) {
        table_.erase(v);
        ++purged;
      } else {
        rearm_.push_back(ExpiryWheel::Item{key, rec->time.us()});
      }
    });
    for (const ExpiryWheel::Item& it : rearm_) wheel_.note(it.key, it.time);
    return purged;
  }

  // Canonical key-sorted copy (handoff / push packets, digests).
  [[nodiscard]] std::vector<Rec> snapshot() const { return table_.snapshot(); }

  // Bulk copy in dense order — no sort, single pass (role handoffs).
  [[nodiscard]] std::vector<Rec> unsorted_records() const {
    return table_.unsorted_records();
  }

  void merge(std::span<const Rec> records) {
    for (const Rec& r : records) record(r);
  }
  void merge(const std::vector<Rec>& records) {
    merge(std::span<const Rec>{records});
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  void clear() {
    table_.clear();
    wheel_.clear();
  }

  // clear() plus returning all capacity to the OS. For tables whose duty
  // has ended: an ex-center vehicle re-elected months later rebuilds from
  // hand-offs anyway, and at scale most vehicles are ex-centers — keeping
  // peak capacity per agent "for reuse" dominated bytes-per-vehicle.
  void release() {
    table_.release();
    wheel_.release();
    rearm_ = std::vector<ExpiryWheel::Item>{};
  }

  // Heap footprint: arena pages + key index + pending wheel items.
  [[nodiscard]] std::size_t bytes() const {
    return table_.bytes() + wheel_.bytes();
  }

  [[nodiscard]] auto begin() const { return table_.begin(); }
  [[nodiscard]] auto end() const { return table_.end(); }

 private:
  ArenaTable<VehicleId, Rec> table_;
  ExpiryWheel wheel_;
  std::vector<ExpiryWheel::Item> rearm_;  // reused purge scratch
};

}  // namespace detail

// L1: full records, keyed by vehicle.
class L1Table : public detail::LocationTableBase<L1Record> {};

// L2: {vehicle, time, sender L1 grid}.
class L2Table : public detail::LocationTableBase<L2Summary> {};

// L3: {vehicle, time, sender L2 RSU, owning L3 region}.
class L3Table : public detail::LocationTableBase<L3Summary> {};

}  // namespace hlsrg
