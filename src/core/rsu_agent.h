// RSU-side HLSRG behaviour (paper 2.2.2 collection + 2.3.2 service).
//
// L2 RSUs hold {vehicle, time, sender L1 grid} summaries fed by grid-center
// table pushes and answer requests by forwarding down to the right L1 center
// or up (wired) to their L3 RSU. L3 RSUs hold {vehicle, time, sender L2,
// owner L3} summaries fed by periodic L2 pushes and by gossip with their
// wired L3 neighbors, and resolve requests across regions over the wired
// mesh.
#pragma once

#include <functional>
#include <unordered_set>

#include "core/location_table.h"
#include "core/messages.h"
#include "net/node_registry.h"
#include "service/batcher.h"
#include "service/hot_cache.h"
#include "service/service_config.h"

namespace hlsrg {

class HlsrgService;

class HlsrgRsuAgent final : public PacketSink {
 public:
  HlsrgRsuAgent(HlsrgService& service, RsuId rsu, GridLevel level,
                GridCoord coord, NodeId node);

  void on_receive(const Packet& packet, NodeId from) override;

  // Schedules the periodic push (L2) or gossip (L3) timer.
  void start_timers();

  // Crash/reboot hook (fault layer, via HlsrgService::set_rsu_up). Down, the
  // RSU counts and discards every arriving packet and its timers idle (they
  // keep rescheduling so the event cadence is stable). Rebooting loses all
  // state — tables and query dedup — and the RSU refills from child
  // re-registration: update broadcasts, grid-center pushes, L2 summaries,
  // and L3 gossip.
  void set_up(bool up);
  [[nodiscard]] bool up() const { return up_; }

  // Service-tier knobs (HlsrgService::configure_tier fan-out).
  void configure_tier(const ServiceTierConfig& cfg);
  // Peek: a fresh hot-destination cache entry for `dst` exists right now.
  // Does not count as a probe (admission uses it to pick the fast path; the
  // hit/miss is booked when the query actually arrives here).
  [[nodiscard]] bool cache_fresh(VehicleId dst);
  [[nodiscard]] std::size_t cached_records() const { return cache_.size(); }
  [[nodiscard]] std::size_t pending_batches() const {
    return batcher_.pending_batches();
  }

  [[nodiscard]] GridLevel level() const { return level_; }
  [[nodiscard]] GridCoord coord() const { return coord_; }
  [[nodiscard]] const L2Table& l2_table() const { return l2_table_; }
  [[nodiscard]] const L3Table& l3_table() const { return l3_table_; }
  [[nodiscard]] const L1Table& full_table() const { return full_table_; }

  // Mutable table access for tests only: the audit tests corrupt entries in
  // place to prove the auditors catch them. Protocol code must not use these.
  [[nodiscard]] L2Table& mutable_l2_table() { return l2_table_; }
  [[nodiscard]] L3Table& mutable_l3_table() { return l3_table_; }
  [[nodiscard]] L1Table& mutable_full_table() { return full_table_; }

 private:
  using QueryId = QueryTracker::QueryId;

  void handle_query_l2(const QueryPayload& query);
  void handle_query_l3(const QueryPayload& query);
  void push_summary_to_l3();
  void gossip_to_neighbors();
  // Forwards a request down to the L1 grid center holding the detail.
  void forward_down_to_l1(const QueryPayload& query, GridCoord l1);
  // Wired-plane failover: when the backhaul send failed, escalate the
  // request over the radio — to the nearest reachable L3 RSU (L2 side) or
  // straight to `target` (L3 side).
  void escalate_to_l3_by_radio(const QueryPayload& query);
  void escalate_by_radio(const Packet& pkt, NodeId target, const char* route);

  // --- service tier ---------------------------------------------------------
  // Sends a query request over the wire, through the batching window when
  // the tier enables it; failed sends run the normal failover escalation.
  void send_query_wired(const QueryPayload& query, NodeId dest);
  void enqueue_for_batch(const QueryPayload& query, NodeId dest);
  void flush_batch(NodeId dest, VehicleId target);
  // Failover path shared by direct and batched sends.
  void wired_query_failed(const QueryPayload& query, NodeId dest);
  // Fresh record arrived on the update plane: drop any staler cache entry.
  void invalidate_cache(VehicleId vehicle, SimTime fresh_time);
  // Serving side: warm the first L2 RSU on the query's path.
  void send_cache_fill(const L1Record& record, const QueryPayload& query);
  // Routes one request to the level handler.
  void dispatch_query(const QueryPayload& query);
  // Serving capacity: runs `lookup` after this RSU's serial work queue
  // drains (rsu_lookup_time per lookup; a whole batch is one lookup).
  // Immediate when the tier is off or the lookup time is zero.
  void schedule_lookup(std::function<void()> lookup);

  HlsrgService* svc_;
  RsuId rsu_;
  GridLevel level_;
  GridCoord coord_;
  NodeId node_;
  bool up_ = true;
  L2Table l2_table_;
  L3Table l3_table_;
  // Full-record cache at L2 RSUs. The pushed tables carry full records and
  // RSUs have "unlimited storage"; keeping them lets the RSU "act as the
  // location server of this request" (paper 2.3.2) instead of bouncing the
  // query back to a possibly-empty grid center. The thinned l2_table_ is
  // what flows upward.
  L1Table full_table_;
  // Requests already processed here, keyed by QueryPayload::dedup_key()
  // (duplicate suppression across the mesh, per attempt).
  std::unordered_set<std::uint64_t> seen_queries_;
  // Service tier: hot-destination cache + batching window. Both idle (and
  // cost nothing) until configure_tier enables them.
  HotDestinationCache cache_;
  QueryBatcher batcher_;
  // Serving capacity: when this RSU's serial lookup queue drains. Lookups
  // scheduled while busy start here (FIFO by arrival order).
  SimTime busy_until_{};
};

}  // namespace hlsrg
