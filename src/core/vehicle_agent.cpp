#include "core/vehicle_agent.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/hlsrg_service.h"
#include "service/admission.h"
#include "util/check.h"

namespace hlsrg {

HlsrgVehicleAgent::HlsrgVehicleAgent(HlsrgService& service, VehicleId vehicle,
                                     NodeId node)
    : svc_(&service), vehicle_(vehicle), node_(node) {
  // Stagger per-vehicle collection ticks across the push period. The draw
  // fixes this vehicle's phase grid; the timer itself is armed lazily on
  // center entry (arm_collection_timer), not here — vehicles that never pull
  // center duty never hold a standing event.
  const double jitter =
      svc_->sim().protocol_rng().uniform(0.0, svc_->cfg().l2_push_period.sec());
  collection_phase_ = SimTime::from_sec(jitter);
  // Ignition announcement: a vehicle entering the network updates once so
  // the service can locate it before its first turn/boundary crossing.
  const double boot =
      svc_->sim().protocol_rng().uniform(0.5, 5.0);
  svc_->sim().schedule_after(SimTime::from_sec(boot),
                             [this] { send_initial_update(); });
  // Establish center-duty status for the starting position; parked vehicles
  // never fire handle_moved and would otherwise never serve.
  const Vec2 here = svc_->vehicle_pos(vehicle_);
  handle_moved(here, here);
}

void HlsrgVehicleAgent::send_initial_update() {
  const MobilityModel& mob = svc_->mobility();
  const Vec2 pos = mob.position(vehicle_);
  auto payload = std::make_shared<UpdatePayload>();
  L1Record rec;
  rec.vehicle = vehicle_;
  rec.pos = svc_->observed_pos(pos);  // GPS reading; noisy under fault plans
  rec.dir = mob.heading(vehicle_);
  rec.time = svc_->sim().now();
  rec.l1 = svc_->hierarchy().l1_at(pos);
  rec.on_artery =
      svc_->hierarchy().on_selected_artery(mob.current_road(vehicle_));
  payload->record = rec;
  payload->old_l1 = rec.l1;
  payload->grid_changed = false;
  svc_->metrics().update_packets_originated++;
  svc_->sim().count_region_update(rec.pos);
  svc_->metrics().update_transmissions++;
  svc_->sim().trace_event(
      {{}, TraceEventKind::kUpdateSent, vehicle_, VehicleId{}, rec.pos, 0});
  const int receivers = svc_->medium().broadcast(
      node_, svc_->make_packet(PacketKind::kLocationUpdate, node_, payload));
  svc_->sim().instant_span(SpanKind::kUpdate, SpanStatus::kOk,
                           vehicle_.value(), kNoQuery, rec.pos, kNoQuery, 1,
                           "ignition", receivers);
}

void HlsrgVehicleAgent::arm_collection_timer() {
  if (collection_armed_) return;
  collection_armed_ = true;
  // Next tick on this vehicle's phase grid: smallest
  // collection_phase_ + k * period strictly in the future. Re-arming after a
  // lapse lands on the same instants the old always-on timer would have hit.
  const std::int64_t period = svc_->cfg().l2_push_period.us();
  const std::int64_t phase = collection_phase_.us();
  const std::int64_t now = svc_->sim().now().us();
  std::int64_t next = phase;
  if (next <= now) next = phase + ((now - phase) / period + 1) * period;
  svc_->sim().schedule_after(SimTime::from_us(next - now),
                             [this] { collection_tick(); });
}

void HlsrgVehicleAgent::collection_tick() {
  if (!in_center_) {
    // Duty ended since the last tick: let the timer lapse. The next center
    // entry re-arms onto the same phase grid.
    collection_armed_ = false;
    return;
  }
  table_.purge(svc_->sim().now(), svc_->cfg().l1_expiry);
  if (!table_.empty()) push_table_to_l2();
  svc_->sim().schedule_after(svc_->cfg().l2_push_period,
                             [this] { collection_tick(); });
}

void HlsrgVehicleAgent::push_table_to_l2() {
  if (!svc_->cfg().use_rsus || svc_->rsus() == nullptr) return;
  auto payload = std::make_shared<TablePayload>();
  payload->l1 = center_cell_;
  payload->records = table_.unsorted_records();
  const GridCoord l2 = GridHierarchy::parent(center_cell_, GridLevel::kL2);
  const NodeId rsu = svc_->rsus()->node_at(l2, GridLevel::kL2);
  svc_->metrics().aggregation_packets++;
  svc_->sim().trace_event({{}, TraceEventKind::kTablePush, vehicle_,
                           VehicleId{}, svc_->vehicle_pos(vehicle_), 0});
  svc_->gpsr().send(node_, svc_->registry().position(rsu), rsu,
                    svc_->make_packet(PacketKind::kTablePush, node_, payload),
                    &svc_->metrics().aggregation_transmissions);
}

L1Record HlsrgVehicleAgent::record_at_crossing(GridCoord l1,
                                               IntersectionId node,
                                               SegmentId out_seg) {
  const RoadNetwork& net = svc_->network();
  const Segment& out = net.segment(out_seg);
  L1Record rec;
  rec.vehicle = vehicle_;
  // GPS reading of the intersection; noisy under fault plans. The l1 cell
  // stays the rule engine's (road-topology) decision — map-matching keeps
  // grid bookkeeping consistent even when the reported fix wanders.
  rec.pos = svc_->observed_pos(net.position(node));
  rec.dir = out.unit_dir;
  rec.time = svc_->sim().now();
  rec.l1 = l1;
  rec.on_artery = svc_->hierarchy().on_selected_artery(out.road);
  return rec;
}

// ---------------------------------------------------------------------------
// Location updates (paper 2.2.1)
// ---------------------------------------------------------------------------

void HlsrgVehicleAgent::handle_intersection_pass(IntersectionId node,
                                                 SegmentId in_seg,
                                                 SegmentId out_seg) {
  const UpdateDecision d = svc_->rules().evaluate(node, in_seg, out_seg);
  if (d.send) send_update(d, node, out_seg);
}

void HlsrgVehicleAgent::send_update(const UpdateDecision& decision,
                                    IntersectionId node, SegmentId out_seg) {
  auto payload = std::make_shared<UpdatePayload>();
  payload->record = record_at_crossing(decision.new_l1, node, out_seg);
  payload->old_l1 = decision.old_l1;
  payload->grid_changed = decision.grid_changed;
  const Packet pkt = svc_->make_packet(PacketKind::kLocationUpdate, node_, payload);
  svc_->metrics().update_packets_originated++;
  svc_->sim().count_region_update(payload->record.pos);
  svc_->metrics().update_transmissions++;
  svc_->sim().trace_event({{}, TraceEventKind::kUpdateSent, vehicle_,
                           VehicleId{}, payload->record.pos, 0});
  const int receivers = svc_->medium().broadcast(node_, pkt);
  svc_->sim().instant_span(SpanKind::kUpdate, SpanStatus::kOk,
                           vehicle_.value(), kNoQuery, payload->record.pos,
                           kNoQuery, 1, "crossing", receivers);
}

// ---------------------------------------------------------------------------
// Grid-center duty (paper 2.2.2)
// ---------------------------------------------------------------------------

void HlsrgVehicleAgent::handle_moved(Vec2 /*before*/, Vec2 after) {
  const GridCoord cell = svc_->hierarchy().l1_at(after);
  const Vec2 center = svc_->hierarchy().center_pos(cell, GridLevel::kL1);
  const bool now_in =
      distance(after, center) <= svc_->cfg().center_radius_m;
  if (now_in && (!in_center_ || !(cell == center_cell_))) {
    if (in_center_) leave_center();  // jumped straight into another center
    in_center_ = true;
    center_cell_ = cell;
    table_.clear();  // fresh duty; peers' hand-offs will repopulate
    arm_collection_timer();
  } else if (!now_in && in_center_) {
    leave_center();
  }
}

void HlsrgVehicleAgent::leave_center() {
  HLSRG_CHECK(in_center_);
  in_center_ = false;
  table_.purge(svc_->sim().now(), svc_->cfg().l1_expiry);
  if (table_.empty()) {
    table_.release();
    return;
  }
  auto payload = std::make_shared<TablePayload>();
  payload->l1 = center_cell_;
  payload->records = table_.unsorted_records();

  // "geographic broadcast their own table in the range of the intersection"
  const Packet handoff = svc_->make_packet(PacketKind::kTableHandoff, node_, payload);
  svc_->metrics().aggregation_packets++;
  svc_->metrics().aggregation_transmissions++;
  svc_->sim().trace_event({{}, TraceEventKind::kTableHandoff, vehicle_,
                           VehicleId{}, svc_->vehicle_pos(vehicle_), 0});
  svc_->medium().broadcast(node_, handoff);

  // "and send the table to their corresponding Level 2 grid center, a RSU"
  push_table_to_l2();
  // Duty is over: release, don't clear — at scale most vehicles are
  // ex-centers, and each clear()'d table would keep its peak capacity
  // (pages + index + wheel) alive for the rest of the run.
  table_.release();
}

// ---------------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------------

void HlsrgVehicleAgent::on_receive(const Packet& packet, NodeId /*from*/) {
  switch (packet.kind) {
    case PacketKind::kLocationUpdate: {
      if (!in_center_) return;
      const auto& u = payload_as<UpdatePayload>(packet);
      if (u.grid_changed && u.old_l1 == center_cell_ &&
          !(u.record.l1 == center_cell_)) {
        // "the receivers in the old Level 1 grid will delete its information"
        table_.erase(u.record.vehicle);
      } else {
        // "the Level 1 grid centers in A's communication range have to
        // receive this packet" — every audible center stores the record (its
        // l1 field says which grid the vehicle actually entered).
        table_.record(u.record);
      }
      return;
    }
    case PacketKind::kTableHandoff: {
      if (!in_center_) return;
      const auto& t = payload_as<TablePayload>(packet);
      if (t.l1 == center_cell_) table_.merge(t.records);
      return;
    }
    case PacketKind::kQueryRequest:
      handle_center_request(packet);
      return;
    case PacketKind::kServerClaim: {
      const auto& c = payload_as<ServerClaimPayload>(packet);
      if (EventHandle* timer = elections_.find(c.dedup_key())) {
        svc_->sim().cancel(*timer);
        elections_.erase(c.dedup_key());
      }
      settled_elections_.insert(c.dedup_key());
      return;
    }
    case PacketKind::kNotification: {
      const auto& n = payload_as<NotificationPayload>(packet);
      if (n.target == vehicle_) answer_notification(n);
      return;
    }
    case PacketKind::kAck: {
      const auto& a = payload_as<AckPayload>(packet);
      if (Pending* p = pending_.find(a.query_id)) {
        svc_->sim().cancel(p->timeout);
        pending_.erase(a.query_id);
        svc_->tracker().succeed(a.query_id);
      }
      return;
    }
    default:
      return;  // other kinds are RSU-only
  }
}

// ---------------------------------------------------------------------------
// Location service at an L1 center (paper 2.3.2, Level-1 case)
// ---------------------------------------------------------------------------

void HlsrgVehicleAgent::handle_center_request(const Packet& packet) {
  if (!in_center_) return;
  const auto& q = payload_as<QueryPayload>(packet);
  if (settled_elections_.contains(q.dedup_key()) ||
      elections_.contains(q.dedup_key())) {
    return;
  }
  // First receiver relays the request once within the intersection so every
  // center vehicle participates in the back-off election. Under admission
  // overload the relay is suppressed — shedding radio airtime is the
  // protocol-side half of load shedding; the election still runs from
  // whatever centers heard the original send.
  if (relayed_requests_.insert(q.dedup_key()) && !svc_->overloaded()) {
    svc_->metrics().query_transmissions++;
    svc_->medium().broadcast(node_, packet);
  }
  run_election(q);
}

void HlsrgVehicleAgent::run_election(const QueryPayload& query) {
  table_.purge(svc_->sim().now(), svc_->cfg().l1_expiry);
  const bool holder = table_.find(query.target) != nullptr;
  const auto& cfg = svc_->cfg();
  const int lo = holder ? cfg.holder_slots_lo : cfg.nonholder_slots_lo;
  const int hi = holder ? cfg.holder_slots_hi : cfg.nonholder_slots_hi;
  const auto slots = svc_->sim().protocol_rng().uniform_int(lo, hi);
  const SimTime delay =
      SimTime::from_us(cfg.election_slot.us() * slots);
  // Copy the query payload; the packet may be gone when the timer fires.
  const QueryPayload q = query;
  elections_[q.dedup_key()] = svc_->sim().schedule_after(
      delay, [this, q] { win_election(q); });
}

void HlsrgVehicleAgent::win_election(const QueryPayload& query) {
  // Election timers fire with no span context; re-anchor to the query root.
  SpanScope anchor(svc_->sim(), svc_->tracker().span_of(query.query_id));
  elections_.erase(query.dedup_key());
  settled_elections_.insert(query.dedup_key());
  // Announce so other center vehicles stop their back-off.
  auto claim = std::make_shared<ServerClaimPayload>();
  claim->query_id = query.query_id;
  claim->attempt = query.attempt;
  svc_->metrics().query_transmissions++;
  svc_->medium().broadcast(node_,
                           svc_->make_packet(PacketKind::kServerClaim, node_, claim));

  table_.purge(svc_->sim().now(), svc_->cfg().l1_expiry);
  if (const L1Record* rec = table_.find(query.target)) {
    svc_->metrics().server_lookup_hits++;
    svc_->sim().count_region_served(svc_->vehicle_pos(vehicle_));
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kOk,
                             vehicle_.value(), query.target.value(),
                             svc_->vehicle_pos(vehicle_), query.query_id, 1);
    serve(*rec, query);
  } else {
    svc_->metrics().server_lookup_misses++;
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kFailed,
                             vehicle_.value(), query.target.value(),
                             svc_->vehicle_pos(vehicle_), query.query_id, 1);
    forward_up(query);
  }
}

void HlsrgVehicleAgent::serve(const L1Record& target_record,
                              const QueryPayload& query) {
  svc_->send_notification(node_, target_record, query);
}

void HlsrgVehicleAgent::forward_up(const QueryPayload& query) {
  if (!svc_->cfg().use_rsus || svc_->rsus() == nullptr) return;  // dead end
  const GridCoord l2 = GridHierarchy::parent(center_cell_, GridLevel::kL2);
  const NodeId rsu = svc_->rsus()->node_at(l2, GridLevel::kL2);
  // "send its own table and the Sv's request packet to its corresponding
  // Level 2 RSU".
  if (!table_.empty()) {
    auto tbl = std::make_shared<TablePayload>();
    tbl->l1 = center_cell_;
    tbl->records = table_.unsorted_records();
    svc_->metrics().aggregation_packets++;
    svc_->gpsr().send(node_, svc_->registry().position(rsu), rsu,
                      svc_->make_packet(PacketKind::kTablePush, node_, tbl),
                      &svc_->metrics().aggregation_transmissions);
  }
  auto q = std::make_shared<QueryPayload>(query);
  svc_->gpsr().send(node_, svc_->registry().position(rsu), rsu,
                    svc_->make_packet(PacketKind::kQueryRequest, node_, q),
                    &svc_->metrics().query_transmissions);
}

// ---------------------------------------------------------------------------
// Own queries (paper 2.3.1 + the 5 s fallback)
// ---------------------------------------------------------------------------

void HlsrgVehicleAgent::start_query(QueryId qid, VehicleId target,
                                    NodeId preferred) {
  send_request(qid, target, /*attempt=*/1, preferred);
}

void HlsrgVehicleAgent::send_request(QueryId qid, VehicleId target,
                                     int attempt, NodeId preferred) {
  // Covers the first attempt (already under the root via issue_query) and
  // retries from the ack-timeout timer, which fire context-free.
  SpanScope anchor(svc_->sim(), svc_->tracker().span_of(qid));
  const Vec2 my_pos = svc_->vehicle_pos(vehicle_);
  auto q = std::make_shared<QueryPayload>();
  q->query_id = qid;
  q->attempt = attempt;
  q->src_vehicle = vehicle_;
  q->src_node = node_;
  q->src_pos = my_pos;
  q->target = target;
  const Packet pkt = svc_->make_packet(PacketKind::kQueryRequest, node_, q);
  svc_->metrics().query_packets_originated++;

  const GridHierarchy& h = svc_->hierarchy();
  const GridCoord l1 = h.l1_at(my_pos);

  // Destination of this attempt: the caller's pinned RSU when given
  // (service-tier cached serve), else the nearest level center for the
  // first try and the L3 RSU directly for the fallback.
  bool to_l1_center = true;
  NodeId rsu_node;
  Vec2 dest_pos = h.center_pos(l1, GridLevel::kL1);
  if (preferred.valid()) {
    to_l1_center = false;
    rsu_node = preferred;
  } else if (svc_->cfg().use_rsus && svc_->rsus() != nullptr) {
    const NodeId l2_node =
        svc_->rsus()->node_at(GridHierarchy::parent(l1, GridLevel::kL2),
                              GridLevel::kL2);
    const NodeId l3_node =
        svc_->rsus()->node_at(GridHierarchy::parent(l1, GridLevel::kL3),
                              GridLevel::kL3);
    if (attempt > 1) {
      // Fallback: "send a location request packet to its nearest Level 3 RSU
      // directly".
      to_l1_center = false;
      rsu_node = l3_node;
      if (attempt > 3 && svc_->cfg().enable_failover) {
        // Late retries rotate across L3 RSUs by distance (attempt 4 hits
        // the second-nearest, and so on) — if the home L3 is down, some
        // sibling still owns the target's region via L3 gossip. Rotation
        // waits until the home L3 has eaten two direct attempts: abandoning
        // a *healthy* home L3 (whose region summaries are freshest) costs
        // more than one extra timeout against a dead one.
        std::vector<std::pair<double, NodeId>> l3s;
        for (const RsuGrid::Rsu& r : svc_->rsus()->all()) {
          if (r.level == GridLevel::kL3) {
            l3s.emplace_back(distance(my_pos, r.pos), r.node);
          }
        }
        std::sort(l3s.begin(), l3s.end(),
                  [](const auto& a, const auto& b) {
                    return a.first != b.first ? a.first < b.first
                                              : a.second.value() < b.second.value();
                  });
        rsu_node = l3s[static_cast<std::size_t>(attempt - 3) % l3s.size()]
                       .second;
      }
    } else {
      // Nearest level center (L1 center vs L2 RSU vs L3 RSU).
      const double d1 = distance(my_pos, dest_pos);
      const double d2 = distance(my_pos, svc_->registry().position(l2_node));
      const double d3 = distance(my_pos, svc_->registry().position(l3_node));
      if (d2 < d1 && d2 <= d3) {
        to_l1_center = false;
        rsu_node = l2_node;
      } else if (d3 < d1 && d3 < d2) {
        to_l1_center = false;
        rsu_node = l3_node;
      }
    }
  }

  if (attempt > 1) {
    svc_->metrics().query_retries++;
    svc_->sim().observability().add("query.retries");
    svc_->sim().instant_span(SpanKind::kRetry, SpanStatus::kOk,
                             vehicle_.value(), target.value(), my_pos, qid, -1,
                             to_l1_center ? "center" : "l3_direct", attempt);
  }

  if (to_l1_center) {
    svc_->gpsr().send(node_, dest_pos, std::nullopt, pkt,
                      &svc_->metrics().query_transmissions,
                      /*deliver=*/{}, /*fail=*/{},
                      /*delivery_radius=*/svc_->cfg().center_radius_m);
  } else {
    svc_->gpsr().send(node_, svc_->registry().position(rsu_node), rsu_node,
                      pkt, &svc_->metrics().query_transmissions);
  }

  Pending pending;
  pending.target = target;
  pending.attempt = attempt;
  pending.timeout = svc_->sim().schedule_after(
      retry_timeout(svc_->cfg(), attempt),
      [this, qid, target, attempt] { on_ack_timeout(qid, target, attempt); });
  pending_[qid] = pending;
}

void HlsrgVehicleAgent::on_ack_timeout(QueryId qid, VehicleId target,
                                       int attempt) {
  pending_.erase(qid);
  if (attempt >= svc_->cfg().max_attempts) {
    svc_->tracker().fail(qid);
    return;
  }
  // Admission seam for the retry path: a shed retry fails the query right
  // here — counted, settled, never silently stranded.
  if (QueryAdmission* adm = svc_->admission();
      adm != nullptr && !adm->admit_retry(qid, attempt + 1)) {
    svc_->tracker().fail(qid);
    return;
  }
  send_request(qid, target, attempt + 1);
}

// ---------------------------------------------------------------------------
// Dv side: answer a notification with an ACK straight back to Sv.
// ---------------------------------------------------------------------------

void HlsrgVehicleAgent::answer_notification(
    const NotificationPayload& notification) {
  if (!answered_.insert(notification.query_id)) return;
  auto ack = std::make_shared<AckPayload>();
  ack->query_id = notification.query_id;
  ack->responder = vehicle_;
  ack->responder_pos = svc_->vehicle_pos(vehicle_);
  const Packet pkt = svc_->make_packet(PacketKind::kAck, node_, ack);
  svc_->metrics().query_packets_originated++;
  svc_->metrics().acks_sent++;
  svc_->sim().trace_event({{}, TraceEventKind::kAckSent, vehicle_,
                           notification.src_vehicle,
                           svc_->vehicle_pos(vehicle_),
                           notification.query_id});
  // The ACK leg stays open until the query settles (the source's tracker
  // closes it); nest it under the propagated context when one survived the
  // flood, else directly under the query root.
  Simulator& sim = svc_->sim();
  SpanScope anchor(sim, sim.active_span() != kNoSpan
                            ? sim.active_span()
                            : svc_->tracker().span_of(notification.query_id));
  const SpanId ack_span = sim.begin_span(
      SpanKind::kAckLeg, vehicle_.value(), notification.src_vehicle.value(),
      svc_->vehicle_pos(vehicle_), notification.query_id);
  SpanScope scope(sim, ack_span);
  svc_->gpsr().send(node_, notification.src_pos, notification.src_node, pkt,
                    &svc_->metrics().query_transmissions);
}

}  // namespace hlsrg
