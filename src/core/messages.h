// HLSRG wire messages (packet kinds and payloads).
//
// Field sets mirror the paper's table schemas: an L1 update carries full
// detail {location, time, direction, L1 grid, id}; L2 summaries carry
// {vehicle id, time, sender L1 grid}; L3 summaries {vehicle id, time, sender
// L2 RSU} (we keep the grid coordinate, which identifies the L2 RSU).
#pragma once

#include <vector>

#include "core/location_service.h"
#include "geom/vec2.h"
#include "grid/hierarchy.h"
#include "net/packet.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Packet kinds live in the shared PacketKind enum (net/packet.h); HLSRG uses
// the kLocationUpdate..kAck block.

// Full L1 record for one vehicle (paper: "location, time, direction, Level 1
// grid number and ID").
struct L1Record {
  VehicleId vehicle;
  Vec2 pos;
  Vec2 dir;  // unit heading when the update was sent
  SimTime time;
  GridCoord l1;
  // True if the update was sent from a selected main artery; selects the
  // notification strategy (corridor vs grid-region geocast).
  bool on_artery = false;
};

struct UpdatePayload final : PayloadBase {
  L1Record record;
  // Grid transition info so old-grid centers can evict the vehicle.
  GridCoord old_l1;
  bool grid_changed = false;
};

// Table handoff within the intersection and table push to the L2 RSU share
// a payload: a snapshot of full L1 records for one grid.
struct TablePayload final : PayloadBase {
  GridCoord l1;
  std::vector<L1Record> records;
};

// L2 table entry schema.
struct L2Summary {
  VehicleId vehicle;
  SimTime time;
  GridCoord l1;  // sender L1 grid
};

struct L2SummaryPayload final : PayloadBase {
  GridCoord l2;
  std::vector<L2Summary> records;
};

// L3 table entry schema; owner_l3 says which L3 region holds the detail.
struct L3Summary {
  VehicleId vehicle;
  SimTime time;
  GridCoord l2;       // sender L2 RSU
  GridCoord owner_l3; // L3 region of that L2
};

struct L3GossipPayload final : PayloadBase {
  std::vector<L3Summary> records;
};

struct QueryPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  // Source-side attempt number (1 = to nearest level center, 2 = the 5 s
  // fallback straight to the L3 RSU). Deduplication keys include it so the
  // fallback is not swallowed by first-attempt bookkeeping.
  int attempt = 1;
  VehicleId src_vehicle;
  NodeId src_node;
  Vec2 src_pos;
  VehicleId target;
  // True when this request is an L3->L3 forward (such requests are answered
  // from the receiver's own table and never re-forwarded sideways).
  bool from_l3 = false;
  // First L2 RSU that forwarded the request upward; the answering RSU sends
  // a kCacheFill back here so the hot-destination cache warms on the reverse
  // path. Invalid when the request never crossed an L2 RSU.
  NodeId via_rsu;

  // Deduplication key distinguishing retry attempts of the same query.
  [[nodiscard]] std::uint64_t dedup_key() const {
    return (static_cast<std::uint64_t>(query_id) << 8) |
           static_cast<std::uint64_t>(attempt & 0xff);
  }
};

// Service-tier batching window (kQueryBatch): co-destined requests held at
// an L2/L3 RSU and flushed as one wired lookup. The receiver unbatches and
// runs each request through its normal dedup + handling path.
struct BatchedQueryPayload final : PayloadBase {
  VehicleId target;
  std::vector<QueryPayload> queries;
};

// Service-tier cache fill (kCacheFill): the answering RSU hands the record
// it served back to the first L2 RSU on the query's path.
struct CacheFillPayload final : PayloadBase {
  L1Record record;
};

// Role handoff (kRoleHandoff): a departing L2/L3 role host ships its whole
// table state to the elected successor (radio unicast) or, when no successor
// exists, to the parent/sibling RSU absorbing the orphaned region (wired).
// Receivers merge the snapshots through the normal newer-wins table paths,
// so a handoff that races fresh updates never resurrects stale records.
struct RoleHandoffPayload final : PayloadBase {
  RsuId role;            // logical role whose tables are being handed off
  GridLevel level = GridLevel::kL2;
  std::vector<L1Record> full_records;
  std::vector<L2Summary> l2_records;
  std::vector<L3Summary> l3_records;

  [[nodiscard]] std::size_t record_count() const {
    return full_records.size() + l2_records.size() + l3_records.size();
  }
};

struct ServerClaimPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  int attempt = 1;
  [[nodiscard]] std::uint64_t dedup_key() const {
    return (static_cast<std::uint64_t>(query_id) << 8) |
           static_cast<std::uint64_t>(attempt & 0xff);
  }
};

struct NotificationPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId target;
  VehicleId src_vehicle;
  NodeId src_node;
  Vec2 src_pos;
};

struct AckPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId responder;
  Vec2 responder_pos;
};

}  // namespace hlsrg
