#include "core/location_table.h"

namespace hlsrg {

namespace {
// Shared newest-wins upsert over a FlatTable keyed by vehicle; Entry must
// expose a SimTime `time` member.
template <typename Table, typename Entry>
void record_newest(Table& table, VehicleId v, const Entry& e) {
  if (const Entry* existing = table.find(v);
      existing != nullptr && existing->time >= e.time) {
    return;
  }
  table.upsert(v, e);
}

template <typename Table>
std::size_t purge_older(Table& table, SimTime now, SimTime expiry) {
  return table.erase_if([now, expiry](VehicleId, const auto& e) {
    return e.time + expiry < now;
  });
}
}  // namespace

void L1Table::record(const L1Record& rec) {
  record_newest(table_, rec.vehicle, rec);
}

std::size_t L1Table::purge(SimTime now, SimTime expiry) {
  return purge_older(table_, now, expiry);
}

std::vector<L1Record> L1Table::snapshot() const {
  std::vector<L1Record> out;
  out.reserve(table_.size());
  for (const auto& [v, rec] : table_) out.push_back(rec);
  return out;
}

void L1Table::merge(const std::vector<L1Record>& records) {
  for (const L1Record& r : records) record(r);
}

void L2Table::record(const L2Summary& s) {
  record_newest(table_, s.vehicle, s);
}

std::size_t L2Table::purge(SimTime now, SimTime expiry) {
  return purge_older(table_, now, expiry);
}

std::vector<L2Summary> L2Table::snapshot() const {
  std::vector<L2Summary> out;
  out.reserve(table_.size());
  for (const auto& [v, rec] : table_) out.push_back(rec);
  return out;
}

void L2Table::merge(const std::vector<L2Summary>& records) {
  for (const L2Summary& r : records) record(r);
}

void L3Table::record(const L3Summary& s) {
  record_newest(table_, s.vehicle, s);
}

std::size_t L3Table::purge(SimTime now, SimTime expiry) {
  return purge_older(table_, now, expiry);
}

std::vector<L3Summary> L3Table::snapshot() const {
  std::vector<L3Summary> out;
  out.reserve(table_.size());
  for (const auto& [v, rec] : table_) out.push_back(rec);
  return out;
}

void L3Table::merge(const std::vector<L3Summary>& records) {
  for (const L3Summary& r : records) record(r);
}

}  // namespace hlsrg
