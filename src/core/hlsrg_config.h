// Tunables for the HLSRG protocol. Defaults follow the paper where it gives
// numbers (expiry times, back-off windows, the 5 s retry); the rest are
// engineering choices documented inline and swept by the ablation benches.
#pragma once

#include "sim/time.h"

namespace hlsrg {

struct HlsrgConfig {
  // --- geometry -----------------------------------------------------------
  // Radius around a grid-center intersection within which a vehicle counts
  // as "driving in the grid center" (collects updates, serves queries). The
  // paper speaks of "the range of the intersection"; 150 m covers the
  // intersection plus red-light queues on its four approaches, and keeps the
  // expected center occupancy around two vehicles at the paper's densities.
  double center_radius_m = 150.0;
  // How far ahead of the recorded position the directional road geocast
  // searches for the destination. 2.2 min of travel at ~30 km/h is ~1100 m.
  double search_ahead_m = 1200.0;
  // Corridor half-width for the road geocast; covers the road plus adjacent
  // queueing space at intersections.
  double corridor_half_width_m = 60.0;
  // Extra slack behind the recorded position (the destination may have been
  // updated slightly ahead of where it now is after queueing).
  double corridor_behind_m = 150.0;

  // --- table freshness (paper 2.2.2) --------------------------------------
  SimTime l1_expiry = SimTime::from_min(2.2);
  SimTime l2_expiry = SimTime::from_min(2.2);
  SimTime l3_expiry = SimTime::from_min(4.4);

  // --- aggregation cadence -------------------------------------------------
  // L2 RSUs push summaries to their L3 RSU "periodically" (paper); cadence
  // is an engineering choice.
  SimTime l2_push_period = SimTime::from_sec(10.0);
  // L3 RSUs exchange summaries so "any Level 3 RSU owns vehicle's
  // information"; realized as periodic neighbor gossip.
  SimTime l3_gossip_period = SimTime::from_sec(15.0);

  // --- query handling (paper 2.3) ------------------------------------------
  // Back-off election at the L1 center: holders draw slots 0..15, non-holders
  // 17..31 ("bit times" in the paper; one slot here is a contention slot).
  SimTime election_slot = SimTime::from_ms(0.2);
  int holder_slots_lo = 0;
  int holder_slots_hi = 15;
  int nonholder_slots_lo = 17;
  int nonholder_slots_hi = 31;
  // "a vehicle can send a location request packet to its nearest Level 3 RSU
  // directly if it doesn't receive an ACK after sending a request packet 5
  // seconds".
  SimTime ack_timeout = SimTime::from_sec(5.0);
  // Attempts before the query is declared failed: first try to the nearest
  // level center, then the direct-to-L3 fallback.
  int max_attempts = 2;
  // Retry backoff: attempt k waits ack_timeout * base^(k-1), capped. Base
  // 1.0 (the paper's flat 5 s) keeps timings bit-identical to the
  // pre-backoff protocol; chaos plans raise it so retries outlast outages.
  double retry_backoff_base = 1.0;
  SimTime retry_backoff_cap = SimTime::from_sec(30.0);
  // Failure escalation: when the wired plane cannot reach the home RSU the
  // sender reroutes over the radio to a sibling L3 (RSU side), and from the
  // third attempt on the requester rotates its direct-to-L3 target across
  // L3 RSUs by distance. Only ever exercised after a wired send fails or on
  // attempt > 2, so fault-free runs are untouched by the flag.
  bool enable_failover = true;

  // --- infrastructure churn (parked-cars-as-RSUs, PR-9) ---------------------
  // When true, the L2/L3 roles are not fixed hardware: each role is hosted
  // by the nearest parked vehicle within host_radius_m of its grid center
  // (lowest-id tiebreak), roles with no candidate start vacant (down), and a
  // departing host triggers deterministic successor election plus a
  // kRoleHandoff table transfer. Off (the default) nothing churn-related is
  // constructed, so runs are byte-identical to the fixed-RSU world.
  bool parked_rsu_hosting = false;
  // Eligibility radius for host candidates around the role's grid center.
  double host_radius_m = 400.0;
  // Ship the outgoing host's tables to the successor (radio) or, with no
  // successor, to the absorbing parent/sibling (wired). Off = every
  // departure is treated as abrupt: records expire and successors rebuild
  // from beacons only (the no-handoff control in bench/churn_frontier).
  bool enable_handoff = true;
  // Vacant roles are re-checked for candidates this long after a vehicle
  // parks nearby (lets the parker settle before it is drafted).
  SimTime role_fill_delay = SimTime::from_sec(2.0);
  // An abrupt (fault-forced) departure is only noticed at the next detect
  // sweep — the successor starts this much later and rebuilds from beacons.
  SimTime churn_detect_delay = SimTime::from_sec(5.0);

  // --- ablation switches ----------------------------------------------------
  // Paper rules suppress updates from vehicles driving straight on selected
  // arteries. Off = every vehicle uses the class-2 rules (A1 ablation).
  bool suppress_artery_updates = true;
  // Degenerate mode: update on every L1 boundary crossing regardless of road
  // class (the "recent researches" strawman in the paper's introduction).
  bool naive_every_crossing = false;
  // RSUs at L2/L3 centers. Off = vehicle-only collection; upward forwards
  // die and queries can only be served from L1 centers (A2 ablation).
  bool use_rsus = true;
};

// Timeout armed for query attempt k (1-based): ack_timeout * base^(k-1),
// capped. Exactly ack_timeout for every attempt when base == 1.0.
[[nodiscard]] inline SimTime retry_timeout(const HlsrgConfig& cfg,
                                           int attempt) {
  if (cfg.retry_backoff_base == 1.0) return cfg.ack_timeout;
  double scale = 1.0;
  for (int k = 1; k < attempt; ++k) scale *= cfg.retry_backoff_base;
  const double us = static_cast<double>(cfg.ack_timeout.us()) * scale;
  const double cap = static_cast<double>(cfg.retry_backoff_cap.us());
  return SimTime::from_us(static_cast<std::int64_t>(us < cap ? us : cap));
}

}  // namespace hlsrg
