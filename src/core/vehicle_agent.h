// Per-vehicle HLSRG behaviour: update sending, grid-center duty (collecting,
// hand-off, serving), query origination, election participation, and the
// Dv-side notification/ACK handshake.
#pragma once

#include "core/location_table.h"
#include "core/messages.h"
#include "core/update_rules.h"
#include "net/node_registry.h"
#include "sim/event_queue.h"
#include "util/flat_table.h"

namespace hlsrg {

class HlsrgService;

class HlsrgVehicleAgent final : public PacketSink {
 public:
  HlsrgVehicleAgent(HlsrgService& service, VehicleId vehicle, NodeId node);

  // --- PacketSink -----------------------------------------------------------
  void on_receive(const Packet& packet, NodeId from) override;

  // --- mobility hooks (called by the service) --------------------------------
  void handle_intersection_pass(IntersectionId node, SegmentId in_seg,
                                SegmentId out_seg);
  void handle_moved(Vec2 before, Vec2 after);

  // --- query origination ------------------------------------------------------
  // `preferred` (when valid) pins the first attempt's destination — used by
  // the service-tier cached-serve fast path to aim straight at the RSU whose
  // cache is warm. Retries fall back to the normal destination choice.
  void start_query(QueryTracker::QueryId qid, VehicleId target,
                   NodeId preferred = NodeId{});

  // --- introspection (tests) ---------------------------------------------------
  [[nodiscard]] bool in_center() const { return in_center_; }
  [[nodiscard]] const L1Table& table() const { return table_; }
  // Mutable table access for tests only (audit corruption injection).
  [[nodiscard]] L1Table& mutable_table() { return table_; }
  [[nodiscard]] VehicleId vehicle() const { return vehicle_; }
  [[nodiscard]] NodeId node() const { return node_; }
  // True while an own-query attempt has its retry timer armed. Between any
  // two events, every unsettled query this vehicle originated has a pending
  // entry — the invariant the AvailabilityAuditor enforces.
  [[nodiscard]] bool has_pending(QueryTracker::QueryId qid) const {
    return pending_.contains(qid);
  }
  // Attempt number of the armed retry; 0 when none pending.
  [[nodiscard]] int pending_attempt(QueryTracker::QueryId qid) const {
    const Pending* p = pending_.find(qid);
    return p == nullptr ? 0 : p->attempt;
  }
  // True while the periodic collection timer is scheduled (tests).
  [[nodiscard]] bool collection_armed() const { return collection_armed_; }

 private:
  using QueryId = QueryTracker::QueryId;

  // Builds the L1 record for an update sent while crossing an intersection
  // onto `out_seg`. Direction and road class come from the exit segment —
  // that is the road the vehicle will be found on.
  [[nodiscard]] L1Record record_at_crossing(GridCoord l1, IntersectionId node,
                                            SegmentId out_seg);

  // Sends the one-hop location-update broadcast decided by the rule engine.
  void send_update(const UpdateDecision& decision, IntersectionId node,
                   SegmentId out_seg);

  // Bootstrap announcement shortly after the vehicle enters the network, so
  // it is locatable before its first rule-triggered update.
  void send_initial_update();

  // Leaving the grid-center region: purge, hand off the table within the
  // intersection, and push it to the L2 RSU.
  void leave_center();

  // Query handling at a grid center.
  void handle_center_request(const Packet& packet);
  void run_election(const QueryPayload& query);
  void win_election(const QueryPayload& query);
  void serve(const L1Record& target_record, const QueryPayload& query);
  void forward_up(const QueryPayload& query);

  // Periodic collection: while on center duty, push the table to the L2 RSU
  // ("further periodically gather to the upper level"). The timer runs only
  // while the vehicle is on center duty: entering a center arms it onto a
  // fixed per-vehicle phase grid (jitter + k * l2_push_period), leaving lets
  // it lapse at the next tick. Most vehicles are not at a center most of the
  // time, so this drops the standing per-vehicle event (and its slab slot)
  // that the always-on timer kept alive.
  void arm_collection_timer();
  void collection_tick();
  void push_table_to_l2();

  // Own-query lifecycle.
  void send_request(QueryId qid, VehicleId target, int attempt,
                    NodeId preferred = NodeId{});
  void on_ack_timeout(QueryId qid, VehicleId target, int attempt);

  // Dv side.
  void answer_notification(const NotificationPayload& notification);

  HlsrgService* svc_;
  VehicleId vehicle_;
  NodeId node_;

  // Grid-center duty.
  bool in_center_ = false;
  bool collection_armed_ = false;
  GridCoord center_cell_;
  // Per-vehicle phase of the collection grid: ticks fire at
  // collection_phase_ + k * l2_push_period, matching the cadence the old
  // always-on timer established at construction.
  SimTime collection_phase_;
  L1Table table_;

  // The agent-local bookkeeping below holds a handful of live entries per
  // vehicle (often zero); flat vectors beat node-based hash containers on
  // both footprint and locality at this size (DESIGN.md §15).

  // Election state per (request, attempt) seen at this center; keyed by
  // QueryPayload::dedup_key().
  SmallFlatMap<std::uint64_t, EventHandle> elections_;
  SortedIdSet<std::uint64_t> settled_elections_;
  // Requests this node has already re-broadcast into the center region.
  SortedIdSet<std::uint64_t> relayed_requests_;

  // Outstanding queries this vehicle originated.
  struct Pending {
    VehicleId target;
    int attempt = 1;
    EventHandle timeout;
  };
  SmallFlatMap<QueryId, Pending> pending_;

  // Notifications already answered (duplicate geocast receptions).
  SortedIdSet<QueryId> answered_;
};

}  // namespace hlsrg
