// Per-vehicle HLSRG behaviour: update sending, grid-center duty (collecting,
// hand-off, serving), query origination, election participation, and the
// Dv-side notification/ACK handshake.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "core/location_table.h"
#include "core/messages.h"
#include "core/update_rules.h"
#include "net/node_registry.h"
#include "sim/event_queue.h"

namespace hlsrg {

class HlsrgService;

class HlsrgVehicleAgent final : public PacketSink {
 public:
  HlsrgVehicleAgent(HlsrgService& service, VehicleId vehicle, NodeId node);

  // --- PacketSink -----------------------------------------------------------
  void on_receive(const Packet& packet, NodeId from) override;

  // --- mobility hooks (called by the service) --------------------------------
  void handle_intersection_pass(IntersectionId node, SegmentId in_seg,
                                SegmentId out_seg);
  void handle_moved(Vec2 before, Vec2 after);

  // --- query origination ------------------------------------------------------
  // `preferred` (when valid) pins the first attempt's destination — used by
  // the service-tier cached-serve fast path to aim straight at the RSU whose
  // cache is warm. Retries fall back to the normal destination choice.
  void start_query(QueryTracker::QueryId qid, VehicleId target,
                   NodeId preferred = NodeId{});

  // --- introspection (tests) ---------------------------------------------------
  [[nodiscard]] bool in_center() const { return in_center_; }
  [[nodiscard]] const L1Table& table() const { return table_; }
  // Mutable table access for tests only (audit corruption injection).
  [[nodiscard]] L1Table& mutable_table() { return table_; }
  [[nodiscard]] VehicleId vehicle() const { return vehicle_; }
  [[nodiscard]] NodeId node() const { return node_; }
  // True while an own-query attempt has its retry timer armed. Between any
  // two events, every unsettled query this vehicle originated has a pending
  // entry — the invariant the AvailabilityAuditor enforces.
  [[nodiscard]] bool has_pending(QueryTracker::QueryId qid) const {
    return pending_.contains(qid);
  }
  // Attempt number of the armed retry; 0 when none pending.
  [[nodiscard]] int pending_attempt(QueryTracker::QueryId qid) const {
    const auto it = pending_.find(qid);
    return it == pending_.end() ? 0 : it->second.attempt;
  }

 private:
  using QueryId = QueryTracker::QueryId;

  // Builds the L1 record for an update sent while crossing an intersection
  // onto `out_seg`. Direction and road class come from the exit segment —
  // that is the road the vehicle will be found on.
  [[nodiscard]] L1Record record_at_crossing(GridCoord l1, IntersectionId node,
                                            SegmentId out_seg);

  // Sends the one-hop location-update broadcast decided by the rule engine.
  void send_update(const UpdateDecision& decision, IntersectionId node,
                   SegmentId out_seg);

  // Bootstrap announcement shortly after the vehicle enters the network, so
  // it is locatable before its first rule-triggered update.
  void send_initial_update();

  // Leaving the grid-center region: purge, hand off the table within the
  // intersection, and push it to the L2 RSU.
  void leave_center();

  // Query handling at a grid center.
  void handle_center_request(const Packet& packet);
  void run_election(const QueryPayload& query);
  void win_election(const QueryPayload& query);
  void serve(const L1Record& target_record, const QueryPayload& query);
  void forward_up(const QueryPayload& query);

  // Periodic collection: while on center duty, push the table to the L2 RSU
  // ("further periodically gather to the upper level").
  void collection_tick();
  void push_table_to_l2();

  // Own-query lifecycle.
  void send_request(QueryId qid, VehicleId target, int attempt,
                    NodeId preferred = NodeId{});
  void on_ack_timeout(QueryId qid, VehicleId target, int attempt);

  // Dv side.
  void answer_notification(const NotificationPayload& notification);

  HlsrgService* svc_;
  VehicleId vehicle_;
  NodeId node_;

  // Grid-center duty.
  bool in_center_ = false;
  GridCoord center_cell_;
  L1Table table_;

  // Election state per (request, attempt) seen at this center; keyed by
  // QueryPayload::dedup_key().
  std::unordered_map<std::uint64_t, EventHandle> elections_;
  std::unordered_set<std::uint64_t> settled_elections_;
  // Requests this node has already re-broadcast into the center region.
  std::unordered_set<std::uint64_t> relayed_requests_;

  // Outstanding queries this vehicle originated.
  struct Pending {
    VehicleId target;
    int attempt = 1;
    EventHandle timeout;
  };
  std::unordered_map<QueryId, Pending> pending_;

  // Notifications already answered (duplicate geocast receptions).
  std::unordered_set<QueryId> answered_;
};

}  // namespace hlsrg
