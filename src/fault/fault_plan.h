// Scripted fault schedule: the what/when/where of injected failures.
//
// A FaultPlan is pure data — a list of fault windows over the sim clock plus
// optional protocol-parameter overrides — parsed from JSON ("hlsrg-fault/v1"
// schema, see PROTOCOL.md §7) or built programmatically by the chaos
// benches. The FaultInjector (fault_injector.h) turns a plan into scheduled
// events against a live world; the plan itself knows nothing about
// simulators, so it can be round-tripped, digested, and diffed in tests.
//
// Window semantics: a window is active on [begin, end); end <= begin means
// open-ended (the fault never clears). Target addressing uses raw grid
// coordinates (level 2 or 3, col/row) so the plan model does not depend on
// the grid library; col = -1 means "every RSU at that level".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/aabb.h"
#include "report/json.h"
#include "sim/time.h"

namespace hlsrg {

enum class FaultKind : std::uint8_t {
  kRsuCrash,   // RSU halts: tables lost, radio silent, wired node down;
               // reboot at window end restarts it with empty tables
  kLinkCut,    // one wired link (target RSU <-> peer RSU) goes down
  kPartition,  // every wired link crossing the box boundary goes down
  kRadioLoss,  // receivers inside the box take extra_loss additional loss
  kGpsNoise,   // positions reported from inside the box (or anywhere, if no
               // box) get uniform per-axis noise in [-sigma_m, +sigma_m]
  kChurn,      // burst departure: at the window's begin edge, each parked
               // vehicle (inside the box, if any) abruptly departs with
               // probability depart_fraction — role hosts vanish without
               // handoff (PR-9 infrastructure churn)
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);
// nullopt for an unknown name.
[[nodiscard]] std::optional<FaultKind> fault_kind_from_name(
    const std::string& name);

struct FaultWindow {
  FaultKind kind = FaultKind::kRsuCrash;
  SimTime begin;
  SimTime end;  // end <= begin: open-ended
  // RSU addressing (kRsuCrash, kLinkCut): grid level 2 or 3; col/row of the
  // RSU's cell at that level; col < 0 targets every RSU at `level`.
  int level = 3;
  int col = -1;
  int row = -1;
  // Peer RSU (kLinkCut only).
  int peer_level = 3;
  int peer_col = -1;
  int peer_row = -1;
  // Region (kPartition, kRadioLoss, optional for kGpsNoise).
  bool has_box = false;
  Aabb box;
  double extra_loss = 0.0;  // kRadioLoss
  double sigma_m = 0.0;     // kGpsNoise
  // kChurn: per-parked-vehicle abrupt-departure probability at the begin
  // edge, drawn from the injector's fault RNG. In (0, 1].
  double depart_fraction = 0.0;

  [[nodiscard]] bool open_ended() const { return end <= begin; }
  [[nodiscard]] bool active_at(SimTime t) const {
    return t >= begin && (open_ended() || t < end);
  }
};

// Protocol-parameter overrides a plan may carry, applied by the harness to
// HlsrgConfig before the world is built. Only fields present in the JSON are
// set, so a plan can tweak one knob without freezing the others' defaults.
struct FaultProtocolOverrides {
  std::optional<int> max_attempts;
  std::optional<double> ack_timeout_sec;
  std::optional<double> retry_backoff_base;
  std::optional<double> retry_backoff_cap_sec;
  std::optional<double> l1_expiry_sec;
  std::optional<double> l2_expiry_sec;
  std::optional<double> l3_expiry_sec;

  [[nodiscard]] bool any() const {
    return max_attempts || ack_timeout_sec || retry_backoff_base ||
           retry_backoff_cap_sec || l1_expiry_sec || l2_expiry_sec ||
           l3_expiry_sec;
  }
};

struct FaultPlan {
  // Nonzero: the injector derives its RNG from this instead of the replica
  // seed, so the same fault randomness replays across seed sweeps.
  std::uint64_t fault_seed = 0;
  std::vector<FaultWindow> windows;
  FaultProtocolOverrides overrides;

  [[nodiscard]] bool empty() const {
    return windows.empty() && !overrides.any();
  }

  // FNV-1a over the full schedule + overrides; 0 only for an empty plan.
  // Folded into run digests so --audit-determinism covers fault schedules.
  [[nodiscard]] std::uint64_t digest() const;

  [[nodiscard]] JsonValue to_json() const;
  // Strict parse of the "hlsrg-fault/v1" schema; false + *error on any
  // unknown kind, bad box, or malformed field.
  [[nodiscard]] static bool from_json(const JsonValue& v, FaultPlan* out,
                                      std::string* error);
  // Convenience: read_json_file + from_json.
  [[nodiscard]] static bool load(const std::string& path, FaultPlan* out,
                                 std::string* error);
};

}  // namespace hlsrg
