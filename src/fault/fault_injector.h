// Drives a FaultPlan against a live world.
//
// arm() schedules one event per window edge on the sim clock; each edge
// flips the affected component's state — wired node/link up-down, the radio
// medium's loss zones, the RSU agents via a hook the harness installs (the
// fault library must not depend on core). All randomness (GPS noise) comes
// from the simulator's dedicated fault stream (or a plan-pinned seed split
// from it), so an armed plan never perturbs mobility/radio/workload draw
// order, and a plan with no windows schedules nothing at all — zero-fault
// runs stay event-for-event identical to fault-unaware builds.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "infra/rsu_grid.h"
#include "net/radio.h"
#include "net/wired.h"
#include "sim/simulator.h"

namespace hlsrg {

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, const FaultPlan& plan, WiredNetwork* wired,
                RadioMedium* medium, const RsuGrid* rsus);

  // Called with (rsu, up) at crash (up=false) and reboot (up=true) edges.
  // Install before arm() fires the first edge.
  void set_rsu_hook(std::function<void(RsuId, bool)> hook) {
    rsu_hook_ = std::move(hook);
  }

  // Called once per churn window at its begin edge with the window and the
  // injector's fault RNG (for the per-vehicle depart_fraction draws, so
  // burst departures never touch the mobility stream). Install before arm().
  void set_churn_hook(std::function<void(const FaultWindow&, Rng&)> hook) {
    churn_hook_ = std::move(hook);
  }

  // Schedules every window edge at or before `horizon`. Call once.
  void arm(SimTime horizon);

  // True when any fault window (of any kind) is active at `t`.
  [[nodiscard]] bool fault_active_at(SimTime t) const;

  // End times of every finite window, for time-to-recovery accounting.
  [[nodiscard]] std::vector<SimTime> finite_window_ends() const;

  // GPS reading for a vehicle truly at `p`: adds uniform per-axis noise in
  // [-sigma, +sigma] while an applicable gps_noise window is active (the
  // widest sigma wins when windows overlap), otherwise returns `p` without
  // touching the RNG.
  [[nodiscard]] Vec2 observed_pos(Vec2 p);

  [[nodiscard]] bool has_gps_noise() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  void apply(std::size_t window_index, bool begin);
  void refresh_loss_zones();
  // RSUs addressed by a window: (level, col, row), col < 0 = whole level.
  [[nodiscard]] std::vector<RsuId> rsus_matching(const FaultWindow& w) const;

  Simulator* sim_;
  FaultPlan plan_;
  WiredNetwork* wired_;
  RadioMedium* medium_;
  const RsuGrid* rsus_;
  std::function<void(RsuId, bool)> rsu_hook_;
  std::function<void(const FaultWindow&, Rng&)> churn_hook_;
  Rng rng_;
  std::vector<char> active_;  // per-window active flag
  // Links a partition window took down, to restore at its end edge.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> cut_links_;
  std::uint64_t* edges_counter_;  // "fault.window_edges"
};

}  // namespace hlsrg
