#include "fault/fault_plan.h"

#include <sstream>

namespace hlsrg {
namespace {

constexpr const char* kSchema = "hlsrg-fault/v1";

// FNV-1a, matching harness/digest.cpp so plan digests compose with the run
// state digest.
struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void mix_i64(std::int64_t v) { mix_u64(static_cast<std::uint64_t>(v)); }
  void mix_double(double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix_u64(bits);
  }
};

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

// [lo_x, lo_y, hi_x, hi_y]
JsonValue box_to_json(const Aabb& box) {
  JsonValue arr = JsonValue::array();
  arr.push_back(box.lo.x);
  arr.push_back(box.lo.y);
  arr.push_back(box.hi.x);
  arr.push_back(box.hi.y);
  return arr;
}

bool box_from_json(const JsonValue& v, Aabb* out, std::string* error) {
  if (!v.is_array() || v.items().size() != 4) {
    return fail(error, "fault box must be a 4-element [lo_x,lo_y,hi_x,hi_y]");
  }
  for (const JsonValue& c : v.items()) {
    if (!c.is_number()) return fail(error, "fault box coordinate not a number");
  }
  out->lo = {v.items()[0].as_double(), v.items()[1].as_double()};
  out->hi = {v.items()[2].as_double(), v.items()[3].as_double()};
  if (out->hi.x < out->lo.x || out->hi.y < out->lo.y) {
    return fail(error, "fault box has hi < lo");
  }
  return true;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRsuCrash:
      return "rsu_crash";
    case FaultKind::kLinkCut:
      return "link_cut";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kRadioLoss:
      return "radio_loss";
    case FaultKind::kGpsNoise:
      return "gps_noise";
    case FaultKind::kChurn:
      return "churn";
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_name(const std::string& name) {
  for (FaultKind k :
       {FaultKind::kRsuCrash, FaultKind::kLinkCut, FaultKind::kPartition,
        FaultKind::kRadioLoss, FaultKind::kGpsNoise, FaultKind::kChurn}) {
    if (name == fault_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::uint64_t FaultPlan::digest() const {
  if (empty()) return 0;
  Fnv f;
  f.mix_u64(fault_seed);
  f.mix_u64(windows.size());
  for (const FaultWindow& w : windows) {
    f.mix_u64(static_cast<std::uint64_t>(w.kind));
    f.mix_i64(w.begin.us());
    f.mix_i64(w.end.us());
    f.mix_i64(w.level);
    f.mix_i64(w.col);
    f.mix_i64(w.row);
    f.mix_i64(w.peer_level);
    f.mix_i64(w.peer_col);
    f.mix_i64(w.peer_row);
    f.mix_u64(w.has_box ? 1 : 0);
    if (w.has_box) {
      f.mix_double(w.box.lo.x);
      f.mix_double(w.box.lo.y);
      f.mix_double(w.box.hi.x);
      f.mix_double(w.box.hi.y);
    }
    f.mix_double(w.extra_loss);
    f.mix_double(w.sigma_m);
    // Mixed only for churn windows so every pre-churn plan's digest is
    // byte-identical to what it hashed to before the field existed.
    if (w.kind == FaultKind::kChurn) f.mix_double(w.depart_fraction);
  }
  const FaultProtocolOverrides& o = overrides;
  const auto mix_opt_d = [&f](const std::optional<double>& v) {
    f.mix_u64(v.has_value() ? 1 : 0);
    f.mix_double(v.value_or(0.0));
  };
  f.mix_u64(o.max_attempts.has_value() ? 1 : 0);
  f.mix_i64(o.max_attempts.value_or(0));
  mix_opt_d(o.ack_timeout_sec);
  mix_opt_d(o.retry_backoff_base);
  mix_opt_d(o.retry_backoff_cap_sec);
  mix_opt_d(o.l1_expiry_sec);
  mix_opt_d(o.l2_expiry_sec);
  mix_opt_d(o.l3_expiry_sec);
  // An all-defaults plan hashes to 0 by definition of empty(); any schedule
  // content makes the digest nonzero via this final stir.
  return f.h == 0 ? 1 : f.h;
}

JsonValue FaultPlan::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("schema", kSchema);
  if (fault_seed != 0) root.set("fault_seed", fault_seed);
  if (overrides.any()) {
    JsonValue o = JsonValue::object();
    if (overrides.max_attempts) o.set("max_attempts", *overrides.max_attempts);
    if (overrides.ack_timeout_sec) {
      o.set("ack_timeout_sec", *overrides.ack_timeout_sec);
    }
    if (overrides.retry_backoff_base) {
      o.set("retry_backoff_base", *overrides.retry_backoff_base);
    }
    if (overrides.retry_backoff_cap_sec) {
      o.set("retry_backoff_cap_sec", *overrides.retry_backoff_cap_sec);
    }
    if (overrides.l1_expiry_sec) o.set("l1_expiry_sec", *overrides.l1_expiry_sec);
    if (overrides.l2_expiry_sec) o.set("l2_expiry_sec", *overrides.l2_expiry_sec);
    if (overrides.l3_expiry_sec) o.set("l3_expiry_sec", *overrides.l3_expiry_sec);
    root.set("overrides", std::move(o));
  }
  JsonValue faults = JsonValue::array();
  for (const FaultWindow& w : windows) {
    JsonValue f = JsonValue::object();
    f.set("kind", fault_kind_name(w.kind));
    f.set("begin_sec", w.begin.sec());
    f.set("end_sec", w.open_ended() ? 0.0 : w.end.sec());
    switch (w.kind) {
      case FaultKind::kRsuCrash:
        f.set("level", w.level);
        if (w.col >= 0) {
          f.set("col", w.col);
          f.set("row", w.row);
        }
        break;
      case FaultKind::kLinkCut:
        f.set("level", w.level);
        f.set("col", w.col);
        f.set("row", w.row);
        f.set("peer_level", w.peer_level);
        f.set("peer_col", w.peer_col);
        f.set("peer_row", w.peer_row);
        break;
      case FaultKind::kPartition:
        f.set("box", box_to_json(w.box));
        break;
      case FaultKind::kRadioLoss:
        f.set("box", box_to_json(w.box));
        f.set("extra_loss", w.extra_loss);
        break;
      case FaultKind::kGpsNoise:
        if (w.has_box) f.set("box", box_to_json(w.box));
        f.set("sigma_m", w.sigma_m);
        break;
      case FaultKind::kChurn:
        if (w.has_box) f.set("box", box_to_json(w.box));
        f.set("depart_fraction", w.depart_fraction);
        break;
    }
    faults.push_back(std::move(f));
  }
  root.set("faults", std::move(faults));
  return root;
}

bool FaultPlan::from_json(const JsonValue& v, FaultPlan* out,
                          std::string* error) {
  if (!v.is_object()) return fail(error, "fault plan is not a JSON object");
  if (v.contains("schema") && v.at("schema").as_string() != kSchema) {
    return fail(error, "fault plan schema is not " + std::string(kSchema) +
                           ": " + v.at("schema").as_string());
  }
  FaultPlan plan;
  plan.fault_seed = v.at("fault_seed").as_uint64(0);
  if (v.contains("overrides")) {
    const JsonValue& o = v.at("overrides");
    if (!o.is_object()) return fail(error, "overrides is not an object");
    FaultProtocolOverrides& ov = plan.overrides;
    if (o.contains("max_attempts")) ov.max_attempts = o.at("max_attempts").as_int();
    if (o.contains("ack_timeout_sec")) {
      ov.ack_timeout_sec = o.at("ack_timeout_sec").as_double();
    }
    if (o.contains("retry_backoff_base")) {
      ov.retry_backoff_base = o.at("retry_backoff_base").as_double();
    }
    if (o.contains("retry_backoff_cap_sec")) {
      ov.retry_backoff_cap_sec = o.at("retry_backoff_cap_sec").as_double();
    }
    if (o.contains("l1_expiry_sec")) ov.l1_expiry_sec = o.at("l1_expiry_sec").as_double();
    if (o.contains("l2_expiry_sec")) ov.l2_expiry_sec = o.at("l2_expiry_sec").as_double();
    if (o.contains("l3_expiry_sec")) ov.l3_expiry_sec = o.at("l3_expiry_sec").as_double();
    if (ov.max_attempts && (*ov.max_attempts < 1 || *ov.max_attempts > 8)) {
      return fail(error, "overrides.max_attempts must be in [1, 8]");
    }
  }
  const JsonValue& faults = v.at("faults");
  if (!faults.is_null()) {
    if (!faults.is_array()) return fail(error, "faults is not an array");
    for (std::size_t i = 0; i < faults.items().size(); ++i) {
      const JsonValue& f = faults.items()[i];
      std::ostringstream at;
      at << "faults[" << i << "]";
      if (!f.is_object()) return fail(error, at.str() + " is not an object");
      const auto kind = fault_kind_from_name(f.at("kind").as_string());
      if (!kind) {
        return fail(error, at.str() + " has unknown kind \"" +
                               f.at("kind").as_string() + "\"");
      }
      FaultWindow w;
      w.kind = *kind;
      const double begin_sec = f.at("begin_sec").as_double(0.0);
      const double end_sec = f.at("end_sec").as_double(0.0);
      if (begin_sec < 0.0 || end_sec < 0.0) {
        return fail(error, at.str() + " has a negative time");
      }
      w.begin = SimTime::from_sec(begin_sec);
      w.end = SimTime::from_sec(end_sec);
      w.level = f.at("level").as_int(3);
      w.col = f.at("col").as_int(-1);
      w.row = f.at("row").as_int(-1);
      w.peer_level = f.at("peer_level").as_int(3);
      w.peer_col = f.at("peer_col").as_int(-1);
      w.peer_row = f.at("peer_row").as_int(-1);
      if ((w.kind == FaultKind::kRsuCrash || w.kind == FaultKind::kLinkCut) &&
          (w.level < 2 || w.level > 3)) {
        return fail(error, at.str() + " targets an invalid RSU level");
      }
      if (w.kind == FaultKind::kLinkCut &&
          (w.col < 0 || w.peer_col < 0)) {
        return fail(error, at.str() + " link_cut needs both endpoints");
      }
      if (f.contains("box")) {
        if (!box_from_json(f.at("box"), &w.box, error)) return false;
        w.has_box = true;
      } else if (w.kind == FaultKind::kPartition ||
                 w.kind == FaultKind::kRadioLoss) {
        return fail(error, at.str() + " requires a box");
      }
      w.extra_loss = f.at("extra_loss").as_double(0.0);
      w.sigma_m = f.at("sigma_m").as_double(0.0);
      if (w.kind == FaultKind::kRadioLoss && w.extra_loss <= 0.0) {
        return fail(error, at.str() + " radio_loss needs extra_loss > 0");
      }
      if (w.kind == FaultKind::kGpsNoise && w.sigma_m <= 0.0) {
        return fail(error, at.str() + " gps_noise needs sigma_m > 0");
      }
      w.depart_fraction = f.at("depart_fraction").as_double(0.0);
      if (w.kind == FaultKind::kChurn &&
          (w.depart_fraction <= 0.0 || w.depart_fraction > 1.0)) {
        return fail(error, at.str() + " churn needs depart_fraction in (0,1]");
      }
      plan.windows.push_back(w);
    }
  }
  *out = std::move(plan);
  return true;
}

bool FaultPlan::load(const std::string& path, FaultPlan* out,
                     std::string* error) {
  const std::optional<JsonValue> doc = read_json_file(path, error);
  if (!doc) return false;
  return from_json(*doc, out, error);
}

}  // namespace hlsrg
