#include "fault/fault_injector.h"

#include <algorithm>

#include "util/check.h"

namespace hlsrg {

FaultInjector::FaultInjector(Simulator& sim, const FaultPlan& plan,
                             WiredNetwork* wired, RadioMedium* medium,
                             const RsuGrid* rsus)
    : sim_(&sim), plan_(plan), wired_(wired), medium_(medium), rsus_(rsus),
      // A pinned fault seed replays identical fault randomness across
      // replica-seed sweeps; either way the draws come off the fault stream.
      // HLSRG_LINT_ALLOW(rng-discipline): fault_seed != 0 is an explicit
      // user override that must bypass the world streams by design.
      rng_(plan.fault_seed != 0 ? Rng(plan.fault_seed)
                                : sim.fault_rng().split(RngStreamId::kFault)),
      active_(plan_.windows.size(), 0),
      cut_links_(plan_.windows.size()),
      edges_counter_(&sim.observability().counter("fault.window_edges")) {}

void FaultInjector::arm(SimTime horizon) {
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    const FaultWindow& w = plan_.windows[i];
    if (w.begin > horizon) continue;
    sim_->schedule_at(w.begin, [this, i] { apply(i, /*begin=*/true); });
    if (!w.open_ended() && w.end <= horizon) {
      sim_->schedule_at(w.end, [this, i] { apply(i, /*begin=*/false); });
    }
  }
}

bool FaultInjector::fault_active_at(SimTime t) const {
  return std::any_of(plan_.windows.begin(), plan_.windows.end(),
                     [t](const FaultWindow& w) { return w.active_at(t); });
}

std::vector<SimTime> FaultInjector::finite_window_ends() const {
  std::vector<SimTime> out;
  for (const FaultWindow& w : plan_.windows) {
    if (!w.open_ended()) out.push_back(w.end);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool FaultInjector::has_gps_noise() const {
  return std::any_of(
      plan_.windows.begin(), plan_.windows.end(),
      [](const FaultWindow& w) { return w.kind == FaultKind::kGpsNoise; });
}

Vec2 FaultInjector::observed_pos(Vec2 p) {
  double sigma = 0.0;
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    const FaultWindow& w = plan_.windows[i];
    if (active_[i] == 0 || w.kind != FaultKind::kGpsNoise) continue;
    if (w.has_box && !w.box.contains(p)) continue;
    sigma = std::max(sigma, w.sigma_m);
  }
  if (sigma <= 0.0) return p;
  return {p.x + rng_.uniform(-sigma, sigma),
          p.y + rng_.uniform(-sigma, sigma)};
}

std::vector<RsuId> FaultInjector::rsus_matching(const FaultWindow& w) const {
  std::vector<RsuId> out;
  if (rsus_ == nullptr) return out;
  const GridLevel level = w.level == 2 ? GridLevel::kL2 : GridLevel::kL3;
  for (const RsuGrid::Rsu& r : rsus_->all()) {
    if (r.level != level) continue;
    if (w.col >= 0 && (r.coord.col != w.col || r.coord.row != w.row)) continue;
    out.push_back(r.id);
  }
  return out;
}

void FaultInjector::refresh_loss_zones() {
  if (medium_ == nullptr) return;
  std::vector<RadioLossZone> zones;
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    const FaultWindow& w = plan_.windows[i];
    if (active_[i] != 0 && w.kind == FaultKind::kRadioLoss) {
      zones.push_back({w.box, w.extra_loss});
    }
  }
  medium_->set_loss_zones(std::move(zones));
}

void FaultInjector::apply(std::size_t window_index, bool begin) {
  const FaultWindow& w = plan_.windows[window_index];
  active_[window_index] = begin ? 1 : 0;
  ++*edges_counter_;
  const bool up = !begin;
  switch (w.kind) {
    case FaultKind::kRsuCrash:
      for (RsuId id : rsus_matching(w)) {
        if (wired_ != nullptr) wired_->set_node_up(rsus_->rsu(id).node, up);
        if (rsu_hook_) rsu_hook_(id, up);
      }
      break;
    case FaultKind::kLinkCut: {
      if (wired_ == nullptr || rsus_ == nullptr) break;
      const NodeId a = rsus_->node_at(GridCoord{w.col, w.row},
                                      w.level == 2 ? GridLevel::kL2
                                                   : GridLevel::kL3);
      const NodeId b = rsus_->node_at(GridCoord{w.peer_col, w.peer_row},
                                      w.peer_level == 2 ? GridLevel::kL2
                                                        : GridLevel::kL3);
      wired_->set_link_up(a, b, up);
      break;
    }
    case FaultKind::kPartition: {
      if (wired_ == nullptr || medium_ == nullptr) break;
      if (begin) {
        // Cut every wired link with exactly one endpoint inside the box;
        // links() is deterministic, so so is the cut set.
        auto& cuts = cut_links_[window_index];
        cuts.clear();
        for (const auto& [a, b] : wired_->links()) {
          const bool a_in = w.box.contains(medium_->position(a));
          const bool b_in = w.box.contains(medium_->position(b));
          if (a_in == b_in) continue;
          if (!wired_->link_up(a, b)) continue;  // already down: not ours
          wired_->set_link_up(a, b, false);
          cuts.emplace_back(a, b);
        }
      } else {
        for (const auto& [a, b] : cut_links_[window_index]) {
          wired_->set_link_up(a, b, true);
        }
        cut_links_[window_index].clear();
      }
      break;
    }
    case FaultKind::kRadioLoss:
      refresh_loss_zones();
      break;
    case FaultKind::kGpsNoise:
      break;  // the active_ flag is the whole mechanism
    case FaultKind::kChurn:
      // Burst departure is an edge event, not a state: the hook fires once
      // at begin (the end edge only clears the active_ flag, which keeps
      // fault_active_at honest for availability-under-churn windows).
      if (begin && churn_hook_) churn_hook_(w, rng_);
      break;
  }
}

}  // namespace hlsrg
