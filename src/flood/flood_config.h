// Tunables for the flooding-based baseline.
#pragma once

#include "sim/time.h"

namespace hlsrg {

struct FloodConfig {
  // A vehicle floods a fresh location packet after driving this far since
  // its last flood (DREAM-style distance-triggered dissemination).
  double update_distance_m = 400.0;
  // Cache freshness horizon; matched to HLSRG's L1 expiry for parity.
  SimTime cache_expiry = SimTime::from_min(2.2);
  // Source gives up when no ACK arrives within this deadline.
  SimTime ack_timeout = SimTime::from_sec(10.0);
};

}  // namespace hlsrg
