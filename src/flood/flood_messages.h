// Flooding-baseline wire messages.
#pragma once

#include "core/location_service.h"
#include "geom/vec2.h"
#include "net/packet.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Packet kinds live in the shared PacketKind enum (net/packet.h); FLOOD uses
// the kFloodUpdate..kFloodAck block.

struct FloodUpdatePayload final : PayloadBase {
  VehicleId vehicle;
  Vec2 pos;
  SimTime time;
};

struct FloodProbePayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId src_vehicle;
  NodeId src_node;
  Vec2 src_pos;
  VehicleId target;
};

struct FloodAckPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId responder;
};

}  // namespace hlsrg
