// Flooding-baseline wire messages.
#pragma once

#include "core/location_service.h"
#include "geom/vec2.h"
#include "net/packet.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

enum FloodKind : int {
  kFloodUpdate = 201,  // network-wide location dissemination
  kFloodProbe = 202,   // src -> cached position of target (GPSR)
  kFloodQuery = 203,   // network-wide reactive search (cache miss)
  kFloodAck = 204,     // target -> src (GPSR)
};

struct FloodUpdatePayload final : PayloadBase {
  VehicleId vehicle;
  Vec2 pos;
  SimTime time;
};

struct FloodProbePayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId src_vehicle;
  NodeId src_node;
  Vec2 src_pos;
  VehicleId target;
};

struct FloodAckPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId responder;
};

}  // namespace hlsrg
