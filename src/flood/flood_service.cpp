#include "flood/flood_service.h"

#include "flood/flood_agent.h"
#include "util/check.h"

namespace hlsrg {

FloodService::FloodService(Simulator& sim, MobilityModel& mobility,
                           NodeRegistry& registry, RadioMedium& medium,
                           GpsrRouter& gpsr, GeocastService& geocast,
                           Aabb map_bounds, FloodConfig cfg)
    : sim_(&sim),
      mobility_(&mobility),
      registry_(&registry),
      medium_(&medium),
      gpsr_(&gpsr),
      geocast_(&geocast),
      map_bounds_(map_bounds),
      cfg_(cfg),
      tracker_(sim) {
  const std::size_t n = mobility.vehicle_count();
  vehicle_nodes_.reserve(n);
  vehicle_agents_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VehicleId v{i};
    const NodeId node = registry.add_node(mobility.position(v));
    registry.bind_vehicle(v, node);
    registry.set_vehicle_parked(v, mobility.parked(v));
    vehicle_nodes_.push_back(node);
    // reserve(n) above makes this the agent's final address.
    vehicle_agents_.emplace_back(*this, v, node);
    registry.set_sink(node, &vehicle_agents_.back());
  }
  mobility.add_listener(this);
}

FloodService::~FloodService() = default;

FloodVehicleAgent& FloodService::vehicle_agent(VehicleId v) {
  return vehicle_agents_[v.index()];
}

QueryTracker::QueryId FloodService::issue_query(VehicleId src, VehicleId dst) {
  HLSRG_CHECK(src.index() < vehicle_agents_.size());
  HLSRG_CHECK(dst.index() < vehicle_agents_.size());
  const QueryTracker::QueryId qid = tracker_.issue(src, dst);
  // Nest the source agent's synchronous work under the query root span.
  SpanScope scope(*sim_, tracker_.span_of(qid));
  vehicle_agents_[src.index()].start_query(qid, dst);
  return qid;
}

ServiceStats FloodService::service_stats() const {
  ServiceStats s;
  for (const auto& agent : vehicle_agents_) {
    s.table_records += agent.cache_size();
    s.table_bytes += agent.cache_bytes();
  }
  s.table_bytes += registry_->bytes();
  // FLOOD has no serving tier; only admission shedding can apply.
  s.shed_queries = sim_->metrics().queries_shed + sim_->metrics().retries_shed;
  return s;
}

void FloodService::sample_region_stats(
    const RegionTelemetry& regions, std::vector<std::uint64_t>& table_records,
    std::vector<std::uint64_t>& queue_depth) const {
  // FLOOD keeps only per-vehicle position caches; no serving tier, so queue
  // depth stays zero. Region ids come off the registry's SoA rows, which
  // mirror `regions`' own region_of.
  (void)regions;
  (void)queue_depth;
  for (std::size_t i = 0; i < vehicle_agents_.size(); ++i) {
    const int r = registry_->vehicle_region(VehicleId{i});
    table_records[static_cast<std::size_t>(r)] +=
        vehicle_agents_[i].cache_size();
  }
}

void FloodService::on_moved(VehicleId v, Vec2 before, Vec2 after) {
  vehicle_agents_[v.index()].handle_moved(before, after);
}

Packet FloodService::make_packet(PacketKind kind, NodeId origin,
                                 std::shared_ptr<const PayloadBase> payload) {
  Packet p;
  p.id = packet_ids_.next();
  p.kind = kind;
  p.origin = origin;
  p.origin_pos = registry_->position(origin);
  p.created = sim_->now();
  p.payload = std::move(payload);
  return p;
}

}  // namespace hlsrg
