#include "flood/flood_agent.h"

#include <algorithm>

#include "flood/flood_service.h"
#include "util/check.h"

namespace hlsrg {

FloodVehicleAgent::FloodVehicleAgent(FloodService& service, VehicleId vehicle,
                                     NodeId node)
    : svc_(&service), vehicle_(vehicle), node_(node) {
  // Stagger initial floods across the first update interval so ignition does
  // not synchronize the whole fleet.
  distance_since_flood_ =
      svc_->sim().protocol_rng().uniform(0.0, svc_->cfg().update_distance_m);
}

void FloodVehicleAgent::handle_moved(Vec2 before, Vec2 after) {
  distance_since_flood_ += distance(before, after);
  if (distance_since_flood_ >= svc_->cfg().update_distance_m) {
    distance_since_flood_ = 0.0;
    flood_own_location();
  }
}

void FloodVehicleAgent::flood_own_location() {
  auto payload = std::make_shared<FloodUpdatePayload>();
  payload->vehicle = vehicle_;
  payload->pos = svc_->vehicle_pos(vehicle_);
  payload->time = svc_->sim().now();
  svc_->metrics().update_packets_originated++;
  svc_->sim().count_region_update(payload->pos);
  svc_->sim().trace_event({{}, TraceEventKind::kUpdateSent, vehicle_,
                           VehicleId{}, payload->pos, 0});
  svc_->geocast().flood(
      node_, svc_->make_packet(PacketKind::kFloodUpdate, node_, payload),
      GeocastRegion::from_box(svc_->map_bounds(), /*margin=*/100.0),
      &svc_->metrics().update_transmissions);
}

void FloodVehicleAgent::purge_cache() {
  const SimTime now = svc_->sim().now();
  const SimTime expiry = svc_->cfg().cache_expiry;
  cache_.erase_if([now, expiry](VehicleId, const CacheEntry& e) {
    return e.time + expiry < now;
  });
}

void FloodVehicleAgent::on_receive(const Packet& packet, NodeId /*from*/) {
  switch (packet.kind) {
    case PacketKind::kFloodUpdate: {
      const auto& u = payload_as<FloodUpdatePayload>(packet);
      if (u.vehicle == vehicle_) return;
      if (const CacheEntry* cur = cache_.find(u.vehicle);
          cur == nullptr || cur->time < u.time) {
        cache_.upsert(u.vehicle, CacheEntry{u.pos, u.time});
      }
      return;
    }
    case PacketKind::kFloodProbe:
    case PacketKind::kFloodQuery: {
      const auto& p = payload_as<FloodProbePayload>(packet);
      if (p.target != vehicle_) return;
      if (!answered_.insert(p.query_id)) return;
      auto ack = std::make_shared<FloodAckPayload>();
      ack->query_id = p.query_id;
      ack->responder = vehicle_;
      svc_->metrics().query_packets_originated++;
      svc_->metrics().acks_sent++;
      svc_->sim().trace_event({{}, TraceEventKind::kAckSent, vehicle_,
                               p.src_vehicle, svc_->vehicle_pos(vehicle_),
                               p.query_id});
      // ACK leg back to the querier, open until the query settles. Geocast
      // floods deliver without span context, so fall back to the query root.
      Simulator& sim = svc_->sim();
      SpanScope anchor(sim, sim.active_span() != kNoSpan
                                ? sim.active_span()
                                : svc_->tracker().span_of(p.query_id));
      const SpanId ack_span = sim.begin_span(
          SpanKind::kAckLeg, vehicle_.value(), p.src_vehicle.value(),
          svc_->vehicle_pos(vehicle_), p.query_id);
      SpanScope scope(sim, ack_span);
      svc_->gpsr().send(node_, p.src_pos, p.src_node,
                        svc_->make_packet(PacketKind::kFloodAck, node_, ack),
                        &svc_->metrics().query_transmissions);
      return;
    }
    case PacketKind::kFloodAck: {
      const auto& a = payload_as<FloodAckPayload>(packet);
      if (Pending* p = pending_.find(a.query_id)) {
        svc_->sim().cancel(p->timeout);
        pending_.erase(a.query_id);
        svc_->tracker().succeed(a.query_id);
      }
      return;
    }
    default:
      return;
  }
}

void FloodVehicleAgent::start_query(QueryTracker::QueryId qid,
                                    VehicleId target) {
  purge_cache();
  auto probe = std::make_shared<FloodProbePayload>();
  probe->query_id = qid;
  probe->src_vehicle = vehicle_;
  probe->src_node = node_;
  probe->src_pos = svc_->vehicle_pos(vehicle_);
  probe->target = target;
  svc_->metrics().query_packets_originated++;

  if (const CacheEntry* hit = cache_.find(target)) {
    svc_->sim().count_region_served(probe->src_pos);
    // Proactive path (DREAM's "expected zone"): flood a disk-shaped region
    // around the cached position, sized by how far the target could have
    // driven since the record was made.
    svc_->metrics().server_lookup_hits++;
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kOk,
                             vehicle_.value(), target.value(), probe->src_pos,
                             qid, -1, "cache");
    const double age_sec = (svc_->sim().now() - hit->time).sec();
    constexpr double kMaxSpeedMps = 60.0 / 3.6;
    const double drift =
        std::clamp(100.0 + age_sec * kMaxSpeedMps, 100.0, 900.0);
    const Aabb zone{{hit->pos.x - drift, hit->pos.y - drift},
                    {hit->pos.x + drift, hit->pos.y + drift}};
    svc_->geocast().flood(node_, svc_->make_packet(PacketKind::kFloodProbe, node_, probe),
                          GeocastRegion::from_box(zone),
                          &svc_->metrics().query_transmissions);
  } else {
    // Reactive path: flood the question (LAR-style).
    svc_->metrics().server_lookup_misses++;
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kFailed,
                             vehicle_.value(), target.value(), probe->src_pos,
                             qid, -1, "cache");
    svc_->geocast().flood(
        node_, svc_->make_packet(PacketKind::kFloodQuery, node_, probe),
        GeocastRegion::from_box(svc_->map_bounds(), /*margin=*/100.0),
        &svc_->metrics().query_transmissions);
  }

  Pending p;
  p.target = target;
  p.timeout = svc_->sim().schedule_after(
      svc_->cfg().ack_timeout, [this, qid, target] {
        // One reactive retry after a failed probe; then give up.
        if (!pending_.erase(qid)) return;
        auto retry = std::make_shared<FloodProbePayload>();
        retry->query_id = qid;
        retry->src_vehicle = vehicle_;
        retry->src_node = node_;
        retry->src_pos = svc_->vehicle_pos(vehicle_);
        retry->target = target;
        svc_->metrics().query_packets_originated++;
        svc_->geocast().flood(
            node_, svc_->make_packet(PacketKind::kFloodQuery, node_, retry),
            GeocastRegion::from_box(svc_->map_bounds(), 100.0),
            &svc_->metrics().query_transmissions);
        Pending again;
        again.target = target;
        again.timeout = svc_->sim().schedule_after(
            svc_->cfg().ack_timeout, [this, qid] {
              pending_.erase(qid);
              svc_->tracker().fail(qid);
            });
        pending_[qid] = again;
      });
  pending_[qid] = p;
}

}  // namespace hlsrg
