// Per-vehicle behaviour of the flooding baseline: distance-triggered
// network-wide location floods, an everyone-knows-everyone cache, and
// cache-probe / reactive-flood queries.
#pragma once

#include "flood/flood_messages.h"
#include "net/node_registry.h"
#include "sim/event_queue.h"
#include "util/flat_table.h"

namespace hlsrg {

class FloodService;

class FloodVehicleAgent final : public PacketSink {
 public:
  FloodVehicleAgent(FloodService& service, VehicleId vehicle, NodeId node);

  void on_receive(const Packet& packet, NodeId from) override;

  // Mobility hook: accumulates driven distance and floods when due.
  void handle_moved(Vec2 before, Vec2 after);

  void start_query(QueryTracker::QueryId qid, VehicleId target);

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] std::size_t cache_bytes() const { return cache_.bytes(); }

 private:
  struct CacheEntry {
    Vec2 pos;
    SimTime time;
  };

  void flood_own_location();
  void purge_cache();

  FloodService* svc_;
  VehicleId vehicle_;
  NodeId node_;
  double distance_since_flood_;
  FlatTable<VehicleId, CacheEntry> cache_;

  struct Pending {
    VehicleId target;
    EventHandle timeout;
  };
  // Flat agent-local bookkeeping (a handful of live entries per vehicle;
  // DESIGN.md §15).
  SmallFlatMap<QueryTracker::QueryId, Pending> pending_;
  SortedIdSet<QueryTracker::QueryId> answered_;
};

}  // namespace hlsrg
