// Flooding-based location service — the first category in the paper's
// related-work taxonomy ("each node broadcasts its location information
// packet to the network... very wasteful in terms of the networks total
// bandwidth", citing DREAM).
//
// Implemented faithfully to the category: vehicles flood distance-triggered
// location packets over the whole map; every vehicle caches every record;
// queries answer from the local cache and confirm with a GPSR probe + ACK,
// falling back to a network-wide reactive query flood on a cache miss (the
// LAR-style reactive variant, the taxonomy's other flavor). It exists to
// quantify the overhead blow-up the paper argues motivates rendezvous-based
// designs like HLSRG.
#pragma once

#include <memory>
#include <vector>

#include "core/location_service.h"
#include "flood/flood_config.h"
#include "geom/aabb.h"
#include "mobility/mobility_model.h"
#include "net/geocast.h"
#include "net/gpsr.h"
#include "net/radio.h"
#include "sim/simulator.h"

namespace hlsrg {

class FloodVehicleAgent;

class FloodService final : public LocationService, public MovementListener {
 public:
  FloodService(Simulator& sim, MobilityModel& mobility, NodeRegistry& registry,
               RadioMedium& medium, GpsrRouter& gpsr, GeocastService& geocast,
               Aabb map_bounds, FloodConfig cfg);
  ~FloodService() override;

  // --- LocationService ------------------------------------------------------
  [[nodiscard]] const char* name() const override { return "FLOOD"; }
  QueryTracker::QueryId issue_query(VehicleId src, VehicleId dst) override;
  [[nodiscard]] QueryTracker& tracker() override { return tracker_; }
  [[nodiscard]] ServiceStats service_stats() const override;
  [[nodiscard]] Vec2 vehicle_position(VehicleId v) const override {
    return vehicle_pos(v);
  }
  void sample_region_stats(const RegionTelemetry& regions,
                           std::vector<std::uint64_t>& table_records,
                           std::vector<std::uint64_t>& queue_depth)
      const override;
  [[nodiscard]] PacketKind query_kind() const override {
    return PacketKind::kFloodQuery;
  }

  // --- MovementListener -----------------------------------------------------
  void on_moved(VehicleId v, Vec2 before, Vec2 after) override;

  // --- agent context ---------------------------------------------------------
  [[nodiscard]] Simulator& sim() { return *sim_; }
  [[nodiscard]] RunMetrics& metrics() { return sim_->metrics(); }
  [[nodiscard]] const FloodConfig& cfg() const { return cfg_; }
  [[nodiscard]] MobilityModel& mobility() { return *mobility_; }
  [[nodiscard]] RadioMedium& medium() { return *medium_; }
  [[nodiscard]] GpsrRouter& gpsr() { return *gpsr_; }
  [[nodiscard]] GeocastService& geocast() { return *geocast_; }
  [[nodiscard]] const Aabb& map_bounds() const { return map_bounds_; }
  [[nodiscard]] Vec2 vehicle_pos(VehicleId v) const {
    return mobility_->position(v);
  }
  [[nodiscard]] Packet make_packet(PacketKind kind, NodeId origin,
                                   std::shared_ptr<const PayloadBase> payload);
  // Out-of-line: the agents are stored by value and indexing the vector
  // needs the complete (forward-declared) type.
  [[nodiscard]] FloodVehicleAgent& vehicle_agent(VehicleId v);

 private:
  Simulator* sim_;
  MobilityModel* mobility_;
  NodeRegistry* registry_;
  RadioMedium* medium_;
  GpsrRouter* gpsr_;
  GeocastService* geocast_;
  Aabb map_bounds_;
  FloodConfig cfg_;
  QueryTracker tracker_;
  PacketIdSource packet_ids_;

  std::vector<NodeId> vehicle_nodes_;
  // By value, reserved to the exact count in the constructor (agents capture
  // `this` in scheduled timers; the vector must never reallocate).
  std::vector<FloodVehicleAgent> vehicle_agents_;
};

}  // namespace hlsrg
