#include "infra/role_directory.h"

namespace hlsrg {

const char* role_host_kind_name(RoleHostKind kind) {
  switch (kind) {
    case RoleHostKind::kFixed:
      return "fixed";
    case RoleHostKind::kParkedVehicle:
      return "parked_vehicle";
    case RoleHostKind::kNone:
      return "none";
  }
  return "unknown";
}

RsuId RoleDirectory::role_of(VehicleId v) const {
  if (!v.valid()) return RsuId{};
  for (std::size_t i = 0; i < bindings_.size(); ++i) {
    const RoleBinding& b = bindings_[i];
    if (b.kind == RoleHostKind::kParkedVehicle && b.host == v) {
      return RsuId{i};
    }
  }
  return RsuId{};
}

std::size_t RoleDirectory::vacant_count() const {
  std::size_t n = 0;
  for (const RoleBinding& b : bindings_) {
    if (b.kind == RoleHostKind::kNone) ++n;
  }
  return n;
}

void RoleDirectory::set(RsuId role, RoleBinding b) {
  HLSRG_CHECK(role.index() < bindings_.size());
  if (b.kind == RoleHostKind::kParkedVehicle) {
    // One role per vehicle: binding a host that already holds another role
    // is a ChurnManager bug, not a recoverable state.
    const RsuId held = role_of(b.host);
    HLSRG_CHECK(!held.valid() || held == role);
  }
  bindings_[role.index()] = b;
}

}  // namespace hlsrg
