// RSU deployment over the grid hierarchy (paper 2.1.2).
//
// One RSU sits at every Level-2 and Level-3 grid center. Wiring follows the
// paper exactly: each L2 RSU has a wire to its parent L3 RSU, and each L3
// RSU has wires to its east/west/south/north L3 neighbors, so the L3 plane
// is a connected mesh and "any Level 3 RSU owns vehicle's information for a
// specific region" is reachable within a few wired hops.
//
// RSUs are radio nodes too (vehicles reach them over GPSR); their protocol
// behaviour (tables, forwarding) is installed by the core library as a
// PacketSink.
#pragma once

#include <vector>

#include "grid/hierarchy.h"
#include "net/node_registry.h"
#include "net/wired.h"

namespace hlsrg {

class RsuGrid {
 public:
  struct Rsu {
    RsuId id;
    NodeId node;
    GridLevel level = GridLevel::kL2;
    GridCoord coord;
    Vec2 pos;
  };

  // Registers RSU nodes at all L2/L3 centers and wires them. Sinks start
  // null; the protocol installs them via NodeRegistry::set_sink.
  RsuGrid(const GridHierarchy& hierarchy, NodeRegistry& registry,
          WiredNetwork& wired);

  [[nodiscard]] std::size_t count() const { return rsus_.size(); }
  [[nodiscard]] const std::vector<Rsu>& all() const { return rsus_; }
  [[nodiscard]] const Rsu& rsu(RsuId id) const { return rsus_[id.index()]; }

  // RSU serving a grid cell at the given level. Only kL2/kL3 are valid.
  [[nodiscard]] RsuId rsu_at(GridCoord coord, GridLevel level) const;
  [[nodiscard]] NodeId node_at(GridCoord coord, GridLevel level) const {
    return rsus_[rsu_at(coord, level).index()].node;
  }

  // Reverse lookup: RSU owning a node id; invalid if the node is not an RSU.
  [[nodiscard]] RsuId rsu_of_node(NodeId node) const;

  // The L2 RSU of the cell containing p / the L3 RSU likewise.
  [[nodiscard]] RsuId nearest_rsu(Vec2 p, GridLevel level,
                                  const GridHierarchy& h) const;

 private:
  std::vector<Rsu> rsus_;
  std::vector<RsuId> l2_index_;  // dense by L2 cell id
  std::vector<RsuId> l3_index_;  // dense by L3 cell id
  int l2_cols_ = 0;
  int l3_cols_ = 0;
  // node.index() -> RsuId (sparse; nodes registered before RSUs map invalid)
  std::vector<RsuId> node_to_rsu_;
};

}  // namespace hlsrg
