// Dynamic host bindings for the logical RSU roles (PR-9 infrastructure
// churn, "Smarter Cities with Parked Cars as Roadside Units").
//
// RsuGrid stays immutable: a role's identity (id, node, level, coord, grid-
// center position, wiring) never changes. What churns is the *host* backing
// the role. A role is either staffed by fixed hardware (the paper's
// always-up RSUs), staffed by a parked vehicle volunteering its radio and
// compute, or vacant (down — queries for its region ride the PR-4 failover
// ladder). The directory is pure bookkeeping: it draws no RNG, schedules no
// events, and is only written by the ChurnManager (src/core), so runs that
// never construct one are byte-identical to before it existed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/tagged_id.h"

namespace hlsrg {

enum class RoleHostKind : std::uint8_t {
  kFixed = 0,          // permanent roadside hardware
  kParkedVehicle = 1,  // a parked car is serving the role
  kNone = 2,           // vacant: the role is down
};

[[nodiscard]] const char* role_host_kind_name(RoleHostKind kind);

struct RoleBinding {
  RoleHostKind kind = RoleHostKind::kFixed;
  VehicleId host;  // valid only when kind == kParkedVehicle
};

class RoleDirectory {
 public:
  explicit RoleDirectory(std::size_t role_count)
      : bindings_(role_count) {}

  [[nodiscard]] std::size_t role_count() const { return bindings_.size(); }
  [[nodiscard]] const RoleBinding& binding(RsuId role) const {
    HLSRG_CHECK(role.index() < bindings_.size());
    return bindings_[role.index()];
  }
  [[nodiscard]] bool staffed(RsuId role) const {
    return binding(role).kind != RoleHostKind::kNone;
  }

  void bind_fixed(RsuId role) {
    set(role, RoleBinding{RoleHostKind::kFixed, VehicleId{}});
  }
  void bind_vehicle(RsuId role, VehicleId host) {
    HLSRG_CHECK(host.valid());
    set(role, RoleBinding{RoleHostKind::kParkedVehicle, host});
  }
  void vacate(RsuId role) {
    set(role, RoleBinding{RoleHostKind::kNone, VehicleId{}});
  }

  // Role currently hosted by `v`, or an invalid id. A vehicle holds at most
  // one role (enforced by bind_vehicle), so this is a simple reverse map.
  [[nodiscard]] RsuId role_of(VehicleId v) const;

  [[nodiscard]] std::size_t vacant_count() const;

 private:
  void set(RsuId role, RoleBinding b);

  std::vector<RoleBinding> bindings_;  // dense by RsuId::index()
};

}  // namespace hlsrg
