#include "infra/rsu_grid.h"

#include "util/check.h"

namespace hlsrg {

RsuGrid::RsuGrid(const GridHierarchy& hierarchy, NodeRegistry& registry,
                 WiredNetwork& wired) {
  l2_cols_ = hierarchy.cols(GridLevel::kL2);
  l3_cols_ = hierarchy.cols(GridLevel::kL3);

  auto deploy_level = [&](GridLevel level, std::vector<RsuId>* index) {
    index->resize(static_cast<std::size_t>(hierarchy.cell_count(level)));
    for (int row = 0; row < hierarchy.rows(level); ++row) {
      for (int col = 0; col < hierarchy.cols(level); ++col) {
        const GridCoord c{col, row};
        const Vec2 pos = hierarchy.center_pos(c, level);
        const NodeId node = registry.add_node(pos);
        const RsuId id{rsus_.size()};
        rsus_.push_back(Rsu{id, node, level, c, pos});
        (*index)[hierarchy.id_of(c, level).index()] = id;
        if (node.index() >= node_to_rsu_.size()) {
          node_to_rsu_.resize(node.index() + 1);
        }
        node_to_rsu_[node.index()] = id;
      }
    }
  };
  deploy_level(GridLevel::kL2, &l2_index_);
  deploy_level(GridLevel::kL3, &l3_index_);

  // Wire each L2 RSU to its parent L3 RSU.
  for (const Rsu& r : rsus_) {
    if (r.level != GridLevel::kL2) continue;
    // Parent L3 of an L2 cell: halve coordinates (L3 = 2x2 L2 cells).
    const GridCoord parent{r.coord.col / 2, r.coord.row / 2};
    wired.connect(r.node, node_at(parent, GridLevel::kL3));
  }
  // Wire each L3 RSU to its four compass neighbors.
  const int cols3 = hierarchy.cols(GridLevel::kL3);
  const int rows3 = hierarchy.rows(GridLevel::kL3);
  for (int row = 0; row < rows3; ++row) {
    for (int col = 0; col < cols3; ++col) {
      const NodeId here = node_at({col, row}, GridLevel::kL3);
      if (col + 1 < cols3) {
        wired.connect(here, node_at({col + 1, row}, GridLevel::kL3));
      }
      if (row + 1 < rows3) {
        wired.connect(here, node_at({col, row + 1}, GridLevel::kL3));
      }
    }
  }
}

RsuId RsuGrid::rsu_at(GridCoord coord, GridLevel level) const {
  HLSRG_CHECK(level == GridLevel::kL2 || level == GridLevel::kL3);
  const auto& index = level == GridLevel::kL2 ? l2_index_ : l3_index_;
  const int cols = level == GridLevel::kL2 ? l2_cols_ : l3_cols_;
  const std::size_t flat =
      static_cast<std::size_t>(coord.row) * cols + static_cast<std::size_t>(coord.col);
  HLSRG_CHECK(flat < index.size());
  return index[flat];
}

RsuId RsuGrid::rsu_of_node(NodeId node) const {
  if (!node.valid() || node.index() >= node_to_rsu_.size()) return {};
  return node_to_rsu_[node.index()];
}

RsuId RsuGrid::nearest_rsu(Vec2 p, GridLevel level,
                           const GridHierarchy& h) const {
  return rsu_at(h.coord_at(p, level), level);
}

}  // namespace hlsrg
