// Turn decisions at intersections (VanetMobiSim substitute, part 2).
//
// The paper's traffic has a strong regularity the protocol depends on:
// roughly ten times as many vehicles drive on main arteries as on normal
// roads ("about 107 vehicles within a 1000 m main artery, but only 11 within
// a 1000 m normal road"). The policy reproduces that stationary distribution
// by weighting candidate exits: vehicles prefer to continue straight, and
// prefer arteries over normal roads. tests/mobility_test.cc checks the
// resulting artery share empirically.
#pragma once

#include "roadnet/road_network.h"
#include "sim/rng.h"
#include "util/tagged_id.h"

namespace hlsrg {

struct TurnPolicyConfig {
  // Multiplicative weight for exits on main arteries. Together with the
  // straight bonus this yields a stationary artery share of ~89% on the
  // default map — the paper's measured "almost 90% vehicles are driving on
  // main arteries".
  double artery_weight = 4.0;
  // Multiplicative bonus for continuing straight (same heading).
  double straight_bonus = 3.0;
  // Extra straight bonus applied when continuing straight stays on a main
  // artery (through-traffic behaves highway-like on arterials; this is what
  // makes artery trips long and turn-free, the property HLSRG's class-1
  // suppression monetizes).
  double artery_straight_bonus = 2.0;
  // Maximum heading change (radians) still considered "straight".
  double straight_tolerance_rad = 0.35;  // ~20 degrees
};

class TurnPolicy {
 public:
  TurnPolicy(const RoadNetwork& net, TurnPolicyConfig cfg)
      : net_(&net), cfg_(cfg) {}

  [[nodiscard]] const TurnPolicyConfig& config() const { return cfg_; }

  // Chooses the exit segment after arriving at the end of `in_seg`.
  // U-turns (the reverse twin) are excluded unless they are the only exit.
  [[nodiscard]] SegmentId choose_exit(SegmentId in_seg, Rng& rng) const;

  // True if taking `out_seg` after `in_seg` is a turn (heading change beyond
  // the straight tolerance) — exactly the predicate the update rules use.
  [[nodiscard]] bool is_turn(SegmentId in_seg, SegmentId out_seg) const;

 private:
  const RoadNetwork* net_;
  TurnPolicyConfig cfg_;
};

}  // namespace hlsrg
