#include "mobility/traffic_light.h"

namespace hlsrg {

std::int64_t TrafficLightPlan::cycle_us() const {
  return static_cast<std::int64_t>(2.0 * cfg_.red_sec * 1e6);
}

std::int64_t TrafficLightPlan::phase_offset_us(IntersectionId node) const {
  // SplitMix64-style scramble of the id gives well-spread, reproducible
  // offsets without storing per-intersection state.
  std::uint64_t z = node.value() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::int64_t>(z % static_cast<std::uint64_t>(cycle_us()));
}

bool TrafficLightPlan::can_pass(IntersectionId node, Orientation approach,
                                SimTime t) const {
  if (!cfg_.enabled) return true;
  if (approach == Orientation::kOther) return true;
  const std::int64_t cycle = cycle_us();
  const std::int64_t green = cycle / 2;
  const std::int64_t phase =
      (t.us() + phase_offset_us(node)) % cycle;
  // First half-cycle: horizontal green; second: vertical green.
  return approach == Orientation::kHorizontal ? phase < green : phase >= green;
}

SimTime TrafficLightPlan::next_green(IntersectionId node, Orientation approach,
                                     SimTime t) const {
  if (can_pass(node, approach, t)) return t;
  const std::int64_t cycle = cycle_us();
  const std::int64_t green = cycle / 2;
  const std::int64_t phase = (t.us() + phase_offset_us(node)) % cycle;
  // Horizontal waits for phase to wrap past `cycle`; vertical for `green`.
  const std::int64_t target = approach == Orientation::kHorizontal
                                  ? cycle - phase
                                  : green - phase;
  return t + SimTime::from_us(target);
}

}  // namespace hlsrg
