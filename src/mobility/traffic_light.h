// Traffic lights (VanetMobiSim substitute, part 1).
//
// Two-phase signal: east-west traffic gets green while north-south waits,
// then they swap. The paper sets red lights to 50 s; with two phases that
// makes a 100 s cycle. Each intersection gets a deterministic phase offset
// derived from its id so the whole map is not synchronized — vehicles
// therefore dwell at intersections (including grid centers) at staggered
// times, which is the behaviour HLSRG's grid-center choice exploits.
#pragma once

#include <cstdint>

#include "roadnet/road_network.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

struct TrafficLightConfig {
  // Red duration per approach axis (the paper's 50 s). Green equals the other
  // axis's red, so the full cycle is 2 * red_sec.
  double red_sec = 50.0;
  // If false, vehicles never stop (used by a few unit tests and ablations).
  bool enabled = true;
};

class TrafficLightPlan {
 public:
  explicit TrafficLightPlan(TrafficLightConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const TrafficLightConfig& config() const { return cfg_; }

  // True if a vehicle approaching `node` along a road of orientation
  // `approach` may cross at time `t`. Diagonal/other approaches always pass.
  [[nodiscard]] bool can_pass(IntersectionId node, Orientation approach,
                              SimTime t) const;

  // Time of the next moment >= t at which the approach turns green (== t when
  // already green).
  [[nodiscard]] SimTime next_green(IntersectionId node, Orientation approach,
                                   SimTime t) const;

 private:
  // Deterministic per-intersection phase offset in [0, cycle).
  [[nodiscard]] std::int64_t phase_offset_us(IntersectionId node) const;
  [[nodiscard]] std::int64_t cycle_us() const;

  TrafficLightConfig cfg_;
};

}  // namespace hlsrg
