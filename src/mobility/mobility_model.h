// Vehicle mobility on the road graph (VanetMobiSim substitute, part 3).
//
// Vehicles advance along directed segments at a constant per-vehicle speed,
// stop at red lights, and pick exits with TurnPolicy. Movement happens in
// fixed ticks (default 500 ms — at the 60 km/h cap a vehicle moves 8.3 m per
// tick, far below segment lengths, so intersection handling per tick is
// exact enough for protocol purposes). Protocols observe movement through
// MovementListener: discrete intersection passes (HLSRG's update rules key
// off these) and per-tick moves (RLSMP detects cell crossings from these).
//
// Deliberate abstraction: no car-following — stopped vehicles co-locate at
// the stop line. The protocols under study read positions and radio
// connectivity, not headways, so queue geometry does not affect the metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/traffic_light.h"
#include "mobility/turn_policy.h"
#include "roadnet/road_network.h"
#include "sim/simulator.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Parking lifecycle ("Smarter Cities with Parked Cars as Roadside Units"):
// when enabled, parking stops being a one-shot init flag — moving vehicles
// park with a per-tick hazard and parked vehicles depart after a dwell time
// drawn from a shifted exponential. All draws come from the mobility RNG
// stream and happen only when `enabled`, so zero-churn runs consume exactly
// the same draws (and stay byte-identical) as before this knob existed.
struct ParkingChurnConfig {
  bool enabled = false;
  // Hazard rate for a moving vehicle to pull over, per second (converted to
  // a per-tick Bernoulli probability rate * tick_sec, clamped to 1).
  double park_rate_per_sec = 0.0;
  // Dwell = min_dwell_sec + Exp(mean = dwell_mean_sec - min_dwell_sec).
  double dwell_mean_sec = 300.0;
  double min_dwell_sec = 30.0;
};

struct MobilityConfig {
  double tick_sec = 0.5;
  // Paper: "speed between 0 to 60 km/hr". Moving vehicles sample in
  // [min, max]; the 0 km/h end of the paper's range is modelled explicitly
  // by `parked_fraction` below.
  double min_speed_kmh = 5.0;
  double max_speed_kmh = 60.0;
  // Fraction of vehicles that start parked (speed 0). Parked vehicles never
  // move but keep their radios on — they relay packets and can serve as
  // grid-center location servers. Without churn they stay parked for the
  // whole run; with churn they depart once their drawn dwell expires.
  double parked_fraction = 0.0;
  // Relative placement weight of artery road-metres vs normal road-metres;
  // 10 reproduces the paper's measured 10:1 artery:normal vehicle density.
  double artery_placement_weight = 10.0;
  ParkingChurnConfig churn;
  TrafficLightConfig lights;
  TurnPolicyConfig turn;
};

struct VehicleState {
  SegmentId seg;       // segment currently being driven (from -> to)
  double offset = 0.0; // metres from seg.from
  double speed = 0.0;  // metres/second (constant per vehicle)
  bool waiting = false;  // stopped at seg.to's red light
};

// Observer interface for protocol agents.
class MovementListener {
 public:
  virtual ~MovementListener() = default;
  // Vehicle `v` passed through `node`, arriving on `in_seg` and departing on
  // `out_seg`. Fired at the moment of crossing (after any red-light wait).
  virtual void on_intersection_pass(VehicleId v, IntersectionId node,
                                    SegmentId in_seg, SegmentId out_seg) {
    (void)v; (void)node; (void)in_seg; (void)out_seg;
  }
  // Vehicle `v` moved from `before` to `after` during the tick ending now.
  // Fired only when the position changed.
  virtual void on_moved(VehicleId v, Vec2 before, Vec2 after) {
    (void)v; (void)before; (void)after;
  }
  // All vehicles have moved for this tick.
  virtual void on_tick() {}
  // Vehicle `v` pulled over (speed -> 0) at its current position. Fired by
  // the parking-churn lifecycle only; init-parked vehicles never fire it.
  virtual void on_parked(VehicleId v) { (void)v; }
  // Parked vehicle `v` resumed driving. `abrupt` is true for fault-forced
  // departures (MobilityModel::force_depart) — no grace for handoff — and
  // false for natural dwell expiries.
  virtual void on_departed(VehicleId v, bool abrupt) { (void)v; (void)abrupt; }
};

class MobilityModel {
 public:
  MobilityModel(Simulator& sim, const RoadNetwork& net, MobilityConfig cfg);

  // Adds a vehicle at a specific pose. Speed in m/s; 0 parks the vehicle.
  VehicleId add_vehicle(SegmentId seg, double offset, double speed_mps);

  // Adds `n` vehicles at random poses: segment chosen with probability
  // proportional to length x class weight, offset uniform, speed uniform in
  // the configured band. Draws from the simulator's mobility stream.
  void place_random_vehicles(int n);

  // Schedules the first tick; call once after vehicles are placed.
  void start();

  void add_listener(MovementListener* listener);

  [[nodiscard]] std::size_t vehicle_count() const { return states_.size(); }
  [[nodiscard]] const VehicleState& state(VehicleId v) const {
    return states_[v.index()];
  }
  [[nodiscard]] Vec2 position(VehicleId v) const;
  // Unit heading of the vehicle's current segment.
  [[nodiscard]] Vec2 heading(VehicleId v) const;
  [[nodiscard]] RoadId current_road(VehicleId v) const;
  [[nodiscard]] bool parked(VehicleId v) const {
    return states_[v.index()].speed <= 0.0;
  }

  // Immediately puts a parked vehicle back in motion (abrupt departure; no
  // handoff grace). Used by the fault layer's burst-departure windows. The
  // new speed is drawn from the mobility stream. Returns false (no-op) if
  // the vehicle is not parked.
  bool force_depart(VehicleId v);

  // Lifecycle counters (tests and telemetry).
  [[nodiscard]] std::uint64_t park_events() const { return park_events_; }
  [[nodiscard]] std::uint64_t depart_events() const { return depart_events_; }

  [[nodiscard]] const RoadNetwork& network() const { return *net_; }
  [[nodiscard]] const TurnPolicy& turn_policy() const { return policy_; }
  [[nodiscard]] const TrafficLightPlan& lights() const { return lights_; }
  [[nodiscard]] const MobilityConfig& config() const { return cfg_; }

 private:
  void tick();
  void advance_vehicle(VehicleId v, double dt);
  void churn_tick();
  void depart_vehicle(VehicleId v, bool abrupt);
  [[nodiscard]] double draw_dwell_sec();

  Simulator* sim_;
  const RoadNetwork* net_;
  MobilityConfig cfg_;
  TrafficLightPlan lights_;
  TurnPolicy policy_;
  std::vector<VehicleState> states_;
  // Absolute sim-second each parked vehicle departs; < 0 = no dwell drawn
  // yet (moving, or parked before churn assigned one). Kept out of
  // VehicleState so the digest's per-vehicle mix is untouched.
  std::vector<double> depart_at_sec_;
  std::vector<MovementListener*> listeners_;
  std::uint64_t park_events_ = 0;
  std::uint64_t depart_events_ = 0;
  bool started_ = false;
};

}  // namespace hlsrg
