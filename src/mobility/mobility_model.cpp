#include "mobility/mobility_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hlsrg {

namespace {
constexpr double kmh_to_mps(double kmh) { return kmh / 3.6; }
}  // namespace

MobilityModel::MobilityModel(Simulator& sim, const RoadNetwork& net,
                             MobilityConfig cfg)
    : sim_(&sim),
      net_(&net),
      cfg_(cfg),
      lights_(cfg.lights),
      policy_(net, cfg.turn) {
  HLSRG_CHECK(cfg.tick_sec > 0.0);
  HLSRG_CHECK(cfg.min_speed_kmh > 0.0 &&
              cfg.min_speed_kmh <= cfg.max_speed_kmh);
  if (cfg.churn.enabled) {
    HLSRG_CHECK(cfg.churn.park_rate_per_sec >= 0.0);
    HLSRG_CHECK(cfg.churn.min_dwell_sec >= 0.0 &&
                cfg.churn.dwell_mean_sec > cfg.churn.min_dwell_sec);
  }
}

VehicleId MobilityModel::add_vehicle(SegmentId seg, double offset,
                                     double speed_mps) {
  HLSRG_CHECK(!started_);
  HLSRG_CHECK(seg.valid() && seg.index() < net_->segment_count());
  HLSRG_CHECK(offset >= 0.0 && offset < net_->segment(seg).length);
  HLSRG_CHECK(speed_mps >= 0.0);
  states_.push_back(VehicleState{seg, offset, speed_mps, false});
  depart_at_sec_.push_back(-1.0);
  return VehicleId{states_.size() - 1};
}

void MobilityModel::place_random_vehicles(int n) {
  Rng& rng = sim_->mobility_rng();
  // Cumulative weights over directed segments.
  std::vector<double> cum;
  cum.reserve(net_->segment_count());
  double total = 0.0;
  for (std::size_t i = 0; i < net_->segment_count(); ++i) {
    const SegmentId sid{i};
    const double w = net_->segment(sid).length *
                     (net_->is_artery(sid) ? cfg_.artery_placement_weight : 1.0);
    total += w;
    cum.push_back(total);
  }
  HLSRG_CHECK(total > 0.0);
  for (int k = 0; k < n; ++k) {
    const double pick = rng.uniform(0.0, total);
    const std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(cum.begin(), cum.end(), pick) - cum.begin());
    const SegmentId sid{std::min(idx, net_->segment_count() - 1)};
    const double len = net_->segment(sid).length;
    const double offset = rng.uniform(0.0, len * 0.999);
    const double speed =
        rng.chance(cfg_.parked_fraction)
            ? 0.0
            : kmh_to_mps(rng.uniform(cfg_.min_speed_kmh, cfg_.max_speed_kmh));
    add_vehicle(sid, offset, speed);
  }
}

void MobilityModel::start() {
  HLSRG_CHECK(!started_);
  started_ = true;
  sim_->schedule_after(SimTime::from_sec(cfg_.tick_sec), [this] { tick(); });
}

void MobilityModel::add_listener(MovementListener* listener) {
  HLSRG_CHECK(listener != nullptr);
  listeners_.push_back(listener);
}

Vec2 MobilityModel::position(VehicleId v) const {
  const VehicleState& s = states_[v.index()];
  return net_->point_on(s.seg, s.offset);
}

Vec2 MobilityModel::heading(VehicleId v) const {
  return net_->segment(states_[v.index()].seg).unit_dir;
}

RoadId MobilityModel::current_road(VehicleId v) const {
  return net_->segment(states_[v.index()].seg).road;
}

bool MobilityModel::force_depart(VehicleId v) {
  VehicleState& s = states_[v.index()];
  if (s.speed > 0.0) return false;
  depart_vehicle(v, /*abrupt=*/true);
  return true;
}

double MobilityModel::draw_dwell_sec() {
  // Shifted exponential off the mobility stream; inverse-CDF so one uniform
  // per draw. uniform() < 1 so the log argument stays positive.
  const double mean = cfg_.churn.dwell_mean_sec - cfg_.churn.min_dwell_sec;
  return cfg_.churn.min_dwell_sec -
         mean * std::log(1.0 - sim_->mobility_rng().uniform());
}

void MobilityModel::depart_vehicle(VehicleId v, bool abrupt) {
  VehicleState& s = states_[v.index()];
  // Listeners see the departure while the vehicle still sits at its parked
  // pose (role hosts hand their tables off from that position).
  for (MovementListener* l : listeners_) l->on_departed(v, abrupt);
  s.speed = kmh_to_mps(
      sim_->mobility_rng().uniform(cfg_.min_speed_kmh, cfg_.max_speed_kmh));
  s.waiting = false;
  depart_at_sec_[v.index()] = -1.0;
  ++depart_events_;
}

void MobilityModel::churn_tick() {
  Rng& rng = sim_->mobility_rng();
  const double now = sim_->now().sec();
  const double park_p =
      std::min(1.0, cfg_.churn.park_rate_per_sec * cfg_.tick_sec);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const VehicleId v{i};
    VehicleState& s = states_[i];
    if (s.speed > 0.0) {
      if (park_p > 0.0 && rng.chance(park_p)) {
        s.speed = 0.0;
        s.waiting = false;
        depart_at_sec_[i] = now + draw_dwell_sec();
        ++park_events_;
        for (MovementListener* l : listeners_) l->on_parked(v);
      }
    } else if (depart_at_sec_[i] < 0.0) {
      // Init-parked vehicle meeting the lifecycle for the first time: give
      // it a dwell clock so the initial parked population churns too.
      depart_at_sec_[i] = now + draw_dwell_sec();
    } else if (now >= depart_at_sec_[i]) {
      depart_vehicle(v, /*abrupt=*/false);
    }
  }
}

void MobilityModel::tick() {
  if (cfg_.churn.enabled) churn_tick();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const VehicleId v{i};
    const Vec2 before = position(v);
    advance_vehicle(v, cfg_.tick_sec);
    const Vec2 after = position(v);
    if (before != after) {
      for (MovementListener* l : listeners_) l->on_moved(v, before, after);
    }
  }
  for (MovementListener* l : listeners_) l->on_tick();
  sim_->schedule_after(SimTime::from_sec(cfg_.tick_sec), [this] { tick(); });
}

void MobilityModel::advance_vehicle(VehicleId v, double dt) {
  VehicleState& s = states_[v.index()];
  if (s.speed <= 0.0) return;  // parked
  double budget = s.speed * dt;
  // A tick can in principle span several short segments; loop until the
  // distance budget is spent or the vehicle is parked at a red light.
  while (budget > 0.0) {
    const Segment& seg = net_->segment(s.seg);
    if (!s.waiting) {
      const double remaining = seg.length - s.offset;
      if (budget < remaining) {
        s.offset += budget;
        return;
      }
      budget -= remaining;
      s.offset = seg.length;
      s.waiting = true;  // provisionally: must clear the light to cross
    }
    // At the stop line of seg.to. Check the light for our approach.
    const Orientation approach = net_->road(seg.road).orient;
    if (!lights_.can_pass(seg.to, approach, sim_->now())) {
      return;  // stay waiting; budget forfeited while stopped
    }
    // Green: cross the intersection.
    const SegmentId out = policy_.choose_exit(s.seg, sim_->mobility_rng());
    for (MovementListener* l : listeners_) {
      l->on_intersection_pass(v, seg.to, s.seg, out);
    }
    s.seg = out;
    s.offset = 0.0;
    s.waiting = false;
  }
}

}  // namespace hlsrg
