#include "mobility/turn_policy.h"

#include <cmath>
#include <vector>

#include "geom/segment.h"
#include "util/check.h"

namespace hlsrg {

SegmentId TurnPolicy::choose_exit(SegmentId in_seg, Rng& rng) const {
  const Segment& in = net_->segment(in_seg);
  const Intersection& node = net_->intersection(in.to);
  HLSRG_CHECK_MSG(!node.out.empty(), "intersection with no exits");

  std::vector<SegmentId> candidates;
  std::vector<double> weights;
  double total = 0.0;
  for (SegmentId out_id : node.out) {
    if (out_id == in.reverse) continue;  // no U-turns unless forced
    const Segment& out = net_->segment(out_id);
    const bool out_artery = net_->is_artery(out_id);
    double w = out_artery ? cfg_.artery_weight : 1.0;
    const double dtheta =
        angle_between(in.unit_dir.angle(), out.unit_dir.angle());
    if (dtheta <= cfg_.straight_tolerance_rad) {
      w *= cfg_.straight_bonus;
      if (out_artery && net_->is_artery(in_seg)) {
        w *= cfg_.artery_straight_bonus;
      }
    }
    candidates.push_back(out_id);
    weights.push_back(w);
    total += w;
  }
  if (candidates.empty()) return in.reverse;  // dead end: turn around

  double pick = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return candidates[i];
  }
  return candidates.back();
}

bool TurnPolicy::is_turn(SegmentId in_seg, SegmentId out_seg) const {
  const Segment& in = net_->segment(in_seg);
  const Segment& out = net_->segment(out_seg);
  return angle_between(in.unit_dir.angle(), out.unit_dir.angle()) >
         cfg_.straight_tolerance_rad;
}

}  // namespace hlsrg
