#include "report/run_report.h"

namespace hlsrg {

namespace {

const char* workload_name(ScenarioConfig::WorkloadKind kind) {
  switch (kind) {
    case ScenarioConfig::WorkloadKind::kOneShot:
      return "oneshot";
    case ScenarioConfig::WorkloadKind::kPoisson:
      return "poisson";
    case ScenarioConfig::WorkloadKind::kHotspot:
      return "hotspot";
  }
  return "oneshot";
}

ScenarioConfig::WorkloadKind workload_from_name(const std::string& name) {
  if (name == "poisson") return ScenarioConfig::WorkloadKind::kPoisson;
  if (name == "hotspot") return ScenarioConfig::WorkloadKind::kHotspot;
  return ScenarioConfig::WorkloadKind::kOneShot;
}

}  // namespace

LatencySummary LatencySummary::from(const LatencyStat& stat) {
  LatencySummary s;
  s.count = stat.count();
  s.mean_ms = stat.mean_ms();
  s.min_ms = stat.min_ms();
  s.max_ms = stat.max_ms();
  s.p50_ms = stat.p50_ms();
  s.p90_ms = stat.p90_ms();
  s.p95_ms = stat.p95_ms();
  s.p99_ms = stat.p99_ms();
  return s;
}

JsonValue scenario_to_json(const ScenarioConfig& cfg) {
  JsonValue o = JsonValue::object();
  o.set("seed", cfg.seed);
  o.set("vehicles", cfg.vehicles);
  o.set("map_size_m", cfg.map.size_m);
  o.set("map_irregular", cfg.map.irregular);
  if (!cfg.map_file.empty()) o.set("map_file", cfg.map_file);
  o.set("partition_target_m", cfg.partition.target_size);
  o.set("radio_range_m", cfg.radio.range_m);
  o.set("workload", workload_name(cfg.workload));
  o.set("source_fraction", cfg.source_fraction);
  o.set("poisson_rate_per_sec", cfg.poisson_rate_per_sec);
  o.set("hotspot_targets", cfg.hotspot_targets);
  o.set("warmup_sec", cfg.warmup.sec());
  o.set("query_window_sec", cfg.query_window.sec());
  o.set("grace_sec", cfg.grace.sec());
  o.set("sample_interval_sec", cfg.sample_interval.sec());
  // Only when set, so profiler-free reports stay byte-identical to older
  // builds (same pattern as the service-tier block below).
  if (cfg.profile) o.set("profile", cfg.profile);
  o.set("parked_fraction", cfg.mobility.parked_fraction);
  o.set("use_rsus", cfg.hlsrg.use_rsus);
  o.set("suppress_artery_updates", cfg.hlsrg.suppress_artery_updates);
  o.set("naive_every_crossing", cfg.hlsrg.naive_every_crossing);
  o.set("l1_expiry_sec", cfg.hlsrg.l1_expiry.sec());
  o.set("l2_expiry_sec", cfg.hlsrg.l2_expiry.sec());
  o.set("l3_expiry_sec", cfg.hlsrg.l3_expiry.sec());
  o.set("beacons_enabled", cfg.beacons.enabled);
  o.set("beacon_interval_sec", cfg.beacons.interval_sec);
  if (!cfg.fault_plan_file.empty()) {
    o.set("fault_plan_file", cfg.fault_plan_file);
  }
  if (cfg.fault_seed != 0) o.set("fault_seed", cfg.fault_seed);
  if (cfg.hlsrg.parked_rsu_hosting || cfg.mobility.churn.enabled) {
    // Churn block only when parked hosting / the parking lifecycle runs, so
    // churn-free reports stay byte-identical to pre-churn builds.
    o.set("parked_rsu_hosting", cfg.hlsrg.parked_rsu_hosting);
    o.set("host_radius_m", cfg.hlsrg.host_radius_m);
    o.set("enable_handoff", cfg.hlsrg.enable_handoff);
    o.set("role_fill_delay_sec", cfg.hlsrg.role_fill_delay.sec());
    o.set("churn_detect_delay_sec", cfg.hlsrg.churn_detect_delay.sec());
    o.set("churn_enabled", cfg.mobility.churn.enabled);
    o.set("park_rate_per_sec", cfg.mobility.churn.park_rate_per_sec);
    o.set("dwell_mean_sec", cfg.mobility.churn.dwell_mean_sec);
    o.set("min_dwell_sec", cfg.mobility.churn.min_dwell_sec);
  }
  if (cfg.service.enabled) {
    // Service-tier block only when the tier runs, so tier-free reports stay
    // byte-identical to pre-tier builds.
    o.set("service_enabled", cfg.service.enabled);
    o.set("open_loop_rate_per_sec", cfg.service.open_loop_rate_per_sec);
    o.set("open_loop_ramp_per_sec2", cfg.service.open_loop_ramp_per_sec2);
    o.set("hotspot_fraction", cfg.service.hotspot_fraction);
    o.set("rsu_lookup_sec", cfg.service.rsu_lookup_time.sec());
    o.set("max_outstanding", cfg.service.max_outstanding);
    o.set("shed_retries", cfg.service.shed_retries);
    o.set("batching", cfg.service.batching);
    o.set("batch_window_sec", cfg.service.batch_window.sec());
    o.set("max_batch", cfg.service.max_batch);
    o.set("caching", cfg.service.caching);
    o.set("cache_ttl_sec", cfg.service.cache_ttl.sec());
    o.set("cache_capacity", cfg.service.cache_capacity);
  }
  return o;
}

void scenario_from_json(const JsonValue& v, ScenarioConfig* cfg) {
  if (v.contains("seed")) cfg->seed = v.at("seed").as_uint64();
  if (v.contains("vehicles")) cfg->vehicles = v.at("vehicles").as_int();
  if (v.contains("map_size_m")) cfg->map.size_m = v.at("map_size_m").as_double();
  if (v.contains("map_irregular")) {
    cfg->map.irregular = v.at("map_irregular").as_bool();
  }
  if (v.contains("map_file")) cfg->map_file = v.at("map_file").as_string();
  if (v.contains("partition_target_m")) {
    cfg->partition.target_size = v.at("partition_target_m").as_double();
  }
  if (v.contains("radio_range_m")) {
    cfg->radio.range_m = v.at("radio_range_m").as_double();
  }
  if (v.contains("workload")) {
    cfg->workload = workload_from_name(v.at("workload").as_string());
  }
  if (v.contains("source_fraction")) {
    cfg->source_fraction = v.at("source_fraction").as_double();
  }
  if (v.contains("poisson_rate_per_sec")) {
    cfg->poisson_rate_per_sec = v.at("poisson_rate_per_sec").as_double();
  }
  if (v.contains("hotspot_targets")) {
    cfg->hotspot_targets = v.at("hotspot_targets").as_int();
  }
  if (v.contains("warmup_sec")) {
    cfg->warmup = SimTime::from_sec(v.at("warmup_sec").as_double());
  }
  if (v.contains("query_window_sec")) {
    cfg->query_window = SimTime::from_sec(v.at("query_window_sec").as_double());
  }
  if (v.contains("grace_sec")) {
    cfg->grace = SimTime::from_sec(v.at("grace_sec").as_double());
  }
  if (v.contains("sample_interval_sec")) {
    cfg->sample_interval =
        SimTime::from_sec(v.at("sample_interval_sec").as_double());
  }
  if (v.contains("profile")) cfg->profile = v.at("profile").as_bool();
  if (v.contains("parked_fraction")) {
    cfg->mobility.parked_fraction = v.at("parked_fraction").as_double();
  }
  if (v.contains("use_rsus")) cfg->hlsrg.use_rsus = v.at("use_rsus").as_bool();
  if (v.contains("suppress_artery_updates")) {
    cfg->hlsrg.suppress_artery_updates =
        v.at("suppress_artery_updates").as_bool();
  }
  if (v.contains("naive_every_crossing")) {
    cfg->hlsrg.naive_every_crossing = v.at("naive_every_crossing").as_bool();
  }
  if (v.contains("l1_expiry_sec")) {
    cfg->hlsrg.l1_expiry = SimTime::from_sec(v.at("l1_expiry_sec").as_double());
  }
  if (v.contains("l2_expiry_sec")) {
    cfg->hlsrg.l2_expiry = SimTime::from_sec(v.at("l2_expiry_sec").as_double());
  }
  if (v.contains("l3_expiry_sec")) {
    cfg->hlsrg.l3_expiry = SimTime::from_sec(v.at("l3_expiry_sec").as_double());
  }
  if (v.contains("beacons_enabled")) {
    cfg->beacons.enabled = v.at("beacons_enabled").as_bool();
  }
  if (v.contains("beacon_interval_sec")) {
    cfg->beacons.interval_sec = v.at("beacon_interval_sec").as_double();
  }
  if (v.contains("fault_plan_file")) {
    cfg->fault_plan_file = v.at("fault_plan_file").as_string();
  }
  if (v.contains("fault_seed")) {
    cfg->fault_seed = v.at("fault_seed").as_uint64();
  }
  if (v.contains("parked_rsu_hosting")) {
    cfg->hlsrg.parked_rsu_hosting = v.at("parked_rsu_hosting").as_bool();
    if (v.contains("host_radius_m")) {
      cfg->hlsrg.host_radius_m = v.at("host_radius_m").as_double();
    }
    if (v.contains("enable_handoff")) {
      cfg->hlsrg.enable_handoff = v.at("enable_handoff").as_bool();
    }
    if (v.contains("role_fill_delay_sec")) {
      cfg->hlsrg.role_fill_delay =
          SimTime::from_sec(v.at("role_fill_delay_sec").as_double());
    }
    if (v.contains("churn_detect_delay_sec")) {
      cfg->hlsrg.churn_detect_delay =
          SimTime::from_sec(v.at("churn_detect_delay_sec").as_double());
    }
  }
  if (v.contains("churn_enabled")) {
    cfg->mobility.churn.enabled = v.at("churn_enabled").as_bool();
    if (v.contains("park_rate_per_sec")) {
      cfg->mobility.churn.park_rate_per_sec =
          v.at("park_rate_per_sec").as_double();
    }
    if (v.contains("dwell_mean_sec")) {
      cfg->mobility.churn.dwell_mean_sec = v.at("dwell_mean_sec").as_double();
    }
    if (v.contains("min_dwell_sec")) {
      cfg->mobility.churn.min_dwell_sec = v.at("min_dwell_sec").as_double();
    }
  }
  if (v.contains("service_enabled")) {
    cfg->service.enabled = v.at("service_enabled").as_bool();
    if (v.contains("open_loop_rate_per_sec")) {
      cfg->service.open_loop_rate_per_sec =
          v.at("open_loop_rate_per_sec").as_double();
    }
    if (v.contains("open_loop_ramp_per_sec2")) {
      cfg->service.open_loop_ramp_per_sec2 =
          v.at("open_loop_ramp_per_sec2").as_double();
    }
    if (v.contains("hotspot_fraction")) {
      cfg->service.hotspot_fraction = v.at("hotspot_fraction").as_double();
    }
    if (v.contains("rsu_lookup_sec")) {
      cfg->service.rsu_lookup_time =
          SimTime::from_sec(v.at("rsu_lookup_sec").as_double());
    }
    if (v.contains("max_outstanding")) {
      cfg->service.max_outstanding = v.at("max_outstanding").as_int();
    }
    if (v.contains("shed_retries")) {
      cfg->service.shed_retries = v.at("shed_retries").as_bool();
    }
    if (v.contains("batching")) {
      cfg->service.batching = v.at("batching").as_bool();
    }
    if (v.contains("batch_window_sec")) {
      cfg->service.batch_window =
          SimTime::from_sec(v.at("batch_window_sec").as_double());
    }
    if (v.contains("max_batch")) {
      cfg->service.max_batch = v.at("max_batch").as_int();
    }
    if (v.contains("caching")) {
      cfg->service.caching = v.at("caching").as_bool();
    }
    if (v.contains("cache_ttl_sec")) {
      cfg->service.cache_ttl =
          SimTime::from_sec(v.at("cache_ttl_sec").as_double());
    }
    if (v.contains("cache_capacity")) {
      cfg->service.cache_capacity = v.at("cache_capacity").as_int();
    }
  }
}

JsonValue metrics_to_json(const RunMetrics& m) {
  JsonValue o = JsonValue::object();
  o.set("update_packets_originated", m.update_packets_originated);
  o.set("update_transmissions", m.update_transmissions);
  o.set("aggregation_packets", m.aggregation_packets);
  o.set("aggregation_transmissions", m.aggregation_transmissions);
  o.set("queries_issued", m.queries_issued);
  o.set("queries_succeeded", m.queries_succeeded);
  o.set("queries_failed", m.queries_failed);
  o.set("query_packets_originated", m.query_packets_originated);
  o.set("query_transmissions", m.query_transmissions);
  o.set("server_lookup_hits", m.server_lookup_hits);
  o.set("server_lookup_misses", m.server_lookup_misses);
  o.set("rsu_lookup_hits", m.rsu_lookup_hits);
  o.set("rsu_lookup_misses", m.rsu_lookup_misses);
  o.set("notifications_sent", m.notifications_sent);
  o.set("acks_sent", m.acks_sent);
  o.set("radio_broadcasts", m.radio_broadcasts);
  o.set("radio_unicasts", m.radio_unicasts);
  o.set("radio_drops", m.radio_drops);
  o.set("wired_messages", m.wired_messages);
  o.set("gpsr_failures", m.gpsr_failures);
  o.set("wired_drops", m.wired_drops);
  o.set("rsu_suppressed", m.rsu_suppressed);
  o.set("query_retries", m.query_retries);
  o.set("query_failovers", m.query_failovers);
  o.set("queries_stranded", m.queries_stranded);
  o.set("fault_queries_issued", m.fault_queries_issued);
  o.set("fault_queries_ok", m.fault_queries_ok);
  o.set("recovery_time_us", m.recovery_time_us);
  o.set("recovery_windows", m.recovery_windows);
  o.set("fault_plan_digest", m.fault_plan_digest);
  o.set("queries_offered", m.queries_offered);
  o.set("queries_shed", m.queries_shed);
  o.set("retries_shed", m.retries_shed);
  o.set("cache_hits", m.cache_hits);
  o.set("cache_misses", m.cache_misses);
  o.set("cache_invalidations", m.cache_invalidations);
  o.set("batched_queries", m.batched_queries);
  o.set("batch_flushes", m.batch_flushes);
  o.set("peak_outstanding", m.peak_outstanding);
  o.set("role_departures", m.role_departures);
  o.set("role_elections", m.role_elections);
  o.set("role_vacancies", m.role_vacancies);
  o.set("role_fills", m.role_fills);
  o.set("handoffs_sent", m.handoffs_sent);
  o.set("handoffs_delivered", m.handoffs_delivered);
  o.set("handoffs_lost", m.handoffs_lost);
  o.set("handoff_records_sent", m.handoff_records_sent);
  o.set("handoff_records_delivered", m.handoff_records_delivered);
  o.set("handoff_records_expired", m.handoff_records_expired);
  o.set("handoff_records_in_flight", m.handoff_records_in_flight);
  o.set("records_at_departure", m.records_at_departure);
  o.set("churn_active", m.churn_active);
  return o;
}

void metrics_from_json(const JsonValue& v, RunMetrics* m) {
  m->update_packets_originated = v.at("update_packets_originated").as_uint64();
  m->update_transmissions = v.at("update_transmissions").as_uint64();
  m->aggregation_packets = v.at("aggregation_packets").as_uint64();
  m->aggregation_transmissions = v.at("aggregation_transmissions").as_uint64();
  m->queries_issued = v.at("queries_issued").as_uint64();
  m->queries_succeeded = v.at("queries_succeeded").as_uint64();
  m->queries_failed = v.at("queries_failed").as_uint64();
  m->query_packets_originated = v.at("query_packets_originated").as_uint64();
  m->query_transmissions = v.at("query_transmissions").as_uint64();
  m->server_lookup_hits = v.at("server_lookup_hits").as_uint64();
  m->server_lookup_misses = v.at("server_lookup_misses").as_uint64();
  m->rsu_lookup_hits = v.at("rsu_lookup_hits").as_uint64();
  m->rsu_lookup_misses = v.at("rsu_lookup_misses").as_uint64();
  m->notifications_sent = v.at("notifications_sent").as_uint64();
  m->acks_sent = v.at("acks_sent").as_uint64();
  m->radio_broadcasts = v.at("radio_broadcasts").as_uint64();
  m->radio_unicasts = v.at("radio_unicasts").as_uint64();
  m->radio_drops = v.at("radio_drops").as_uint64();
  m->wired_messages = v.at("wired_messages").as_uint64();
  m->gpsr_failures = v.at("gpsr_failures").as_uint64();
  // Fault fields arrived after v1 reports shipped; absent in older files
  // (at() yields null and the typed reads fall back to 0).
  m->wired_drops = v.at("wired_drops").as_uint64();
  m->rsu_suppressed = v.at("rsu_suppressed").as_uint64();
  m->query_retries = v.at("query_retries").as_uint64();
  m->query_failovers = v.at("query_failovers").as_uint64();
  m->queries_stranded = v.at("queries_stranded").as_uint64();
  m->fault_queries_issued = v.at("fault_queries_issued").as_uint64();
  m->fault_queries_ok = v.at("fault_queries_ok").as_uint64();
  m->recovery_time_us = v.at("recovery_time_us").as_uint64();
  m->recovery_windows = v.at("recovery_windows").as_uint64();
  m->fault_plan_digest = v.at("fault_plan_digest").as_uint64();
  // Service-tier fields arrived after the fault fields; same null-fallback.
  m->queries_offered = v.at("queries_offered").as_uint64();
  m->queries_shed = v.at("queries_shed").as_uint64();
  m->retries_shed = v.at("retries_shed").as_uint64();
  m->cache_hits = v.at("cache_hits").as_uint64();
  m->cache_misses = v.at("cache_misses").as_uint64();
  m->cache_invalidations = v.at("cache_invalidations").as_uint64();
  m->batched_queries = v.at("batched_queries").as_uint64();
  m->batch_flushes = v.at("batch_flushes").as_uint64();
  m->peak_outstanding = v.at("peak_outstanding").as_uint64();
  // Churn fields arrived after the service-tier fields; same null-fallback.
  m->role_departures = v.at("role_departures").as_uint64();
  m->role_elections = v.at("role_elections").as_uint64();
  m->role_vacancies = v.at("role_vacancies").as_uint64();
  m->role_fills = v.at("role_fills").as_uint64();
  m->handoffs_sent = v.at("handoffs_sent").as_uint64();
  m->handoffs_delivered = v.at("handoffs_delivered").as_uint64();
  m->handoffs_lost = v.at("handoffs_lost").as_uint64();
  m->handoff_records_sent = v.at("handoff_records_sent").as_uint64();
  m->handoff_records_delivered =
      v.at("handoff_records_delivered").as_uint64();
  m->handoff_records_expired = v.at("handoff_records_expired").as_uint64();
  m->handoff_records_in_flight =
      v.at("handoff_records_in_flight").as_uint64();
  m->records_at_departure = v.at("records_at_departure").as_uint64();
  m->churn_active = v.at("churn_active").as_uint64();
}

JsonValue latency_to_json(const LatencySummary& l) {
  JsonValue o = JsonValue::object();
  o.set("count", l.count);
  o.set("mean_ms", l.mean_ms);
  o.set("min_ms", l.min_ms);
  o.set("max_ms", l.max_ms);
  o.set("p50_ms", l.p50_ms);
  o.set("p90_ms", l.p90_ms);
  o.set("p95_ms", l.p95_ms);
  o.set("p99_ms", l.p99_ms);
  return o;
}

void latency_from_json(const JsonValue& v, LatencySummary* l) {
  l->count = v.at("count").as_uint64();
  l->mean_ms = v.at("mean_ms").as_double();
  l->min_ms = v.at("min_ms").as_double();
  l->max_ms = v.at("max_ms").as_double();
  l->p50_ms = v.at("p50_ms").as_double();
  // Added after v1 reports shipped; absent in older files.
  if (v.contains("p90_ms")) l->p90_ms = v.at("p90_ms").as_double();
  l->p95_ms = v.at("p95_ms").as_double();
  l->p99_ms = v.at("p99_ms").as_double();
}

JsonValue engine_to_json(const EngineStats& e) {
  JsonValue o = JsonValue::object();
  o.set("events_processed", e.events_processed);
  o.set("events_scheduled", e.events_scheduled);
  o.set("peak_queue_depth", e.peak_queue_depth);
  o.set("sim_time_sec", e.sim_time_sec);
  o.set("wall_clock_sec", e.wall_clock_sec);
  o.set("events_per_sec", e.events_per_sec());
  o.set("broadcasts", e.broadcasts);
  o.set("broadcasts_per_sec", e.broadcasts_per_sec());
  o.set("peak_rss_bytes", e.peak_rss_bytes);
  o.set("table_bytes", e.table_bytes);
  o.set("trace_events_dropped", e.trace_events_dropped);
  o.set("trace_spans_dropped", e.trace_spans_dropped);
  o.set("peak_outstanding_queries", e.peak_outstanding_queries);
  return o;
}

void engine_from_json(const JsonValue& v, EngineStats* e) {
  e->events_processed = v.at("events_processed").as_uint64();
  e->events_scheduled = v.at("events_scheduled").as_uint64();
  e->peak_queue_depth = v.at("peak_queue_depth").as_uint64();
  e->sim_time_sec = v.at("sim_time_sec").as_double();
  e->wall_clock_sec = v.at("wall_clock_sec").as_double();
  if (v.contains("trace_events_dropped")) {
    e->trace_events_dropped = v.at("trace_events_dropped").as_uint64();
  }
  if (v.contains("trace_spans_dropped")) {
    e->trace_spans_dropped = v.at("trace_spans_dropped").as_uint64();
  }
  // Added after v1 reports shipped; absent in older files.
  if (v.contains("broadcasts")) {
    e->broadcasts = v.at("broadcasts").as_uint64();
  }
  if (v.contains("peak_rss_bytes")) {
    e->peak_rss_bytes = v.at("peak_rss_bytes").as_uint64();
  }
  if (v.contains("table_bytes")) {
    e->table_bytes = v.at("table_bytes").as_uint64();
  }
  if (v.contains("peak_outstanding_queries")) {
    e->peak_outstanding_queries =
        v.at("peak_outstanding_queries").as_uint64();
  }
}

JsonValue derived_metrics_json(const RunMetrics& merged, bool service_tier,
                               std::size_t replicas) {
  const double n = replicas == 0 ? 1.0 : static_cast<double>(replicas);
  JsonValue o = JsonValue::object();
  o.set("update_overhead",
        static_cast<double>(merged.total_update_overhead()) / n);
  o.set("query_overhead",
        static_cast<double>(merged.total_query_overhead()) / n);
  o.set("success_rate", merged.success_rate());
  o.set("mean_query_latency_ms", merged.query_latency.mean_ms());
  o.set("query_delay_p50_ms", merged.query_latency.p50_ms());
  o.set("query_delay_p90_ms", merged.query_latency.p90_ms());
  o.set("query_delay_p95_ms", merged.query_latency.p95_ms());
  o.set("query_delay_p99_ms", merged.query_latency.p99_ms());
  if (merged.fault_plan_digest != 0) {
    // Fault-run derived block: only present when a fault plan ran, so
    // fault-free reports are byte-identical to pre-fault builds.
    o.set("availability", merged.availability());
    o.set("recovery_ms", merged.recovery_ms());
    o.set("queries_stranded", static_cast<double>(merged.queries_stranded) / n);
  }
  if (merged.churn_active != 0) {
    // Churn derived block: only present when parked hosting ran, so
    // churn-free reports are byte-identical to pre-churn builds.
    o.set("handoff_record_delivery_rate",
          merged.handoff_record_delivery_rate());
    o.set("role_departures", static_cast<double>(merged.role_departures) / n);
    o.set("role_continuity",
          merged.role_departures == 0
              ? 1.0
              : static_cast<double>(merged.role_elections) /
                    static_cast<double>(merged.role_departures));
  }
  if (service_tier && merged.queries_offered > 0) {
    // Service-tier derived block: only present when the tier ran, so
    // tier-free reports stay byte-identical to pre-tier builds.
    o.set("served_rate", merged.served_rate());
    o.set("shed_rate", static_cast<double>(merged.queries_shed) /
                           static_cast<double>(merged.queries_offered));
    o.set("cache_hit_rate",
          merged.cache_hits + merged.cache_misses == 0
              ? 0.0
              : static_cast<double>(merged.cache_hits) /
                    static_cast<double>(merged.cache_hits +
                                        merged.cache_misses));
  }
  return o;
}

JsonValue RunReport::to_json() const {
  JsonValue o = JsonValue::object();
  o.set("protocol", protocol);
  o.set("config", scenario_to_json(config));
  o.set("metrics", metrics_to_json(metrics));
  o.set("latency", latency_to_json(latency));
  o.set("engine", engine_to_json(engine));
  if (!observability.is_null()) o.set("observability", observability);
  if (!profile.is_null()) o.set("profile", profile);
  return o;
}

bool RunReport::from_json(const JsonValue& v, RunReport* out,
                          std::string* error) {
  if (!v.is_object()) {
    if (error != nullptr) *error = "run report is not a JSON object";
    return false;
  }
  for (const char* key : {"protocol", "config", "metrics", "latency", "engine"}) {
    if (!v.contains(key)) {
      if (error != nullptr) {
        *error = std::string("run report missing field '") + key + "'";
      }
      return false;
    }
  }
  if (!v.at("config").is_object() || !v.at("metrics").is_object() ||
      !v.at("latency").is_object() || !v.at("engine").is_object()) {
    if (error != nullptr) *error = "run report field has wrong type";
    return false;
  }
  *out = RunReport{};
  out->protocol = v.at("protocol").as_string();
  scenario_from_json(v.at("config"), &out->config);
  metrics_from_json(v.at("metrics"), &out->metrics);
  latency_from_json(v.at("latency"), &out->latency);
  engine_from_json(v.at("engine"), &out->engine);
  if (v.contains("observability")) out->observability = v.at("observability");
  if (v.contains("profile")) out->profile = v.at("profile");
  return true;
}

RunReport make_run_report(Protocol protocol, const ScenarioConfig& cfg,
                          const RunMetrics& metrics, const EngineStats& engine) {
  RunReport r;
  r.protocol = protocol_name(protocol);
  r.config = cfg;
  r.metrics = metrics;
  r.latency = LatencySummary::from(metrics.query_latency);
  r.engine = engine;
  return r;
}

}  // namespace hlsrg
