// RunReport: the machine-readable record of one measured run — scenario
// configuration, protocol metrics, latency summary, and engine statistics.
// Every bench emits these inside its BENCH_<name>.json; scenario_cli emits
// one per invocation. The schema is documented in docs/PROTOCOL.md
// ("Bench report JSON schema") and versioned via kBenchSchema.
#pragma once

#include <optional>
#include <string>

#include "harness/scenario.h"
#include "report/json.h"
#include "sim/counters.h"

namespace hlsrg {

// Bumped whenever a field is renamed or changes meaning; additions are
// backward compatible and do not bump it.
inline constexpr const char* kBenchSchema = "hlsrg-bench/v1";

// Compact latency digest (LatencyStat keeps raw samples; reports keep the
// order statistics the figures use).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  [[nodiscard]] static LatencySummary from(const LatencyStat& stat);
};

struct RunReport {
  std::string protocol;    // "HLSRG" / "RLSMP" / "FLOOD"
  ScenarioConfig config;   // the serialized subset round-trips; see to_json
  RunMetrics metrics;      // counters only; latency lives in `latency`
  LatencySummary latency;
  EngineStats engine;
  // Optional observability payload (trace/metrics.h registry_to_json):
  // counters, gauges, latency histograms, and time series. Null when the run
  // produced none; carried through to_json/from_json verbatim.
  JsonValue observability;
  // Optional wall-clock phase profile (obs/profiler.h to_json). Null unless
  // the run profiled; carried through verbatim like `observability`.
  JsonValue profile;

  [[nodiscard]] JsonValue to_json() const;
  // Inverse of to_json for the serialized field set; unknown fields are
  // ignored, missing fields keep their defaults. Returns false (and fills
  // *error) when `v` is not an object or a field has the wrong type shape.
  static bool from_json(const JsonValue& v, RunReport* out,
                        std::string* error = nullptr);
};

// Builds a report from one finished measurement.
[[nodiscard]] RunReport make_run_report(Protocol protocol,
                                        const ScenarioConfig& cfg,
                                        const RunMetrics& metrics,
                                        const EngineStats& engine);

// --- serialization pieces (shared by RunReport and the bench driver) --------
[[nodiscard]] JsonValue scenario_to_json(const ScenarioConfig& cfg);
void scenario_from_json(const JsonValue& v, ScenarioConfig* cfg);
[[nodiscard]] JsonValue metrics_to_json(const RunMetrics& m);
void metrics_from_json(const JsonValue& v, RunMetrics* m);
[[nodiscard]] JsonValue latency_to_json(const LatencySummary& l);
void latency_from_json(const JsonValue& v, LatencySummary* l);
[[nodiscard]] JsonValue engine_to_json(const EngineStats& e);
void engine_from_json(const JsonValue& v, EngineStats* e);

// The headline derived metrics every figure plots, as a JSON object:
// update_overhead, query_overhead, success_rate, mean_query_latency_ms.
// `service_tier` gates the served/shed/cache-hit rate block: the admission
// seam counts offered load even with the tier off, so the config flag (not
// the counter) decides whether tier fields appear in the report.
[[nodiscard]] JsonValue derived_metrics_json(const RunMetrics& merged,
                                             bool service_tier,
                                             std::size_t replicas);

}  // namespace hlsrg
