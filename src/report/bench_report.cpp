#include "report/bench_report.h"

#include "trace/metrics.h"
#include "util/check.h"

namespace hlsrg {

BenchReport::BenchReport(std::string bench_name, int replicas)
    : bench_(std::move(bench_name)), replicas_(replicas) {}

void BenchReport::begin_section(const std::string& title,
                                const std::string& metric) {
  sections_.push_back(Section{title, metric, {}});
}

void BenchReport::add_result(const std::string& label,
                             const std::string& protocol,
                             const ScenarioConfig& cfg, const ReplicaSet& set) {
  HLSRG_CHECK_MSG(!sections_.empty(),
                  "begin_section must precede add_result");
  Section& section = sections_.back();
  Row* row = nullptr;
  for (Row& r : section.rows) {
    if (r.label == label) {
      row = &r;
      break;
    }
  }
  if (row == nullptr) {
    section.rows.push_back(Row{label, {}});
    row = &section.rows.back();
  }

  Result result;
  result.report.protocol = protocol;
  result.report.config = cfg;
  result.report.metrics = set.merged;
  result.report.latency = LatencySummary::from(set.merged.query_latency);
  result.report.engine = set.engine_total;
  result.report.observability = registry_to_json(set.observability);
  if (!set.profile.empty()) result.report.profile = set.profile.to_json();
  result.replica_engine = set.engine;
  result.derived = derived_metrics_json(set.merged, cfg.service.enabled,
                                      set.replicas.size());
  if (set.regions.configured()) {
    // Region load-imbalance summary (obs/region_telemetry.h): how unevenly
    // the merged delivery load spread over the L3 regions.
    const RegionTelemetry::Imbalance imb = set.regions.load_imbalance();
    result.derived.set("region_load_max_over_mean", imb.max_over_mean);
    result.derived.set("region_imbalance_cv", imb.cv);
  }
  row->results.push_back(std::move(result));
}

JsonValue BenchReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kBenchSchema);
  doc.set("bench", bench_);
  doc.set("replicas", replicas_);
  JsonValue sections = JsonValue::array();
  for (const Section& section : sections_) {
    JsonValue s = JsonValue::object();
    s.set("title", section.title);
    s.set("metric", section.metric);
    JsonValue rows = JsonValue::array();
    for (const Row& row : section.rows) {
      JsonValue r = JsonValue::object();
      r.set("label", row.label);
      JsonValue results = JsonValue::array();
      for (const Result& result : row.results) {
        JsonValue entry = result.report.to_json();
        JsonValue per_replica = JsonValue::array();
        for (const EngineStats& e : result.replica_engine) {
          per_replica.push_back(engine_to_json(e));
        }
        entry.set("replica_engine", std::move(per_replica));
        entry.set("derived", result.derived);
        results.push_back(std::move(entry));
      }
      r.set("results", std::move(results));
      rows.push_back(std::move(r));
    }
    s.set("rows", std::move(rows));
    sections.push_back(std::move(s));
  }
  doc.set("sections", std::move(sections));
  return doc;
}

bool BenchReport::write(const std::string& path, std::string* error) const {
  return write_json_file(to_json(), path, error);
}

}  // namespace hlsrg
