// Dependency-free JSON document model, writer, and parser.
//
// Small by design: the bench reports need objects/arrays/strings/numbers/
// bools/null, stable key order (insertion order, so diffs are meaningful),
// round-trip-exact integers up to 2^53, and nothing else. The parser accepts
// strict RFC 8259 JSON; it exists so tools and tests can read reports back,
// not to be a general-purpose library.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hlsrg {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}          // NOLINT
  JsonValue(int i) : JsonValue(static_cast<double>(i)) {}            // NOLINT
  JsonValue(std::int64_t i) : JsonValue(static_cast<double>(i)) {}   // NOLINT
  JsonValue(std::uint64_t u) : JsonValue(static_cast<double>(u)) {}  // NOLINT
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : JsonValue(std::string(s)) {}  // NOLINT

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Typed reads; defaults returned on type mismatch so report consumers can
  // be written without a null-check per field.
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] std::uint64_t as_uint64(std::uint64_t fallback = 0) const {
    return is_number() && number_ >= 0.0
               ? static_cast<std::uint64_t>(number_)
               : fallback;
  }
  [[nodiscard]] int as_int(int fallback = 0) const {
    return is_number() ? static_cast<int>(number_) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  // --- array ---------------------------------------------------------------
  void push_back(JsonValue v) {
    type_ = Type::kArray;
    items_.push_back(std::move(v));
  }
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  [[nodiscard]] std::size_t size() const {
    return is_object() ? members_.size() : items_.size();
  }

  // --- object --------------------------------------------------------------
  // Sets `key` (replacing an existing value, preserving its position).
  void set(const std::string& key, JsonValue v);
  // Member lookup; returns a shared null sentinel when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return members_;
  }

  // Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  // Strict parse of a complete JSON document. On failure returns nullopt and
  // fills *error with "offset N: reason" when `error` is non-null.
  [[nodiscard]] static std::optional<JsonValue> parse(const std::string& text,
                                                      std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Writes `v.dump(2)` plus a trailing newline to `path`; false + *error on
// I/O failure.
bool write_json_file(const JsonValue& v, const std::string& path,
                     std::string* error = nullptr);

// Reads and parses `path`; nullopt + *error on I/O or parse failure.
[[nodiscard]] std::optional<JsonValue> read_json_file(const std::string& path,
                                                      std::string* error = nullptr);

}  // namespace hlsrg
