// BenchReport: accumulates a bench binary's measurements into the
// BENCH_<name>.json document. One report per binary; one section per table
// the bench prints; one row per sweep point; one result per protocol (or
// variant) measured at that point.
//
// Document shape (see docs/PROTOCOL.md for the field-by-field schema):
//   {
//     "schema": "hlsrg-bench/v1",
//     "bench": "fig32_update_overhead",
//     "replicas": 3,
//     "sections": [
//       { "title": ..., "metric": ...,
//         "rows": [
//           { "label": "500m/31veh",
//             "results": [
//               { "protocol": "HLSRG", "config": {...}, "metrics": {...},
//                 "latency": {...}, "engine": {...},
//                 "replica_engine": [ {...}, ... ], "derived": {...} },
//               ... ] },
//           ... ] },
//       ... ]
//   }
#pragma once

#include <string>
#include <vector>

#include "harness/runner.h"
#include "report/run_report.h"

namespace hlsrg {

class BenchReport {
 public:
  BenchReport(std::string bench_name, int replicas);

  // Starts a new section; results are added to the most recent section.
  void begin_section(const std::string& title, const std::string& metric);

  // Records one measured protocol/variant at one sweep point. `label` keys
  // the row within the current section (re-using a label appends to the same
  // row — how comparison benches put HLSRG and RLSMP side by side).
  void add_result(const std::string& label, const std::string& protocol,
                  const ScenarioConfig& cfg, const ReplicaSet& set);

  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

  // Writes the document to `path`; false + *error on failure.
  bool write(const std::string& path, std::string* error = nullptr) const;

 private:
  struct Result {
    RunReport report;  // report.protocol names the protocol/variant

    std::vector<EngineStats> replica_engine;
    JsonValue derived;
  };
  struct Row {
    std::string label;
    std::vector<Result> results;
  };
  struct Section {
    std::string title;
    std::string metric;
    std::vector<Row> rows;
  };

  std::string bench_;
  int replicas_;
  std::vector<Section> sections_;
};

}  // namespace hlsrg
