#include "report/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hlsrg {

namespace {

const JsonValue& null_value() {
  static const JsonValue v;
  return v;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  // Integers (the common case: counters) print exactly, without exponents.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) {
      fill_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing characters after document";
      fill_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill_error(std::string* error) const {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " + err_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool literal(const char* word, JsonValue value, JsonValue& out) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) {
      err_ = std::string("invalid literal (expected '") + word + "')";
      return false;
    }
    pos_ += len;
    out = std::move(value);
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (at_end()) {
      err_ = "unexpected end of input";
      return false;
    }
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        return literal("true", JsonValue(true), out);
      case 'f':
        return literal("false", JsonValue(false), out);
      case 'n':
        return literal("null", JsonValue(), out);
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    out = JsonValue::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') {
        err_ = "expected object key string";
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') {
        err_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.set(key, std::move(v));
      skip_ws();
      if (at_end()) {
        err_ = "unterminated object";
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    out = JsonValue::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (at_end()) {
        err_ = "unterminated array";
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (at_end()) {
        err_ = "unterminated string";
        return false;
      }
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) {
        err_ = "unterminated escape";
        return false;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            err_ = "truncated \\u escape";
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              err_ = "invalid \\u escape";
              return false;
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are out of scope for
          // report files, which are ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          err_ = "invalid escape character";
          return false;
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                         peek() == 'e' || peek() == 'E' || peek() == '+' ||
                         peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      err_ = "invalid value";
      return false;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      err_ = "invalid number '" + token + "'";
      pos_ = start;
      return false;
    }
    out = JsonValue(d);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string err_ = "parse error";
};

}  // namespace

void JsonValue::set(const std::string& key, JsonValue v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return null_value();
}

bool JsonValue::contains(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? static_cast<std::size_t>(indent) *
                                     static_cast<std::size_t>(depth + 1)
                               : 0,
                        ' ');
  const std::string close_pad(
      pretty ? static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth)
             : 0,
      ' ');
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        append_escaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<JsonValue> JsonValue::parse(const std::string& text,
                                          std::string* error) {
  return Parser(text).run(error);
}

bool write_json_file(const JsonValue& v, const std::string& path,
                     std::string* error) {
  std::ofstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  file << v.dump(2) << '\n';
  file.flush();
  if (!file) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::optional<JsonValue> read_json_file(const std::string& path,
                                        std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  return JsonValue::parse(buf.str(), error);
}

}  // namespace hlsrg
