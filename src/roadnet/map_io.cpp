#include "roadnet/map_io.h"

#include <fstream>
#include <sstream>

namespace hlsrg {

namespace {

const char* orient_token(Orientation o) {
  switch (o) {
    case Orientation::kHorizontal:
      return "H";
    case Orientation::kVertical:
      return "V";
    case Orientation::kOther:
      return "O";
  }
  return "O";
}

bool parse_orientation(const std::string& tok, Orientation* out) {
  if (tok == "H") {
    *out = Orientation::kHorizontal;
  } else if (tok == "V") {
    *out = Orientation::kVertical;
  } else if (tok == "O") {
    *out = Orientation::kOther;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string save_map(const RoadNetwork& net) {
  std::ostringstream os;
  os << "# hlsrg road network: " << net.intersection_count()
     << " intersections, " << net.road_count() << " roads\n";
  for (std::size_t i = 0; i < net.intersection_count(); ++i) {
    const Vec2 p = net.position(IntersectionId{i});
    os << "intersection " << i << ' ' << p.x << ' ' << p.y << '\n';
  }
  for (std::size_t i = 0; i < net.road_count(); ++i) {
    const Road& r = net.road(RoadId{i});
    os << "road " << i << ' '
       << (r.cls == RoadClass::kMainArtery ? "artery" : "normal") << ' '
       << orient_token(r.orient) << ' ' << r.coord << '\n';
  }
  // One line per physical edge: emit only the forward twin of each pair
  // (segments are created in fwd/rev pairs, so even indices are forwards).
  for (std::size_t i = 0; i < net.segment_count(); i += 2) {
    const Segment& s = net.segment(SegmentId{i});
    os << "edge " << s.road.value() << ' ' << s.from.value() << ' '
       << s.to.value() << '\n';
  }
  return os.str();
}

RoadNetwork load_map(const std::string& text, std::string* error) {
  auto fail = [&](int line, const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + what;
    }
    return RoadNetwork{};
  };

  RoadNetwork net;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool any_edge = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "intersection") {
      std::size_t index = 0;
      double x = 0, y = 0;
      if (!(ls >> index >> x >> y)) {
        return fail(line_no, "malformed intersection");
      }
      if (index != net.intersection_count()) {
        return fail(line_no, "intersection indices must be dense and ordered");
      }
      net.add_intersection({x, y});
    } else if (kind == "road") {
      std::size_t index = 0;
      std::string cls_tok, orient_tok;
      double coord = 0;
      if (!(ls >> index >> cls_tok >> orient_tok >> coord)) {
        return fail(line_no, "malformed road");
      }
      if (index != net.road_count()) {
        return fail(line_no, "road indices must be dense and ordered");
      }
      RoadClass cls;
      if (cls_tok == "artery") {
        cls = RoadClass::kMainArtery;
      } else if (cls_tok == "normal") {
        cls = RoadClass::kNormal;
      } else {
        return fail(line_no, "road class must be artery|normal");
      }
      Orientation orient;
      if (!parse_orientation(orient_tok, &orient)) {
        return fail(line_no, "orientation must be H|V|O");
      }
      net.add_road(cls, orient, coord);
    } else if (kind == "edge") {
      std::size_t road = 0, a = 0, b = 0;
      if (!(ls >> road >> a >> b)) return fail(line_no, "malformed edge");
      if (road >= net.road_count()) return fail(line_no, "edge: unknown road");
      if (a >= net.intersection_count() || b >= net.intersection_count()) {
        return fail(line_no, "edge: unknown intersection");
      }
      if (a == b) return fail(line_no, "edge: self-loop");
      net.add_edge(RoadId{road}, IntersectionId{a}, IntersectionId{b});
      any_edge = true;
    } else {
      return fail(line_no, "unknown record '" + kind + "'");
    }
  }
  if (net.intersection_count() == 0 || !any_edge) {
    return fail(line_no, "map has no intersections or no edges");
  }
  net.finalize();
  if (error != nullptr) error->clear();
  return net;
}

bool save_map_file(const RoadNetwork& net, const std::string& path,
                   std::string* error) {
  std::ofstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  file << save_map(net);
  return static_cast<bool>(file);
}

RoadNetwork load_map_file(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path;
    return {};
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return load_map(buffer.str(), error);
}

}  // namespace hlsrg
