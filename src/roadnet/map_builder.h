// Synthetic digital maps standing in for the paper's 2 km x 2 km Los Angeles
// map (see DESIGN.md, substitutions table).
//
// The regular builder produces a Manhattan lattice with main arteries every
// `artery_spacing` metres and normal roads between them — the structure the
// paper's Figure 2.1 shows and the property its evaluation relies on (arteries
// form an ~500 m lattice; ~10x the traffic drives on arteries).
//
// The irregular builder perturbs normal-road line positions and removes a
// fraction of normal edges (keeping the graph connected), so the partition's
// reject-artery / promote-normal-road logic is exercised by something less
// convenient than a perfect grid.
#pragma once

#include <cstdint>

#include "roadnet/road_network.h"

namespace hlsrg {

struct MapConfig {
  // Side length of the square map, metres.
  double size_m = 2000.0;
  // Spacing between main-artery lines. The paper's grids are 500 m, matching
  // the radio range; sweeps use other values to exercise the partition.
  double artery_spacing = 500.0;
  // Spacing between road lines overall (arteries included). Every line whose
  // coordinate falls on a multiple of artery_spacing is an artery; the rest
  // are normal roads. Must divide artery_spacing.
  double minor_spacing = 250.0;

  // --- irregular variant --------------------------------------------------
  bool irregular = false;
  // Normal-road lines are shifted by up to +/- jitter_frac * minor_spacing.
  double jitter_frac = 0.2;
  // Fraction of normal-road edges randomly removed (connectivity preserved).
  double dropout = 0.15;
  // Seed for the irregular variant's randomness (jitter + dropout).
  std::uint64_t seed = 1;
};

// Builds the lattice map described by `cfg`. The result is finalized and
// connected.
[[nodiscard]] RoadNetwork build_manhattan_map(const MapConfig& cfg);

// Renders the network (and optionally a partition overlay; see
// grid/partition.h) to a minimal SVG string for human inspection.
[[nodiscard]] std::string render_map_svg(const RoadNetwork& net);

}  // namespace hlsrg
