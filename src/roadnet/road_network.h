// Road network: the digital map every vehicle carries.
//
// The map is a directed graph. Intersections are nodes; each physical road
// edge between adjacent intersections contributes two directed Segments (one
// per travel direction). Segments are grouped into Roads — maximal straight
// lines with a class (main artery / normal road) — because both the paper's
// grid partition ("select the main arteries to be boundaries") and its
// directional geocast ("broadcast along the road with direction dir") operate
// on whole roads, not individual edges.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/aabb.h"
#include "geom/segment.h"
#include "geom/vec2.h"
#include "util/tagged_id.h"

namespace hlsrg {

enum class RoadClass : std::uint8_t { kNormal, kMainArtery };

// Orientation of a road line. The synthetic maps are Manhattan lattices, so
// every road is axis-aligned; kOther is reserved for hand-built test graphs.
enum class Orientation : std::uint8_t { kHorizontal, kVertical, kOther };

struct Intersection {
  Vec2 pos;
  // Outgoing directed segments, in insertion order.
  std::vector<SegmentId> out;
  bool has_traffic_light = false;
};

struct Segment {
  IntersectionId from;
  IntersectionId to;
  RoadId road;
  SegmentId reverse;  // the opposite-direction twin
  double length = 0.0;
  Vec2 unit_dir;  // from -> to, unit length
};

struct Road {
  RoadClass cls = RoadClass::kNormal;
  Orientation orient = Orientation::kOther;
  // For axis-aligned roads: the fixed coordinate (y for horizontal roads,
  // x for vertical ones). Unused for kOther.
  double coord = 0.0;
  // Extent along the road's running axis.
  double span_lo = std::numeric_limits<double>::max();
  double span_hi = std::numeric_limits<double>::lowest();
  // Forward-direction segments in increasing running-axis order. The reverse
  // twins are reachable via Segment::reverse.
  std::vector<SegmentId> fwd_segments;
};

class RoadNetwork {
 public:
  // --- construction -------------------------------------------------------
  IntersectionId add_intersection(Vec2 pos, bool traffic_light = true);
  RoadId add_road(RoadClass cls, Orientation orient, double coord = 0.0);
  // Adds the physical edge a<->b to `road`; creates both directed segments
  // and returns the a->b one. Endpoints must be distinct intersections.
  SegmentId add_edge(RoadId road, IntersectionId a, IntersectionId b);
  // Sorts each road's forward segments along its running axis and records
  // spans; call once after all edges are added.
  void finalize();

  // --- accessors ----------------------------------------------------------
  [[nodiscard]] std::size_t intersection_count() const { return intersections_.size(); }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::size_t road_count() const { return roads_.size(); }

  [[nodiscard]] const Intersection& intersection(IntersectionId id) const {
    return intersections_[id.index()];
  }
  [[nodiscard]] const Segment& segment(SegmentId id) const {
    return segments_[id.index()];
  }
  [[nodiscard]] const Road& road(RoadId id) const { return roads_[id.index()]; }

  [[nodiscard]] Vec2 position(IntersectionId id) const {
    return intersections_[id.index()].pos;
  }

  // Point at `offset` metres from the segment's start.
  [[nodiscard]] Vec2 point_on(SegmentId id, double offset) const;

  [[nodiscard]] LineSegment geometry(SegmentId id) const {
    const Segment& s = segments_[id.index()];
    return {position(s.from), position(s.to)};
  }

  [[nodiscard]] bool is_artery(SegmentId id) const {
    return roads_[segments_[id.index()].road.index()].cls ==
           RoadClass::kMainArtery;
  }

  // --- queries ------------------------------------------------------------
  // Nearest intersection to p; ties (equal distance) resolve to the lowest
  // index. After finalize() this walks an expanding ring of grid cells
  // (O(points near p)); before it, a linear scan.
  [[nodiscard]] IntersectionId nearest_intersection(Vec2 p) const;

  // All intersections within `radius` of p.
  [[nodiscard]] std::vector<IntersectionId> intersections_within(
      Vec2 p, double radius) const;

  // Bounding box of all intersections.
  [[nodiscard]] Aabb bounds() const;

  // True if every intersection is reachable from every other (undirected
  // sense; our edges always come in directed pairs).
  [[nodiscard]] bool is_connected() const;

  // Roads of the given orientation that span at least `min_span_frac` of the
  // map extent along their running axis — the partition's boundary candidates.
  [[nodiscard]] std::vector<RoadId> spanning_roads(
      Orientation orient, double min_span_frac = 0.95) const;

  [[nodiscard]] const std::vector<Intersection>& intersections() const {
    return intersections_;
  }
  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const std::vector<Road>& roads() const { return roads_; }

 private:
  [[nodiscard]] IntersectionId nearest_intersection_linear(Vec2 p) const;
  // Builds the nearest-intersection grid; finalize()-only.
  void build_intersection_grid();

  std::vector<Intersection> intersections_;
  std::vector<Segment> segments_;
  std::vector<Road> roads_;
  bool finalized_ = false;

  // Uniform grid over bounds() for nearest_intersection: cell (x, y) at
  // index y * grid_nx_ + x holds the ascending intersection indices whose
  // position falls in it. Sized so the average cell holds ~1 intersection.
  Vec2 grid_origin_;
  double grid_cell_ = 0.0;
  std::int32_t grid_nx_ = 0;
  std::int32_t grid_ny_ = 0;
  std::vector<std::vector<std::uint32_t>> grid_cells_;
};

}  // namespace hlsrg
