// Plain-text road-network serialization.
//
// Lets users run the protocols on their own digital maps instead of the
// synthetic generators. The format is line-oriented and diff-friendly:
//
//   # comment / blank lines ignored
//   intersection <index> <x> <y>
//   road <index> artery|normal H|V|O <coord>
//   edge <road-index> <intersection-a> <intersection-b>
//
// Indices must be dense and in order (they become the TaggedId values, so a
// saved map round-trips exactly). The loader finalizes the network.
#pragma once

#include <iosfwd>
#include <string>

#include "roadnet/road_network.h"

namespace hlsrg {

// Serializes `net` into the text format.
[[nodiscard]] std::string save_map(const RoadNetwork& net);

// Parses the text format. On malformed input, fills *error with a
// line-numbered message and returns an empty network (0 intersections).
[[nodiscard]] RoadNetwork load_map(const std::string& text,
                                   std::string* error = nullptr);

// File helpers; load returns empty network and sets *error on I/O failure.
bool save_map_file(const RoadNetwork& net, const std::string& path,
                   std::string* error = nullptr);
[[nodiscard]] RoadNetwork load_map_file(const std::string& path,
                                        std::string* error = nullptr);

}  // namespace hlsrg
