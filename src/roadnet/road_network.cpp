#include "roadnet/road_network.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/check.h"

namespace hlsrg {

IntersectionId RoadNetwork::add_intersection(Vec2 pos, bool traffic_light) {
  HLSRG_CHECK(!finalized_);
  intersections_.push_back(Intersection{pos, {}, traffic_light});
  return IntersectionId{intersections_.size() - 1};
}

RoadId RoadNetwork::add_road(RoadClass cls, Orientation orient, double coord) {
  HLSRG_CHECK(!finalized_);
  Road r;
  r.cls = cls;
  r.orient = orient;
  r.coord = coord;
  roads_.push_back(r);
  return RoadId{roads_.size() - 1};
}

SegmentId RoadNetwork::add_edge(RoadId road, IntersectionId a,
                                IntersectionId b) {
  HLSRG_CHECK(!finalized_);
  HLSRG_CHECK(road.valid() && road.index() < roads_.size());
  HLSRG_CHECK(a.valid() && a.index() < intersections_.size());
  HLSRG_CHECK(b.valid() && b.index() < intersections_.size());
  HLSRG_CHECK_MSG(a != b, "self-loop edge");

  const Vec2 pa = intersections_[a.index()].pos;
  const Vec2 pb = intersections_[b.index()].pos;
  const double len = distance(pa, pb);
  HLSRG_CHECK_MSG(len > 0.0, "zero-length edge");

  const SegmentId fwd{segments_.size()};
  const SegmentId rev{segments_.size() + 1};
  segments_.push_back(Segment{a, b, road, rev, len, (pb - pa) / len});
  segments_.push_back(Segment{b, a, road, fwd, len, (pa - pb) / len});
  intersections_[a.index()].out.push_back(fwd);
  intersections_[b.index()].out.push_back(rev);
  roads_[road.index()].fwd_segments.push_back(fwd);
  return fwd;
}

void RoadNetwork::finalize() {
  HLSRG_CHECK(!finalized_);
  for (Road& r : roads_) {
    // Running-axis coordinate of a segment's start point.
    auto running = [&](SegmentId sid) {
      const Vec2 p = position(segments_[sid.index()].from);
      return r.orient == Orientation::kHorizontal ? p.x : p.y;
    };
    if (r.orient != Orientation::kOther) {
      std::sort(r.fwd_segments.begin(), r.fwd_segments.end(),
                [&](SegmentId a, SegmentId b) { return running(a) < running(b); });
    }
    for (SegmentId sid : r.fwd_segments) {
      const Segment& s = segments_[sid.index()];
      for (IntersectionId n : {s.from, s.to}) {
        const Vec2 p = position(n);
        const double run =
            r.orient == Orientation::kHorizontal ? p.x : p.y;
        r.span_lo = std::min(r.span_lo, run);
        r.span_hi = std::max(r.span_hi, run);
      }
    }
  }
  finalized_ = true;
  build_intersection_grid();
}

void RoadNetwork::build_intersection_grid() {
  if (intersections_.empty()) return;
  const Aabb box = bounds();
  grid_origin_ = box.lo;
  // Target ~1 intersection per cell so ring walks touch O(1) points.
  const double extent = std::max(box.width(), box.height());
  const double target =
      std::ceil(std::sqrt(static_cast<double>(intersections_.size())));
  grid_cell_ = std::max(1.0, extent / std::max(1.0, target));
  grid_nx_ = static_cast<std::int32_t>(box.width() / grid_cell_) + 1;
  grid_ny_ = static_cast<std::int32_t>(box.height() / grid_cell_) + 1;
  grid_cells_.assign(
      static_cast<std::size_t>(grid_nx_) * static_cast<std::size_t>(grid_ny_),
      {});
  for (std::size_t i = 0; i < intersections_.size(); ++i) {
    const Vec2 p = intersections_[i].pos;
    const auto cx = std::min<std::int32_t>(
        grid_nx_ - 1,
        static_cast<std::int32_t>((p.x - grid_origin_.x) / grid_cell_));
    const auto cy = std::min<std::int32_t>(
        grid_ny_ - 1,
        static_cast<std::int32_t>((p.y - grid_origin_.y) / grid_cell_));
    grid_cells_[static_cast<std::size_t>(cy) * grid_nx_ + cx].push_back(
        static_cast<std::uint32_t>(i));
  }
}

Vec2 RoadNetwork::point_on(SegmentId id, double offset) const {
  const Segment& s = segments_[id.index()];
  HLSRG_CHECK(offset >= -1e-6 && offset <= s.length + 1e-6);
  return position(s.from) + s.unit_dir * offset;
}

IntersectionId RoadNetwork::nearest_intersection_linear(Vec2 p) const {
  HLSRG_CHECK(!intersections_.empty());
  IntersectionId best{std::size_t{0}};
  double best_d2 = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < intersections_.size(); ++i) {
    const double d2 = distance2(p, intersections_[i].pos);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = IntersectionId{i};
    }
  }
  return best;
}

IntersectionId RoadNetwork::nearest_intersection(Vec2 p) const {
  HLSRG_CHECK(!intersections_.empty());
  if (grid_cells_.empty()) return nearest_intersection_linear(p);

  // Expanding Chebyshev rings around p's (unclamped) cell. A point in a
  // ring-r cell is at Euclidean distance >= (r - 1) * cell from p, so once
  // best_d2 < (r * cell)^2 after finishing ring r, no farther ring can hold
  // a closer point — nor an equidistant one that would win the lowest-index
  // tie-break (a tie needs d2 == best_d2, excluded by the strict compare).
  const auto cx =
      static_cast<std::int32_t>(std::floor((p.x - grid_origin_.x) / grid_cell_));
  const auto cy =
      static_cast<std::int32_t>(std::floor((p.y - grid_origin_.y) / grid_cell_));
  const std::int32_t max_r =
      std::max(std::max(std::abs(cx), std::abs(cx - (grid_nx_ - 1))),
               std::max(std::abs(cy), std::abs(cy - (grid_ny_ - 1))));
  std::uint32_t best = 0;
  double best_d2 = std::numeric_limits<double>::max();
  bool found = false;
  auto scan_cell = [&](std::int32_t x, std::int32_t y) {
    if (x < 0 || x >= grid_nx_ || y < 0 || y >= grid_ny_) return;
    const auto& cell =
        grid_cells_[static_cast<std::size_t>(y) * grid_nx_ + x];
    for (std::uint32_t i : cell) {
      const double d2 = distance2(p, intersections_[i].pos);
      // Lex-min on (d2, index): cell lists ascend, but rings visit cells in
      // no particular index order, so break distance ties explicitly.
      if (d2 < best_d2 || (d2 == best_d2 && i < best)) {
        best_d2 = d2;
        best = i;
        found = true;
      }
    }
  };
  for (std::int32_t r = 0; r <= max_r; ++r) {
    if (r == 0) {
      scan_cell(cx, cy);
    } else {
      for (std::int32_t x = cx - r; x <= cx + r; ++x) {
        scan_cell(x, cy - r);
        scan_cell(x, cy + r);
      }
      for (std::int32_t y = cy - r + 1; y <= cy + r - 1; ++y) {
        scan_cell(cx - r, y);
        scan_cell(cx + r, y);
      }
    }
    const double ring_reach = static_cast<double>(r) * grid_cell_;
    if (found && best_d2 < ring_reach * ring_reach) break;
  }
  HLSRG_CHECK(found);
  return IntersectionId{static_cast<std::size_t>(best)};
}

std::vector<IntersectionId> RoadNetwork::intersections_within(
    Vec2 p, double radius) const {
  std::vector<IntersectionId> out;
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < intersections_.size(); ++i) {
    if (distance2(p, intersections_[i].pos) <= r2) out.push_back(IntersectionId{i});
  }
  return out;
}

Aabb RoadNetwork::bounds() const {
  HLSRG_CHECK(!intersections_.empty());
  Aabb box{intersections_.front().pos, intersections_.front().pos};
  for (const Intersection& n : intersections_) {
    box.lo.x = std::min(box.lo.x, n.pos.x);
    box.lo.y = std::min(box.lo.y, n.pos.y);
    box.hi.x = std::max(box.hi.x, n.pos.x);
    box.hi.y = std::max(box.hi.y, n.pos.y);
  }
  return box;
}

bool RoadNetwork::is_connected() const {
  if (intersections_.empty()) return true;
  std::vector<char> seen(intersections_.size(), 0);
  std::vector<IntersectionId> stack{IntersectionId{std::size_t{0}}};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const IntersectionId cur = stack.back();
    stack.pop_back();
    for (SegmentId sid : intersections_[cur.index()].out) {
      const IntersectionId next = segments_[sid.index()].to;
      if (!seen[next.index()]) {
        seen[next.index()] = 1;
        ++visited;
        stack.push_back(next);
      }
    }
  }
  return visited == intersections_.size();
}

std::vector<RoadId> RoadNetwork::spanning_roads(Orientation orient,
                                                double min_span_frac) const {
  const Aabb box = bounds();
  const double extent =
      orient == Orientation::kHorizontal ? box.width() : box.height();
  std::vector<RoadId> out;
  for (std::size_t i = 0; i < roads_.size(); ++i) {
    const Road& r = roads_[i];
    if (r.orient != orient || r.fwd_segments.empty()) continue;
    if (r.span_hi - r.span_lo >= min_span_frac * extent) {
      out.push_back(RoadId{i});
    }
  }
  std::sort(out.begin(), out.end(), [&](RoadId a, RoadId b) {
    return roads_[a.index()].coord < roads_[b.index()].coord;
  });
  return out;
}

}  // namespace hlsrg
