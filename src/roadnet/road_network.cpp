#include "roadnet/road_network.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace hlsrg {

IntersectionId RoadNetwork::add_intersection(Vec2 pos, bool traffic_light) {
  HLSRG_CHECK(!finalized_);
  intersections_.push_back(Intersection{pos, {}, traffic_light});
  return IntersectionId{intersections_.size() - 1};
}

RoadId RoadNetwork::add_road(RoadClass cls, Orientation orient, double coord) {
  HLSRG_CHECK(!finalized_);
  Road r;
  r.cls = cls;
  r.orient = orient;
  r.coord = coord;
  roads_.push_back(r);
  return RoadId{roads_.size() - 1};
}

SegmentId RoadNetwork::add_edge(RoadId road, IntersectionId a,
                                IntersectionId b) {
  HLSRG_CHECK(!finalized_);
  HLSRG_CHECK(road.valid() && road.index() < roads_.size());
  HLSRG_CHECK(a.valid() && a.index() < intersections_.size());
  HLSRG_CHECK(b.valid() && b.index() < intersections_.size());
  HLSRG_CHECK_MSG(a != b, "self-loop edge");

  const Vec2 pa = intersections_[a.index()].pos;
  const Vec2 pb = intersections_[b.index()].pos;
  const double len = distance(pa, pb);
  HLSRG_CHECK_MSG(len > 0.0, "zero-length edge");

  const SegmentId fwd{segments_.size()};
  const SegmentId rev{segments_.size() + 1};
  segments_.push_back(Segment{a, b, road, rev, len, (pb - pa) / len});
  segments_.push_back(Segment{b, a, road, fwd, len, (pa - pb) / len});
  intersections_[a.index()].out.push_back(fwd);
  intersections_[b.index()].out.push_back(rev);
  roads_[road.index()].fwd_segments.push_back(fwd);
  return fwd;
}

void RoadNetwork::finalize() {
  HLSRG_CHECK(!finalized_);
  for (Road& r : roads_) {
    // Running-axis coordinate of a segment's start point.
    auto running = [&](SegmentId sid) {
      const Vec2 p = position(segments_[sid.index()].from);
      return r.orient == Orientation::kHorizontal ? p.x : p.y;
    };
    if (r.orient != Orientation::kOther) {
      std::sort(r.fwd_segments.begin(), r.fwd_segments.end(),
                [&](SegmentId a, SegmentId b) { return running(a) < running(b); });
    }
    for (SegmentId sid : r.fwd_segments) {
      const Segment& s = segments_[sid.index()];
      for (IntersectionId n : {s.from, s.to}) {
        const Vec2 p = position(n);
        const double run =
            r.orient == Orientation::kHorizontal ? p.x : p.y;
        r.span_lo = std::min(r.span_lo, run);
        r.span_hi = std::max(r.span_hi, run);
      }
    }
  }
  finalized_ = true;
}

Vec2 RoadNetwork::point_on(SegmentId id, double offset) const {
  const Segment& s = segments_[id.index()];
  HLSRG_CHECK(offset >= -1e-6 && offset <= s.length + 1e-6);
  return position(s.from) + s.unit_dir * offset;
}

IntersectionId RoadNetwork::nearest_intersection(Vec2 p) const {
  HLSRG_CHECK(!intersections_.empty());
  IntersectionId best{std::size_t{0}};
  double best_d2 = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < intersections_.size(); ++i) {
    const double d2 = distance2(p, intersections_[i].pos);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = IntersectionId{i};
    }
  }
  return best;
}

std::vector<IntersectionId> RoadNetwork::intersections_within(
    Vec2 p, double radius) const {
  std::vector<IntersectionId> out;
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < intersections_.size(); ++i) {
    if (distance2(p, intersections_[i].pos) <= r2) out.push_back(IntersectionId{i});
  }
  return out;
}

Aabb RoadNetwork::bounds() const {
  HLSRG_CHECK(!intersections_.empty());
  Aabb box{intersections_.front().pos, intersections_.front().pos};
  for (const Intersection& n : intersections_) {
    box.lo.x = std::min(box.lo.x, n.pos.x);
    box.lo.y = std::min(box.lo.y, n.pos.y);
    box.hi.x = std::max(box.hi.x, n.pos.x);
    box.hi.y = std::max(box.hi.y, n.pos.y);
  }
  return box;
}

bool RoadNetwork::is_connected() const {
  if (intersections_.empty()) return true;
  std::vector<char> seen(intersections_.size(), 0);
  std::vector<IntersectionId> stack{IntersectionId{std::size_t{0}}};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const IntersectionId cur = stack.back();
    stack.pop_back();
    for (SegmentId sid : intersections_[cur.index()].out) {
      const IntersectionId next = segments_[sid.index()].to;
      if (!seen[next.index()]) {
        seen[next.index()] = 1;
        ++visited;
        stack.push_back(next);
      }
    }
  }
  return visited == intersections_.size();
}

std::vector<RoadId> RoadNetwork::spanning_roads(Orientation orient,
                                                double min_span_frac) const {
  const Aabb box = bounds();
  const double extent =
      orient == Orientation::kHorizontal ? box.width() : box.height();
  std::vector<RoadId> out;
  for (std::size_t i = 0; i < roads_.size(); ++i) {
    const Road& r = roads_[i];
    if (r.orient != orient || r.fwd_segments.empty()) continue;
    if (r.span_hi - r.span_lo >= min_span_frac * extent) {
      out.push_back(RoadId{i});
    }
  }
  std::sort(out.begin(), out.end(), [&](RoadId a, RoadId b) {
    return roads_[a.index()].coord < roads_[b.index()].coord;
  });
  return out;
}

}  // namespace hlsrg
