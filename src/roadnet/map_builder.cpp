#include "roadnet/map_builder.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "sim/rng.h"
#include "util/check.h"

namespace hlsrg {

namespace {

// True if `coord` lies on a multiple of `spacing` (within tolerance).
bool on_multiple(double coord, double spacing) {
  const double r = std::fmod(coord, spacing);
  constexpr double kTol = 1e-6;
  return r < kTol || spacing - r < kTol;
}

struct LineSpec {
  double coord;
  RoadClass cls;
};

// Generates the line coordinates for one axis.
std::vector<LineSpec> make_lines(const MapConfig& cfg, Rng* jitter_rng) {
  HLSRG_CHECK(cfg.minor_spacing > 0.0 && cfg.artery_spacing > 0.0);
  HLSRG_CHECK_MSG(on_multiple(cfg.artery_spacing, cfg.minor_spacing),
                  "minor_spacing must divide artery_spacing");
  std::vector<LineSpec> lines;
  for (double c = 0.0; c <= cfg.size_m + 1e-6; c += cfg.minor_spacing) {
    const bool artery = on_multiple(c, cfg.artery_spacing);
    double coord = std::min(c, cfg.size_m);
    if (jitter_rng != nullptr && !artery) {
      // Shift normal lines; clamp so ordering with neighbours is preserved.
      const double j = cfg.jitter_frac * cfg.minor_spacing;
      coord += jitter_rng->uniform(-j, j);
    }
    lines.push_back({coord, artery ? RoadClass::kMainArtery : RoadClass::kNormal});
  }
  return lines;
}

}  // namespace

RoadNetwork build_manhattan_map(const MapConfig& cfg) {
  HLSRG_CHECK(cfg.size_m > 0.0);
  Rng rng(cfg.seed);
  Rng* jitter = cfg.irregular ? &rng : nullptr;

  const std::vector<LineSpec> vlines = make_lines(cfg, jitter);  // x = const
  const std::vector<LineSpec> hlines = make_lines(cfg, jitter);  // y = const

  RoadNetwork net;

  // Intersections at every line crossing, indexed [ix][iy].
  const std::size_t nx = vlines.size();
  const std::size_t ny = hlines.size();
  std::vector<IntersectionId> nodes(nx * ny);
  auto node_at = [&](std::size_t ix, std::size_t iy) -> IntersectionId& {
    return nodes[ix * ny + iy];
  };
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      node_at(ix, iy) =
          net.add_intersection({vlines[ix].coord, hlines[iy].coord});
    }
  }

  // Roads: one per line; edges between consecutive crossings.
  struct PendingEdge {
    RoadId road;
    IntersectionId a;
    IntersectionId b;
    bool normal;
  };
  std::vector<PendingEdge> edges;
  for (std::size_t ix = 0; ix < nx; ++ix) {
    const RoadId road = net.add_road(vlines[ix].cls, Orientation::kVertical,
                                     vlines[ix].coord);
    for (std::size_t iy = 0; iy + 1 < ny; ++iy) {
      edges.push_back({road, node_at(ix, iy), node_at(ix, iy + 1),
                       vlines[ix].cls == RoadClass::kNormal});
    }
  }
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const RoadId road = net.add_road(hlines[iy].cls, Orientation::kHorizontal,
                                     hlines[iy].coord);
    for (std::size_t ix = 0; ix + 1 < nx; ++ix) {
      edges.push_back({road, node_at(ix, iy), node_at(ix + 1, iy),
                       hlines[iy].cls == RoadClass::kNormal});
    }
  }

  if (cfg.irregular && cfg.dropout > 0.0) {
    // Remove a fraction of normal edges without disconnecting the graph.
    // Union-find over the kept edges: first keep everything not dropped,
    // then re-add dropped edges whose endpoints are still in different
    // components.
    std::vector<std::size_t> parent(nodes.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    auto find = [&](std::size_t v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    auto unite = [&](std::size_t a, std::size_t b) {
      parent[find(a)] = find(b);
    };

    std::vector<PendingEdge> kept;
    std::vector<PendingEdge> dropped;
    for (const PendingEdge& e : edges) {
      if (e.normal && rng.chance(cfg.dropout)) {
        dropped.push_back(e);
      } else {
        kept.push_back(e);
        unite(e.a.index(), e.b.index());
      }
    }
    for (const PendingEdge& e : dropped) {
      if (find(e.a.index()) != find(e.b.index())) {
        kept.push_back(e);
        unite(e.a.index(), e.b.index());
      }
    }
    edges = std::move(kept);
  }

  for (const PendingEdge& e : edges) net.add_edge(e.road, e.a, e.b);
  net.finalize();
  HLSRG_CHECK_MSG(net.is_connected(), "generated map must be connected");
  return net;
}

std::string render_map_svg(const RoadNetwork& net) {
  const Aabb box = net.bounds().inflated(50.0);
  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' viewBox='" << box.lo.x << ' '
      << box.lo.y << ' ' << box.width() << ' ' << box.height() << "'>\n";
  // y axis flipped so north is up.
  svg << "<g transform='translate(0," << (box.lo.y + box.hi.y)
      << ") scale(1,-1)'>\n";
  for (const Road& r : net.roads()) {
    const char* color = r.cls == RoadClass::kMainArtery ? "#333" : "#aaa";
    const double width = r.cls == RoadClass::kMainArtery ? 8.0 : 3.0;
    for (SegmentId sid : r.fwd_segments) {
      const LineSegment g = net.geometry(sid);
      svg << "<line x1='" << g.a.x << "' y1='" << g.a.y << "' x2='" << g.b.x
          << "' y2='" << g.b.y << "' stroke='" << color << "' stroke-width='"
          << width << "'/>\n";
    }
  }
  for (const Intersection& n : net.intersections()) {
    svg << "<circle cx='" << n.pos.x << "' cy='" << n.pos.y
        << "' r='4' fill='#555'/>\n";
  }
  svg << "</g>\n</svg>\n";
  return svg.str();
}

}  // namespace hlsrg
