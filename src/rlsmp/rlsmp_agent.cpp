#include "rlsmp/rlsmp_agent.h"

#include "rlsmp/rlsmp_service.h"
#include "util/check.h"

namespace hlsrg {

RlsmpVehicleAgent::RlsmpVehicleAgent(RlsmpService& service, VehicleId vehicle,
                                     NodeId node)
    : svc_(&service), vehicle_(vehicle), node_(node) {
  const double boot = svc_->sim().protocol_rng().uniform(0.5, 5.0);
  svc_->sim().schedule_after(SimTime::from_sec(boot),
                             [this] { send_initial_update(); });
  // Establish leader-duty status for the starting position (parked vehicles
  // never fire handle_moved).
  const Vec2 here = svc_->vehicle_pos(vehicle_);
  handle_moved(here, here);
}

void RlsmpVehicleAgent::send_initial_update() {
  const CellCoord cell = svc_->cells().cell_at(svc_->vehicle_pos(vehicle_));
  auto payload = std::make_shared<CellUpdatePayload>();
  payload->record = CellRecord{vehicle_, svc_->vehicle_pos(vehicle_),
                               svc_->sim().now(), cell};
  payload->old_cell = cell;
  payload->cell_changed = false;
  svc_->metrics().update_packets_originated++;
  svc_->sim().count_region_update(payload->record.pos);
  svc_->metrics().update_transmissions++;
  svc_->sim().trace_event({{}, TraceEventKind::kUpdateSent, vehicle_,
                           VehicleId{}, payload->record.pos, 0});
  svc_->medium().broadcast(node_,
                           svc_->make_packet(PacketKind::kCellUpdate, node_, payload));
}

bool RlsmpVehicleAgent::lsc_duty() const {
  if (!in_leader_) return false;
  const CellGrid& g = svc_->cells();
  return leader_cell_ == g.lsc_cell(g.cluster_of(leader_cell_));
}

void RlsmpVehicleAgent::purge_tables() {
  const SimTime now = svc_->sim().now();
  const SimTime expiry = svc_->cfg().entry_expiry;
  auto stale = [now, expiry](VehicleId, const CellRecord& r) {
    return r.time + expiry < now;
  };
  cell_table_.erase_if(stale);
  cluster_table_.erase_if(stale);
}

// ---------------------------------------------------------------------------
// Updates: one per cell crossing (the behaviour the paper criticizes).
// ---------------------------------------------------------------------------

void RlsmpVehicleAgent::handle_moved(Vec2 before, Vec2 after) {
  const CellGrid& g = svc_->cells();
  const CellCoord old_cell = g.cell_at(before);
  const CellCoord new_cell = g.cell_at(after);
  if (!(old_cell == new_cell)) send_cell_update(old_cell, new_cell);

  // Leader-region bookkeeping (same dwell mechanics as HLSRG centers).
  const CellCoord cell = new_cell;
  const bool now_in =
      distance(after, g.cell_center(cell)) <= svc_->cfg().leader_radius_m;
  if (now_in && (!in_leader_ || !(cell == leader_cell_))) {
    if (in_leader_) leave_leader_region();
    in_leader_ = true;
    leader_cell_ = cell;
    cell_table_.clear();
    cluster_table_.clear();
  } else if (!now_in && in_leader_) {
    leave_leader_region();
  }
}

void RlsmpVehicleAgent::send_cell_update(CellCoord old_cell,
                                         CellCoord new_cell) {
  auto payload = std::make_shared<CellUpdatePayload>();
  payload->record = CellRecord{vehicle_, svc_->vehicle_pos(vehicle_),
                               svc_->sim().now(), new_cell};
  payload->old_cell = old_cell;
  payload->cell_changed = true;
  svc_->metrics().update_packets_originated++;
  svc_->sim().count_region_update(payload->record.pos);
  svc_->metrics().update_transmissions++;
  svc_->sim().trace_event({{}, TraceEventKind::kUpdateSent, vehicle_,
                           VehicleId{}, payload->record.pos, 0});
  svc_->medium().broadcast(node_,
                           svc_->make_packet(PacketKind::kCellUpdate, node_, payload));
}

void RlsmpVehicleAgent::leave_leader_region() {
  HLSRG_CHECK(in_leader_);
  const bool was_lsc = lsc_duty();
  in_leader_ = false;
  purge_tables();
  if (cell_table_.empty() && cluster_table_.empty()) return;
  auto payload = std::make_shared<LeaderHandoffPayload>();
  payload->cell = leader_cell_;
  for (const auto& [v, rec] : cell_table_) payload->cell_records.push_back(rec);
  payload->is_lsc = was_lsc;
  if (was_lsc) {
    for (const auto& [v, rec] : cluster_table_) {
      payload->cluster_records.push_back(rec);
    }
  }
  svc_->metrics().aggregation_packets++;
  svc_->metrics().aggregation_transmissions++;
  svc_->medium().broadcast(node_,
                           svc_->make_packet(PacketKind::kLeaderHandoff, node_, payload));
  cell_table_.clear();
  cluster_table_.clear();
}

// ---------------------------------------------------------------------------
// Cell-leader aggregation toward the LSC.
// ---------------------------------------------------------------------------

void RlsmpVehicleAgent::aggregation_tick(std::int64_t period_index) {
  if (!in_leader_) return;
  purge_tables();
  if (cell_table_.empty()) return;

  const CellGrid& g = svc_->cells();
  const CellCoord lsc = g.lsc_cell(g.cluster_of(leader_cell_));
  if (leader_cell_ == lsc) {
    // This cell *is* the LSC cell: fold the local table into the cluster
    // table directly, no radio needed.
    for (const auto& [v, rec] : cell_table_) {
      if (const CellRecord* cur = cluster_table_.find(v);
          cur == nullptr || cur->time < rec.time) {
        cluster_table_.upsert(v, rec);
      }
    }
    return;
  }
  if (heard_push_period_ == period_index) return;  // peer already pushed

  // Claim the push so leader-region peers stand down this period.
  auto claim = std::make_shared<PushClaimPayload>();
  claim->cell = leader_cell_;
  claim->period_index = period_index;
  svc_->metrics().aggregation_transmissions++;
  svc_->medium().broadcast(node_, svc_->make_packet(PacketKind::kPushClaim, node_, claim));

  auto payload = std::make_shared<CellSummaryPayload>();
  payload->cell = leader_cell_;
  for (const auto& [v, rec] : cell_table_) payload->records.push_back(rec);
  svc_->metrics().aggregation_packets++;
  svc_->gpsr().send(node_, g.cell_center(lsc), std::nullopt,
                    svc_->make_packet(PacketKind::kCellSummary, node_, payload),
                    &svc_->metrics().aggregation_transmissions,
                    /*deliver=*/{}, /*fail=*/{},
                    /*delivery_radius=*/svc_->cfg().leader_radius_m);
}

// ---------------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------------

void RlsmpVehicleAgent::on_receive(const Packet& packet, NodeId /*from*/) {
  switch (packet.kind) {
    case PacketKind::kCellUpdate: {
      if (!in_leader_) return;
      const auto& u = payload_as<CellUpdatePayload>(packet);
      if (u.record.cell == leader_cell_) {
        if (const CellRecord* cur = cell_table_.find(u.record.vehicle);
            cur == nullptr || cur->time < u.record.time) {
          cell_table_.upsert(u.record.vehicle, u.record);
        }
      } else if (u.cell_changed && u.old_cell == leader_cell_) {
        cell_table_.erase(u.record.vehicle);
      }
      return;
    }
    case PacketKind::kCellSummary: {
      if (!lsc_duty()) return;
      const auto& s = payload_as<CellSummaryPayload>(packet);
      const CellGrid& g = svc_->cells();
      if (!(g.cluster_of(s.cell) == g.cluster_of(leader_cell_))) return;
      for (const CellRecord& rec : s.records) {
        if (const CellRecord* cur = cluster_table_.find(rec.vehicle);
            cur == nullptr || cur->time < rec.time) {
          cluster_table_.upsert(rec.vehicle, rec);
        }
      }
      return;
    }
    case PacketKind::kPushClaim: {
      const auto& c = payload_as<PushClaimPayload>(packet);
      if (in_leader_ && c.cell == leader_cell_) {
        heard_push_period_ = c.period_index;
      }
      return;
    }
    case PacketKind::kLeaderHandoff: {
      if (!in_leader_) return;
      const auto& h = payload_as<LeaderHandoffPayload>(packet);
      if (!(h.cell == leader_cell_)) return;
      for (const CellRecord& rec : h.cell_records) {
        if (const CellRecord* cur = cell_table_.find(rec.vehicle);
            cur == nullptr || cur->time < rec.time) {
          cell_table_.upsert(rec.vehicle, rec);
        }
      }
      if (h.is_lsc && lsc_duty()) {
        for (const CellRecord& rec : h.cluster_records) {
          if (const CellRecord* cur = cluster_table_.find(rec.vehicle);
              cur == nullptr || cur->time < rec.time) {
            cluster_table_.upsert(rec.vehicle, rec);
          }
        }
      }
      return;
    }
    case PacketKind::kRlsmpQuery: {
      const auto& q = payload_as<RlsmpQueryPayload>(packet);
      if (q.to_cell_leader) {
        handle_cell_leader_query(q);
      } else {
        handle_lsc_query(packet);
      }
      return;
    }
    case PacketKind::kRlsmpBatch: {
      if (!lsc_duty()) return;
      const auto& batch = payload_as<RlsmpBatchPayload>(packet);
      // Relay the batch once within the LSC region, then run the normal
      // per-query election machinery for every query it carries.
      if (relayed_batches_.insert(packet.id.value())) {
        svc_->metrics().query_transmissions++;
        svc_->medium().broadcast(node_, packet);
      }
      for (const RlsmpQueryPayload& q : batch.queries) {
        if (settled_elections_.contains(q.query_id) ||
            elections_.contains(q.query_id)) {
          continue;
        }
        purge_tables();
        const bool holder = cluster_table_.find(q.target) != nullptr;
        const auto& cfg = svc_->cfg();
        const int lo = holder ? cfg.holder_slots_lo : cfg.nonholder_slots_lo;
        const int hi = holder ? cfg.holder_slots_hi : cfg.nonholder_slots_hi;
        const auto slots = svc_->sim().protocol_rng().uniform_int(lo, hi);
        const RlsmpQueryPayload copy = q;
        elections_[q.query_id] = svc_->sim().schedule_after(
            SimTime::from_us(cfg.election_slot.us() * slots),
            [this, qid = q.query_id, copy] { lsc_win_election(qid, copy); });
      }
      return;
    }
    case PacketKind::kLscClaim: {
      const auto& c = payload_as<LscClaimPayload>(packet);
      if (EventHandle* timer = elections_.find(c.query_id)) {
        svc_->sim().cancel(*timer);
        elections_.erase(c.query_id);
      }
      settled_elections_.insert(c.query_id);
      return;
    }
    case PacketKind::kRlsmpNotify: {
      const auto& n = payload_as<RlsmpNotifyPayload>(packet);
      if (n.target == vehicle_) answer_notify(n);
      return;
    }
    case PacketKind::kRlsmpAck: {
      const auto& a = payload_as<RlsmpAckPayload>(packet);
      if (Pending* p = pending_.find(a.query_id)) {
        svc_->sim().cancel(p->timeout);
        pending_.erase(a.query_id);
        svc_->tracker().succeed(a.query_id);
      }
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// LSC query handling: election, table lookup, spiral forwarding.
// ---------------------------------------------------------------------------

void RlsmpVehicleAgent::handle_lsc_query(const Packet& packet) {
  if (!lsc_duty()) return;
  const auto& q = payload_as<RlsmpQueryPayload>(packet);
  if (settled_elections_.contains(q.query_id) ||
      elections_.contains(q.query_id)) {
    return;
  }
  if (relayed_requests_.insert(q.query_id)) {
    svc_->metrics().query_transmissions++;
    svc_->medium().broadcast(node_, packet);
  }
  purge_tables();
  const bool holder = cluster_table_.find(q.target) != nullptr;
  const auto& cfg = svc_->cfg();
  const int lo = holder ? cfg.holder_slots_lo : cfg.nonholder_slots_lo;
  const int hi = holder ? cfg.holder_slots_hi : cfg.nonholder_slots_hi;
  const auto slots = svc_->sim().protocol_rng().uniform_int(lo, hi);
  const RlsmpQueryPayload copy = q;
  elections_[q.query_id] = svc_->sim().schedule_after(
      SimTime::from_us(cfg.election_slot.us() * slots),
      [this, qid = q.query_id, copy] { lsc_win_election(qid, copy); });
}

void RlsmpVehicleAgent::lsc_win_election(QueryId qid,
                                         const RlsmpQueryPayload& query) {
  // Election timers fire with no span context; re-anchor to the query root.
  SpanScope anchor(svc_->sim(), svc_->tracker().span_of(qid));
  elections_.erase(qid);
  settled_elections_.insert(qid);
  auto claim = std::make_shared<LscClaimPayload>();
  claim->query_id = qid;
  svc_->metrics().query_transmissions++;
  svc_->medium().broadcast(node_, svc_->make_packet(PacketKind::kLscClaim, node_, claim));

  purge_tables();
  if (const CellRecord* rec = cluster_table_.find(query.target)) {
    svc_->metrics().server_lookup_hits++;
    svc_->sim().count_region_served(svc_->vehicle_pos(vehicle_));
    svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kOk,
                             vehicle_.value(), query.target.value(),
                             svc_->vehicle_pos(vehicle_), qid, -1,
                             "cluster_table");
    // Known: forward to the cell leader of Dv's cell.
    auto fwd = std::make_shared<RlsmpQueryPayload>(query);
    fwd->to_cell_leader = true;
    fwd->target_cell = rec->cell;
    svc_->gpsr().send(node_, svc_->cells().cell_center(rec->cell), std::nullopt,
                      svc_->make_packet(PacketKind::kRlsmpQuery, node_, fwd),
                      &svc_->metrics().query_transmissions,
                      /*deliver=*/{}, /*fail=*/{},
                      /*delivery_radius=*/svc_->cfg().leader_radius_m);
    return;
  }
  // Unknown: hold for the aggregation window, then spiral onward in a batch
  // ("the LSC will send the aggregated query packets to others LSC").
  svc_->metrics().server_lookup_misses++;
  svc_->sim().instant_span(SpanKind::kTableLookup, SpanStatus::kFailed,
                           vehicle_.value(), query.target.value(),
                           svc_->vehicle_pos(vehicle_), qid, -1,
                           "cluster_table");
  enqueue_for_spiral(query);
}

void RlsmpVehicleAgent::enqueue_for_spiral(const RlsmpQueryPayload& query) {
  const CellGrid& g = svc_->cells();
  const auto order = g.spiral_order(query.origin_cluster);
  const int next = query.spiral_index + 1;
  if (next >= static_cast<int>(order.size())) return;  // spiral exhausted
  RlsmpQueryPayload fwd = query;
  fwd.spiral_index = next;
  spiral_batch_.push_back(fwd);
  if (!spiral_timer_armed_) {
    spiral_timer_armed_ = true;
    svc_->sim().schedule_after(svc_->cfg().query_wait,
                               [this] { flush_spiral_batch(); });
  }
}

void RlsmpVehicleAgent::flush_spiral_batch() {
  spiral_timer_armed_ = false;
  if (spiral_batch_.empty()) return;
  const CellGrid& g = svc_->cells();
  // Group queued queries by the LSC they travel to next; each group shares
  // one batch packet (the aggregation saving the protocol is named for).
  std::vector<RlsmpQueryPayload> pending;
  pending.swap(spiral_batch_);
  while (!pending.empty()) {
    const auto order0 = g.spiral_order(pending.front().origin_cluster);
    const ClusterCoord target =
        order0[static_cast<std::size_t>(pending.front().spiral_index)];
    auto batch = std::make_shared<RlsmpBatchPayload>();
    std::vector<RlsmpQueryPayload> rest;
    for (RlsmpQueryPayload& q : pending) {
      const auto order = g.spiral_order(q.origin_cluster);
      if (order[static_cast<std::size_t>(q.spiral_index)] == target) {
        batch->queries.push_back(std::move(q));
      } else {
        rest.push_back(std::move(q));
      }
    }
    pending.swap(rest);
    svc_->gpsr().send(node_, g.lsc_center(target), std::nullopt,
                      svc_->make_packet(PacketKind::kRlsmpBatch, node_, batch),
                      &svc_->metrics().query_transmissions,
                      /*deliver=*/{}, /*fail=*/{},
                      /*delivery_radius=*/svc_->cfg().leader_radius_m);
  }
}

// ---------------------------------------------------------------------------
// Cell-leader notification.
// ---------------------------------------------------------------------------

void RlsmpVehicleAgent::handle_cell_leader_query(
    const RlsmpQueryPayload& query) {
  if (!in_leader_ || !(query.target_cell == leader_cell_)) return;
  if (!handled_notify_forwards_.insert(query.query_id)) return;
  auto note = std::make_shared<RlsmpNotifyPayload>();
  note->query_id = query.query_id;
  note->target = query.target;
  note->src_vehicle = query.src_vehicle;
  note->src_node = query.src_node;
  note->src_pos = query.src_pos;
  svc_->metrics().query_packets_originated++;
  svc_->metrics().notifications_sent++;
  svc_->sim().trace_event({{}, TraceEventKind::kNotification, query.target,
                           query.src_vehicle, svc_->vehicle_pos(vehicle_),
                           query.query_id});
  // Open until the query settles; the cell flood nests under it. The leader
  // handles this off a GPSR delivery, so the propagated context (if any) is
  // the query root.
  const SpanId note_span = svc_->sim().begin_span(
      SpanKind::kNotification, query.target.value(), query.src_vehicle.value(),
      svc_->vehicle_pos(vehicle_), query.query_id, -1, "cell_flood");
  SpanScope scope(svc_->sim(), note_span);
  // Find Dv by flooding its cell (margin covers boundary queueing).
  svc_->geocast().flood(
      node_, svc_->make_packet(PacketKind::kRlsmpNotify, node_, note),
      GeocastRegion::from_box(svc_->cells().cell_box(query.target_cell), 60.0),
      &svc_->metrics().query_transmissions);
}

void RlsmpVehicleAgent::answer_notify(const RlsmpNotifyPayload& notify) {
  if (!answered_.insert(notify.query_id)) return;
  auto ack = std::make_shared<RlsmpAckPayload>();
  ack->query_id = notify.query_id;
  ack->responder = vehicle_;
  svc_->metrics().query_packets_originated++;
  svc_->metrics().acks_sent++;
  svc_->sim().trace_event({{}, TraceEventKind::kAckSent, vehicle_,
                           notify.src_vehicle, svc_->vehicle_pos(vehicle_),
                           notify.query_id});
  // ACK leg back to Sv, open until the query settles.
  Simulator& sim = svc_->sim();
  SpanScope anchor(sim, sim.active_span() != kNoSpan
                            ? sim.active_span()
                            : svc_->tracker().span_of(notify.query_id));
  const SpanId ack_span =
      sim.begin_span(SpanKind::kAckLeg, vehicle_.value(),
                     notify.src_vehicle.value(), svc_->vehicle_pos(vehicle_),
                     notify.query_id);
  SpanScope scope(sim, ack_span);
  svc_->gpsr().send(node_, notify.src_pos, notify.src_node,
                    svc_->make_packet(PacketKind::kRlsmpAck, node_, ack),
                    &svc_->metrics().query_transmissions);
}

// ---------------------------------------------------------------------------
// Sv side.
// ---------------------------------------------------------------------------

void RlsmpVehicleAgent::start_query(QueryId qid, VehicleId target) {
  const CellGrid& g = svc_->cells();
  const Vec2 my_pos = svc_->vehicle_pos(vehicle_);
  const ClusterCoord my_cluster = g.cluster_of(g.cell_at(my_pos));

  auto q = std::make_shared<RlsmpQueryPayload>();
  q->query_id = qid;
  q->src_vehicle = vehicle_;
  q->src_node = node_;
  q->src_pos = my_pos;
  q->target = target;
  q->origin_cluster = my_cluster;
  q->spiral_index = 0;
  svc_->metrics().query_packets_originated++;
  svc_->gpsr().send(node_, g.lsc_center(my_cluster), std::nullopt,
                    svc_->make_packet(PacketKind::kRlsmpQuery, node_, q),
                    &svc_->metrics().query_transmissions,
                    /*deliver=*/{}, /*fail=*/{},
                    /*delivery_radius=*/svc_->cfg().leader_radius_m);

  Pending p;
  p.target = target;
  p.timeout = svc_->sim().schedule_after(svc_->cfg().ack_timeout, [this, qid] {
    pending_.erase(qid);
    svc_->tracker().fail(qid);
  });
  pending_[qid] = p;
}

}  // namespace hlsrg
