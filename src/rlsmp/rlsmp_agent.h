// Per-vehicle RLSMP behaviour: cell-crossing updates, cell-leader duty,
// LSC duty (cluster table, query election, spiral forwarding), and the
// Sv/Dv ends of the query handshake.
#pragma once

#include "net/node_registry.h"
#include "rlsmp/cell_grid.h"
#include "rlsmp/rlsmp_messages.h"
#include "sim/event_queue.h"
#include "util/flat_table.h"

namespace hlsrg {

class RlsmpService;

class RlsmpVehicleAgent final : public PacketSink {
 public:
  RlsmpVehicleAgent(RlsmpService& service, VehicleId vehicle, NodeId node);

  void on_receive(const Packet& packet, NodeId from) override;

  // Mobility hook: detects cell crossings and leader-region transitions.
  void handle_moved(Vec2 before, Vec2 after);

  // Periodic cell-leader aggregation check (scheduled by the service).
  void aggregation_tick(std::int64_t period_index);

  void start_query(QueryTracker::QueryId qid, VehicleId target);

  // Introspection for tests.
  [[nodiscard]] bool in_leader_region() const { return in_leader_; }
  [[nodiscard]] bool lsc_duty() const;
  [[nodiscard]] std::size_t cell_table_size() const { return cell_table_.size(); }
  [[nodiscard]] std::size_t cluster_table_size() const {
    return cluster_table_.size();
  }
  [[nodiscard]] std::size_t table_bytes() const {
    return cell_table_.bytes() + cluster_table_.bytes();
  }

 private:
  using QueryId = QueryTracker::QueryId;

  void send_cell_update(CellCoord old_cell, CellCoord new_cell);
  // Bootstrap announcement (same ignition-time update HLSRG vehicles send).
  void send_initial_update();
  void leave_leader_region();
  void purge_tables();

  // LSC query path.
  void handle_lsc_query(const Packet& packet);
  void lsc_win_election(QueryId qid, const RlsmpQueryPayload& query);
  // Queues an unresolved query for the aggregation window; the window timer
  // flushes the whole batch to the next LSC in one packet.
  void enqueue_for_spiral(const RlsmpQueryPayload& query);
  void flush_spiral_batch();

  // Cell-leader notification path.
  void handle_cell_leader_query(const RlsmpQueryPayload& query);

  void answer_notify(const RlsmpNotifyPayload& notify);

  RlsmpService* svc_;
  VehicleId vehicle_;
  NodeId node_;

  bool in_leader_ = false;
  CellCoord leader_cell_;
  // Per-cell leader table (full records).
  FlatTable<VehicleId, CellRecord> cell_table_;
  // Cluster table, populated only while on LSC duty.
  FlatTable<VehicleId, CellRecord> cluster_table_;

  std::int64_t heard_push_period_ = -1;

  // Flat agent-local bookkeeping (a handful of live entries per vehicle;
  // DESIGN.md §15).
  SmallFlatMap<QueryId, EventHandle> elections_;
  // Unresolved queries awaiting the aggregation window, grouped by the
  // spiral hop they will take next (spiral_index already advanced).
  std::vector<RlsmpQueryPayload> spiral_batch_;
  bool spiral_timer_armed_ = false;
  SortedIdSet<QueryId> settled_elections_;
  SortedIdSet<QueryId> relayed_requests_;
  // Batch packets already relayed into the LSC region, keyed by packet id.
  SortedIdSet<std::uint32_t> relayed_batches_;
  SortedIdSet<QueryId> handled_notify_forwards_;
  SortedIdSet<QueryId> answered_;

  struct Pending {
    VehicleId target;
    EventHandle timeout;
  };
  SmallFlatMap<QueryId, Pending> pending_;
};

}  // namespace hlsrg
