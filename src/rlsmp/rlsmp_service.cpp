#include "rlsmp/rlsmp_service.h"

#include "rlsmp/rlsmp_agent.h"
#include "util/check.h"

namespace hlsrg {

RlsmpService::RlsmpService(Simulator& sim, MobilityModel& mobility,
                           NodeRegistry& registry, RadioMedium& medium,
                           GpsrRouter& gpsr, GeocastService& geocast,
                           const CellGrid& cells, RlsmpConfig cfg)
    : sim_(&sim),
      mobility_(&mobility),
      registry_(&registry),
      medium_(&medium),
      gpsr_(&gpsr),
      geocast_(&geocast),
      cells_(&cells),
      cfg_(cfg),
      tracker_(sim) {
  const std::size_t n = mobility.vehicle_count();
  vehicle_nodes_.reserve(n);
  vehicle_agents_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VehicleId v{i};
    const NodeId node = registry.add_node(mobility.position(v));
    registry.bind_vehicle(v, node);
    registry.set_vehicle_parked(v, mobility.parked(v));
    vehicle_nodes_.push_back(node);
    // reserve(n) above makes this the agent's final address.
    vehicle_agents_.emplace_back(*this, v, node);
    registry.set_sink(node, &vehicle_agents_.back());
  }
  mobility.add_listener(this);
  sim.schedule_after(cfg_.aggregation_period,
                     [this] { aggregation_tick(1); });
}

RlsmpService::~RlsmpService() = default;

RlsmpVehicleAgent& RlsmpService::vehicle_agent(VehicleId v) {
  return vehicle_agents_[v.index()];
}

void RlsmpService::aggregation_tick(std::int64_t period_index) {
  // Stagger per-agent pushes within the period so claims can suppress peers.
  for (auto& agent : vehicle_agents_) {
    const double jitter_ms = sim_->protocol_rng().uniform(0.0, 100.0);
    sim_->schedule_after(SimTime::from_ms(jitter_ms),
                         [a = &agent, period_index] {
                           a->aggregation_tick(period_index);
                         });
  }
  sim_->schedule_after(cfg_.aggregation_period, [this, period_index] {
    aggregation_tick(period_index + 1);
  });
}

QueryTracker::QueryId RlsmpService::issue_query(VehicleId src,
                                                VehicleId dst) {
  HLSRG_CHECK(src.index() < vehicle_agents_.size());
  HLSRG_CHECK(dst.index() < vehicle_agents_.size());
  const QueryTracker::QueryId qid = tracker_.issue(src, dst);
  // Nest the source agent's synchronous work under the query root span.
  SpanScope scope(*sim_, tracker_.span_of(qid));
  vehicle_agents_[src.index()].start_query(qid, dst);
  return qid;
}

ServiceStats RlsmpService::service_stats() const {
  ServiceStats s;
  for (const auto& agent : vehicle_agents_) {
    s.table_records += agent.cell_table_size() + agent.cluster_table_size();
    s.table_bytes += agent.table_bytes();
  }
  s.table_bytes += registry_->bytes();
  // RLSMP has no RSU serving tier; only admission shedding can apply.
  s.shed_queries = sim_->metrics().queries_shed + sim_->metrics().retries_shed;
  return s;
}

void RlsmpService::sample_region_stats(
    const RegionTelemetry& regions, std::vector<std::uint64_t>& table_records,
    std::vector<std::uint64_t>& queue_depth) const {
  // All RLSMP state is vehicle-held (cell + cluster tables); there is no
  // fixed serving tier, so queue depth stays zero. Region ids come off the
  // registry's SoA rows, which mirror `regions`' own region_of.
  (void)regions;
  (void)queue_depth;
  for (std::size_t i = 0; i < vehicle_agents_.size(); ++i) {
    const int r = registry_->vehicle_region(VehicleId{i});
    table_records[static_cast<std::size_t>(r)] +=
        vehicle_agents_[i].cell_table_size() +
        vehicle_agents_[i].cluster_table_size();
  }
}

void RlsmpService::on_moved(VehicleId v, Vec2 before, Vec2 after) {
  vehicle_agents_[v.index()].handle_moved(before, after);
}

Packet RlsmpService::make_packet(PacketKind kind, NodeId origin,
                                 std::shared_ptr<const PayloadBase> payload) {
  Packet p;
  p.id = packet_ids_.next();
  p.kind = kind;
  p.origin = origin;
  p.origin_pos = registry_->position(origin);
  p.created = sim_->now();
  p.payload = std::move(payload);
  return p;
}

}  // namespace hlsrg
