// RLSMP service: the comparison baseline, wired over the same substrates as
// HLSRG (same map, mobility, radio, GPSR, geocast) minus the RSU plane —
// RLSMP is infrastructure-free by design.
#pragma once

#include <memory>
#include <vector>

#include "core/location_service.h"
#include "mobility/mobility_model.h"
#include "net/geocast.h"
#include "net/gpsr.h"
#include "net/radio.h"
#include "rlsmp/cell_grid.h"
#include "rlsmp/rlsmp_config.h"
#include "sim/simulator.h"

namespace hlsrg {

class RlsmpVehicleAgent;

class RlsmpService final : public LocationService, public MovementListener {
 public:
  RlsmpService(Simulator& sim, MobilityModel& mobility, NodeRegistry& registry,
               RadioMedium& medium, GpsrRouter& gpsr, GeocastService& geocast,
               const CellGrid& cells, RlsmpConfig cfg);
  ~RlsmpService() override;

  // --- LocationService ------------------------------------------------------
  [[nodiscard]] const char* name() const override { return "RLSMP"; }
  QueryTracker::QueryId issue_query(VehicleId src, VehicleId dst) override;
  [[nodiscard]] QueryTracker& tracker() override { return tracker_; }
  [[nodiscard]] ServiceStats service_stats() const override;
  [[nodiscard]] Vec2 vehicle_position(VehicleId v) const override {
    return vehicle_pos(v);
  }
  void sample_region_stats(const RegionTelemetry& regions,
                           std::vector<std::uint64_t>& table_records,
                           std::vector<std::uint64_t>& queue_depth)
      const override;
  [[nodiscard]] PacketKind query_kind() const override {
    return PacketKind::kRlsmpQuery;
  }

  // --- MovementListener -----------------------------------------------------
  void on_moved(VehicleId v, Vec2 before, Vec2 after) override;

  // --- agent context ---------------------------------------------------------
  [[nodiscard]] Simulator& sim() { return *sim_; }
  [[nodiscard]] RunMetrics& metrics() { return sim_->metrics(); }
  [[nodiscard]] const RlsmpConfig& cfg() const { return cfg_; }
  [[nodiscard]] const CellGrid& cells() const { return *cells_; }
  [[nodiscard]] MobilityModel& mobility() { return *mobility_; }
  [[nodiscard]] NodeRegistry& registry() { return *registry_; }
  [[nodiscard]] RadioMedium& medium() { return *medium_; }
  [[nodiscard]] GpsrRouter& gpsr() { return *gpsr_; }
  [[nodiscard]] GeocastService& geocast() { return *geocast_; }

  [[nodiscard]] NodeId node_of(VehicleId v) const {
    return vehicle_nodes_[v.index()];
  }
  [[nodiscard]] Vec2 vehicle_pos(VehicleId v) const {
    return mobility_->position(v);
  }
  [[nodiscard]] Packet make_packet(PacketKind kind, NodeId origin,
                                   std::shared_ptr<const PayloadBase> payload);

  // Out-of-line: the agents are stored by value and indexing the vector
  // needs the complete (forward-declared) type.
  [[nodiscard]] RlsmpVehicleAgent& vehicle_agent(VehicleId v);

 private:
  void aggregation_tick(std::int64_t period_index);

  Simulator* sim_;
  MobilityModel* mobility_;
  NodeRegistry* registry_;
  RadioMedium* medium_;
  GpsrRouter* gpsr_;
  GeocastService* geocast_;
  const CellGrid* cells_;
  RlsmpConfig cfg_;
  QueryTracker tracker_;
  PacketIdSource packet_ids_;

  std::vector<NodeId> vehicle_nodes_;
  // By value, reserved to the exact count in the constructor (agents capture
  // `this` in scheduled timers; the vector must never reallocate).
  std::vector<RlsmpVehicleAgent> vehicle_agents_;
};

}  // namespace hlsrg
