// RLSMP wire messages.
#pragma once

#include <vector>

#include "core/location_service.h"
#include "geom/vec2.h"
#include "net/packet.h"
#include "rlsmp/cell_grid.h"
#include "sim/time.h"
#include "util/tagged_id.h"

namespace hlsrg {

// Packet kinds live in the shared PacketKind enum (net/packet.h); RLSMP uses
// the kCellUpdate..kRlsmpBatch block.

struct CellRecord {
  VehicleId vehicle;
  Vec2 pos;
  SimTime time;
  CellCoord cell;
};

struct CellUpdatePayload final : PayloadBase {
  CellRecord record;
  CellCoord old_cell;
  bool cell_changed = false;
};

// Cell leader -> LSC summary: which vehicles are in which cell.
struct CellSummaryPayload final : PayloadBase {
  CellCoord cell;
  std::vector<CellRecord> records;
};

struct PushClaimPayload final : PayloadBase {
  CellCoord cell;
  std::int64_t period_index = 0;
};

struct LeaderHandoffPayload final : PayloadBase {
  CellCoord cell;                       // leader-duty cell
  std::vector<CellRecord> cell_records; // per-cell leader table
  bool is_lsc = false;                  // also carries cluster table?
  std::vector<CellRecord> cluster_records;
};

struct RlsmpQueryPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId src_vehicle;
  NodeId src_node;
  Vec2 src_pos;
  VehicleId target;
  // Spiral bookkeeping: cluster of origin and position in its spiral order.
  ClusterCoord origin_cluster;
  int spiral_index = 0;
  // True once an LSC resolved the cell and forwarded to the cell leader.
  bool to_cell_leader = false;
  CellCoord target_cell;  // valid when to_cell_leader
};

struct LscClaimPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
};

// "The LSC will send the aggregated query packets to others LSC": all
// queries that missed at one LSC within the waiting window travel onward in
// a single packet. Every query in a batch shares the same next-LSC hop.
struct RlsmpBatchPayload final : PayloadBase {
  std::vector<RlsmpQueryPayload> queries;
};

struct RlsmpNotifyPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId target;
  VehicleId src_vehicle;
  NodeId src_node;
  Vec2 src_pos;
};

struct RlsmpAckPayload final : PayloadBase {
  QueryTracker::QueryId query_id = 0;
  VehicleId responder;
};

}  // namespace hlsrg
