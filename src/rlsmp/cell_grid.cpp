#include "rlsmp/cell_grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hlsrg {

CellGrid::CellGrid(Aabb bounds, double cell_size, double origin_offset,
                   int cluster_dim)
    : bounds_(bounds),
      cell_(cell_size),
      offset_(origin_offset),
      cluster_dim_(cluster_dim) {
  HLSRG_CHECK(cell_size > 0.0);
  HLSRG_CHECK(origin_offset >= 0.0 && origin_offset < cell_size);
  HLSRG_CHECK(cluster_dim >= 1);
  cols_ = static_cast<int>(std::ceil((bounds.width() + offset_) / cell_));
  rows_ = static_cast<int>(std::ceil((bounds.height() + offset_) / cell_));
  cols_ = std::max(cols_, 1);
  rows_ = std::max(rows_, 1);
  cluster_cols_ = (cols_ + cluster_dim_ - 1) / cluster_dim_;
  cluster_rows_ = (rows_ + cluster_dim_ - 1) / cluster_dim_;
}

CellCoord CellGrid::cell_at(Vec2 p) const {
  const int col = static_cast<int>(
      std::floor((p.x - bounds_.lo.x + offset_) / cell_));
  const int row = static_cast<int>(
      std::floor((p.y - bounds_.lo.y + offset_) / cell_));
  return {std::clamp(col, 0, cols_ - 1), std::clamp(row, 0, rows_ - 1)};
}

Vec2 CellGrid::cell_center(CellCoord c) const {
  return {bounds_.lo.x - offset_ + (c.col + 0.5) * cell_,
          bounds_.lo.y - offset_ + (c.row + 0.5) * cell_};
}

Aabb CellGrid::cell_box(CellCoord c) const {
  const Vec2 lo{bounds_.lo.x - offset_ + c.col * cell_,
                bounds_.lo.y - offset_ + c.row * cell_};
  return {lo, {lo.x + cell_, lo.y + cell_}};
}

ClusterCoord CellGrid::cluster_of(CellCoord c) const {
  return {c.col / cluster_dim_, c.row / cluster_dim_};
}

CellCoord CellGrid::lsc_cell(ClusterCoord c) const {
  const int col = c.col * cluster_dim_ + cluster_dim_ / 2;
  const int row = c.row * cluster_dim_ + cluster_dim_ / 2;
  return {std::clamp(col, 0, cols_ - 1), std::clamp(row, 0, rows_ - 1)};
}

std::vector<ClusterCoord> CellGrid::spiral_order(ClusterCoord origin) const {
  std::vector<ClusterCoord> order;
  order.push_back(origin);
  const int max_ring = std::max(
      {origin.col, cluster_cols_ - 1 - origin.col, origin.row,
       cluster_rows_ - 1 - origin.row});
  auto in_range = [&](ClusterCoord c) {
    return c.col >= 0 && c.col < cluster_cols_ && c.row >= 0 &&
           c.row < cluster_rows_;
  };
  for (int d = 1; d <= max_ring; ++d) {
    // Clockwise walk of the Chebyshev ring at distance d, starting due north
    // and turning east first.
    std::vector<ClusterCoord> ring;
    // Top edge, west->east.
    for (int col = origin.col - d; col <= origin.col + d; ++col) {
      ring.push_back({col, origin.row + d});
    }
    // East edge, north->south (corners already covered).
    for (int row = origin.row + d - 1; row >= origin.row - d; --row) {
      ring.push_back({origin.col + d, row});
    }
    // Bottom edge, east->west.
    for (int col = origin.col + d - 1; col >= origin.col - d; --col) {
      ring.push_back({col, origin.row - d});
    }
    // West edge, south->north.
    for (int row = origin.row - d + 1; row <= origin.row + d - 1; ++row) {
      ring.push_back({origin.col - d, row});
    }
    for (ClusterCoord c : ring) {
      if (in_range(c)) order.push_back(c);
    }
  }
  return order;
}

}  // namespace hlsrg
