// RLSMP cell geometry (Saleet et al., GLOBECOM 2008 — the paper's baseline).
//
// The network is cut into uniform square cells by longitude/latitude, with no
// regard for roads; k x k cells form a cluster whose central cell is the
// Location Service Cell (LSC). Unresolved queries travel LSC-to-LSC in a
// spiral around the source's cluster.
//
// The original protocol uses 81-cell (9x9) clusters on metropolitan-scale
// maps; on the paper's 2 km evaluation map that would leave a single cluster
// and disable the spiral entirely, so the cluster dimension is configurable
// (default 3x3) and scaled to the map. The cell lattice is offset by half a
// cell by default, which is the generic position of a lat/long grid relative
// to the street grid: cell boundaries cut through blocks and arteries run
// through cell interiors — exactly the misalignment the paper criticizes.
#pragma once

#include <vector>

#include "geom/aabb.h"
#include "geom/vec2.h"

namespace hlsrg {

struct CellCoord {
  int col = 0;
  int row = 0;
  friend constexpr bool operator==(CellCoord, CellCoord) = default;
};

struct ClusterCoord {
  int col = 0;
  int row = 0;
  friend constexpr bool operator==(ClusterCoord, ClusterCoord) = default;
};

class CellGrid {
 public:
  CellGrid(Aabb bounds, double cell_size, double origin_offset,
           int cluster_dim);

  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cluster_cols() const { return cluster_cols_; }
  [[nodiscard]] int cluster_rows() const { return cluster_rows_; }

  // Cell containing p (clamped to the lattice).
  [[nodiscard]] CellCoord cell_at(Vec2 p) const;
  [[nodiscard]] Vec2 cell_center(CellCoord c) const;
  [[nodiscard]] Aabb cell_box(CellCoord c) const;

  [[nodiscard]] ClusterCoord cluster_of(CellCoord c) const;
  // The LSC cell of a cluster (central cell, clamped to the lattice for
  // truncated edge clusters).
  [[nodiscard]] CellCoord lsc_cell(ClusterCoord c) const;
  [[nodiscard]] Vec2 lsc_center(ClusterCoord c) const {
    return cell_center(lsc_cell(c));
  }

  // Every cluster ordered by spiral distance from `origin`: origin first,
  // then each Chebyshev ring clockwise from the north. This is the LSC visit
  // order for unresolved queries.
  [[nodiscard]] std::vector<ClusterCoord> spiral_order(ClusterCoord origin) const;

  [[nodiscard]] double cell_size() const { return cell_; }

 private:
  Aabb bounds_;
  double cell_;
  double offset_;
  int cluster_dim_;
  int cols_ = 0;
  int rows_ = 0;
  int cluster_cols_ = 0;
  int cluster_rows_ = 0;
};

}  // namespace hlsrg
