// Tunables for the RLSMP baseline.
#pragma once

#include "sim/time.h"

namespace hlsrg {

struct RlsmpConfig {
  // Cell edge; matched to the radio range like the HLSRG L1 grids so the
  // comparison is apples-to-apples.
  double cell_size_m = 500.0;
  // Lattice offset relative to the map origin: half a cell puts arteries in
  // cell interiors (the generic lat/long-vs-street misalignment).
  double origin_offset_m = 250.0;
  // Cells per cluster edge. The original protocol uses 9 (81 cells) on
  // metro-scale maps; 3 keeps multiple clusters (and thus the spiral) alive
  // on the paper's 2 km evaluation map.
  int cluster_dim = 3;
  // Radius around a cell center within which vehicles act as the cell
  // leader / LSC storage; matched to HLSRG's center radius for fairness.
  double leader_radius_m = 150.0;
  // Table freshness at leaders and LSCs.
  SimTime entry_expiry = SimTime::from_min(2.2);
  // Cell leaders push aggregated summaries to their LSC at this period.
  SimTime aggregation_period = SimTime::from_sec(10.0);
  // "wait and aggregate query packets for a specific waiting time" before
  // spiralling onward.
  SimTime query_wait = SimTime::from_sec(2.0);
  // Back-off election slots (same contention resolution as HLSRG's centers).
  SimTime election_slot = SimTime::from_ms(0.2);
  int holder_slots_lo = 0;
  int holder_slots_hi = 15;
  int nonholder_slots_lo = 17;
  int nonholder_slots_hi = 31;
  // Source-side failure deadline; RLSMP has no retry path, so an unanswered
  // query fails when this expires (long enough for a few spiral legs).
  SimTime ack_timeout = SimTime::from_sec(15.0);
};

}  // namespace hlsrg
