#!/usr/bin/env python3
"""Diff two bench report JSON files and gate on metric regressions.

Usage:
    bench_compare.py OLD.json NEW.json [--threshold FRAC] [--abs-slack N]
                     [--include-engine] [--include-timing] [--verbose]
                     [--groups LIST]

Reads two files produced by the bench binaries (schema "hlsrg-bench/v1",
see docs/PROTOCOL.md) or by scenario_cli --out ("hlsrg-run/v1"), pairs up
every (section, row, protocol) result, and compares the numeric fields:

  * "derived"  -- headline figures (update/query overhead, success rate,
                  mean query delay and its percentiles); always compared.
  * "metrics"  -- raw protocol counters; always compared.
  * "latency"  -- delay summary (mean/min/max and p50/p90/p95/p99);
                  always compared, lower is better.
  * "engine"   -- events_processed / peak_queue_depth, only with
                  --include-engine (deterministic given identical code and
                  seeds, but expected to move whenever the engine changes);
                  wall_clock_sec / events_per_sec only with
                  --include-timing (machine-dependent).
  * "memory"   -- engine.peak_rss_bytes (process high-water mark; noisy
                  across allocators/kernels, so give it a generous
                  --threshold) and engine.table_bytes (protocol-table +
                  registry heap, deterministic); both lower-is-better.
                  Compared whenever "memory" is in --groups, independent of
                  --include-engine/--include-timing.

--groups restricts the comparison to a comma-separated subset of the five
groups above (default "derived,metrics,latency,engine"). The CI perf-smoke
job uses "--groups engine --include-engine --include-timing" to gate
throughput alone: functional counters can drift across compilers/libm
(Poisson workload timing goes through std::log) without being perf
regressions, and they are already gated deterministically elsewhere. The
memory gate runs as a separate invocation ("--groups memory") against the
scale_map deep rows.

A field regresses when it moves against its preferred direction by more
than threshold (relative) AND more than abs-slack (absolute) -- the
absolute slack keeps tiny counters (3 -> 4 packets) from tripping the
relative gate. Improvements and sub-threshold drifts are reported in
--verbose mode only. Exit status: 0 = no regression, 1 = regression(s),
2 = usage/schema error.

The nested "observability" object (counters / histograms / time series from
trace/metrics.h) is carried through reports untouched and never compared —
its fields duplicate information already gated via "metrics"/"latency" or
are diagnostic time series with no stable baseline.
"""

import argparse
import json
import sys

# Direction a metric should move: +1 = higher is better, -1 = lower is
# better. Unlisted numeric fields are compared symmetrically (any move
# beyond threshold counts).
PREFERRED_DIRECTION = {
    "success_rate": +1,
    "queries_succeeded": +1,
    "update_overhead": -1,
    "query_overhead": -1,
    "mean_query_latency_ms": -1,
    "query_delay_p50_ms": -1,
    "query_delay_p90_ms": -1,
    "query_delay_p95_ms": -1,
    "query_delay_p99_ms": -1,
    "mean_ms": -1,
    "max_ms": -1,
    "p50_ms": -1,
    "p90_ms": -1,
    "p95_ms": -1,
    "p99_ms": -1,
    "queries_failed": -1,
    "gpsr_failures": -1,
    "radio_drops": -1,
    "availability": +1,
    "served_rate": +1,
    "shed_rate": -1,
    "cache_hit_rate": +1,
    "queries_shed": -1,
    "retries_shed": -1,
    "peak_outstanding": -1,
    "recovery_ms": -1,
    "queries_stranded": -1,
    "wired_drops": -1,
    "trace_events_dropped": -1,
    "trace_spans_dropped": -1,
    "wall_clock_sec": -1,
    "events_per_sec": +1,
    "broadcasts_per_sec": +1,
    "peak_rss_bytes": -1,
    "table_bytes": -1,
    # Region observatory (src/obs): hotter-than-mean regions and a wider
    # spread of per-region load are both regressions.
    "region_load_max_over_mean": -1,
    "region_imbalance_cv": -1,
    # Infrastructure churn (parked-cars-as-RSUs): losing handoffs, expiring
    # records, or leaving roles vacant are regressions; delivering more of
    # the shipped records and electing successors in place are improvements.
    "handoffs_lost": -1,
    "handoff_records_expired": -1,
    "role_vacancies": -1,
    "handoff_record_delivery_rate": +1,
    "role_continuity": +1,
}

TIMING_FIELDS = {"wall_clock_sec", "events_per_sec", "broadcasts_per_sec",
                 "sim_time_sec"}

# Engine fields owned by the "memory" group; excluded from the "engine"
# group so enabling both never double-compares them.
MEMORY_FIELDS = {"peak_rss_bytes", "table_bytes"}


def fail(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    schema = doc.get("schema", "")
    if not schema.startswith(("hlsrg-bench/", "hlsrg-run/")):
        fail(f"{path}: unrecognized schema {schema!r}")
    return doc


def iter_results(doc):
    """Yields ((section, row, protocol), result_dict) for both schemas."""
    if doc.get("schema", "").startswith("hlsrg-run/"):
        yield (("run", "run", doc.get("protocol", "?")), doc)
        return
    for section in doc.get("sections", []):
        for row in section.get("rows", []):
            for result in row.get("results", []):
                key = (section.get("title", "?"), row.get("label", "?"),
                       result.get("protocol", "?"))
                yield key, result


def numeric_fields(result, include_engine, include_timing, groups):
    """Yields (field_path, value) pairs subject to comparison."""
    for group in ["derived", "metrics", "latency"]:
        if group not in groups:
            continue
        for name, value in result.get(group, {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                yield f"{group}.{name}", float(value)
    engine = result.get("engine", {})
    for name, value in engine.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if name in MEMORY_FIELDS:
            if "memory" in groups:
                yield f"engine.{name}", float(value)
            continue
        if "engine" not in groups:
            continue
        timing = name in TIMING_FIELDS
        if timing and not include_timing:
            continue
        if not timing and not include_engine:
            continue
        yield f"engine.{name}", float(value)


def main():
    ap = argparse.ArgumentParser(
        description="diff two bench JSON reports; nonzero exit on regression")
    ap.add_argument("old", help="baseline report")
    ap.add_argument("new", help="candidate report")
    ap.add_argument("--threshold", type=float, default=0.05,
                    help="relative change that counts as a regression "
                         "(default 0.05 = 5%%)")
    ap.add_argument("--abs-slack", type=float, default=2.0,
                    help="ignore absolute moves smaller than this "
                         "(default 2.0; shields tiny counters)")
    ap.add_argument("--include-engine", action="store_true",
                    help="also gate on events_processed / peak_queue_depth")
    ap.add_argument("--include-timing", action="store_true",
                    help="also gate on wall-clock and events/sec")
    ap.add_argument("--verbose", action="store_true",
                    help="print every compared field, not just regressions")
    ap.add_argument("--groups", default="derived,metrics,latency,engine",
                    help="comma-separated field groups to compare, from "
                         "derived,metrics,latency,engine,memory "
                         "(default: derived,metrics,latency,engine)")
    args = ap.parse_args()
    groups = {g.strip() for g in args.groups.split(",") if g.strip()}
    known = {"derived", "metrics", "latency", "engine", "memory"}
    if not groups or not groups <= known:
        fail(f"--groups must name a subset of {sorted(known)}")

    old_doc, new_doc = load(args.old), load(args.new)
    old_results = dict(iter_results(old_doc))
    new_results = dict(iter_results(new_doc))

    shared = sorted(set(old_results) & set(new_results))
    if not shared:
        fail("the two reports share no (section, row, protocol) results")
    for missing in sorted(set(old_results) - set(new_results)):
        print(f"note: result only in {args.old}: {missing}")
    for extra in sorted(set(new_results) - set(old_results)):
        print(f"note: result only in {args.new}: {extra}")

    regressions = []
    compared = 0
    for key in shared:
        old_fields = dict(numeric_fields(old_results[key], args.include_engine,
                                         args.include_timing, groups))
        new_fields = dict(numeric_fields(new_results[key], args.include_engine,
                                         args.include_timing, groups))
        for field in sorted(set(old_fields) & set(new_fields)):
            old_v, new_v = old_fields[field], new_fields[field]
            compared += 1
            delta = new_v - old_v
            rel = abs(delta) / abs(old_v) if old_v != 0 else (
                0.0 if delta == 0 else float("inf"))
            direction = PREFERRED_DIRECTION.get(field.split(".")[-1], 0)
            # A move is only a regression when it goes against the metric's
            # preferred direction (or any direction for neutral fields).
            against = (direction == 0 and delta != 0) or \
                      (direction > 0 and delta < 0) or \
                      (direction < 0 and delta > 0)
            is_regression = (against and rel > args.threshold
                             and abs(delta) > args.abs_slack)
            label = " / ".join(key)
            if is_regression:
                regressions.append(
                    f"{label}: {field} {old_v:g} -> {new_v:g} "
                    f"({delta:+g}, {rel:.1%}, against preferred direction)")
            elif args.verbose and delta != 0:
                print(f"ok: {label}: {field} {old_v:g} -> {new_v:g} "
                      f"({rel:.1%})")

    print(f"compared {compared} fields across {len(shared)} results "
          f"(threshold {args.threshold:.1%}, abs slack {args.abs_slack:g})")
    if regressions:
        print(f"REGRESSIONS ({len(regressions)}):")
        for r in regressions:
            print(f"  {r}")
        sys.exit(1)
    print("no regressions")
    sys.exit(0)


if __name__ == "__main__":
    main()
