#!/usr/bin/env python3
"""Render a region-observatory document (schema "hlsrg-obs/v1") as a
terminal dashboard or a self-contained HTML page. Zero dependencies.

The input is what `scenario_cli --obs-out` / the bench `--obs-out` flag
write: per-L3-region counters, the directed cross-region wired traffic
matrix, sampled time series, a load-imbalance summary, and (when the run
was profiled) the wall-clock phase tree.

Usage:
    obs_dashboard.py OBS.json                 # terminal dashboard
    obs_dashboard.py OBS.json --html OUT.html # static HTML page
    obs_dashboard.py OBS.json --check         # schema validation only

Exit status: 0 = ok, 1 = malformed document, 2 = usage error.
"""

from __future__ import annotations

import argparse
import html
import json
import sys

SCHEMA = "hlsrg-obs/v1"
PROFILE_SCHEMA = "hlsrg-profile/v1"

# Per-region counters in display order (name, short column header).
COUNTER_COLUMNS = (
    ("load", "load"),
    ("radio_broadcasts", "bcast"),
    ("radio_unicasts", "ucast"),
    ("radio_delivered", "delivrd"),
    ("radio_dropped", "dropped"),
    ("wired_out", "w.out"),
    ("wired_in", "w.in"),
    ("wired_dropped", "w.drop"),
    ("updates", "updates"),
    ("queries_served", "served"),
    ("cache_hits", "cache"),
    ("queries_shed", "shed"),
)

SHADES = " ░▒▓█"


def fail(msg):
    print(f"obs_dashboard: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    """Structural check of the document; fail()s with a pointed message."""
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    tel = doc.get("telemetry")
    if not isinstance(tel, dict):
        fail("missing telemetry object")
    cols, rows = tel.get("l3_cols"), tel.get("l3_rows")
    if not (isinstance(cols, (int, float)) and isinstance(rows, (int, float))
            and int(cols) > 0 and int(rows) > 0):
        fail("telemetry.l3_cols/l3_rows missing or non-positive")
    n = int(cols) * int(rows)
    regions = tel.get("regions")
    if not isinstance(regions, list) or len(regions) != n:
        fail(f"telemetry.regions has {len(regions or [])} entries, "
             f"expected {n}")
    for key, _ in COUNTER_COLUMNS:
        for r in regions:
            if key not in r:
                fail(f"region {r.get('id')} missing counter {key!r}")
    matrix = tel.get("matrix")
    if not isinstance(matrix, dict):
        fail("missing telemetry.matrix")
    for key in ("packets", "hops", "bytes"):
        m = matrix.get(key)
        if (not isinstance(m, list) or len(m) != n
                or any(not isinstance(row, list) or len(row) != n
                       for row in m)):
            fail(f"matrix.{key} is not {n}x{n}")
    if "imbalance" not in tel:
        fail("missing telemetry.imbalance")
    profile = doc.get("profile")
    if profile is not None:
        if (not isinstance(profile, dict)
                or profile.get("schema") != PROFILE_SCHEMA
                or not isinstance(profile.get("root"), dict)):
            fail(f"profile present but not a {PROFILE_SCHEMA!r} tree")
    return doc


def heatmap_rows(tel):
    """Rows of (shade_char, load) for the region grid, row 0 first."""
    cols, rows = int(tel["l3_cols"]), int(tel["l3_rows"])
    loads = {int(r["id"]): int(r["load"]) for r in tel["regions"]}
    peak = max(loads.values()) or 1
    out = []
    for row in range(rows):
        cells = []
        for col in range(cols):
            load = loads[row * cols + col]
            shade = SHADES[min(len(SHADES) - 1,
                               (load * (len(SHADES) - 1) + peak - 1) // peak)]
            cells.append((shade, load))
        out.append(cells)
    return out


def render_terminal(doc):
    tel = doc["telemetry"]
    cols, rows = int(tel["l3_cols"]), int(tel["l3_rows"])
    imb = tel["imbalance"]
    print(f"region observatory — {cols}x{rows} L3 regions, "
          f"{tel.get('replicas', 1)} replica(s)")
    print(f"load: total {int(imb['total_load'])}, "
          f"max/mean {imb['load_max_over_mean']:.2f}, "
          f"cv {imb['load_cv']:.2f}")

    print("\nload heatmap (row 0 = south):")
    for cells in reversed(heatmap_rows(tel)):
        bar = "  ".join(f"{shade * 2}{load:>8}" for shade, load in cells)
        print(f"  {bar}")

    print("\nper-region counters:")
    header = "  region " + " ".join(f"{h:>8}" for _, h in COUNTER_COLUMNS)
    print(header)
    for r in tel["regions"]:
        vals = " ".join(f"{int(r[key]):>8}" for key, _ in COUNTER_COLUMNS)
        print(f"  r{int(r['row'])}c{int(r['col'])}   {vals}")

    packets = tel["matrix"]["packets"]
    if any(any(row) for row in packets):
        print("\nwired traffic matrix (packets, source row -> dest col):")
        n = len(packets)
        print("  from\\to " + " ".join(f"{j:>7}" for j in range(n)))
        for i, row in enumerate(packets):
            print(f"  {i:>7} " + " ".join(f"{int(v):>7}" for v in row))

    times = tel.get("series", {}).get("times_sec", [])
    if times:
        print(f"\nsampled series: {len(times)} ticks, "
              f"t = {times[0]:g}s .. {times[-1]:g}s "
              "(vehicles / table_records / queue_depth per region)")

    profile = doc.get("profile")
    if profile is not None:
        print("\nphase profile (inclusive wall time):")
        print_profile_node(profile["root"], depth=0)
    else:
        print("\nphase profile: not captured (run with --profile/--obs-out)")


def print_profile_node(node, depth):
    inc_ms = node["inclusive_ns"] / 1e6
    exc_ms = node["exclusive_ns"] / 1e6
    name = node["name"]
    if depth == 0 and name == "root" and not node["calls"]:
        # The synthetic root carries no timing of its own.
        print(f"  root ({len(node['children'])} top-level phase(s))")
    else:
        print(f"  {'  ' * depth}{name}: {inc_ms:.3f} ms inclusive, "
              f"{exc_ms:.3f} ms self, {int(node['calls'])} call(s)")
    for child in node["children"]:
        print_profile_node(child, depth + 1)


def html_profile_node(node, out):
    out.append("<li><code>{}</code> — {:.3f} ms inclusive, {:.3f} ms self, "
               "{} call(s)".format(html.escape(str(node["name"])),
                                   node["inclusive_ns"] / 1e6,
                                   node["exclusive_ns"] / 1e6,
                                   int(node["calls"])))
    if node["children"]:
        out.append("<ul>")
        for child in node["children"]:
            html_profile_node(child, out)
        out.append("</ul>")
    out.append("</li>")


def render_html(doc, path):
    tel = doc["telemetry"]
    cols, rows = int(tel["l3_cols"]), int(tel["l3_rows"])
    imb = tel["imbalance"]
    loads = {int(r["id"]): int(r["load"]) for r in tel["regions"]}
    peak = max(loads.values()) or 1

    out = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>HLSRG region observatory</title><style>",
        "body{font-family:sans-serif;margin:2em;}",
        "table{border-collapse:collapse;margin:1em 0;}",
        "td,th{border:1px solid #999;padding:4px 8px;text-align:right;}",
        "th{background:#eee;}",
        ".heat td{width:72px;height:48px;text-align:center;color:#111;}",
        "</style></head><body>",
        f"<h1>Region observatory — {cols}×{rows} L3 regions</h1>",
        f"<p>{tel.get('replicas', 1)} replica(s); total load "
        f"{int(imb['total_load'])}, max/mean "
        f"{imb['load_max_over_mean']:.2f}, cv {imb['load_cv']:.2f}</p>",
        "<h2>Load heatmap</h2><table class='heat'>",
    ]
    for row in reversed(range(rows)):
        out.append("<tr>")
        for col in range(cols):
            load = loads[row * cols + col]
            # White -> red ramp on the load fraction.
            frac = load / peak
            g = int(255 * (1.0 - 0.75 * frac))
            out.append(f"<td style='background:rgb(255,{g},{g})'>"
                       f"{load}</td>")
        out.append("</tr>")
    out.append("</table>")

    out.append("<h2>Per-region counters</h2><table><tr><th>region</th>")
    out.extend(f"<th>{h}</th>" for _, h in COUNTER_COLUMNS)
    out.append("</tr>")
    for r in tel["regions"]:
        out.append(f"<tr><td>r{int(r['row'])}c{int(r['col'])}</td>")
        out.extend(f"<td>{int(r[key])}</td>" for key, _ in COUNTER_COLUMNS)
        out.append("</tr>")
    out.append("</table>")

    packets = tel["matrix"]["packets"]
    if any(any(row) for row in packets):
        n = len(packets)
        out.append("<h2>Wired traffic matrix (packets, source row → dest "
                   "col)</h2><table><tr><th>from\\to</th>")
        out.extend(f"<th>{j}</th>" for j in range(n))
        out.append("</tr>")
        for i, row in enumerate(packets):
            out.append(f"<tr><th>{i}</th>")
            out.extend(f"<td>{int(v)}</td>" for v in row)
            out.append("</tr>")
        out.append("</table>")

    profile = doc.get("profile")
    if profile is not None:
        out.append("<h2>Phase profile</h2><ul>")
        html_profile_node(profile["root"], out)
        out.append("</ul>")

    out.append("</body></html>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(out))
    print(f"wrote {path}")


def main():
    parser = argparse.ArgumentParser(
        description="Render an hlsrg-obs/v1 document.")
    parser.add_argument("obs_json", help="document from --obs-out")
    parser.add_argument("--html", metavar="FILE",
                        help="write a self-contained HTML page instead")
    parser.add_argument("--check", action="store_true",
                        help="validate the schema and exit")
    args = parser.parse_args()

    try:
        with open(args.obs_json, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))
    validate(doc)
    if args.check:
        print(f"{args.obs_json}: valid {SCHEMA}")
        return 0
    if args.html:
        render_html(doc, args.html)
    else:
        render_terminal(doc)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.exit(0)
