#!/usr/bin/env bash
# Full local gate: configure, build, run every test and every bench.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done
