#!/usr/bin/env bash
# Full local gate: configure, build, run every test and every bench, then
# regression-gate the bench JSON reports with bench_compare.py.
#
# Each bench writes BENCH_<name>.json (see docs/PROTOCOL.md). If a baseline
# directory exists (default: bench_baseline/, override with
# HLSRG_BENCH_BASELINE=dir), every report with a matching baseline file is
# compared and a regression fails the gate. Record a baseline by copying the
# BENCH_*.json files of a good run into that directory.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Static analysis (no-op locally when clang-tidy is absent; real in CI).
scripts/lint.sh

# Determinism smoke: one bench run twice (multi-threaded vs single-threaded
# replica execution) must produce bit-identical per-replica state digests.
./build/bench/fig34_success_rate --replicas 2 --threads 4 \
  --audit-determinism --out "$(mktemp)"

benches=(build/bench/*)
found_bench=false
for b in "${benches[@]}"; do
  [ -x "$b" ] && [ -f "$b" ] && found_bench=true && break
done
if ! $found_bench; then
  echo "error: no bench executables under build/bench/ — build is broken" >&2
  exit 1
fi

reports=()
for b in "${benches[@]}"; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$(basename "$b")" in
    kernel_*) "$b" ;;  # google-benchmark kernel micro benches: no JSON report
    *)
      out="BENCH_$(basename "$b").json"
      "$b" --out "$out"
      reports+=("$out")
      ;;
  esac
done

# Self-compare one report: proves the JSON is schema-valid and that the
# comparator's zero-diff path exits 0 even with no baseline recorded.
if [ "${#reports[@]}" -gt 0 ]; then
  python3 scripts/bench_compare.py "${reports[0]}" "${reports[0]}"
fi

baseline="${HLSRG_BENCH_BASELINE:-bench_baseline}"
if [ -d "$baseline" ]; then
  for r in "${reports[@]}"; do
    old="$baseline/$r"
    [ -f "$old" ] || { echo "note: no baseline for $r"; continue; }
    echo "== bench_compare: $old vs $r"
    python3 scripts/bench_compare.py "$old" "$r"
  done
fi
