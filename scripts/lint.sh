#!/usr/bin/env bash
# clang-tidy gate over src/ using the curated check set in .clang-tidy.
#
# Builds a compile-command database (separate build tree so it never
# perturbs build/), then runs clang-tidy with warnings-as-errors on every
# translation unit under src/. Exits nonzero on any finding.
#
# clang-tidy is not part of the minimal toolchain image; when it is absent
# this script prints a notice and exits 0 so local `scripts/check.sh` runs
# stay green. CI installs clang-tidy and gets the real gate.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; skipping (install clang-tidy to run the gate)"
  exit 0
fi

build_dir=build-tidy
cmake -B "$build_dir" -G Ninja -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "lint: clang-tidy over ${#sources[@]} files"
clang-tidy -p "$build_dir" --quiet "${sources[@]}"
echo "lint: clean"
