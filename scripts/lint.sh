#!/usr/bin/env bash
# Static-analysis gate over src/, in two layers:
#
#   1. Determinism lint (tools/lint/determinism_lint.py) — zero-dependency
#      Python, ALWAYS runs, ALWAYS a hard gate. Enforces the project rules
#      that protect replayability before the engine goes multi-shard:
#      unordered-iteration, pointer-keyed-container, rng-discipline,
#      wall-clock, send-kind (see DESIGN.md §12).
#
#   2. clang-tidy with the curated check set in .clang-tidy. clang-tidy is
#      not part of the minimal toolchain image; when absent this layer
#      prints a notice and is skipped so local runs stay green. Pass
#      --require (CI does) to turn a missing clang-tidy into a failure
#      instead of a skip.
#
# Usage: scripts/lint.sh [--require] [--report FILE.json]
set -euo pipefail
cd "$(dirname "$0")/.."

require_tidy=false
report_args=()
for arg in "$@"; do
  case "$arg" in
    --require) require_tidy=true ;;
    --report)  report_args+=(--report) ;;
    *)         report_args+=("$arg") ;;
  esac
done

echo "== determinism lint"
python3 tools/lint/determinism_lint.py "${report_args[@]}"

echo "== determinism lint fixtures"
python3 tools/lint/test_lint.py >/dev/null || {
  echo "lint: fixture self-test failed — a rule stopped firing" >&2
  python3 tools/lint/test_lint.py | grep '^FAIL' >&2 || true
  exit 1
}
echo "fixtures: all rules fire, clean counterparts pass"

echo "== clang-tidy"
if ! command -v clang-tidy >/dev/null 2>&1; then
  if $require_tidy; then
    echo "lint: clang-tidy required (--require) but not found" >&2
    exit 1
  fi
  echo "lint: clang-tidy not found; skipping (install clang-tidy to run the gate)"
  exit 0
fi

build_dir=build-tidy
cmake -B "$build_dir" -G Ninja -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "lint: clang-tidy over ${#sources[@]} files"
clang-tidy -p "$build_dir" --quiet "${sources[@]}"
echo "lint: clean"
