// Figure 3.3 — location query overhead vs number of vehicles.
//
// Paper setup: the 2 km map with 300/400/500/600 vehicles; 10% of vehicles
// query 10% of vehicles; the metric is query-attributable control traffic.
// Paper result: HLSRG reduces query overhead by up to ~15% — the wired L3
// plane replaces long multi-hop forwarding chains.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "fig33_query_overhead", 3);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::SweepRow> rows;
  for (int vehicles : {300, 400, 500, 600}) {
    ScenarioConfig cfg = paper_scenario(vehicles, 2000);
    rows.push_back({std::to_string(vehicles) + " vehicles", cfg});
  }

  bench::SweepDriver driver(opts);
  driver.comparison(
      "Fig 3.3: location query overhead vs vehicles", "query tx", rows,
      [](const ReplicaSet& s) { return s.mean_query_overhead(); });
  return driver.finish() ? 0 : 1;
}
