// Figure 3.3 — location query overhead vs number of vehicles.
//
// Paper setup: the 2 km map with 300/400/500/600 vehicles; 10% of vehicles
// query 10% of vehicles; the metric is query-attributable control traffic.
// Paper result: HLSRG reduces query overhead by up to ~15% — the wired L3
// plane replaces long multi-hop forwarding chains.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const int replicas = bench::replica_count(argc, argv, 3);

  std::vector<bench::SweepRow> rows;
  for (int vehicles : {300, 400, 500, 600}) {
    ScenarioConfig cfg = paper_scenario(vehicles, 2000);
    rows.push_back({std::to_string(vehicles) + " vehicles", cfg});
  }

  bench::run_and_print(
      "Fig 3.3: location query overhead vs vehicles", "query tx", rows,
      replicas, [](const ReplicaSet& s) { return s.mean_query_overhead(); });
  return 0;
}
