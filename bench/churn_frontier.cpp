// Bench — infrastructure-cost vs success-rate frontier under churn.
//
// Section 1 sweeps who provides the L2/L3 infrastructure on the paper map:
// fixed roadside hardware (the paper's deployment), parked cars drafted as
// role hosts (zero fixed units, but hosts drive away mid-run), and no
// infrastructure at all (the lower bound the parked tier must clear). The
// frontier is the success rate each point buys per fixed RSU deployed.
//
// Section 2 is the churn chaos gate: a burst-departure fault window (kind
// "churn") makes half the parked fleet — role hosts included — drive off
// abruptly in the middle of the query window. The handoff variant ships
// each departing host's tables to its elected successor (kRoleHandoff);
// the no_handoff control re-elects the same successors but lets every
// record expire, so rebuilding from beacons is all it has. Handoff must
// strictly beat the control at the pinned seed (see bench_baseline/).
#include "chaos_common.h"

namespace {

using namespace hlsrg;

// Parked-host tier shared by both sections: a third of the fleet is parked,
// parking churn runs continuously (cars pull over, dwell, depart), and each
// L2/L3 role is hosted by the nearest parked car within 600 m of its grid
// center. 600 m (vs the 400 m default) keeps election pools non-empty on
// the sparser 4 km chaos map.
void enable_parked_hosting(ScenarioConfig& cfg) {
  cfg.mobility.parked_fraction = 0.35;
  cfg.mobility.churn.enabled = true;
  cfg.mobility.churn.park_rate_per_sec = 0.001;
  cfg.mobility.churn.dwell_mean_sec = 120.0;
  cfg.mobility.churn.min_dwell_sec = 20.0;
  cfg.hlsrg.parked_rsu_hosting = true;
  cfg.hlsrg.host_radius_m = 600.0;
}

void frontier(bench::SweepDriver& driver) {
  struct Point {
    const char* label;
    ScenarioConfig cfg;
  };
  std::vector<Point> points;
  {
    Point p{"fixed_rsus", paper_scenario(400, 9900)};
    points.push_back(p);
  }
  {
    Point p{"parked_hosts", paper_scenario(400, 9900)};
    enable_parked_hosting(p.cfg);
    points.push_back(p);
  }
  {
    Point p{"no_rsus", paper_scenario(400, 9900)};
    p.cfg.hlsrg.use_rsus = false;
    points.push_back(p);
  }

  driver.begin_section("Infrastructure frontier: who hosts the L2/L3 roles",
                       "success_rate");
  std::printf("== Infrastructure frontier ==\n   (%d replicas per point)\n",
              driver.replicas());
  TextTable table;
  table.add_row({"point", "fixed units", "success", "role departures",
                 "role fills", "handoff delivery"});
  for (const Point& p : points) {
    const ReplicaSet s = driver.run(p.label, p.cfg, Protocol::kHlsrg);
    const bool fixed = p.cfg.hlsrg.use_rsus && !p.cfg.hlsrg.parked_rsu_hosting;
    const double n = static_cast<double>(s.replicas.size());
    table.add_row({
        p.label,
        fixed ? "full grid" : "none",
        fmt_percent(static_cast<double>(s.merged.queries_succeeded),
                    static_cast<double>(s.merged.queries_issued)),
        fmt_double(static_cast<double>(s.merged.role_departures) / n, 1),
        fmt_double(static_cast<double>(s.merged.role_fills) / n, 1),
        s.merged.churn_active != 0
            ? fmt_double(s.merged.handoff_record_delivery_rate(), 3)
            : std::string("n/a"),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
}

void churn_chaos(bench::SweepDriver& driver) {
  // 4 km chaos map: sibling L3 RSUs exist, so a role that goes vacant has a
  // live absorber for its wired handoff (the degradation ladder's last rung).
  ScenarioConfig base = bench::chaos_scenario(9910);
  enable_parked_hosting(base);
  FaultWindow burst;
  burst.kind = FaultKind::kChurn;
  burst.begin = SimTime::from_sec(70.0);
  burst.end = SimTime::from_sec(90.0);
  burst.depart_fraction = 0.5;
  base.fault_plan.windows.push_back(burst);

  driver.begin_section("Churn chaos: burst departure of parked hosts",
                       "availability");
  std::printf("== Churn chaos: burst departure ==\n"
              "   (%d replicas per variant)\n",
              driver.replicas());
  TextTable table;
  table.add_row({"variant", "availability", "success", "departures",
                 "elections", "vacancies", "records expired", "delivery"});
  for (const bool handoff : {true, false}) {
    ScenarioConfig cfg = base;
    cfg.hlsrg.enable_handoff = handoff;
    const ReplicaSet s = driver.run(handoff ? "handoff" : "no_handoff", cfg,
                                    Protocol::kHlsrg);
    const double n = static_cast<double>(s.replicas.size());
    table.add_row({
        handoff ? "handoff" : "no_handoff",
        fmt_percent(static_cast<double>(s.merged.fault_queries_ok),
                    static_cast<double>(s.merged.fault_queries_issued)),
        fmt_percent(static_cast<double>(s.merged.queries_succeeded),
                    static_cast<double>(s.merged.queries_issued)),
        fmt_double(static_cast<double>(s.merged.role_departures) / n, 1),
        fmt_double(static_cast<double>(s.merged.role_elections) / n, 1),
        fmt_double(static_cast<double>(s.merged.role_vacancies) / n, 1),
        fmt_double(static_cast<double>(s.merged.handoff_records_expired) / n,
                   1),
        fmt_double(s.merged.handoff_record_delivery_rate(), 3),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const hlsrg::bench::BenchOptions opts =
      // Default 2 replicas: matches bench_baseline/ and the CI gate, and the
      // pinned pair separates handoff from no_handoff where one replica's
      // 25-query fault window can tie on availability.
      hlsrg::bench::parse_options(argc, argv, "churn_frontier", 2,
                                  /*inline_fault_plan=*/true);
  if (opts.parse_failed) return opts.exit_code;

  hlsrg::bench::SweepDriver driver(opts);
  frontier(driver);
  churn_chaos(driver);
  return driver.finish() ? 0 : 1;
}
