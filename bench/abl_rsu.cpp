// Ablation A2 — what do the RSUs buy (DESIGN.md)?
//
// The paper credits RSUs for the success-rate and delay advantages. Variants:
//   with RSUs     — L2/L3 RSUs deployed and wired (the published protocol)
//   vehicle-only  — no infrastructure; collection stops at L1 grid centers
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_rsu", 4);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::Variant> variants;
  for (int vehicles : {300, 500}) {
    ScenarioConfig with = paper_scenario(vehicles, 6000);
    variants.push_back({"with RSUs, " + std::to_string(vehicles) + " veh",
                        with});
    ScenarioConfig without = with;
    without.hlsrg.use_rsus = false;
    variants.push_back({"vehicle-only, " + std::to_string(vehicles) + " veh",
                        without});
  }

  bench::SweepDriver driver(opts);
  bench::run_variants(driver, "Ablation A2: RSU infrastructure on/off", variants);
  return driver.finish() ? 0 : 1;
}
