// Ablation A5 — workload sensitivity.
//
// The paper evaluates a one-shot workload (each source queries once). Real
// fleets re-query continuously and skew toward popular targets. This bench
// compares both protocols under the paper's workload, Poisson arrivals, and
// a hotspot (dispatcher-style) pattern on the same worlds.
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_workload", 3);
  if (opts.parse_failed) return opts.exit_code;

  struct Row {
    const char* label;
    ScenarioConfig::WorkloadKind kind;
  };
  const Row kinds[] = {
      {"one-shot (paper)", ScenarioConfig::WorkloadKind::kOneShot},
      {"poisson 1/s", ScenarioConfig::WorkloadKind::kPoisson},
      {"hotspot 1/s", ScenarioConfig::WorkloadKind::kHotspot},
  };

  bench::SweepDriver driver(opts);
  driver.begin_section("Ablation A5: workload sensitivity",
                       "headline metrics");
  std::printf("== Ablation A5: workload sensitivity (500 vehicles) ==\n");
  TextTable table;
  table.add_row({"workload", "protocol", "queries", "success", "delay ms",
                 "query tx"});
  for (const Row& row : kinds) {
    ScenarioConfig cfg = paper_scenario(500, 9500);
    cfg.workload = row.kind;
    for (Protocol protocol : {Protocol::kHlsrg, Protocol::kRlsmp}) {
      const ReplicaSet s = driver.run(row.label, cfg, protocol);
      table.add_row({
          row.label,
          protocol_name(protocol),
          fmt_double(static_cast<double>(s.merged.queries_issued) /
                         static_cast<double>(s.replicas.size()),
                     1),
          fmt_percent(static_cast<double>(s.merged.queries_succeeded),
                      static_cast<double>(s.merged.queries_issued)),
          fmt_double(s.mean_query_latency_ms(), 1),
          fmt_double(s.mean_query_overhead(), 1),
      });
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
  return driver.finish() ? 0 : 1;
}
