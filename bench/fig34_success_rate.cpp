// Figure 3.4 — query success rate vs number of vehicles.
//
// Paper result: HLSRG's success rate is higher than RLSMP's at every density
// and approaches 100%; RLSMP loses queries to stale spiral forwarding.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "fig34_success_rate", 4);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::SweepRow> rows;
  for (int vehicles : {300, 400, 500, 600}) {
    ScenarioConfig cfg = paper_scenario(vehicles, 3000);
    rows.push_back({std::to_string(vehicles) + " vehicles", cfg});
  }

  bench::SweepDriver driver(opts);
  driver.comparison(
      "Fig 3.4: query success rate vs vehicles", "success rate", rows,
      [](const ReplicaSet& s) { return s.mean_success_rate(); });
  return driver.finish() ? 0 : 1;
}
