// Figure 3.4 — query success rate vs number of vehicles.
//
// Paper result: HLSRG's success rate is higher than RLSMP's at every density
// and approaches 100%; RLSMP loses queries to stale spiral forwarding.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const int replicas = bench::replica_count(argc, argv, 4);

  std::vector<bench::SweepRow> rows;
  for (int vehicles : {300, 400, 500, 600}) {
    ScenarioConfig cfg = paper_scenario(vehicles, 3000);
    rows.push_back({std::to_string(vehicles) + " vehicles", cfg});
  }

  bench::run_and_print(
      "Fig 3.4: query success rate vs vehicles", "success rate", rows,
      replicas, [](const ReplicaSet& s) { return s.mean_success_rate(); });
  return 0;
}
