// Ablation A7 — road-adapted vs misaligned grids on messy street networks.
//
// The road-adapted partition's whole point is following real streets. The
// regular Manhattan map is the friendliest possible case; this bench repeats
// the comparison on irregular maps (jittered normal-road lines, 15% of
// normal edges missing) where the partition must reject arteries and promote
// normal roads, while RLSMP's lat/long cells are indifferent to both.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_irregular_map", 3);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::SweepRow> rows;
  for (bool irregular : {false, true}) {
    ScenarioConfig cfg = paper_scenario(500, 9900);
    cfg.map.irregular = irregular;
    rows.push_back({irregular ? "irregular map" : "regular map", cfg});
  }

  bench::SweepDriver driver(opts);
  driver.comparison("Ablation A7: map regularity (success rate)", "success",
                    rows,
                    [](const ReplicaSet& s) { return s.mean_success_rate(); });
  driver.comparison("Ablation A7: map regularity (mean delay ms)", "delay ms",
                    rows, [](const ReplicaSet& s) {
                      return s.mean_query_latency_ms();
                    });
  return driver.finish() ? 0 : 1;
}
