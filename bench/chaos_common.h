// Shared scaffolding for the chaos benches: run one fault plan with and
// without failover and print the robustness metrics (availability among
// fault-window queries, time-to-recovery, stranded queries, retry/failover
// counts). The no_failover variant is the control the acceptance gate
// compares against: graceful degradation must not lose to doing nothing.
//
// Chaos benches honor --fault-plan (replaces the bench's inline plan with a
// file) and --fault-seed like every other bench flag.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

namespace hlsrg::bench {

// Baseline chaos scenario: a 4 km map makes the L3 plane a 2x2 wired mesh,
// so sibling L3 RSUs exist for crash failover (the paper's 2 km map has a
// single L3 RSU — nothing to fail over to). Retries are sized to outlast
// the ~30 s fault windows: 4 attempts at 5 s * 2^(k-1) spans ~75 s.
inline ScenarioConfig chaos_scenario(std::uint64_t seed) {
  ScenarioConfig cfg = paper_scenario(/*vehicles=*/400, seed);
  cfg.map.size_m = 4000.0;
  cfg.hlsrg.max_attempts = 4;
  cfg.hlsrg.retry_backoff_base = 2.0;
  return cfg;
}

inline void run_chaos(SweepDriver& driver, const std::string& title,
                      const ScenarioConfig& base) {
  driver.begin_section(title, "availability");
  std::printf("== %s ==\n   (%d replicas per variant)\n", title.c_str(),
              driver.replicas());
  TextTable table;
  table.add_row({"variant", "availability", "success", "recovery ms",
                 "stranded", "retries", "failovers"});
  for (const bool failover : {true, false}) {
    ScenarioConfig cfg = base;
    cfg.hlsrg.enable_failover = failover;
    const ReplicaSet s = driver.run(failover ? "failover" : "no_failover",
                                    cfg, Protocol::kHlsrg);
    const double n = static_cast<double>(s.replicas.size());
    table.add_row({
        failover ? "failover" : "no_failover",
        fmt_percent(static_cast<double>(s.merged.fault_queries_ok),
                    static_cast<double>(s.merged.fault_queries_issued)),
        fmt_percent(static_cast<double>(s.merged.queries_succeeded),
                    static_cast<double>(s.merged.queries_issued)),
        fmt_double(s.merged.recovery_ms(), 1),
        fmt_double(static_cast<double>(s.merged.queries_stranded) / n, 2),
        fmt_double(static_cast<double>(s.merged.query_retries) / n, 1),
        fmt_double(static_cast<double>(s.merged.query_failovers) / n, 1),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
}

}  // namespace hlsrg::bench
