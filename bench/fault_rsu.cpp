// Chaos bench — RSU crash/reboot.
//
// The home L3 RSU of region (0,0) crashes mid-run and never reboots, and
// one of its child L2 RSUs follows shortly after — an outage longer than
// the whole retry budget, so waiting it out is not an option. With
// failover, L2 RSUs that lose their wired uplink escalate requests over
// the radio to a sibling L3 (whose gossip still covers the dead region),
// and requesters rotate their direct-to-L3 target on later attempts; the
// control variant just retries into the dead region until attempts run out.
#include "chaos_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "fault_rsu", 4, /*inline_fault_plan=*/true);
  if (opts.parse_failed) return opts.exit_code;

  ScenarioConfig base = bench::chaos_scenario(7100);
  FaultWindow l3;
  l3.kind = FaultKind::kRsuCrash;
  l3.begin = SimTime::from_sec(55.0);
  l3.end = SimTime{};  // open-ended: dead for the rest of the run
  l3.level = 3;
  l3.col = 0;
  l3.row = 0;
  base.fault_plan.windows.push_back(l3);
  FaultWindow l2;
  l2.kind = FaultKind::kRsuCrash;
  l2.begin = SimTime::from_sec(60.0);
  l2.end = SimTime{};  // open-ended
  l2.level = 2;
  l2.col = 0;
  l2.row = 0;
  base.fault_plan.windows.push_back(l2);

  bench::SweepDriver driver(opts);
  bench::run_chaos(driver, "Chaos: L3+L2 RSU crash during the query window",
                   base);
  return driver.finish() ? 0 : 1;
}
