// Figure 3.2 — location update overhead vs map size.
//
// Paper setup: maps of 500 m / 1000 m / 2000 m with 31 / 125 / 500 vehicles
// (density held constant), counting location update packets. Paper result:
// HLSRG produces ~50% fewer update packets than RLSMP, because ~90% of
// traffic rides the selected arteries and is suppressed while driving
// straight.
//
// The run is longer than the query benches so the one-off ignition
// announcements (sent by both protocols alike) do not dominate the counts.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "fig32_update_overhead", 3);
  if (opts.parse_failed) return opts.exit_code;

  struct Point {
    double size;
    int vehicles;
  };
  const Point points[] = {{500, 31}, {1000, 125}, {2000, 500}};

  std::vector<bench::SweepRow> rows;
  for (const Point& p : points) {
    ScenarioConfig cfg = paper_scenario(p.vehicles, 1000);
    cfg.map.size_m = p.size;
    // Measure update traffic over a longer horizon (~5 min simulated).
    cfg.grace = SimTime::from_sec(210.0);
    rows.push_back({std::to_string(static_cast<int>(p.size)) + "m/" +
                        std::to_string(p.vehicles) + "veh",
                    cfg});
  }

  bench::SweepDriver driver(opts);
  driver.comparison(
      "Fig 3.2: location update overhead vs map size", "update packets", rows,
      [](const ReplicaSet& s) { return s.mean_update_overhead(); });
  return driver.finish() ? 0 : 1;
}
