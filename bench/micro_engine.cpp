// Engine throughput bench — the perf-gate fixture.
//
// Runs the three protocols on small paper scenarios and reports host
// throughput (events/sec, broadcasts/sec) and peak RSS per measurement via
// the standard BENCH_micro_engine.json report. scripts/bench_compare.py
// gates these engine fields against bench_baseline/ in CI (perf-smoke);
// --audit-determinism turns the same run into a hard within-binary
// determinism check. Kernel-level microbenchmarks (event queue, RNG, index
// primitives) live in kernel_micro (google-benchmark).
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "micro_engine", 1);
  if (opts.parse_failed) return opts.exit_code;

  struct Point {
    const char* label;
    Protocol protocol;
    int vehicles;
  };
  // FLOOD is the event-count heavyweight (every update floods the map), so
  // it runs fewer vehicles for comparable wall time.
  const Point points[] = {{"hlsrg/300veh", Protocol::kHlsrg, 300},
                          {"rlsmp/300veh", Protocol::kRlsmp, 300},
                          {"flood/150veh", Protocol::kFlood, 150}};

  bench::SweepDriver driver(opts);
  driver.begin_section("Engine throughput", "events/sec");
  std::printf("== Engine throughput ==\n");
  TextTable table;
  table.add_row({"point", "events", "events/sec", "bcast/sec", "peak RSS MB"});
  for (const Point& p : points) {
    const ScenarioConfig cfg = paper_scenario(p.vehicles, 7100);
    const ReplicaSet set = driver.run(p.label, cfg, p.protocol);
    const EngineStats& e = set.engine_total;
    table.add_row({p.label, std::to_string(e.events_processed),
                   fmt_double(e.events_per_sec(), 0),
                   fmt_double(e.broadcasts_per_sec(), 0),
                   fmt_double(static_cast<double>(e.peak_rss_bytes) / 1e6, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
  return driver.finish() ? 0 : 1;
}
