// Ablation A3 — L1 grid size vs the radio range (DESIGN.md).
//
// The paper fixes grids at 500 m = one communication range. Sweeping the
// partition target shows the trade-off: small grids mean more boundaries
// (more class-2 updates) and centers that cover their grid easily; large
// grids mean fewer updates but region geocasts and center collection start
// missing vehicles.
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_grid_size", 3);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::Variant> variants;
  for (double target : {250.0, 500.0, 1000.0}) {
    ScenarioConfig cfg = paper_scenario(500, 7000);
    cfg.partition.target_size = target;
    variants.push_back(
        {"L1 grid ~" + std::to_string(static_cast<int>(target)) + " m", cfg});
  }

  bench::SweepDriver driver(opts);
  bench::run_variants(driver, "Ablation A3: road-adapted grid size", variants);
  return driver.finish() ? 0 : 1;
}
