// Extension bench — scaling past the paper's 2 km map.
//
// On a 2 km map the whole world is one L3 region and the paper's L3-to-L3
// wired forwarding never fires. Doubling the map to 4 km (4 L3 regions,
// constant vehicle density) exercises the full hierarchy: cross-region
// queries must resolve through L3 gossip and the compass mesh. RLSMP scales
// by spiralling across more clusters.
//
// HLSRG_SCALE_SIZES limits the sweep to a comma-separated subset of the map
// sizes in metres (e.g. HLSRG_SCALE_SIZES=2000 for the CI perf-smoke run).
// The deep memory-scale rows (8 km / 16 km, HLSRG only) run ONLY when their
// size is named in the list — they dominate runtime, so the default sweep
// skips them (HLSRG_SCALE_SIZES=16000 is the CI memory smoke).
#include "common.h"

#include <cstring>

namespace {

// True when `size` appears in the comma-separated HLSRG_SCALE_SIZES list
// (or the variable is unset/empty, which keeps the full sweep).
bool size_selected(double size) {
  const char* env = std::getenv("HLSRG_SCALE_SIZES");
  if (env == nullptr || *env == '\0') return true;
  const std::string want = std::to_string(static_cast<int>(size));
  const char* p = env;
  while (*p != '\0') {
    const char* comma = std::strchr(p, ',');
    const std::size_t len = comma != nullptr
                                ? static_cast<std::size_t>(comma - p)
                                : std::strlen(p);
    if (want.compare(0, std::string::npos, p, len) == 0) return true;
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return false;
}

// Deep rows are opt-in: an unset/empty list keeps them OFF (the opposite of
// size_selected's default), so `for b in build/bench/*` stays in the low
// minutes.
bool deep_selected(double size) {
  const char* env = std::getenv("HLSRG_SCALE_SIZES");
  if (env == nullptr || *env == '\0') return false;
  return size_selected(size);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "scale_map", 2);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::SweepRow> rows;
  for (double size : {2000.0, 3000.0, 4000.0}) {
    if (!size_selected(size)) continue;
    // Constant density: 500 vehicles on 2 km ^ 2.
    const int vehicles = static_cast<int>(500.0 * (size * size) / (2000.0 * 2000.0));
    ScenarioConfig cfg = paper_scenario(vehicles, 9950);
    cfg.map.size_m = size;
    rows.push_back({std::to_string(static_cast<int>(size)) + "m/" +
                        std::to_string(vehicles) + "veh",
                    cfg});
  }

  bench::SweepDriver driver(opts);
  // A deep-only HLSRG_SCALE_SIZES selection (e.g. "16000") leaves the
  // comparison rows empty; comparison() must not run on an empty sweep.
  if (!rows.empty()) {
    driver.comparison("Extension: map scaling (success rate)", "success",
                      rows, [](const ReplicaSet& s) {
                        return s.mean_success_rate();
                      });
    driver.comparison("Extension: map scaling (mean delay ms)", "delay ms",
                      rows, [](const ReplicaSet& s) {
                        return s.mean_query_latency_ms();
                      });
    // Region observatory: does a bigger map spread delivery load evenly over
    // the L3 regions, or concentrate it (coefficient of variation of the
    // per-region delivered packets; 0 = perfectly uniform)?
    driver.comparison("Extension: map scaling (region load imbalance)",
                      "load cv", rows, [](const ReplicaSet& s) {
                        return s.regions.load_imbalance().cv;
                      });
  }

  // Deep memory-scale rows: HLSRG only (RLSMP's spiral search is quadratic
  // in cluster count and would dominate the sweep), six-digit vehicle
  // counts, short horizon — the figure of merit is protocol-state bytes per
  // vehicle and process peak RSS, not query statistics.
  std::vector<bench::SweepRow> deep;
  for (double size : {8000.0, 16000.0}) {
    if (!deep_selected(size)) continue;
    // Constant density chosen so 16 km carries 100k vehicles.
    const int vehicles =
        static_cast<int>(100000.0 * (size * size) / (16000.0 * 16000.0));
    ScenarioConfig cfg = paper_scenario(vehicles, 9950);
    cfg.map.size_m = size;
    // Short horizon: tables reach steady state after one push period; the
    // remaining sim time only scales wall clock, not footprint.
    cfg.warmup = SimTime::from_sec(20.0);
    cfg.query_window = SimTime::from_sec(10.0);
    cfg.grace = SimTime::from_sec(20.0);
    cfg.source_fraction = 0.01;
    deep.push_back({std::to_string(static_cast<int>(size)) + "m/" +
                        std::to_string(vehicles) + "veh",
                    cfg});
  }
  if (!deep.empty()) {
    driver.begin_section("Extension: memory scale (HLSRG)", "bytes/veh");
    std::printf("== Extension: memory scale (HLSRG) ==\n");
    TextTable table;
    table.add_row(
        {"point", "bytes/veh", "tables MB", "peak RSS MB", "success"});
    for (const bench::SweepRow& row : deep) {
      const ReplicaSet s = driver.run(row.label, row.config, Protocol::kHlsrg);
      const double veh = static_cast<double>(row.config.vehicles);
      table.add_row(
          {row.label,
           fmt_double(static_cast<double>(s.engine_total.table_bytes) / veh, 1),
           fmt_double(static_cast<double>(s.engine_total.table_bytes) / 1e6, 2),
           fmt_double(static_cast<double>(s.peak_rss_bytes) / 1e6, 1),
           fmt_double(s.mean_success_rate(), 3)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
  }
  return driver.finish() ? 0 : 1;
}
