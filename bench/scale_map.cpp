// Extension bench — scaling past the paper's 2 km map.
//
// On a 2 km map the whole world is one L3 region and the paper's L3-to-L3
// wired forwarding never fires. Doubling the map to 4 km (4 L3 regions,
// constant vehicle density) exercises the full hierarchy: cross-region
// queries must resolve through L3 gossip and the compass mesh. RLSMP scales
// by spiralling across more clusters.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "scale_map", 2);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::SweepRow> rows;
  for (double size : {2000.0, 3000.0, 4000.0}) {
    // Constant density: 500 vehicles on 2 km ^ 2.
    const int vehicles = static_cast<int>(500.0 * (size * size) / (2000.0 * 2000.0));
    ScenarioConfig cfg = paper_scenario(vehicles, 9950);
    cfg.map.size_m = size;
    rows.push_back({std::to_string(static_cast<int>(size)) + "m/" +
                        std::to_string(vehicles) + "veh",
                    cfg});
  }

  bench::SweepDriver driver(opts);
  driver.comparison("Extension: map scaling (success rate)", "success", rows,
                    [](const ReplicaSet& s) { return s.mean_success_rate(); });
  driver.comparison("Extension: map scaling (mean delay ms)", "delay ms", rows,
                    [](const ReplicaSet& s) {
                      return s.mean_query_latency_ms();
                    });
  return driver.finish() ? 0 : 1;
}
