// Chaos bench — wired-plane partition.
//
// Every backhaul link crossing the west-half boundary goes down for 35 s,
// splitting the RSU mesh in two while every RSU stays alive. With failover,
// L3 RSUs push cross-partition answers to the owner L2 over the radio
// instead of the severed wire; the control variant loses every cross-half
// lookup until the partition heals.
#include "chaos_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "fault_partition", 4, /*inline_fault_plan=*/true);
  if (opts.parse_failed) return opts.exit_code;

  ScenarioConfig base = bench::chaos_scenario(7200);
  FaultWindow w;
  w.kind = FaultKind::kPartition;
  w.begin = SimTime::from_sec(50.0);
  w.end = SimTime::from_sec(85.0);
  w.has_box = true;
  w.box = Aabb{{0.0, 0.0}, {2000.0, 4000.0}};  // west half of the 4 km map
  base.fault_plan.windows.push_back(w);

  bench::SweepDriver driver(opts);
  bench::run_chaos(driver, "Chaos: wired partition along the map's midline",
                   base);
  return driver.finish() ? 0 : 1;
}
