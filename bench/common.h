// Shared scaffolding for the figure benches.
//
// Every bench sweeps an x-axis (map size, vehicle count, or a config knob),
// runs protocols over the same seeds, prints the series the paper plots as
// an aligned table plus CSV, and records every measurement into a
// BENCH_<name>.json report (schema in docs/PROTOCOL.md) for the regression
// pipeline (scripts/bench_compare.py).
//
// All bench binaries accept the uniform flag set parsed by BenchOptions:
//   --replicas N   statistical effort per point (HLSRG_BENCH_REPLICAS env
//                  works too; the per-bench defaults keep a full
//                  `for b in build/bench/*` pass in the low minutes)
//   --seed S       override every sweep point's base seed
//   --threads T    replica-runner thread count (0 = auto)
//   --out FILE     JSON report path (default BENCH_<name>.json in the cwd)
//   --audit-determinism
//                  re-run every measurement's replica set single-threaded
//                  and fail (exit 2) unless the per-replica state digests
//                  match the multi-threaded run bit for bit
//   --trace FILE   capture replica 0 of the first measurement into a
//                  Chrome-trace JSON (load in Perfetto / chrome://tracing);
//                  includes wall-clock engine phases of that measurement and,
//                  under --obs-out, the pid-3 phase-profile flame track
//   --obs-out FILE write the first measurement's region observatory document
//                  (per-L3-region telemetry + traffic matrix + phase
//                  profile; schema hlsrg-obs/v1) and enable the wall-clock
//                  profiler for that measurement — digests are unaffected
//                  (render with scripts/obs_dashboard.py)
//   --fault-plan FILE
//                  run every measurement under this fault plan (JSON,
//                  fault/fault_plan.h); replaces any plan the bench builds
//                  inline
//   --fault-seed S pin the fault RNG stream (0 = derive from replica seed)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/digest.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "report/bench_report.h"
#include "trace/chrome_trace.h"
#include "trace/trace.h"
#include "util/args.h"
#include "util/format.h"

namespace hlsrg::bench {

struct BenchOptions {
  std::string name;       // bench name; also names the default JSON output
  int replicas = 1;
  int threads = 0;
  std::uint64_t seed = 0;  // 0 = keep each sweep point's built-in seed
  std::string out;         // JSON report path
  std::string trace;       // Chrome-trace JSON path ("" = no trace)
  std::string obs_out;     // region-observatory JSON path ("" = off)
  std::string fault_plan;  // fault-plan JSON path ("" = bench's own plan)
  std::uint64_t fault_seed = 0;  // nonzero pins the fault RNG stream
  bool audit_determinism = false;  // cross-check digests vs 1-thread rerun
  bool parse_failed = false;
  int exit_code = 0;
};

// Parses the uniform bench flag set. On --help or a parse error, the caller
// should exit with `exit_code` (parse_failed is set). Benches that build
// their own fault plan inline (the chaos benches) pass
// `inline_fault_plan = true`; everywhere else --fault-seed without
// --fault-plan is a fail-fast error, because no injector would be built and
// the pinned stream would be silently ignored.
inline BenchOptions parse_options(int argc, char** argv, const char* name,
                                  int default_replicas,
                                  bool inline_fault_plan = false) {
  BenchOptions opts;
  opts.name = name;
  opts.replicas = default_replicas;
  if (const char* env = std::getenv("HLSRG_BENCH_REPLICAS")) {
    opts.replicas = std::max(1, std::atoi(env));
  }
  opts.out = std::string("BENCH_") + name + ".json";

  ArgParser args(std::string("bench ") + name);
  args.add_int("--replicas", "N", "replicas per sweep point", &opts.replicas);
  args.add_int("--threads", "T", "replica threads (0 = auto)", &opts.threads);
  std::uint64_t seed = 0;
  args.add_uint64("--seed", "S", "override the base seed of every point",
                  &seed);
  args.add_string("--out", "FILE", "JSON report path", &opts.out);
  args.add_string("--trace", "FILE",
                  "Chrome-trace JSON of the first measurement's replica 0",
                  &opts.trace);
  args.add_string("--obs-out", "FILE",
                  "region observatory JSON of the first measurement "
                  "(implies profiling it)",
                  &opts.obs_out);
  args.add_flag("--audit-determinism",
                "verify state digests against a single-threaded rerun",
                &opts.audit_determinism);
  args.add_string("--fault-plan", "FILE",
                  "fault-plan JSON applied to every measurement",
                  &opts.fault_plan);
  args.add_uint64("--fault-seed", "S", "pin the fault RNG stream",
                  &opts.fault_seed);
  if (!args.parse(argc, argv)) {
    opts.parse_failed = true;
    opts.exit_code = args.exit_code();
    return opts;
  }
  if (opts.fault_seed != 0 && opts.fault_plan.empty() && !inline_fault_plan) {
    std::fprintf(stderr,
                 "--fault-seed has no effect without --fault-plan\n");
    opts.parse_failed = true;
    opts.exit_code = 1;
    return opts;
  }
  opts.seed = seed;
  opts.replicas = std::max(1, opts.replicas);
  opts.threads = std::max(0, opts.threads);
  return opts;
}

struct SweepRow {
  std::string label;
  ScenarioConfig config;
};

// Runs every bench measurement, prints the paper-style tables, and owns the
// JSON report. Construct once per binary; finish() (or the destructor)
// writes the report.
class SweepDriver {
 public:
  explicit SweepDriver(const BenchOptions& opts)
      : opts_(opts), report_(opts.name, opts.replicas) {}

  SweepDriver(const SweepDriver&) = delete;
  SweepDriver& operator=(const SweepDriver&) = delete;
  ~SweepDriver() { finish(); }

  [[nodiscard]] const BenchOptions& options() const { return opts_; }
  [[nodiscard]] int replicas() const { return opts_.replicas; }

  // Runs one (config, protocol) measurement under the driver's replica /
  // thread / seed settings and records it into the report. `label` is the
  // sweep-point label within the current section.
  ReplicaSet run(const std::string& label, const ScenarioConfig& cfg,
                 Protocol protocol) {
    ScenarioConfig effective = cfg;
    if (opts_.seed != 0) effective.seed = opts_.seed;
    if (!opts_.fault_plan.empty()) {
      // External plan replaces whatever the bench built inline; the World
      // loads the file because the inline plan is now empty.
      effective.fault_plan = FaultPlan{};
      effective.fault_plan_file = opts_.fault_plan;
    }
    if (opts_.fault_seed != 0) effective.fault_seed = opts_.fault_seed;
    // --trace / --obs-out: capture the very first measurement only; later
    // measurements run untraced and unprofiled.
    TraceLog* trace = nullptr;
    if (!opts_.trace.empty() && !trace_captured_) {
      trace = &trace_log_;
      trace_captured_ = true;
    }
    const bool capture_obs = !opts_.obs_out.empty() && !obs_captured_;
    if (capture_obs) {
      // Profiling is digest-neutral (counters/timers only), so flipping it
      // on for this measurement cannot change any reported metric.
      effective.profile = true;
      obs_captured_ = true;
    }
    const ReplicaSet set =
        run_replicas(effective, protocol, opts_.replicas,
                     static_cast<std::size_t>(opts_.threads), trace);
    if (trace != nullptr) {
      for (const EnginePhase& p : set.phases) {
        wall_spans_.push_back(
            WallSpan{p.name, p.replica, p.begin_sec, p.end_sec});
      }
    }
    if (capture_obs) {
      obs_regions_ = set.regions;
      obs_profile_ = set.profile;
    }
    if (opts_.audit_determinism) {
      check_determinism(label, effective, protocol, set);
    }
    report_.add_result(label, protocol_name(protocol), effective, set);
    return set;
  }

  // Starts a report section; mirror of one printed table.
  void begin_section(const std::string& title, const std::string& metric) {
    report_.begin_section(title, metric);
  }

  // Comparison sweep: runs HLSRG and RLSMP on every row and prints one table
  // for the metric extractor (maps a ReplicaSet to the plotted value).
  template <typename MetricFn>
  void comparison(const std::string& title, const std::string& metric_name,
                  const std::vector<SweepRow>& rows, MetricFn metric) {
    begin_section(title, metric_name);
    std::printf("== %s ==\n", title.c_str());
    std::printf("   (%d replicas per point, seeds %llu..)\n", opts_.replicas,
                static_cast<unsigned long long>(
                    opts_.seed != 0 ? opts_.seed : rows.front().config.seed));
    TextTable table;
    table.add_row({"point", "HLSRG " + metric_name, "RLSMP " + metric_name,
                   "HLSRG/RLSMP"});
    for (const SweepRow& row : rows) {
      const ReplicaSet h = run(row.label, row.config, Protocol::kHlsrg);
      const ReplicaSet r = run(row.label, row.config, Protocol::kRlsmp);
      const double hv = metric(h);
      const double rv = metric(r);
      table.add_row({row.label, fmt_double(hv, 2), fmt_double(rv, 2),
                     rv != 0.0 ? fmt_double(hv / rv, 3) : "n/a"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
  }

  // Writes the JSON report; false when the write failed (callers should turn
  // that into a nonzero exit). Safe to call once explicitly — the destructor
  // becomes a no-op afterwards.
  bool finish() {
    if (finished_) return true;
    finished_ = true;
    bool ok = true;
    if (trace_captured_ && !opts_.trace.empty()) {
      std::string error;
      if (!write_chrome_trace(trace_log_, wall_spans_, opts_.trace, &error,
                              obs_profile_.empty() ? nullptr : &obs_profile_)) {
        std::fprintf(stderr, "bench trace: %s\n", error.c_str());
        ok = false;
      } else {
        std::printf("chrome trace: %s\n", opts_.trace.c_str());
      }
    }
    if (obs_captured_ && !opts_.obs_out.empty()) {
      std::string error;
      if (!write_json_file(
              obs_document(obs_regions_,
                           obs_profile_.empty() ? nullptr : &obs_profile_),
              opts_.obs_out, &error)) {
        std::fprintf(stderr, "bench obs: %s\n", error.c_str());
        ok = false;
      } else {
        std::printf("obs document: %s\n", opts_.obs_out.c_str());
      }
    }
    if (opts_.out.empty()) return ok;
    std::string error;
    if (!report_.write(opts_.out, &error)) {
      std::fprintf(stderr, "bench report: %s\n", error.c_str());
      return false;
    }
    std::printf("json report: %s\n", opts_.out.c_str());
    return ok;
  }

 private:
  // --audit-determinism: re-runs the replica set on one thread and compares
  // per-replica end-state digests. Replicas share no mutable state, so any
  // mismatch means threading leaked into simulation results (shared RNG,
  // global state, a race); that invalidates every figure, so the process
  // exits immediately with status 2.
  void check_determinism(const std::string& label, const ScenarioConfig& cfg,
                         Protocol protocol, const ReplicaSet& set) {
    const ReplicaSet baseline = run_replicas(cfg, protocol, opts_.replicas, 1);
    const std::size_t bad =
        first_digest_mismatch(baseline.digests, set.digests);
    if (bad == static_cast<std::size_t>(-1)) return;
    const std::uint64_t got =
        bad < set.digests.size() ? set.digests[bad] : 0;
    std::fprintf(stderr,
                 "determinism audit failed: %s %s replica %zu (seed %llu): "
                 "1-thread digest %016llx, %d-thread digest %016llx\n",
                 label.c_str(), protocol_name(protocol), bad,
                 static_cast<unsigned long long>(cfg.seed + bad),
                 static_cast<unsigned long long>(baseline.digests[bad]),
                 opts_.threads,
                 static_cast<unsigned long long>(got));
    std::exit(2);
  }

  BenchOptions opts_;
  BenchReport report_;
  TraceLog trace_log_;
  std::vector<WallSpan> wall_spans_;
  RegionTelemetry obs_regions_;
  PhaseProfiler obs_profile_;
  bool trace_captured_ = false;
  bool obs_captured_ = false;
  bool finished_ = false;
};

}  // namespace hlsrg::bench
