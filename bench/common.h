// Shared scaffolding for the figure benches.
//
// Every figure bench sweeps an x-axis (map size or vehicle count), runs both
// protocols over the same seeds, and prints the series the paper plots as an
// aligned table plus CSV. `--replicas N` (or HLSRG_BENCH_REPLICAS) adjusts
// statistical effort; the defaults keep a full `for b in build/bench/*` pass
// in the low minutes on one core.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "harness/scenario.h"
#include "util/format.h"

namespace hlsrg::bench {

inline int replica_count(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--replicas") == 0) {
      return std::max(1, std::atoi(argv[i + 1]));
    }
  }
  if (const char* env = std::getenv("HLSRG_BENCH_REPLICAS")) {
    return std::max(1, std::atoi(env));
  }
  return fallback;
}

struct SweepRow {
  std::string label;
  ScenarioConfig config;
};

// Runs both protocols on every row and prints one table per metric
// extractor. `metric` maps a ReplicaSet to the plotted value.
template <typename MetricFn>
void run_and_print(const std::string& title, const std::string& metric_name,
                   const std::vector<SweepRow>& rows, int replicas,
                   MetricFn metric) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("   (%d replicas per point, seeds %llu..)\n", replicas,
              static_cast<unsigned long long>(rows.front().config.seed));
  TextTable table;
  table.add_row({"point", "HLSRG " + metric_name, "RLSMP " + metric_name,
                 "HLSRG/RLSMP"});
  for (const SweepRow& row : rows) {
    const Comparison c = run_comparison(row.config, replicas);
    const double h = metric(c.hlsrg);
    const double r = metric(c.rlsmp);
    table.add_row({row.label, fmt_double(h, 2), fmt_double(r, 2),
                   r != 0.0 ? fmt_double(h / r, 3) : "n/a"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
}

}  // namespace hlsrg::bench
