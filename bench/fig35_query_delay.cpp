// Figure 3.5 — average time cost per query vs number of vehicles.
//
// Paper setup: "the result is obtained from the average of 10 simulations".
// Paper result: HLSRG answers queries faster — the wired RSU plane forwards
// long-distance lookups directly, while RLSMP's unresolved queries wait at
// LSCs and spiral across clusters over multi-hop radio paths.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const int replicas = bench::replica_count(argc, argv, 10);

  std::vector<bench::SweepRow> rows;
  for (int vehicles : {300, 400, 500, 600}) {
    ScenarioConfig cfg = paper_scenario(vehicles, 4000);
    rows.push_back({std::to_string(vehicles) + " vehicles", cfg});
  }

  bench::run_and_print(
      "Fig 3.5: mean query delay (ms) vs vehicles", "mean delay ms", rows,
      replicas,
      [](const ReplicaSet& s) { return s.mean_query_latency_ms(); });
  return 0;
}
