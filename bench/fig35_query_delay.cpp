// Figure 3.5 — average time cost per query vs number of vehicles.
//
// Paper setup: "the result is obtained from the average of 10 simulations".
// Paper result: HLSRG answers queries faster — the wired RSU plane forwards
// long-distance lookups directly, while RLSMP's unresolved queries wait at
// LSCs and spiral across clusters over multi-hop radio paths.
#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "fig35_query_delay", 10);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::SweepRow> rows;
  for (int vehicles : {300, 400, 500, 600}) {
    ScenarioConfig cfg = paper_scenario(vehicles, 4000);
    rows.push_back({std::to_string(vehicles) + " vehicles", cfg});
  }

  bench::SweepDriver driver(opts);
  driver.comparison(
      "Fig 3.5: mean query delay (ms) vs vehicles", "mean delay ms", rows,
      [](const ReplicaSet& s) { return s.mean_query_latency_ms(); });
  return driver.finish() ? 0 : 1;
}
