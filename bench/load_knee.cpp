// Load-knee bench: drives the HLSRG RSU backbone with an open-loop Poisson
// arrival stream swept across offered rates and locates the knee — the
// highest rate the deployment sustains inside a p99 latency budget at an
// acceptable served fraction (service/knee.h). Two variants run per rate:
//
//   naive  open-loop arrivals only; no batching, no caching, no shedding —
//          the pre-tier serving path under pressure
//   tier   the full service tier: admission control (load shedding),
//          co-destined query batching at L2/L3 RSUs, and the
//          hot-destination cache fed by the hotspot skew
//
// With --gate the bench enforces the acceptance bar: the tier variant must
// hold >= 1.5x the naive variant's sustained goodput at the p99 knee
// (exit 3 otherwise). CI smoke keeps defaults small; override with
//   HLSRG_LOAD_RATES=4,8,16,32   offered rates swept (arrivals/sec)
//   HLSRG_LOAD_VEHICLES=300      fleet size
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "service/knee.h"

namespace {

using namespace hlsrg;
using namespace hlsrg::bench;

std::vector<double> sweep_rates() {
  std::vector<double> rates;
  if (const char* env = std::getenv("HLSRG_LOAD_RATES")) {
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const double r = std::strtod(p, &end);
      if (end == p) break;
      if (r > 0.0) rates.push_back(r);
      p = (*end == ',') ? end + 1 : end;
    }
  }
  if (rates.empty()) rates = {4.0, 12.0, 36.0, 108.0};
  return rates;
}

ScenarioConfig base_scenario(int vehicles) {
  ScenarioConfig cfg = paper_scenario(vehicles, 41);
  cfg.map.size_m = 1200.0;
  // The open-loop generator is the sole load source: zero closed-loop
  // sources keeps the sweep purely rate-driven.
  cfg.workload = ScenarioConfig::WorkloadKind::kOneShot;
  cfg.source_fraction = 0.0;
  cfg.hotspot_targets = 5;
  cfg.warmup = SimTime::from_sec(40.0);
  cfg.query_window = SimTime::from_sec(25.0);
  cfg.grace = SimTime::from_sec(40.0);
  cfg.service.enabled = true;
  cfg.service.hotspot_fraction = 0.8;
  // Per-lookup serving cost at each RSU — the finite resource the sweep
  // saturates. ~40 lookups/sec per RSU; the upstream L3 is the bottleneck.
  cfg.service.rsu_lookup_time = SimTime::from_ms(40.0);
  return cfg;
}

void apply_tier(ScenarioConfig* cfg) {
  cfg->service.max_outstanding = 96;
  cfg->service.batching = true;
  cfg->service.batch_window = SimTime::from_ms(40.0);
  cfg->service.max_batch = 8;
  cfg->service.caching = true;
  cfg->service.cache_ttl = SimTime::from_sec(15.0);
  cfg->service.cache_capacity = 512;
}

LoadPoint to_point(double rate, const ReplicaSet& set, double window_sec,
                   int replicas) {
  LoadPoint p;
  p.offered_rate = rate;
  const double n = static_cast<double>(replicas);
  p.goodput =
      static_cast<double>(set.merged.queries_succeeded) / n / window_sec;
  p.p99_ms = set.merged.query_latency.p99_ms();
  p.served_rate = set.merged.served_rate();
  p.availability = set.merged.success_rate();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  // Bench-specific flags are peeled off before the uniform bench set.
  bool gate = false;
  // Above the single-retry ACK-timeout tail (~5 s): only genuine queueing
  // blowup at the RSUs, not one lost radio hop, should trip the budget.
  double p99_budget_ms = 6000.0;
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
      continue;
    }
    if (std::strcmp(argv[i], "--p99-budget") == 0 && i + 1 < argc) {
      p99_budget_ms = std::atof(argv[++i]);
      continue;
    }
    rest.push_back(argv[i]);
  }
  BenchOptions opts = parse_options(static_cast<int>(rest.size()),
                                    rest.data(), "load_knee", 1);
  if (opts.parse_failed) {
    if (opts.exit_code == 0) {
      std::printf("  --gate             enforce tier >= 1.5x naive sustained "
                  "goodput at the knee\n"
                  "  --p99-budget MS    knee admission budget "
                  "(default %.0f ms)\n", p99_budget_ms);
    }
    return opts.exit_code;
  }

  int vehicles = 180;
  if (const char* env = std::getenv("HLSRG_LOAD_VEHICLES")) {
    vehicles = std::max(10, std::atoi(env));
  }
  const std::vector<double> rates = sweep_rates();

  SweepDriver driver(opts);
  driver.begin_section("open-loop load sweep", "goodput_per_sec");
  std::printf("== load knee: naive vs service tier ==\n");
  std::printf("   (%d vehicles, %d replica%s, p99 budget %.0f ms)\n", vehicles,
              driver.replicas(), driver.replicas() == 1 ? "" : "s",
              p99_budget_ms);

  std::vector<LoadPoint> naive_points;
  std::vector<LoadPoint> tier_points;
  TextTable table;
  table.add_row({"rate/s", "naive good/s", "naive p99 ms", "naive served",
                 "tier good/s", "tier p99 ms", "tier served", "tier shed",
                 "naive imb cv", "tier imb cv"});
  for (const double rate : rates) {
    ScenarioConfig naive_cfg = base_scenario(vehicles);
    naive_cfg.service.open_loop_rate_per_sec = rate;
    ScenarioConfig tier_cfg = naive_cfg;
    apply_tier(&tier_cfg);

    const std::string label = fmt_double(rate, 1) + "/s";
    const ReplicaSet naive =
        driver.run("naive@" + label, naive_cfg, Protocol::kHlsrg);
    const ReplicaSet tier =
        driver.run("tier@" + label, tier_cfg, Protocol::kHlsrg);
    const double window_sec = naive_cfg.query_window.sec();
    const LoadPoint np = to_point(rate, naive, window_sec, driver.replicas());
    const LoadPoint tp = to_point(rate, tier, window_sec, driver.replicas());
    naive_points.push_back(np);
    tier_points.push_back(tp);
    table.add_row({label, fmt_double(np.goodput, 2), fmt_double(np.p99_ms, 1),
                   fmt_double(np.served_rate, 3), fmt_double(tp.goodput, 2),
                   fmt_double(tp.p99_ms, 1), fmt_double(tp.served_rate, 3),
                   std::to_string(tier.merged.queries_shed +
                                  tier.merged.retries_shed),
                   // Per-L3-region delivery-load spread (obs telemetry):
                   // does shedding/batching also flatten the hot regions?
                   fmt_double(naive.regions.load_imbalance().cv, 3),
                   fmt_double(tier.regions.load_imbalance().cv, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());

  // Knee: highest admissible offered rate; sustained goodput is the best
  // goodput among admissible points. min_served 0.5 keeps "we shed almost
  // everything" from counting as sustaining the rate.
  const KneeResult naive_knee = find_knee(naive_points, p99_budget_ms, 0.5);
  const KneeResult tier_knee = find_knee(tier_points, p99_budget_ms, 0.5);
  auto print_knee = [](const char* name, const KneeResult& k) {
    if (!k.found) {
      std::printf("%s knee: none (no admissible point)\n", name);
      return;
    }
    std::printf("%s knee: %.1f/s offered, %.2f/s sustained goodput, "
                "p99 %.1f ms\n",
                name, k.knee_rate, k.sustained_goodput, k.p99_at_knee_ms);
  };
  print_knee("naive", naive_knee);
  print_knee("tier ", tier_knee);

  if (!driver.finish()) return 1;

  if (gate) {
    if (!tier_knee.found) {
      std::fprintf(stderr, "load gate FAILED: tier has no admissible point "
                           "inside the %.0f ms p99 budget\n", p99_budget_ms);
      return 3;
    }
    const double naive_good =
        naive_knee.found ? naive_knee.sustained_goodput : 0.0;
    if (naive_good > 0.0 &&
        tier_knee.sustained_goodput < 1.5 * naive_good) {
      std::fprintf(stderr,
                   "load gate FAILED: tier sustained goodput %.2f/s < 1.5x "
                   "naive %.2f/s\n",
                   tier_knee.sustained_goodput, naive_good);
      return 3;
    }
    std::printf("load gate ok: tier %.2f/s vs naive %.2f/s (%.2fx)\n",
                tier_knee.sustained_goodput, naive_good,
                naive_good > 0.0 ? tier_knee.sustained_goodput / naive_good
                                 : 0.0);
  }
  return 0;
}
