// Chaos bench — radio degradation + GPS noise.
//
// Receivers in the east half take 50 extra percentage points of loss and
// every position recorded from there carries up to 30 m of per-axis GPS
// error, across the query window. Stresses the retry/backoff path (updates
// and request hops drop) and the geocast corridor margins (records point
// near, not at, the destination). The wired plane stays healthy, so
// failover plays a smaller role than in the crash/partition benches.
#include "chaos_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "fault_radio", 4, /*inline_fault_plan=*/true);
  if (opts.parse_failed) return opts.exit_code;

  ScenarioConfig base = bench::chaos_scenario(7300);
  FaultWindow loss;
  loss.kind = FaultKind::kRadioLoss;
  loss.begin = SimTime::from_sec(50.0);
  loss.end = SimTime::from_sec(85.0);
  loss.has_box = true;
  loss.box = Aabb{{2000.0, 0.0}, {4000.0, 4000.0}};  // east half
  loss.extra_loss = 0.5;
  base.fault_plan.windows.push_back(loss);
  FaultWindow gps;
  gps.kind = FaultKind::kGpsNoise;
  gps.begin = SimTime::from_sec(50.0);
  gps.end = SimTime::from_sec(85.0);
  gps.sigma_m = 30.0;
  base.fault_plan.windows.push_back(gps);

  bench::SweepDriver driver(opts);
  bench::run_chaos(driver, "Chaos: degraded radio half + GPS noise", base);
  return driver.finish() ? 0 : 1;
}
