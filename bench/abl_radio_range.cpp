// Ablation A6 — radio range vs the 500 m grid.
//
// The paper matches the communication range to the L1 grid edge ("it can be
// adjusted with Level 1 grids' boundary length"). Sweeping the range while
// the partition stays at 500 m shows why: shorter radios can no longer span
// a grid (centers miss updates, geocasts fragment), longer radios just burn
// contention.
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_radio_range", 3);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::Variant> variants;
  for (double range : {300.0, 400.0, 500.0, 700.0}) {
    ScenarioConfig cfg = paper_scenario(500, 9700);
    cfg.radio.range_m = range;
    variants.push_back(
        {"range " + std::to_string(static_cast<int>(range)) + " m", cfg});
  }

  bench::SweepDriver driver(opts);
  bench::run_variants(driver, "Ablation A6: radio range sweep", variants);
  return driver.finish() ? 0 : 1;
}
