// Kernel microbenchmarks for the simulation engine hot paths
// (google-benchmark): event queue, RNG, neighbor index, table operations,
// map + partition build, and a full small-world step as an end-to-end engine
// figure. The JSON-reporting engine-throughput bench that CI gates lives in
// micro_engine.cpp.
#include <benchmark/benchmark.h>

#include "grid/hierarchy.h"
#include "grid/partition.h"
#include "harness/world.h"
#include "net/neighbor_index.h"
#include "roadnet/map_builder.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "util/flat_table.h"

namespace hlsrg {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule_at(SimTime::from_us(rng.uniform_int(0, 1'000'000)),
                    [] { benchmark::DoNotOptimize(0); });
    }
    q.run_until(SimTime::from_sec(2));
    benchmark::DoNotOptimize(q.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueueCancel(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(q.schedule_at(SimTime::from_us(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
    q.run_until(SimTime::from_sec(1));
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(1);
  std::int64_t acc = 0;
  for (auto _ : state) acc += rng.uniform_int(0, 999);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniformInt);

void BM_NeighborIndexRefresh(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  NodeRegistry reg;
  Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)};
    reg.add_node(p);
  }
  NeighborIndex index(reg, 500.0);
  std::int64_t t = 0;
  for (auto _ : state) {
    index.refresh(SimTime::from_us(++t));  // force rebuild each iteration
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_NeighborIndexRefresh)->Arg(300)->Arg(700);

void BM_NeighborIndexQuery(benchmark::State& state) {
  NodeRegistry reg;
  Rng rng(3);
  for (int i = 0; i < 700; ++i) {
    const Vec2 p{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)};
    reg.add_node(p);
  }
  NeighborIndex index(reg, 500.0);
  index.refresh(SimTime::from_us(1));
  std::vector<NodeId> out;
  for (auto _ : state) {
    out.clear();
    index.query({rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)}, 500.0,
                NodeId{}, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_NeighborIndexQuery);

void BM_FlatTableLookup(benchmark::State& state) {
  FlatTable<VehicleId, int> table;
  for (std::uint32_t i = 0; i < 500; ++i) table.upsert(VehicleId{i * 3}, 1);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.find(VehicleId{static_cast<std::uint32_t>(
            rng.uniform_int(0, 1500))}));
  }
}
BENCHMARK(BM_FlatTableLookup);

void BM_MapBuild(benchmark::State& state) {
  for (auto _ : state) {
    const RoadNetwork net = build_manhattan_map({});
    benchmark::DoNotOptimize(net.segment_count());
  }
}
BENCHMARK(BM_MapBuild);

void BM_PartitionBuild(benchmark::State& state) {
  const RoadNetwork net = build_manhattan_map({});
  for (auto _ : state) {
    const Partition p = build_partition(net);
    benchmark::DoNotOptimize(p.cols());
  }
}
BENCHMARK(BM_PartitionBuild);

void BM_WorldConstruct(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig cfg = paper_scenario(300, 1);
    World world(cfg, Protocol::kHlsrg);
    benchmark::DoNotOptimize(world.planned_queries());
  }
}
BENCHMARK(BM_WorldConstruct);

void BM_WorldSimulatedSecond(benchmark::State& state) {
  // Cost of one simulated second of the full HLSRG world (mobility + radio +
  // protocol), amortized.
  ScenarioConfig cfg = paper_scenario(static_cast<int>(state.range(0)), 1);
  cfg.grace = SimTime::from_sec(100000);  // never ends on its own
  World world(cfg, Protocol::kHlsrg);
  double t = 1.0;
  for (auto _ : state) {
    world.run_until(SimTime::from_sec(t));
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldSimulatedSecond)->Arg(300)->Arg(700)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hlsrg
