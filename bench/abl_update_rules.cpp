// Ablation A1 — how much of the update reduction comes from the artery
// suppression rule itself (DESIGN.md)?
//
// Variants on identical worlds:
//   paper rules      — class-1 suppression on (the protocol as published)
//   no suppression   — everyone follows the class-2 rules
//   naive crossings  — update on every L1 grid change (the strawman the
//                      paper's introduction attributes to prior work)
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_update_rules", 3);
  if (opts.parse_failed) return opts.exit_code;

  ScenarioConfig base = paper_scenario(500, 5000);
  base.grace = SimTime::from_sec(210.0);  // longer horizon for update counts

  std::vector<bench::Variant> variants;
  variants.push_back({"paper rules", base});

  ScenarioConfig no_suppress = base;
  no_suppress.hlsrg.suppress_artery_updates = false;
  variants.push_back({"no artery suppression", no_suppress});

  ScenarioConfig naive = base;
  naive.hlsrg.naive_every_crossing = true;
  variants.push_back({"naive every-crossing", naive});

  bench::SweepDriver driver(opts);
  bench::run_variants(driver, "Ablation A1: update rule variants", variants);
  return driver.finish() ? 0 : 1;
}
