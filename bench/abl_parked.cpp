// Ablation A8 — parked vehicles as infrastructure.
//
// The paper's speed range starts at 0 km/h. Parked cars never cross grid
// boundaries (no updates) but their radios stay on, so they thicken the
// relay fabric and can hold grid-center tables indefinitely. This sweep
// shows how much free "infrastructure" parked density buys HLSRG.
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_parked", 3);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::Variant> variants;
  for (double parked : {0.0, 0.1, 0.25, 0.5}) {
    ScenarioConfig cfg = paper_scenario(500, 9800);
    cfg.mobility.parked_fraction = parked;
    variants.push_back(
        {"parked " + fmt_double(100.0 * parked, 0) + "%", cfg});
  }

  bench::SweepDriver driver(opts);
  bench::run_variants(driver, "Ablation A8: parked-vehicle fraction", variants);
  return driver.finish() ? 0 : 1;
}
