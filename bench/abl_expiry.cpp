// Ablation A4 — table expiry vs staleness (DESIGN.md).
//
// The paper fixes L1/L2 expiry at 2.2 min ("about 1000 m") and L3 at twice
// that. Shorter expiry keeps tables fresh but forgets vehicles that update
// rarely (class-1 straight drivers); longer expiry keeps everyone findable
// but directional searches start from ancient positions.
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_expiry", 3);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::Variant> variants;
  for (double minutes : {1.1, 2.2, 4.4, 8.8}) {
    ScenarioConfig cfg = paper_scenario(500, 8000);
    // Expiry only binds when tables have had time to age: query after four
    // simulated minutes so even the 4.4 min horizon is exercised.
    cfg.warmup = SimTime::from_sec(250.0);
    cfg.query_window = SimTime::from_sec(60.0);
    cfg.hlsrg.l1_expiry = SimTime::from_min(minutes);
    cfg.hlsrg.l2_expiry = SimTime::from_min(minutes);
    cfg.hlsrg.l3_expiry = SimTime::from_min(2.0 * minutes);
    variants.push_back({"expiry " + fmt_double(minutes, 1) + " min", cfg});
  }

  bench::SweepDriver driver(opts);
  bench::run_variants(driver, "Ablation A4: table expiry sweep", variants);
  return driver.finish() ? 0 : 1;
}
