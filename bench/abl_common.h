// Shared scaffolding for the ablation benches: sweep HLSRG config variants
// (not protocols) over the same scenario and print every headline metric.
// Variants record into the driver's JSON report like any other sweep point.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

namespace hlsrg::bench {

struct Variant {
  std::string label;
  ScenarioConfig config;
};

inline void run_variants(SweepDriver& driver, const std::string& title,
                         const std::vector<Variant>& variants) {
  driver.begin_section(title, "headline metrics");
  std::printf("== %s ==\n   (%d replicas per variant)\n", title.c_str(),
              driver.replicas());
  TextTable table;
  table.add_row({"variant", "updates", "query tx", "success", "delay ms",
                 "aggregation"});
  for (const Variant& v : variants) {
    const ReplicaSet s = driver.run(v.label, v.config, Protocol::kHlsrg);
    table.add_row({
        v.label,
        fmt_double(s.mean_update_overhead(), 1),
        fmt_double(s.mean_query_overhead(), 1),
        fmt_percent(static_cast<double>(s.merged.queries_succeeded),
                    static_cast<double>(s.merged.queries_issued)),
        fmt_double(s.mean_query_latency_ms(), 1),
        fmt_double(static_cast<double>(s.merged.aggregation_packets) /
                       static_cast<double>(s.replicas.size()),
                   1),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
}

}  // namespace hlsrg::bench
