// Ablation A9 — genie neighborhoods vs HELLO beaconing.
//
// Simulation studies (the paper's included) usually give GPSR perfect
// instantaneous neighbor knowledge. Real GPSR discovers neighbors from
// periodic HELLOs and routes on positions up to one interval stale. This
// sweep quantifies what the idealization is worth — in airtime and in
// success rate — at the paper's densities.
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const int replicas = bench::replica_count(argc, argv, 2);

  std::vector<bench::Variant> variants;
  {
    ScenarioConfig cfg = paper_scenario(300, 9600);
    variants.push_back({"genie neighbors", cfg});
  }
  for (double interval : {0.5, 1.0, 2.0}) {
    ScenarioConfig cfg = paper_scenario(300, 9600);
    cfg.beacons.enabled = true;
    cfg.beacons.interval_sec = interval;
    cfg.beacons.timeout_sec = 3.0 * interval;
    variants.push_back({"beacons " + fmt_double(interval, 1) + " s", cfg});
  }

  bench::run_variants("Ablation A9: neighbor discovery", variants, replicas);
  return 0;
}
