// Ablation A9 — genie neighborhoods vs HELLO beaconing.
//
// Simulation studies (the paper's included) usually give GPSR perfect
// instantaneous neighbor knowledge. Real GPSR discovers neighbors from
// periodic HELLOs and routes on positions up to one interval stale. This
// sweep quantifies what the idealization is worth — in airtime and in
// success rate — at the paper's densities.
#include "abl_common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "abl_beacons", 2);
  if (opts.parse_failed) return opts.exit_code;

  std::vector<bench::Variant> variants;
  {
    ScenarioConfig cfg = paper_scenario(300, 9600);
    variants.push_back({"genie neighbors", cfg});
  }
  for (double interval : {0.5, 1.0, 2.0}) {
    ScenarioConfig cfg = paper_scenario(300, 9600);
    cfg.beacons.enabled = true;
    cfg.beacons.interval_sec = interval;
    cfg.beacons.timeout_sec = 3.0 * interval;
    variants.push_back({"beacons " + fmt_double(interval, 1) + " s", cfg});
  }

  bench::SweepDriver driver(opts);
  bench::run_variants(driver, "Ablation A9: neighbor discovery", variants);
  return driver.finish() ? 0 : 1;
}
