// Taxonomy comparison — the paper's related-work argument, quantified.
//
// Chapter 1 sorts location services into flooding-based and rendezvous-based
// families and argues flooding "is very wasteful in terms of the networks
// total bandwidth" while lat/long rendezvous grids (RLSMP) over-update.
// This bench runs all three families on identical traffic:
//   FLOOD — proactive network-wide dissemination + expected-zone queries
//   RLSMP — uniform-cell rendezvous with spiral lookup
//   HLSRG — road-adapted hierarchical rendezvous with RSO-backed lookup
#include <cstdio>

#include "common.h"

int main(int argc, char** argv) {
  using namespace hlsrg;
  const bench::BenchOptions opts =
      bench::parse_options(argc, argv, "taxonomy_comparison", 2);
  if (opts.parse_failed) return opts.exit_code;

  ScenarioConfig cfg = paper_scenario(300, 9000);

  bench::SweepDriver driver(opts);
  const std::string title = "Taxonomy: flooding vs rendezvous families";
  driver.begin_section(title, "headline metrics");
  std::printf("== %s (%d vehicles) ==\n", title.c_str(), cfg.vehicles);
  TextTable table;
  table.add_row({"protocol", "update pkts", "update tx (airtime)", "query tx",
                 "success", "mean delay ms"});
  for (Protocol protocol :
       {Protocol::kFlood, Protocol::kRlsmp, Protocol::kHlsrg}) {
    const ReplicaSet s = driver.run(protocol_name(protocol), cfg, protocol);
    const double n = static_cast<double>(s.replicas.size());
    table.add_row({
        protocol_name(protocol),
        fmt_double(static_cast<double>(s.merged.update_packets_originated) / n, 1),
        fmt_double(static_cast<double>(s.merged.update_transmissions) / n, 1),
        fmt_double(s.mean_query_overhead(), 1),
        fmt_percent(static_cast<double>(s.merged.queries_succeeded),
                    static_cast<double>(s.merged.queries_issued)),
        fmt_double(s.mean_query_latency_ms(), 1),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("-- CSV --\n%s\n", table.render_csv().c_str());
  return driver.finish() ? 0 : 1;
}
