#!/usr/bin/env python3
"""Self-test for the determinism lint: every rule must fire on its violation
fixture at exactly the expected (rule, line) sites, every clean fixture must
come back with zero unsuppressed findings, and the suppression machinery
must reject malformed ALLOW annotations. Run from anywhere:

    python3 tools/lint/test_lint.py

Registered in ctest as `determinism_lint_fixtures`; CI fails if any rule
stops firing (a silently-dead rule is worse than no rule).
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import determinism_lint as dl  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))

# Exact expected findings per violation fixture: {(rule, line), ...}.
EXPECTED = {
    "violate_unordered_iteration.cpp": {
        ("unordered-iteration", 18),  # range-for over member map
        ("unordered-iteration", 24),  # range-for over member set
        ("unordered-iteration", 30),  # iterator walk
        ("unordered-iteration", 38),  # range-for over alias-typed local
    },
    "violate_pointer_key.cpp": {
        ("pointer-keyed-container", 15),  # unordered_map<Agent*, …>
        ("pointer-keyed-container", 16),  # map<const Agent*, …>
        ("pointer-keyed-container", 17),  # unordered_set<Agent*>
        ("pointer-keyed-container", 18),  # set<shared_ptr<…>>
        ("pointer-keyed-container", 19),  # unordered_map<shared_ptr<…>, …>
    },
    "violate_rng_discipline.cpp": {
        ("rng-discipline", 14),  # std::random_device
        ("rng-discipline", 19),  # std::mt19937
        ("rng-discipline", 24),  # srand()
        ("rng-discipline", 25),  # rand()
        ("rng-discipline", 29),  # direct Rng construction
        ("rng-discipline", 34),  # split(<bare integer>)
    },
    "violate_wall_clock.cpp": {
        ("wall-clock", 9),   # steady_clock
        ("wall-clock", 15),  # system_clock
        ("wall-clock", 21),  # high_resolution_clock
        ("wall-clock", 26),  # time(nullptr)
        ("wall-clock", 30),  # clock()
    },
    "violate_wall_clock_harness.cpp": {
        ("wall-clock", 17),  # steady_clock::now() start stamp
        ("wall-clock", 20),  # steady_clock::now() end stamp
    },
    "violate_send_kind.cpp": {
        ("send-kind", 19),  # kind-less broadcast_each overload
        ("send-kind", 23),  # kind-less unicast_frame overload
        ("send-kind", 26),  # make_packet without a PacketKind first arg
        ("send-kind", 27),  # bare `Packet p;` never assigning .kind
        ("send-kind", 33),  # broadcast_each call without a kind
        ("send-kind", 34),  # unicast_frame call without a kind
    },
}

CLEAN = (
    "clean_unordered_iteration.cpp",
    "clean_pointer_key.cpp",
    "clean_rng_discipline.cpp",
    "clean_wall_clock.cpp",
    "clean_wall_clock_obs_api.cpp",
    "clean_send_kind.cpp",
)

# Suppressions the clean fixtures must carry (proves ALLOW parsing end to
# end, including reasons that wrap across comment lines).
EXPECTED_SUPPRESSED = {
    ("clean_unordered_iteration.cpp", "unordered-iteration"),
    ("clean_rng_discipline.cpp", "rng-discipline"),
    ("clean_send_kind.cpp", "send-kind"),
}

failures = []


def check(cond, message):
    if not cond:
        failures.append(message)
        print(f"FAIL: {message}")
    else:
        print(f"ok:   {message}")


def lint(path, root=None):
    linter = dl.Linter(root or os.path.dirname(path),
                       force_digest_scope=True)
    linter.lint_file(os.path.basename(path) if root is None else
                     os.path.relpath(path, root))
    active = {(f.rule, f.line) for f in linter.findings if not f.suppressed}
    suppressed = [f for f in linter.findings if f.suppressed]
    return active, suppressed


def main():
    for name, expected in sorted(EXPECTED.items()):
        active, _ = lint(os.path.join(FIXTURES, name))
        check(active == expected,
              f"{name}: findings {sorted(active)} == expected "
              f"{sorted(expected)}")

    all_suppressed = set()
    for name in CLEAN:
        active, suppressed = lint(os.path.join(FIXTURES, name))
        check(active == set(), f"{name}: zero unsuppressed findings "
                               f"(got {sorted(active)})")
        for f in suppressed:
            all_suppressed.add((name, f.rule))
            check(bool(f.reason.strip()),
                  f"{name}:{f.line}: suppression carries a reason")
    check(EXPECTED_SUPPRESSED <= all_suppressed,
          f"clean fixtures exercise ALLOW for "
          f"{sorted(r for _, r in EXPECTED_SUPPRESSED)}")

    # Malformed ALLOWs are findings in their own right.
    with tempfile.TemporaryDirectory() as tmp:
        bad = os.path.join(tmp, "bad_allow.cpp")
        with open(bad, "w", encoding="utf-8") as f:
            f.write(
                "// HLSRG_LINT_ALLOW(not-a-rule): whatever\n"
                "// HLSRG_LINT_ALLOW(wall-clock):\n"
                "int x;\n")
        active, _ = lint(bad)
        check(("bad-allow", 1) in active, "unknown rule id in ALLOW flagged")
        check(("bad-allow", 2) in active, "reason-less ALLOW flagged")

    # Wall-clock allowlist is scoped by path: the obs profiler is the single
    # sanctioned site, and the formerly-allowlisted harness runner fires.
    with tempfile.TemporaryDirectory() as tmp:
        clock_read = ("#include <chrono>\n"
                      "auto t() { return std::chrono::steady_clock::now(); }"
                      "\n")
        for rel, sanctioned in (("src/obs/profiler.cpp", True),
                                ("src/harness/runner.cpp", False)):
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(clock_read)
            active, _ = lint(path, root=tmp)
            if sanctioned:
                check(active == set(),
                      f"{rel}: allowlisted, raw clock read permitted")
            else:
                check(("wall-clock", 2) in active,
                      f"{rel}: not allowlisted, raw clock read flagged")

    # The real tree must be clean — the gate CI enforces.
    linter = dl.Linter(REPO_ROOT)
    for rel in dl.gather_sources(REPO_ROOT, ["src"]):
        linter.lint_file(rel)
    active = [f for f in linter.findings if not f.suppressed]
    check(not active,
          "src/ lints clean ("
          + "; ".join(f"{f.path}:{f.line} {f.rule}" for f in active[:5])
          + (" …" if len(active) > 5 else "") + ")" if active
          else "src/ lints clean")
    for f in linter.findings:
        if f.suppressed:
            check(bool(f.reason.strip()),
                  f"{f.path}:{f.line}: ALLOW({f.rule}) carries a reason")

    print(f"\n{len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
