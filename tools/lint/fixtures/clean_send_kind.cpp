// Fixture: ledger-disciplined packet construction and sends. Zero findings.

namespace fixture {

enum class PacketKind : int { kNone = 0, kHello = 240 };

struct Packet {
  PacketKind kind = PacketKind::kNone;
  int payload = 0;
};

struct NodeId {
  unsigned value = 0;
};

struct Medium {
  template <typename Fn>
  int broadcast_each(NodeId, PacketKind, Fn) { return 0; }
  template <typename Fn>
  void unicast_frame(NodeId, NodeId, PacketKind, Fn) {}
};

// The factory idiom: a bare Packet is fine when .kind is assigned in the
// statements immediately following.
inline Packet make_packet(PacketKind kind, int payload) {
  Packet p;
  p.kind = kind;
  p.payload = payload;
  return p;
}

struct RouteState {
  // HLSRG_LINT_ALLOW(send-kind): carrier slot — holds a packet the caller
  // already built through its factory.
  Packet pkt;
};

inline void sends(Medium& m, NodeId a, NodeId b, const RouteState& st) {
  m.broadcast_each(a, PacketKind::kHello, [](NodeId) {});
  m.unicast_frame(a, b, st.pkt.kind, [](NodeId) {});
  (void)make_packet(PacketKind::kHello, 7);
}

}  // namespace fixture
