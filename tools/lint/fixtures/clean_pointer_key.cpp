// Fixture: stable-id keys (the TaggedId idiom) and pointer *values* are
// fine — only pointer *keys* order state by address. Zero findings.
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>

namespace fixture {

struct Agent {};

struct AgentId {
  std::uint32_t value;
};

struct State {
  std::unordered_map<std::uint32_t, Agent*> by_id;             // ptr value: ok
  std::map<std::uint64_t, std::shared_ptr<Agent>> by_seq;      // ptr value: ok
  std::unordered_map<std::uint32_t, std::unique_ptr<Agent>> owned;
};

}  // namespace fixture
