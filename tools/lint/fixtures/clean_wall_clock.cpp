// Fixture: sim-time reads and time-like identifiers that must NOT trip the
// wall-clock rule. Zero findings.

namespace fixture {

struct SimTime {
  long long us = 0;
};

struct Simulator {
  SimTime now() const { return now_; }
  SimTime now_;
};

struct Scenario {
  SimTime end_time() const { return SimTime{}; }   // _time( is not time(
  SimTime next_time() const { return SimTime{}; }
};

inline void mix_time(SimTime) {}  // identifier merely containing "time"

inline long long sim_now(const Simulator& sim, const Scenario& sc) {
  mix_time(sc.end_time());
  return sim.now().us + sc.next_time().us;
}

}  // namespace fixture
