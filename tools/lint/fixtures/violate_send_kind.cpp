// Fixture: packet send sites that dodge the per-kind channel ledger — the
// exact class of bug the PR-5 channel-ledger fix closed ad hoc.

namespace fixture {

enum class PacketKind : int { kNone = 0, kHello = 240 };

struct Packet {
  PacketKind kind = PacketKind::kNone;
  int payload = 0;
};

struct NodeId {
  unsigned value = 0;
};

struct Medium {
  template <typename Fn>
  int broadcast_each(NodeId, Fn) { return 0; }  // kind-less overload (bad)
  template <typename Fn>
  int broadcast_each(NodeId, PacketKind, Fn) { return 0; }
  template <typename Fn>
  void unicast_frame(NodeId, NodeId, Fn) {}     // kind-less overload (bad)
};

inline Packet make_packet(int payload) {
  Packet anonymous;  // line 27: kind defaults to kNone and stays there
  anonymous.payload = payload;
  return anonymous;
}

inline void sends(Medium& m, NodeId a, NodeId b) {
  m.broadcast_each(a, [](NodeId) {});   // line 33: no PacketKind argument
  m.unicast_frame(a, b, [](NodeId) {}); // line 34: no PacketKind argument
}

}  // namespace fixture
