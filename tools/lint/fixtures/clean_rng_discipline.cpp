// Fixture: the blessed RNG idiom — named streams split from the simulator's
// root, plus an annotated escape hatch. Zero findings.

namespace fixture {

enum class RngStreamId : unsigned long long { kMobility = 1, kRadio = 2 };

class Rng {
 public:
  Rng split(RngStreamId) { return *this; }
  Rng split(unsigned long long) { return *this; }
  double uniform() { return 0.5; }
};

struct Simulator {
  Rng& mobility_rng() { return rng_; }
  Rng rng_;
};

inline double draw(Simulator& sim) {
  Rng stream = sim.mobility_rng().split(RngStreamId::kRadio);
  return stream.uniform();
}

inline Rng computed_tag(Rng& root, unsigned long long shard) {
  // A computed tag (no bare literal) is how per-shard sub-streams derive.
  return root.split(shard * 2 + 1);
}

inline Rng pinned_seed() {
  // HLSRG_LINT_ALLOW(rng-discipline): replay tooling takes a user-pinned
  // seed by definition.
  return Rng{};
}

}  // namespace fixture
