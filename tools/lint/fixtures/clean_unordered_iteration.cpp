// Fixture: the blessed ways to touch unordered containers — lookup and
// membership (order-free), det:: sorted snapshot views, and an annotated
// order-insensitive loop. Must produce zero findings.
#include <unordered_map>
#include <unordered_set>

#include "util/ordered.h"

namespace fixture {

struct Digest {
  void mix(int) {}
};

struct State {
  std::unordered_map<int, double> table;
  std::unordered_set<int> members;
};

inline bool lookup_only(const State& s, int k) {
  // find/contains never observe iteration order.
  return s.table.find(k) != s.table.end() && s.members.contains(k);
}

inline void sorted_snapshot(State& s, Digest& d) {
  for (const auto* entry : hlsrg::det::sorted_view(s.table)) {
    d.mix(entry->first);
  }
  for (int m : hlsrg::det::sorted_keys(s.members)) {
    d.mix(m);
  }
}

inline int annotated_order_free(const State& s) {
  int sum = 0;
  // HLSRG_LINT_ALLOW(unordered-iteration): integer sum commutes, so the
  // result is identical under any iteration order.
  for (const auto& [k, v] : s.table) {
    sum += k;
  }
  return sum;
}

}  // namespace fixture
