// Fixture: every banned way of minting randomness. Reproducibility demands
// one seeded root; any of these forks an unseeded or colliding stream.
// (Rng is declared, not defined, so the only `Rng(` tokens here are the
// violating construction sites themselves.)
#include <cstdlib>
#include <random>

namespace fixture {

class Rng;
Rng& root_stream();

inline unsigned long long entropy() {
  std::random_device rd;  // line 14: hardware entropy
  return rd();
}

inline int mersenne() {
  std::mt19937 gen(42);  // line 19: ad-hoc engine seeding
  return static_cast<int>(gen());
}

inline int libc_rand() {
  srand(7);               // line 24: global libc state
  return rand();          // line 25
}

inline void direct_construction() {
  auto* leaked = new Rng(1234);  // line 29: bypasses the stream tree
  (void)leaked;
}

inline void bare_tag() {
  (void)root_stream().split(7);  // line 34: anonymous stream tag
}

}  // namespace fixture
