// Fixture: wall-clock reads in sim code. Real time varies run to run and
// host to host; simulation time comes from Simulator::now() alone.
#include <chrono>
#include <ctime>

namespace fixture {

inline long long epoch_steady() {
  return std::chrono::steady_clock::now()  // line 9
      .time_since_epoch()
      .count();
}

inline long long epoch_system() {
  return std::chrono::system_clock::now()  // line 15
      .time_since_epoch()
      .count();
}

inline long long epoch_hires() {
  auto t = std::chrono::high_resolution_clock::now();  // line 21
  return t.time_since_epoch().count();
}

inline long long libc_time() {
  return static_cast<long long>(time(nullptr));  // line 26
}

inline long long libc_clock() {
  return static_cast<long long>(clock());  // line 30
}

}  // namespace fixture
