// Fixture: every form of unordered iteration the rule must catch.
// Linted with --all-rules-everywhere (fixtures sit outside src/).
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Digest {
  void mix(int) {}
};

struct State {
  std::unordered_map<int, double> table;
  std::unordered_set<int> members;
};

inline void range_for_over_map(State& s, Digest& d) {
  for (const auto& [k, v] : s.table) {  // line 18: range-for over member
    d.mix(k);
  }
}

inline void range_for_over_set(State& s, Digest& d) {
  for (int m : s.members) {  // line 24: range-for over unordered_set
    d.mix(m);
  }
}

inline void iterator_walk(State& s, Digest& d) {
  for (auto it = s.table.begin(); it != s.table.end(); ++it) {  // line 30
    d.mix(it->first);
  }
}

inline void via_alias(Digest& d) {
  using Index = std::unordered_map<int, int>;
  Index idx;
  for (const auto& [k, v] : idx) {  // line 38: alias-typed local
    d.mix(k);
  }
}

}  // namespace fixture
