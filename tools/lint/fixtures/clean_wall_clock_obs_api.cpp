// Fixture: harness-style phase timing through the sanctioned obs clock API
// (obs/profiler.h). No raw std::chrono / libc clock reads, so the
// wall-clock rule reports zero findings — this is the shape runner.cpp,
// scenario_cli, and the benches use.

namespace fixture {

// Stand-ins for the obs/profiler.h declarations (the fixture compiles
// nothing; the lint only tokenizes).
unsigned long long monotonic_now_ns();
double monotonic_now_sec();

struct EnginePhase {
  double begin_sec = 0.0;
  double end_sec = 0.0;
};

inline EnginePhase time_build_phase() {
  EnginePhase phase;
  const double epoch = monotonic_now_sec();
  phase.begin_sec = 0.0;
  phase.end_sec = monotonic_now_sec() - epoch;
  return phase;
}

inline unsigned long long scope_elapsed() {
  const unsigned long long start = monotonic_now_ns();
  return monotonic_now_ns() - start;
}

}  // namespace fixture
