// Fixture: raw clock reads in harness-style timing code. The harness used
// to be allowlisted for wall-clock reads; since the obs profiler became the
// single sanctioned site (src/obs/profiler.cpp), phase timing like this
// must go through monotonic_now_ns()/monotonic_now_sec() from
// obs/profiler.h instead.
#include <chrono>

namespace fixture {

struct EnginePhase {
  double begin_sec = 0.0;
  double end_sec = 0.0;
};

inline EnginePhase time_build_phase() {
  EnginePhase phase;
  const auto start = std::chrono::steady_clock::now();  // line 17
  phase.begin_sec = 0.0;
  phase.end_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -  // 20
                                    start)
          .count();
  return phase;
}

}  // namespace fixture
