// Fixture: pointer- and smart-pointer-keyed associative containers.
// Addresses differ run to run, so hashing or ordering over them is
// nondeterministic by construction.
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Agent {};

struct State {
  std::unordered_map<Agent*, int> by_raw_ptr;              // line 15
  std::map<const Agent*, int> by_const_ptr;                // line 16
  std::unordered_set<Agent*> ptr_members;                  // line 17
  std::set<std::shared_ptr<Agent>> by_shared_ptr;          // line 18
  std::unordered_map<std::shared_ptr<Agent>, int> shared;  // line 19
};

}  // namespace fixture
